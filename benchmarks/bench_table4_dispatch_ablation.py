"""Table 4 — Request Scheduler vs ILB and IG dispatching.

Paper values: on three Twitter-Bursty BERT-Large traces at different
scales, RS cuts tail latency by up to 95.6 % vs ILB and 58.7 % vs IG,
and mean latency by up to 92.5 % and 55.8 %. On the first two traces
RS beats both (which alternate); on the third — weak short-term length
fluctuation — RS ≈ ILB, both clearly ahead of IG.
"""

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import table4


def test_table4_dispatch_ablation(benchmark, record):
    data = run_once(
        benchmark, table4,
        scale=bench_scale(1.0), duration_s=bench_duration(45.0),
    )
    record("table4_dispatch_ablation", data)
    for trace_name, rows in data.items():
        rs, ilb, ig = rows["arlo"], rows["arlo-ilb"], rows["arlo-ig"]
        # RS never loses on mean latency (small tolerance for ties).
        assert rs["mean_ms"] <= 1.05 * min(ilb["mean_ms"], ig["mean_ms"]), trace_name
    # On the weak-fluctuation trace RS approximates ILB while IG lags
    # ("IG's greedy seizing ... overloads them").
    weak = data["table4-trace3"]
    assert weak["arlo"]["mean_ms"] <= 1.05 * weak["arlo-ilb"]["mean_ms"]
    assert weak["arlo-ig"]["mean_ms"] >= weak["arlo-ilb"]["mean_ms"]
