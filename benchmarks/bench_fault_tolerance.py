"""Extension — serving under instance failures (§1's motivation).

Not a paper figure: the paper motivates the Request Scheduler with
"idiosyncratic factors such as failures" but never evaluates them. We
inject instance crashes into a bursty run and check that (a) Arlo's
demotion-based dispatch degrades more gracefully than ILB (which keeps
queueing on the reduced ideal level), and (b) every lost request is
re-served.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.baselines.schemes import build_scheme
from repro.sim.faults import FailurePlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def _run(scale: float):
    gpus = max(3, int(round(8 * scale)))
    trace = generate_twitter_trace(
        rate_per_s=900 * scale, duration_ms=seconds(30), pattern="bursty",
        seed=91, drift_scale=0.12,
    )
    hint = trace.slice_time(0, seconds(5))
    plan = FailurePlan.random(count=3, horizon_ms=seconds(30), seed=7,
                              recovery_ms=seconds(4))
    out = {}
    for name in ("arlo", "arlo-ilb"):
        scheme = build_scheme(name, "bert-base", gpus, trace_hint=hint)
        res = run_simulation(
            scheme, trace,
            SimulationConfig(warmup_ms=seconds(2), failures=plan),
        )
        out[name] = {
            "mean_ms": res.mean_ms,
            "p98_ms": res.p98_ms,
            "requests": res.stats.count,
            "failures": res.control_stats["failures"],
            "requests_lost": res.control_stats["requests_lost"],
        }
    return out


def test_fault_tolerance(benchmark, record):
    data = run_once(benchmark, _run, bench_scale(1.0))
    record("fault_tolerance", data)
    arlo, ilb = data["arlo"], data["arlo-ilb"]
    assert arlo["failures"] == 3
    # Everything is served despite lost work.
    assert arlo["requests"] == ilb["requests"]
    # Demotion degrades no worse than padding-minimal dispatch.
    assert arlo["mean_ms"] <= 1.1 * ilb["mean_ms"]
