"""Extension — serving under graded faults (§1's motivation).

Not a paper figure: the paper motivates the Request Scheduler with
"idiosyncratic factors such as failures" but never evaluates them. We
inject a mixed-grade fault plan (crashes + stragglers + a control-plane
solver failure) into a bursty run with the resilience subsystem active
and check that (a) Arlo's demotion-based dispatch degrades more
gracefully than ILB (which keeps queueing on the reduced ideal level),
(b) every lost request is re-served, and (c) the circuit breaker /
retry / admission counters land in ``benchmarks/out/fault_tolerance.json``.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.baselines.schemes import build_scheme
from repro.core.arlo import ArloSystem
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.errors import AdmissionError
from repro.resilience.admission import AdmissionConfig
from repro.resilience.manager import ResilienceConfig
from repro.serve import ArloServer
from repro.sim.faults import FaultPlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace

RESILIENCE_KEYS = (
    "failures", "requests_lost", "slowdowns", "blackouts", "timeouts",
    "retries", "retry_budget_exhausted", "quarantines", "breaker_trips",
    "breaker_recoveries", "quarantine_violations",
    "solver_faults_injected", "solver_fallbacks",
)


def _admission_segment() -> dict:
    """A short overload burst against the live server: how many requests
    does deadline-aware admission shed instead of queueing unboundedly?"""
    arlo = ArloSystem.build("bert-base", num_gpus=2)
    server = ArloServer(
        arlo, admission=AdmissionConfig(deadline_ms=seconds(2))
    )
    length = arlo.registry.max_length
    submitted = 0
    for _ in range(2_000):
        try:
            server.submit(length)
            submitted += 1
        except AdmissionError:
            pass
    server.drain()
    return {
        "offered": 2_000,
        "admitted": submitted,
        "shed": server.stats.shed,
        "shed_by_reason": dict(server.shed_counts),
    }


def _run(scale: float):
    gpus = max(3, int(round(8 * scale)))
    trace = generate_twitter_trace(
        rate_per_s=900 * scale, duration_ms=seconds(30), pattern="bursty",
        seed=91, drift_scale=0.12,
    )
    hint = trace.slice_time(0, seconds(5))
    plan = FaultPlan.chaos(
        horizon_ms=seconds(30), crashes=3, slowdowns=2, blackouts=1,
        solver_faults=1, seed=7, recovery_ms=seconds(4),
    )
    out = {"fault_plan": plan.counts()}
    for name in ("arlo", "arlo-ilb"):
        # Period << trace duration so reschedules (and the injected
        # solver fault) actually fire within the 30 s run.
        scheme = build_scheme(
            name, "bert-base", gpus, trace_hint=hint,
            runtime_scheduler_config=RuntimeSchedulerConfig(
                period_ms=seconds(10)
            ),
        )
        res = run_simulation(
            scheme, trace,
            SimulationConfig(warmup_ms=seconds(2), failures=plan,
                             resilience=ResilienceConfig()),
        )
        out[name] = {
            "mean_ms": res.mean_ms,
            "p98_ms": res.p98_ms,
            "requests": res.stats.count,
            **{k: res.control_stats[k] for k in RESILIENCE_KEYS},
        }
    out["admission"] = _admission_segment()
    return out


def test_fault_tolerance(benchmark, record):
    data = run_once(benchmark, _run, bench_scale(1.0))
    record("fault_tolerance", data)
    arlo, ilb = data["arlo"], data["arlo-ilb"]
    assert arlo["failures"] == 3
    assert arlo["slowdowns"] == 2
    assert arlo["solver_fallbacks"] >= 1
    # Everything is served despite lost work, and quarantine is airtight.
    assert arlo["requests"] == ilb["requests"]
    assert arlo["quarantine_violations"] == 0
    # Demotion degrades no worse than padding-minimal dispatch.
    assert arlo["mean_ms"] <= 1.1 * ilb["mean_ms"]
    # The overload segment actually shed work at admission.
    assert data["admission"]["shed"] > 0
