"""Extension — §4 target tracking vs the INFaaS-style headroom policy.

The paper gives Arlo a latency-target-tracking autoscaler and notes the
baselines inherit INFaaS's headroom heuristics. This bench runs the
same bursty BERT-Large stream under both policies (same scheme: Arlo).

The measured trade-off is instructive: latency-triggered scaling is
*reactive* — it fires after a burst has already built a queue, and
every action costs capacity (provisioning delay on the way out, a
drain on the way in), so on short bursts it can churn; the headroom
policy's windowed-utilisation inertia simply rides bursts out when the
fleet's within-SLO capacity was never truly exceeded. Neither policy
dominates — which is why §4 frames auto-scaling as pluggable and the
paper's contribution is the allocation/dispatch layer underneath.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.baselines.schemes import build_scheme
from repro.cluster.autoscaler import AutoscalerConfig, HeadroomConfig
from repro.runtimes.models import bert_large
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def _run(scale: float):
    model = bert_large()
    gpus = max(2, int(round(5 * scale)))
    trace = generate_twitter_trace(
        rate_per_s=450 * scale, duration_ms=seconds(120), pattern="bursty",
        seed=80, drift_scale=0.12,
    )
    hint = trace.slice_time(0, seconds(5))
    policies = {
        "target_tracking": AutoscalerConfig(
            slo_ms=model.slo_ms, min_gpus=gpus, max_gpus=3 * gpus,
            window_size=256, scale_in_period_ms=seconds(30),
        ),
        "headroom": HeadroomConfig(
            min_gpus=gpus, max_gpus=3 * gpus, window_size=16,
            scale_in_period_ms=seconds(30),
        ),
    }
    out = {}
    for name, policy in policies.items():
        scheme = build_scheme("arlo", "bert-large", gpus, trace_hint=hint)
        res = run_simulation(
            scheme, trace,
            SimulationConfig(enable_autoscaler=True, autoscaler=policy),
        )
        out[name] = {
            "time_weighted_gpus": res.time_weighted_gpus,
            "mean_ms": res.mean_ms,
            "p98_ms": res.p98_ms,
            "scale_outs": res.control_stats.get("scale_outs", 0),
            "slo_violation_%": 100 * res.stats.slo_violation_rate,
        }
    return out


def test_autoscaler_policies(benchmark, record):
    data = run_once(benchmark, _run, bench_scale(1.0))
    record("autoscaler_policies", data)
    tt, hr = data["target_tracking"], data["headroom"]
    # Both policies keep the stream serviceable.
    assert tt["slo_violation_%"] < 20
    assert hr["slo_violation_%"] < 20
    # Both use a bounded fleet; neither pins at the maximum forever.
    assert tt["time_weighted_gpus"] < 3 * 5
    assert hr["time_weighted_gpus"] < 3 * 5
