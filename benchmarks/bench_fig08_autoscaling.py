"""Fig. 8 — consumed GPUs under auto-scaling, Twitter-Bursty, BERT-Large.

Paper values: starting from 5 GPUs, time-weighted GPU usage is 5.49
(Arlo) < 6.38 (DT) < 6.80 (INFaaS) < 8.13 (ST), while Arlo still has
the best tail latency (330 ms vs 397/404/431 ms).

Reproduced shape: Arlo consumes the fewest time-weighted GPUs and ST
the most, with Arlo's p98 no worse than ST's.
"""

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import fig8


def test_fig8_autoscaling(benchmark, record):
    data = run_once(
        benchmark, fig8,
        scale=bench_scale(1.0), duration_s=bench_duration(120.0),
    )
    payload = {
        name: {k: v for k, v in d.items() if k != "gpu_timeline"}
        for name, d in data.items()
    }
    record("fig08_autoscaling", payload)
    twg = {name: d["time_weighted_gpus"] for name, d in data.items()}
    # Arlo uses the fewest GPUs; full-padding ST the most.
    assert twg["arlo"] <= min(twg["dt"], twg["infaas"]) + 1e-9
    assert twg["st"] >= max(twg["arlo"], twg["dt"]) - 1e-9
    assert twg["st"] > twg["arlo"]
    # ST actually had to scale out.
    assert data["st"]["scale_outs"] > 0
    # Despite fewer GPUs, Arlo's tail stays competitive (paper: best).
    assert data["arlo"]["p98_ms"] <= data["st"]["p98_ms"] * 1.1
