"""Fig. 1 — sequence length distribution at two time scales.

Paper values: median 21 tokens and p98 = 72 over 10-minute windows
(Fig. 1a); per-second windows share the median but fluctuate at the
tail (98%ile 58 vs 71, Fig. 1b vs text §3.2).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figures import fig1_length_distributions


def test_fig1_length_distributions(benchmark, record):
    data = run_once(benchmark, fig1_length_distributions, 500.0)
    record("fig01_length_cdf", data)
    overall = data["overall"]
    assert abs(overall["median"] - 21) <= 3
    assert abs(overall["p98"] - 72) <= 12
    assert overall["max"] <= 125
    # Long-term median stable across minutes; the short-term tail
    # fluctuates far more than the long-term median does (§3.2).
    minute_medians = [w["median"] for w in data["per_minute"]]
    second_p98 = [w["p98"] for w in data["per_second"]]
    assert np.std(minute_medians) < 4
    assert np.std(second_p98) > np.std(minute_medians)
    assert max(second_p98) - min(second_p98) >= 5
