"""Extension ablation — allocation solver choices (DESIGN.md §6.1).

Compares the exact Pareto-DP, the local-search heuristic and the MILP
encoding on identical Eqs. 1–7 instances: objective parity and the
time/quality trade-off that justifies the ``auto`` dispatch policy.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.allocation import (
    solve_dp,
    solve_local_search,
    solve_milp_encoding,
)
from repro.experiments.figures import table2_problem


def test_dp_vs_local_quality(benchmark, record):
    def compare():
        rows = []
        for gpus, runtimes, seed in ((20, 8, 1), (50, 8, 2), (80, 12, 3)):
            problem = table2_problem(gpus, runtimes, seed=seed)
            dp = solve_dp(problem, relax=True)
            local = solve_local_search(problem, relax=True)
            rows.append({
                "gpus": gpus, "runtimes": runtimes,
                "dp_objective": dp.objective,
                "local_objective": local.objective,
                "dp_time_s": dp.solve_time_s,
                "local_time_s": local.solve_time_s,
                "gap_%": 100 * (local.objective - dp.objective)
                / max(dp.objective, 1e-9),
            })
        return rows

    rows = run_once(benchmark, compare)
    record("solver_comparison", rows)
    for row in rows:
        assert row["gap_%"] <= 2.0  # local search is near-optimal
        assert row["local_objective"] >= row["dp_objective"] - 1e-6


def test_milp_encoding_agrees_on_small_instance(benchmark):
    problem = table2_problem(6, 4, seed=4)
    dp = solve_dp(problem, relax=True)
    milp = benchmark.pedantic(
        solve_milp_encoding, args=(problem,),
        kwargs={"relax": True, "tangents_per_choice": 8},
        rounds=1, iterations=1,
    )
    assert milp.objective == pytest.approx(dp.objective, rel=0.05)
    assert milp.stats["lower_bound"] <= dp.objective + 1e-6
