"""Table 3 — periodic allocation vs offline even / global allocation.

Paper shape: "both offline schemes fail to achieve optimal performance
with dynamic workloads, highlighting the need for periodic
allocation" — Arlo's periodically re-solved allocation beats the
static even split and the static global-distribution split on a
drifting Twitter-Bursty trace.
"""

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import table3


def test_table3_allocation_ablation(benchmark, record):
    rows = run_once(
        benchmark, table3,
        scale=bench_scale(1.0), duration_s=bench_duration(90.0),
    )
    record("table3_allocation_ablation", rows)
    by_name = {r["scheme"]: r for r in rows}
    periodic = by_name["arlo"]
    even = by_name["arlo-even"]
    glob = by_name["arlo-global"]
    assert periodic["mean_ms"] <= even["mean_ms"]
    assert periodic["mean_ms"] <= glob["mean_ms"]
    assert periodic["mean_ms"] < max(even["mean_ms"], glob["mean_ms"])
    assert periodic["p98_ms"] <= 1.1 * min(even["p98_ms"], glob["p98_ms"])
