"""§5.2.1 — simulator calibration and fidelity.

Paper values: simulation vs testbed gaps of 4.3 % (mean) and 2.6 %
(p98) after adding the fixed 0.8 ms per-request overhead.

Our substitute compares the event-driven simulator against the
independent arrival-ordered replayer on a 5-minute-style trace slice:
the two code paths must agree to numerical precision, trivially inside
the paper's bands.
"""

import numpy as np

from benchmarks.conftest import bench_duration, run_once
from repro.baselines.schemes import build_scheme
from repro.sim.replay import replay_trace
from repro.sim.simulation import run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def _fidelity_run(duration_s: float):
    trace = generate_twitter_trace(
        rate_per_s=400, duration_ms=seconds(duration_s), seed=51
    )
    sim = run_simulation(build_scheme("st", "bert-base", 5), trace)
    rep = np.sort(replay_trace(build_scheme("st", "bert-base", 5), trace))
    sim_lat = np.sort(sim.latencies())
    return {
        "mean_gap_%": 100 * abs(sim.mean_ms - rep.mean()) / rep.mean(),
        "p98_gap_%": 100
        * abs(sim.p98_ms - np.percentile(rep, 98))
        / np.percentile(rep, 98),
        "max_abs_diff_ms": float(np.max(np.abs(sim_lat - rep))),
        "requests": int(rep.size),
    }


def test_fidelity_simulator_vs_replayer(benchmark, record):
    data = run_once(benchmark, _fidelity_run, bench_duration(30.0))
    record("fidelity", data)
    assert data["mean_gap_%"] <= 4.3
    assert data["p98_gap_%"] <= 2.6
    assert data["max_abs_diff_ms"] < 1e-6
