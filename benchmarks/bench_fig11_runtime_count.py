"""Fig. 11 — how many runtimes should Arlo compile?

Paper values (40 GPUs, BERT-Large stream): 2 runtimes cannot serve the
stream (huge queues); 4 roughly copes with ~2.5 % SLO violations;
8 runtimes (the staircase choice) eliminates violations with mean
14.16 ms / p98 84.04 ms; 16 runtimes adds nothing (14.45 / 81.74).
"""

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import fig11


def test_fig11_runtime_count(benchmark, record):
    # Scale floor: N=16 needs a cluster bigger than the runtime count,
    # so the default runs half of the paper's 40 GPUs, not a quarter.
    data = run_once(
        benchmark, fig11,
        counts=(2, 4, 8, 16),
        scale=bench_scale(0.5), duration_s=bench_duration(30.0),
    )
    record("fig11_runtime_count", data)
    # Too few runtimes is clearly worse...
    assert data[2]["mean_ms"] > 1.5 * data[8]["mean_ms"]
    assert data[2]["slo_violation_%"] >= data[8]["slo_violation_%"]
    # ...while 16 runtimes adds nothing substantial over 8.
    assert abs(data[16]["mean_ms"] - data[8]["mean_ms"]) <= 0.35 * data[8]["mean_ms"]
    # The staircase choice serves the stream without violations.
    assert data[8]["slo_violation_%"] < 1.0
