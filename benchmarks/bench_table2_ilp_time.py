"""Table 2 — Runtime Scheduler solve time at increasing cluster scale.

Paper values (GUROBI): 0.156 s at (50 GPUs, 8 runtimes), 0.623 s at
(200, 12), 2.612 s at (1000, 16), averaged over 20 runs.

Our substitute solvers (exact Pareto-DP below ~120 GPUs, local search
above) must stay well inside those budgets — the paper's point is that
allocation is negligible next to the multi-minute fluctuation period.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.allocation import solve_allocation
from repro.experiments.figures import table2, table2_problem

PAPER_BUDGET_S = {(50, 8): 0.156, (200, 12): 0.623, (1000, 16): 2.612}


@pytest.mark.parametrize("gpus,runtimes", list(PAPER_BUDGET_S))
def test_table2_solve_time(benchmark, gpus, runtimes):
    problem = table2_problem(gpus, runtimes)
    method = "dp" if gpus <= 120 else "local"
    result = benchmark.pedantic(
        solve_allocation, args=(problem,),
        kwargs={"method": method, "relax": True},
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert result.allocation.sum() == gpus
    assert result.allocation[-1] >= 1
    # Our solver is at least as fast as the paper's GUROBI budget.
    assert benchmark.stats["mean"] <= PAPER_BUDGET_S[(gpus, runtimes)]


def test_table2_rows(benchmark, record):
    rows = run_once(benchmark, table2, repeats=3)
    record("table2_ilp_time", [r.__dict__ for r in rows])
    times = {(r.num_gpus, r.num_runtimes): r.solve_time_s for r in rows}
    for key, budget in PAPER_BUDGET_S.items():
        assert times[key] <= budget
