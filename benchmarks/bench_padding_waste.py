"""§2.2 — FLOPs wasted on zero-padding.

Paper values: one Twitter trace clip served by a single
``max_length=125`` runtime wastes 80.6 % of its FLOPs. We also report
the recalibrated-512 workload under ST (one 512 runtime) and under the
polymorph set — the quantity Arlo's whole design minimises.
"""

from benchmarks.conftest import run_once
from repro.analysis.padding import (
    polymorph_padding_report,
    uniform_padding_report,
)
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.units import minutes
from repro.workload.twitter import (
    RECALIBRATION_FACTOR,
    TwitterTraceConfig,
    generate_twitter_trace,
)


def _measure():
    raw = generate_twitter_trace(
        TwitterTraceConfig(rate_per_s=300, duration_ms=minutes(5),
                           recalibrate_to_512=False, seed=2)
    )
    recalibrated = raw.scale_lengths(RECALIBRATION_FACTOR, 512)
    registry = build_polymorph_set(bert_base())
    return {
        "raw_trace_max125_waste_%": 100
        * uniform_padding_report(raw, 125).wasted_flops_fraction,
        "recalibrated_st512_waste_%": 100
        * uniform_padding_report(recalibrated, 512).wasted_flops_fraction,
        "recalibrated_polymorph_waste_%": 100
        * polymorph_padding_report(recalibrated, registry).wasted_flops_fraction,
    }


def test_padding_waste(benchmark, record):
    data = run_once(benchmark, _measure)
    record("padding_waste", data)
    # Paper §2.2: ~80.6 % wasted at max_length 125.
    assert abs(data["raw_trace_max125_waste_%"] - 80.6) < 3.0
    # The polymorph set eliminates most of ST's waste.
    assert (
        data["recalibrated_polymorph_waste_%"]
        < 0.4 * data["recalibrated_st512_waste_%"]
    )
