"""Extension — does polymorphing still pay off on other hardware?

Not a paper figure: §3.3 notes the staircase step "may vary" across
devices/compilers. This bench retargets BERT-Base to a hypothetical
coarse-tile accelerator (step 128 → only 4 polymorph runtimes) and to
an A100-class device, and checks the two claims that generalise:

1. Arlo still beats full-padding ST on every device;
2. the *relative* benefit shrinks with coarser tiles (fewer distinct
   runtimes → more padding per request), matching the Fig. 11 logic.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.baselines.schemes import build_scheme
from repro.runtimes.hardware import A100, COARSE_TILE, RTX_3090, retarget_model
from repro.runtimes.models import bert_base
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def _run(scale: float):
    gpus = max(3, int(round(10 * scale)))
    out = {}
    for hw in (RTX_3090, A100, COARSE_TILE):
        model = retarget_model(bert_base(), hw)
        # Same per-GPU pressure on every device: offered load tracks the
        # device's full-padding capacity.
        service_full = model.static_latency.compute_ms(model.max_length) + 0.8
        rate = 0.6 * gpus * 1_000.0 / service_full
        trace = generate_twitter_trace(
            rate_per_s=rate, duration_ms=seconds(30), seed=95
        )
        hint = trace.slice_time(0, seconds(5))
        results = {}
        for name in ("st", "arlo"):
            scheme = build_scheme(name, model, gpus, trace_hint=hint)
            res = run_simulation(scheme, trace,
                                 SimulationConfig(warmup_ms=seconds(2)))
            results[name] = res.mean_ms
        out[hw.name] = {
            "rate_per_s": rate,
            "runtimes": model.num_buckets,
            "st_mean_ms": results["st"],
            "arlo_mean_ms": results["arlo"],
            "arlo_reduction_%": 100 * (1 - results["arlo"] / results["st"]),
        }
    return out


def test_hardware_whatif(benchmark, record):
    data = run_once(benchmark, _run, bench_scale(1.0))
    record("hardware_whatif", data)
    # Polymorphing wins everywhere...
    for hw, row in data.items():
        assert row["arlo_mean_ms"] < row["st_mean_ms"], hw
    # ...but coarser tiles (4 runtimes) yield a smaller reduction than
    # the calibrated 64-token staircase (8 runtimes).
    assert (data["coarse-tile"]["arlo_reduction_%"]
            < data["rtx-3090"]["arlo_reduction_%"])
    # A pure speed change (A100) preserves the relative benefit.
    assert abs(data["a100"]["arlo_reduction_%"]
               - data["rtx-3090"]["arlo_reduction_%"]) < 15
