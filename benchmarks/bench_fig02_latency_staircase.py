"""Fig. 2 — inference latency: static staircase vs dynamic compilation.

Paper values: BERT-Base lat(512) = 4.86 ms at 4.22× lat(64); BERT-Large
ratio 5.25×; dynamic-shape inflation between 1.22× and 3.56×; Dolly's
tuned TVM dynamic runtime averages 2.86× the untuned static.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig2_latency_curves


@pytest.mark.parametrize("model,ratio", [("bert-base", 4.22),
                                         ("bert-large", 5.25)])
def test_fig2_bert_staircase(benchmark, record, model, ratio):
    data = run_once(benchmark, fig2_latency_curves, model)
    record(f"fig02_{model}", data)
    static = np.asarray(data["static_ms"])
    dynamic = np.asarray(data["dynamic_ms"])
    lengths = np.asarray(data["lengths"])
    # Ratio lat(512)/lat(64) matches the paper's staircase.
    l64 = static[lengths == 64][0]
    l512 = static[lengths == 512][0]
    assert l512 / l64 == pytest.approx(ratio, rel=0.05)
    # Dynamic never beats static; inflation within the paper's band.
    inflation = dynamic / static
    assert inflation.min() >= 1.15
    assert inflation.max() <= 3.8
    # Padding penalty: a short request on the 512 runtime is ~4x slower.
    padded = np.asarray(data["padded_512_ms"])
    short = lengths <= 64
    assert (padded[short] / static[short]).mean() > 3.0


def test_fig2_dolly_tvm(benchmark, record):
    data = run_once(benchmark, fig2_latency_curves, "dolly")
    record("fig02_dolly", data)
    inflation = np.asarray(data["dynamic_ms"]) / np.asarray(data["static_ms"])
    assert inflation.mean() == pytest.approx(2.86, rel=0.15)
