"""Perf-regression harness for the control-plane hot paths.

Times the three paths this repo's fast control plane optimises:

1. **Solve latency** — ``RuntimeScheduler.step`` on the Table 2
   workload (50 GPUs × 8 runtimes), measured cold (no cache, no warm
   start), warm-started (previous period's allocation seeds the solver
   bounds) and cached (exact memoized hit, no solve at all);
2. **Dispatch** — Algorithm 1 ``dispatch`` + completion on a populated
   multi-level queue, reported as ns/request;
3. **Event-loop simulation** — a small Arlo serving experiment timed
   over ``run_simulation`` only (setup excluded), reported as
   simulator events/second;
4. **Simulation at scale** — one sustained ≥1M-request run (100k in
   ``--quick``), same events/second basis;
5. **Spatial sharding at scale** — the same ≥1M-request workload split
   into ≥4 request-partition space shards, each an independent event
   loop; the gated metric divides total events by the *slowest shard's*
   ``run_simulation`` wall (the data plane's parallel capacity — what
   the wall clock delivers once each shard owns a core).
6. **Anytime control plane** — a 1000-GPU, 1 s-period scheduler loop
   over drifting demand with a 50 ms solve deadline and the demand
   forecaster pre-solving period boundaries; gates the deadline-hit
   rate (must stay 1.0), p99 solve latency, and the forecast-driven
   boundary cache-hit rate.

Run directly to (re)generate the committed ``BENCH_perf.json``::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --quick

or gate a change against a committed baseline (CI does this)::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --quick \
        --baseline BENCH_perf.json --max-regression 0.25

``--workers N`` / ``--data-plane columnar`` re-point the scale
benchmarks at a different shard count or event representation, and
``--profile [N]`` prints a per-section cProfile top-N (by total time)
instead of gating — a profiling aid, not a measurement mode.

The pytest entry points (``-m perf``) assert the acceptance criterion:
warm+cached scheduler steps at least 3× faster than cold.
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import json
import math
import os
import pathlib
import platform
import pstats
import sys
import time

import numpy as np
import pytest

from repro.baselines.allocators import even_allocation
from repro.cluster.state import ClusterState
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler
from repro.core.runtime_scheduler import RuntimeScheduler, RuntimeSchedulerConfig
from repro.experiments.runner import ExperimentSpec
from repro.obs.spans import ObservabilityConfig
from repro.sim.sharded import run_spatial
from repro.sim.simulation import run_simulation
from repro.runtimes.models import get_model
from repro.runtimes.registry import build_polymorph_set
from repro.runtimes.staircase import polymorph_lengths_for_count
from repro.units import SECOND

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_perf.json"

#: Table 2 first row: the paper's smallest reported ILP instance.
TABLE2_GPUS = 50
TABLE2_RUNTIMES = 8

#: Acceptance criterion: warm+cached step vs cold step.
SPEEDUP_FLOOR = 3.0


# ---------------------------------------------------------------------------
# Workload construction
# ---------------------------------------------------------------------------

def _build_scheduler(
    enable_cache: bool,
    warm_start: bool,
    num_gpus: int = TABLE2_GPUS,
    num_runtimes: int = TABLE2_RUNTIMES,
    seed: int = 5,
) -> tuple[RuntimeScheduler, ClusterState, float]:
    """A Runtime Scheduler over the Table 2 workload, demand pre-filled.

    Mirrors ``repro.experiments.figures.table2_problem``: bert-large
    polymorphs, log-normally spread demand at ~60 % utilisation — but
    routed through a real ``DemandEstimator`` so ``step`` exercises the
    same estimate → problem → solve pipeline production uses.
    """
    model = get_model("bert-large")
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(model.max_length, num_runtimes),
    )
    config = RuntimeSchedulerConfig(
        period_ms=20 * SECOND,
        enable_cache=enable_cache,
        warm_start=warm_start,
    )
    estimator = DemandEstimator(
        bins=LengthBins.from_registry(registry),
        slo_ms=model.slo_ms,
        window_ms=config.period_ms,
    )
    now_ms = config.period_ms
    rng = np.random.default_rng(seed)
    caps = np.array([p.capacity for p in registry], dtype=float)
    weights = rng.lognormal(0.0, 0.8, size=num_runtimes)
    weights /= weights.sum()
    # Arrivals per bin over the window matching ~60 % utilisation.
    per_window = weights * 0.6 * num_gpus * caps.mean()
    arrivals_per_bin = np.maximum(
        1, (per_window * (config.period_ms / model.slo_ms)).astype(int)
    )
    times, lengths = [], []
    for b, count in enumerate(arrivals_per_bin):
        times.append(rng.uniform(0.0, now_ms, size=count))
        lengths.append(np.full(count, registry[b].max_length, dtype=np.int64))
    order = np.argsort(np.concatenate(times), kind="stable")
    estimator.observe_batch(
        np.concatenate(times)[order], np.concatenate(lengths)[order]
    )
    cluster = ClusterState.bootstrap(
        registry, even_allocation(num_runtimes, num_gpus)
    )
    scheduler = RuntimeScheduler(
        registry=registry, estimator=estimator, config=config
    )
    return scheduler, cluster, now_ms


def _time_best_of(fn, repeats: int) -> float:
    """Best-of-N wall time in seconds (min is the low-noise estimator)."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------

def bench_solve(repeats: int = 5) -> dict:
    """Cold vs warm-started vs cached ``RuntimeScheduler.step``."""
    # Cold: every step runs the full solve from scratch.
    cold_sched, cold_cluster, now = _build_scheduler(
        enable_cache=False, warm_start=False
    )
    cold_s = _time_best_of(lambda: cold_sched.step(now, cold_cluster), repeats)
    cold_result, _ = cold_sched.step(now, cold_cluster)

    # Warm: the previous period's allocation seeds the solver's bounds.
    warm_sched, warm_cluster, now = _build_scheduler(
        enable_cache=False, warm_start=True
    )
    warm_sched.step(now, warm_cluster)  # seed history
    warm_s = _time_best_of(lambda: warm_sched.step(now, warm_cluster), repeats)
    warm_result, _ = warm_sched.step(now, warm_cluster)

    # Cached: identical demand at the same instant → exact memoized hit.
    # A hit costs ~0.1 ms, small enough that scheduler jitter dominates a
    # single timing — take many more repeats to keep the gated metric
    # stable across runs (still sub-second total).
    cached_sched, cached_cluster, now = _build_scheduler(
        enable_cache=True, warm_start=True
    )
    cached_sched.step(now, cached_cluster)  # miss + store
    cached_s = _time_best_of(
        lambda: cached_sched.step(now, cached_cluster), max(repeats * 20, 50)
    )
    cached_result, _ = cached_sched.step(now, cached_cluster)

    assert abs(cold_result.objective - warm_result.objective) < 1e-6
    assert abs(cold_result.objective - cached_result.objective) < 1e-6
    assert cached_result.stats.get("cache_hit"), "expected an exact cache hit"
    return {
        "workload": f"table2({TABLE2_GPUS} gpus, {TABLE2_RUNTIMES} runtimes)",
        "solver": cold_result.solver,
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm_s * 1e3,
        "cached_ms": cached_s * 1e3,
        "warm_speedup": cold_s / warm_s,
        "cached_speedup": cold_s / cached_s,
        "warm_started": bool(warm_result.stats.get("warm_started")),
        "cache": cached_sched.cache_stats(),
    }


def bench_dispatch(
    num_requests: int = 20_000, seed: int = 7, passes: int = 5
) -> dict:
    """Algorithm 1 dispatch + completion on a populated MLQ, ns/request.

    Timed as best-of-``passes`` over the same request stream: a single
    pass is short enough (a few ms) that scheduler jitter swings it by
    30%+, which would flap the CI regression gate.
    """
    model = get_model("bert-large")
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(
            model.max_length, TABLE2_RUNTIMES
        ),
    )
    cluster = ClusterState.bootstrap(
        registry, even_allocation(TABLE2_RUNTIMES, TABLE2_GPUS)
    )
    mlq = MultiLevelQueue.from_cluster(cluster)
    scheduler = ArloRequestScheduler(registry=registry, mlq=mlq)
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, model.max_length + 1, size=num_requests)
    # Steady state: each dispatched request completes before the next
    # arrives, so the heaps stay warm without unbounded queue growth.
    warmup = min(1000, num_requests // 10)
    for length in lengths[:warmup]:
        decision, _, _ = scheduler.dispatch(0.0, int(length))
        decision.instance.complete()
        mlq.refresh(decision.instance)
    timed = num_requests - warmup
    elapsed = math.inf
    for _ in range(passes):
        t0 = time.perf_counter()
        for length in lengths[warmup:]:
            decision, _, _ = scheduler.dispatch(0.0, int(length))
            decision.instance.complete()
            mlq.refresh(decision.instance)
        elapsed = min(elapsed, time.perf_counter() - t0)
    return {
        "requests": timed,
        "passes": passes,
        "ns_per_request": elapsed / timed * 1e9,
        "requests_per_s": timed / elapsed,
        "stats": scheduler.stats(),
    }


def bench_simulation(
    duration_s: float = 20.0,
    rate_per_s: float = 200.0,
    passes: int = 3,
    observability: "ObservabilityConfig | None" = None,
) -> dict:
    """Event-loop simulation throughput (events/second).

    Measurement basis: ``run_simulation`` only — the trace is generated
    once and the scheme is rebuilt *outside* the timed region each pass
    (the run mutates it), so the number gates the data plane rather
    than trace generation or the allocation solve. Setup cost is
    reported separately. Best-of-``passes`` because a single ~20 ms
    loop swings 30 %+ under scheduler jitter.

    ``observability`` attaches an :class:`ObservabilityConfig` to the
    run — the ``simulation_tracing_off`` variant uses it to gate the
    disabled-tracing overhead contract.
    """
    spec = ExperimentSpec(
        name="perf-e2e",
        model="bert-large",
        num_gpus=8,
        rate_per_s=rate_per_s,
        duration_s=duration_s,
        schemes=("arlo",),
        scheduler_period_s=5.0,
    )
    trace = spec.make_trace()
    best = math.inf
    setup_best = math.inf
    events = 0
    for _ in range(passes):
        t0 = time.perf_counter()
        scheme = spec.make_scheme("arlo", trace)
        config = spec.sim_config()
        if observability is not None:
            config = dataclasses.replace(config, observability=observability)
        t1 = time.perf_counter()
        result = run_simulation(scheme, trace, config)
        t2 = time.perf_counter()
        setup_best = min(setup_best, t1 - t0)
        best = min(best, t2 - t1)
        events = result.events_processed
    return {
        "basis": "run_simulation only, scheme rebuilt per pass, "
                 f"best of {passes}",
        "sim_duration_s": duration_s,
        "rate_per_s": rate_per_s,
        "events": events,
        "wall_s": best,
        "setup_ms": setup_best * 1e3,
        "events_per_s": events / best,
    }


def _scale_spec(
    num_requests: int, data_plane: str = "pooled"
) -> ExperimentSpec:
    """The ≥1M-request scale workload shared by the serial and spatial
    scale benchmarks: perf-e2e scaled to hold per-GPU load constant,
    scheduler period stretched so the control plane fires a handful of
    times rather than dominating the run."""
    rate_per_s = 2_000.0
    duration_s = num_requests / rate_per_s
    return ExperimentSpec(
        name="perf-scale",
        model="bert-large",
        num_gpus=80,
        rate_per_s=rate_per_s,
        duration_s=duration_s,
        schemes=("arlo",),
        scheduler_period_s=max(duration_s / 8.0, 5.0),
        data_plane=data_plane,
    )


def bench_simulation_scale(
    num_requests: int = 1_000_000, data_plane: str = "pooled"
) -> dict:
    """Sustained throughput at scale: a single ≥1M-request serving run.

    One pass (the loop is seconds long, so best-of-N buys little), same
    ``run_simulation``-only basis as :func:`bench_simulation`.
    """
    spec = _scale_spec(num_requests, data_plane)
    t0 = time.perf_counter()
    trace = spec.make_trace()
    scheme = spec.make_scheme("arlo", trace)
    config = spec.sim_config()
    t1 = time.perf_counter()
    result = run_simulation(scheme, trace, config)
    elapsed = time.perf_counter() - t1
    return {
        "basis": "run_simulation only, single pass",
        "data_plane": data_plane,
        "requests": len(trace),
        "completed": result.stats.count,
        "sim_duration_s": spec.duration_s,
        "rate_per_s": spec.rate_per_s,
        "events": result.events_processed,
        "wall_s": elapsed,
        "setup_s": t1 - t0,
        "events_per_s": result.events_processed / elapsed,
    }


def bench_simulation_scale_spatial(
    num_requests: int = 1_000_000,
    workers: int = 4,
    data_plane: str = "pooled",
    passes: int = 2,
) -> dict:
    """Scale workload as ``workers`` request-partition space shards.

    Each shard is an independent event loop over ``1/workers`` of the
    arrivals and GPUs. The gated metric is total events divided by the
    **slowest shard's** ``run_simulation`` wall — the throughput the
    sharded data plane delivers once each shard owns a core, measured
    without pool contention. On machines with fewer cores than shards
    the shards run sequentially inline (a process pool would just
    time-slice one core and bill the contention to the shard walls);
    with enough cores they run in the :func:`run_experiments` pool.
    ``wall_total_s`` records the actual end-to-end wall either way.

    Best-of-``passes`` on the max shard wall: the max of N single-pass
    walls is biased upward by scheduler jitter (one GC pause in one
    shard poisons the whole metric), so the pass with the smallest
    slowest-shard wall is the low-noise estimator — same reasoning as
    ``_time_best_of``.
    """
    spec = _scale_spec(num_requests, data_plane)
    cpu_count = os.cpu_count() or 1
    pool_workers = workers if cpu_count >= workers else 1
    if pool_workers == 1:
        print(
            f"WARNING: only {cpu_count} cores for {workers} shards — "
            "spatial shards run sequentially inline; events/s is NOT "
            "comparable to a multi-core pool run (the baseline gate "
            "skips this metric when execution modes differ)",
            file=sys.stderr,
        )
    t0 = time.perf_counter()
    merged = None
    for _ in range(passes):
        candidate = run_spatial(spec, "arlo", workers, workers=pool_workers)
        if merged is None or (
            max(candidate.shard_walls) < max(merged.shard_walls)
        ):
            merged = candidate
    wall_total = time.perf_counter() - t0
    max_wall = max(merged.shard_walls)
    return {
        "basis": "total events / max per-shard run_simulation wall, "
                 f"best of {passes} passes (per-shard walls measured "
                 "inside the shard runs; assumes one core per shard)",
        "passes": passes,
        "data_plane": data_plane,
        "space_partition": spec.space_partition,
        "shards": workers,
        "cpu_count": cpu_count,
        "execution": "pool" if pool_workers > 1 else "sequential-inline",
        "requests": num_requests,
        "completed": merged.stats.count,
        "events": merged.events_processed,
        "shard_walls_s": merged.shard_walls,
        "max_shard_wall_s": max_wall,
        "wall_total_s": wall_total,
        "events_per_s": merged.events_processed / max_wall,
    }


def bench_generative(
    num_requests: int = 100_000,
    rate_per_s: float = 1_000.0,
    num_gpus: int = 64,
    passes: int = 2,
) -> dict:
    """Generative data plane throughput: prefill + continuous-batched
    decode, reported as simulator events/second.

    Same ``run_simulation``-only basis as :func:`bench_simulation`
    (trace generated once, scheme rebuilt outside the timed region).
    The event count includes ``DECODE_STEP`` events, so the metric
    gates the decode loop's step coalescing and ``DecodeTask`` pooling
    — a regression in either shows up directly as fewer events/s.
    """
    spec = ExperimentSpec(
        name="perf-generative",
        model="bert-large",
        num_gpus=num_gpus,
        rate_per_s=rate_per_s,
        duration_s=num_requests / rate_per_s,
        schemes=("arlo",),
        scheduler_period_s=max(num_requests / rate_per_s / 8.0, 5.0),
        generative=True,
    )
    trace = spec.make_trace()
    best = math.inf
    result = None
    for _ in range(passes):
        scheme = spec.make_scheme("arlo", trace)
        config = spec.sim_config()
        t0 = time.perf_counter()
        candidate = run_simulation(scheme, trace, config)
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, result = elapsed, candidate
    return {
        "basis": "run_simulation only, scheme rebuilt per pass, "
                 f"best of {passes}",
        "requests": len(trace),
        "completed": result.stats.count,
        "num_gpus": num_gpus,
        "rate_per_s": rate_per_s,
        "decode_steps": result.control_stats["decode_steps"],
        "step_events": result.control_stats["step_events"],
        "batch_joins": result.control_stats["batch_joins"],
        "ttft_p98_ms": result.dispatch_stats.get("ttft_p98_ms"),
        "events": result.events_processed,
        "wall_s": best,
        "events_per_s": result.events_processed / best,
        "decode_steps_per_s": (
            result.control_stats["decode_steps"] / best
        ),
    }


def bench_disagg(
    num_requests: int = 100_000,
    rate_per_s: float = 1_000.0,
    num_gpus: int = 64,
    passes: int = 2,
) -> dict:
    """Disaggregated prefill/decode pools vs the co-located loop.

    The same generative workload runs twice on the same cluster size:
    once co-located (decode instances fold prefills into their next
    step) and once disaggregated (prefill pool → KV transfer → decode
    pool, with adaptive rebalancing). The gated metric is the disagg
    run's events/s — it covers PREFILL_DONE and KV_TRANSFER handling,
    the second Algorithm-1 scheduler, and the per-period split solve.
    The comparison block is the paper-facing artifact: TTFT vs TPOT
    across the two architectures on an identical token budget.
    """
    spec_kwargs = dict(
        model="bert-large",
        num_gpus=num_gpus,
        rate_per_s=rate_per_s,
        duration_s=num_requests / rate_per_s,
        schemes=("arlo",),
        scheduler_period_s=max(num_requests / rate_per_s / 8.0, 5.0),
        generative=True,
    )
    colocated = ExperimentSpec(name="perf-disagg-colocated", **spec_kwargs)
    disagg = ExperimentSpec(name="perf-disagg", disagg=True, **spec_kwargs)
    trace = colocated.make_trace()

    def best_of(spec):
        best = math.inf
        result = None
        for _ in range(passes):
            scheme = spec.make_scheme("arlo", trace)
            config = spec.sim_config()
            t0 = time.perf_counter()
            candidate = run_simulation(scheme, trace, config)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best, result = elapsed, candidate
        return best, result

    co_wall, co = best_of(colocated)
    dis_wall, dis = best_of(disagg)
    return {
        "basis": "run_simulation only, scheme rebuilt per pass, "
                 f"best of {passes}; same trace both architectures",
        "requests": len(trace),
        "completed": dis.stats.count,
        "num_gpus": num_gpus,
        "rate_per_s": rate_per_s,
        "decode_steps": dis.control_stats["decode_steps"],
        "kv_transfers": dis.control_stats["kv_transfers"],
        "pool_flips": dis.control_stats["pool_flips"],
        "events": dis.events_processed,
        "wall_s": dis_wall,
        "events_per_s": dis.events_processed / dis_wall,
        "comparison": {
            "colocated": {
                "wall_s": co_wall,
                "events_per_s": co.events_processed / co_wall,
                "ttft_p98_ms": co.dispatch_stats.get("ttft_p98_ms"),
                "ttft_mean_ms": co.dispatch_stats.get("ttft_mean_ms"),
                "tpot_mean_ms": co.dispatch_stats.get("tpot_mean_ms"),
                "tpot_p98_ms": co.dispatch_stats.get("tpot_p98_ms"),
            },
            "disagg": {
                "wall_s": dis_wall,
                "events_per_s": dis.events_processed / dis_wall,
                "ttft_p98_ms": dis.dispatch_stats.get("ttft_p98_ms"),
                "ttft_mean_ms": dis.dispatch_stats.get("ttft_mean_ms"),
                "tpot_mean_ms": dis.dispatch_stats.get("tpot_mean_ms"),
                "tpot_p98_ms": dis.dispatch_stats.get("tpot_p98_ms"),
                "prefill_pool": dis.dispatch_stats.get("prefill_pool_size"),
                "decode_pool": dis.dispatch_stats.get("decode_pool_size"),
            },
        },
    }


def bench_control_anytime(
    periods: int = 120,
    num_gpus: int = 1000,
    num_runtimes: int = 8,
    deadline_ms: float = 50.0,
    rate_per_s: float = 2_000.0,
    seed: int = 11,
) -> dict:
    """Deadline-bounded solver ladder + forecast pre-solve at scale.

    A 1000-GPU Runtime Scheduler stepped through ``periods`` 1 s
    decision periods of *drifting* demand: the per-runtime traffic mix
    follows an AR(1) random walk in log-space, so consecutive periods
    are similar but never identical — exact cache hits are rare and
    the forecaster + tolerance lookup have to earn the boundary hits.
    ``cache_tolerance`` is 0.04 here (vs the 0.02 default): at bench
    drift levels the realized demand lands within 4 % relative L1 of
    the forecast essentially always, and the entry is re-checked for
    feasibility and re-scored on the live problem either way.

    Gated metrics: p99/max wall-clock per-period decide latency, the
    deadline-hit rate (acceptance: 1.0 — a feasible allocation within
    the deadline on *every* period), and the period-boundary cache-hit
    rate with forecasting on (acceptance: ≥ 0.7).
    """
    model = get_model("bert-large")
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(model.max_length, num_runtimes),
    )
    period_ms = 1 * SECOND
    config = RuntimeSchedulerConfig(
        period_ms=period_ms,
        enable_cache=True,
        warm_start=True,
        solver_ladder=True,
        solve_deadline_ms=deadline_ms,
        cache_tolerance=0.04,
        forecast=True,
        # Demand follows a random walk here, where heavier smoothing
        # only adds lag — a high alpha tracks the level with one-step
        # error close to the innovation size.
        forecast_alpha=0.7,
    )
    estimator = DemandEstimator(
        bins=LengthBins.from_registry(registry),
        slo_ms=model.slo_ms,
        window_ms=period_ms,
    )
    scheduler = RuntimeScheduler(
        registry=registry, estimator=estimator, config=config
    )
    cluster = ClusterState.bootstrap(
        registry, even_allocation(num_runtimes, num_gpus)
    )
    rng = np.random.default_rng(seed)
    # AR(1) drift on the log of the per-runtime mix: smooth but
    # persistent distribution shift, Twitter-diurnal in miniature.
    log_mix = rng.normal(0.0, 0.8, size=num_runtimes)
    per_period = rate_per_s * (period_ms / SECOND)
    max_lengths = np.array([p.max_length for p in registry], dtype=np.int64)
    t0 = time.perf_counter()
    for k in range(periods):
        log_mix = 0.97 * log_mix + rng.normal(0.0, 0.03, size=num_runtimes)
        mix = np.exp(log_mix)
        mix /= mix.sum()
        counts = np.maximum(1, (mix * per_period).astype(int))
        now_ms = (k + 1) * period_ms
        times, lengths = [], []
        for b, count in enumerate(counts):
            times.append(rng.uniform(now_ms - period_ms, now_ms, size=count))
            lengths.append(np.full(count, max_lengths[b], dtype=np.int64))
        order = np.argsort(np.concatenate(times), kind="stable")
        estimator.observe_batch(
            np.concatenate(times)[order], np.concatenate(lengths)[order]
        )
        result, _ = scheduler.step(now_ms, cluster)
        assert result.allocation.sum() == num_gpus
    wall_s = time.perf_counter() - t0
    stats = scheduler.anytime_stats()
    history = np.asarray(scheduler.solve_ms_history, dtype=np.float64)
    return {
        "workload": f"{num_gpus} gpus, {num_runtimes} runtimes, "
                    f"{periods} x {period_ms / SECOND:.0f}s periods, "
                    f"drifting mix @ {rate_per_s:.0f} req/s",
        "deadline_ms": deadline_ms,
        "cache_tolerance": config.cache_tolerance,
        "periods": stats["periods"],
        "solve_p99_ms": float(np.percentile(history, 99)),
        "solve_max_ms": float(history.max()),
        "solve_mean_ms": float(history.mean()),
        "deadline_hit_rate": stats["deadline_hit_rate"],
        "boundary_hit_rate": stats["boundary_hit_rate"],
        "exact_hits": stats["boundary_exact_hits"],
        "approx_hits": stats["boundary_approx_hits"],
        "forecast_hits": stats["boundary_forecast_hits"],
        "solves": stats["solves"],
        "presolves": stats["presolves"],
        "presolve_covered": stats["presolve_covered"],
        "forecast_mean_rel_error": stats["forecast"]["mean_rel_error"],
        "wall_s": wall_s,
    }


def _profiled(label: str, fn, top: int):
    """Run ``fn`` under cProfile, print its top-``top`` rows, return
    the result. ``top == 0`` runs ``fn`` plain (the measurement mode —
    profiling overhead would poison every timed number)."""
    if not top:
        return fn()
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    print(f"\n=== profile: {label} (top {top} by total time) ===")
    pstats.Stats(profiler).sort_stats("tottime").print_stats(top)
    return result


def run_benchmarks(
    quick: bool = False,
    workers: int = 4,
    data_plane: str = "pooled",
    profile_top: int = 0,
) -> dict:
    """All hot-path benchmarks as one JSON-ready payload."""
    scale_requests = 100_000 if quick else 1_000_000
    payload = {
        "schema": "bench_perf/1",
        "quick": quick,
        "python": platform.python_version(),
        "solve": _profiled(
            "solve", lambda: bench_solve(repeats=3 if quick else 7),
            profile_top,
        ),
        "dispatch": _profiled(
            "dispatch",
            lambda: bench_dispatch(num_requests=5_000 if quick else 20_000),
            profile_top,
        ),
        "simulation": _profiled(
            "simulation",
            lambda: bench_simulation(
                duration_s=8.0 if quick else 20.0,
                rate_per_s=150.0 if quick else 200.0,
                passes=3 if quick else 6,
            ),
            profile_top,
        ),
        # Same workload with an ObservabilityConfig attached but span
        # sampling off — gates the "near-zero overhead when disabled"
        # contract of the tracing layer (5% tolerance, not the default).
        "simulation_tracing_off": _profiled(
            "simulation_tracing_off",
            lambda: bench_simulation(
                duration_s=8.0 if quick else 20.0,
                rate_per_s=150.0 if quick else 200.0,
                passes=3 if quick else 6,
                observability=ObservabilityConfig(
                    sample_rate=0.0, timeline=False
                ),
            ),
            profile_top,
        ),
        "simulation_scale": _profiled(
            "simulation_scale",
            lambda: bench_simulation_scale(
                num_requests=scale_requests, data_plane=data_plane,
            ),
            profile_top,
        ),
        "simulation_scale_spatial": _profiled(
            "simulation_scale_spatial",
            lambda: bench_simulation_scale_spatial(
                num_requests=scale_requests,
                workers=workers,
                data_plane=data_plane,
            ),
            profile_top,
        ),
        "generative": _profiled(
            "generative",
            lambda: bench_generative(
                num_requests=20_000 if quick else 100_000,
            ),
            profile_top,
        ),
        "disagg": _profiled(
            "disagg",
            lambda: bench_disagg(
                num_requests=20_000 if quick else 100_000,
            ),
            profile_top,
        ),
        "control_anytime": _profiled(
            "control_anytime",
            lambda: bench_control_anytime(periods=60 if quick else 120),
            profile_top,
        ),
    }
    # Disabled-tracing overhead, same machine and workload (>1 means
    # the observability plumbing slowed the plain event loop down).
    payload["simulation_tracing_off"]["overhead_vs_plain"] = (
        payload["simulation"]["events_per_s"]
        / payload["simulation_tracing_off"]["events_per_s"]
    )
    return payload


# ---------------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------------

#: (json path, direction, tolerance) — 'lower' means lower-is-better;
#: tolerance None inherits the CLI ``--max-regression`` value, a float
#: pins the metric to its own (tighter) budget regardless of the CLI.
_GATED_METRICS = (
    (("solve", "cold_ms"), "lower", None),
    (("solve", "cached_ms"), "lower", None),
    (("dispatch", "ns_per_request"), "lower", None),
    (("simulation", "events_per_s"), "higher", None),
    (("simulation_tracing_off", "events_per_s"), "higher", None),
    # Observability contract: the disabled-tracing overhead ratio
    # (plain events/s over tracing-off events/s, measured in the same
    # run so machine speed cancels) may not regress beyond 5% vs the
    # committed baseline.
    (("simulation_tracing_off", "overhead_vs_plain"), "lower", 0.05),
    (("simulation_scale", "events_per_s"), "higher", None),
    (("simulation_scale_spatial", "events_per_s"), "higher", None),
    # Generative data plane: prefill + continuous-batched decode. The
    # event count includes DECODE_STEP events, so step coalescing and
    # DecodeTask pooling regressions both surface here.
    (("generative", "events_per_s"), "higher", None),
    # Disaggregated pools: PREFILL_DONE/KV_TRANSFER handling, the
    # second Algorithm-1 scheduler, and the per-period split solve.
    (("disagg", "events_per_s"), "higher", None),
    # p99 decide latency is a coarse canary, not the guarantee: most
    # boundaries are sub-ms cache hits, so the p99 lands on one of a
    # handful of real solves (3-6 ms, run-to-run jitter near 2x). The
    # wide tolerance still catches a drift toward the 50 ms deadline;
    # the zero-tolerance deadline_hit_rate below is the hard contract.
    (("control_anytime", "solve_p99_ms"), "lower", 2.0),
    # Hard acceptance: a feasible allocation within the deadline on
    # EVERY period — no tolerance, any miss vs a 1.0 baseline fails.
    (("control_anytime", "deadline_hit_rate"), "higher", 0.0),
    (("control_anytime", "boundary_hit_rate"), "higher", None),
)


def _dig(payload: dict, path: tuple[str, ...]) -> float | None:
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node)


def _dig_str(payload: dict, path: tuple[str, ...]) -> str | None:
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return str(node)


def compare_to_baseline(
    current: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Regressions beyond tolerance, as human-readable failure lines.

    A metric regresses when it is worse than the committed baseline by
    more than ``max_regression`` (fractional — 0.25 means 25 %).
    Metrics absent from either side are skipped (schema evolution must
    not hard-fail the gate).
    """
    failures = []
    cur_exec = _dig_str(current, ("simulation_scale_spatial", "execution"))
    base_exec = _dig_str(baseline, ("simulation_scale_spatial", "execution"))
    for path, direction, tolerance in _GATED_METRICS:
        if path[0] == "simulation_scale_spatial" and cur_exec != base_exec:
            # Pool (one core per shard) and sequential-inline (one core
            # total) walls measure different things; comparing them
            # would flag a phantom 4x regression on a smaller machine.
            continue
        cur, base = _dig(current, path), _dig(baseline, path)
        if cur is None or base is None or base <= 0:
            continue
        allowed = max_regression if tolerance is None else tolerance
        ratio = cur / base if direction == "lower" else base / cur
        if ratio > 1.0 + allowed:
            failures.append(
                f"{'.'.join(path)}: {cur:.4g} vs baseline {base:.4g} "
                f"({(ratio - 1.0) * 100:.1f}% worse, "
                f"tolerance {allowed * 100:.0f}%)"
            )
    return failures


# ---------------------------------------------------------------------------
# pytest entry points (-m perf)
# ---------------------------------------------------------------------------

@pytest.mark.perf
def test_warm_cached_step_speedup():
    """Acceptance: warm+cached step ≥3× faster than cold (Table 2)."""
    solve = bench_solve(repeats=3)
    assert solve["cached_speedup"] >= SPEEDUP_FLOOR, solve
    # Warm starts must never slow the solve down materially even when
    # they fail to help (feasibility validation is cheap).
    assert solve["warm_ms"] <= solve["cold_ms"] * 1.5, solve


@pytest.mark.perf
def test_tracing_disabled_overhead():
    """Acceptance: tracing constructed-but-disabled costs ≤5 % events/s
    vs the plain loop, measured back-to-back on this machine."""
    plain = bench_simulation(duration_s=8.0, rate_per_s=150.0, passes=4)
    off = bench_simulation(
        duration_s=8.0, rate_per_s=150.0, passes=4,
        observability=ObservabilityConfig(sample_rate=0.0, timeline=False),
    )
    overhead = plain["events_per_s"] / off["events_per_s"]
    assert overhead <= 1.05, (
        f"tracing-disabled run {overhead:.3f}x slower than plain "
        f"({off['events_per_s']:.0f} vs {plain['events_per_s']:.0f} ev/s)"
    )


@pytest.mark.perf
def test_anytime_deadline_and_boundary_hits():
    """Acceptance: 1000-GPU / 1 s-period ladder holds a feasible
    allocation within the 50 ms deadline on EVERY period, and the
    forecaster covers ≥70 % of period boundaries from cache."""
    result = bench_control_anytime(periods=60)
    assert result["deadline_hit_rate"] == 1.0, result
    assert result["boundary_hit_rate"] >= 0.7, result


@pytest.mark.perf
def test_cached_solve_objective_matches_cold():
    solve = bench_solve(repeats=1)
    # bench_solve asserts objective equality internally; reaching here
    # with a hit recorded is the contract.
    assert solve["cache"]["hits"] >= 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced repeats/sizes (CI smoke)")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON (default {DEFAULT_OUTPUT})")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="committed BENCH_perf.json to gate against")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fractional tolerance per gated metric")
    parser.add_argument("--workers", type=int, default=4,
                        help="space-shard count for the spatial scale "
                             "benchmark (default 4)")
    parser.add_argument("--data-plane", choices=("pooled", "columnar"),
                        default="pooled",
                        help="event representation for the scale benchmarks")
    parser.add_argument("--profile", type=int, nargs="?", const=15, default=0,
                        metavar="N",
                        help="print a per-section cProfile top-N (default 15) "
                             "— profiling overhead poisons the timings, so "
                             "do not combine with --baseline gating")
    args = parser.parse_args(argv)
    if args.profile and args.baseline is not None:
        parser.error("--profile distorts timings; drop --baseline")

    payload = run_benchmarks(
        quick=args.quick,
        workers=args.workers,
        data_plane=args.data_plane,
        profile_top=args.profile,
    )
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {args.output}")

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        failures = compare_to_baseline(payload, baseline, args.max_regression)
        if failures:
            print("\nPERF REGRESSION:")
            for line in failures:
                print(f"  - {line}")
            return 1
        print(f"\nno regression beyond {args.max_regression:.0%} "
              f"vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
