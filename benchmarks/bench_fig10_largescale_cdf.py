"""Fig. 10 — large-scale simulation, Twitter-Bursty.

Paper values: Arlo reduces mean latency by 70.3 %/98.1 % vs ST,
24.1 %/30.7 % vs DT and 31.3 %/41.7 % vs INFaaS for the BERT-Base
(8k req/s, 90 GPUs) and BERT-Large (300 GPUs) streams; tail reductions
up to 98.4 %/26.0 %/29.3 %.

Default scale is 0.1 (9/30 GPUs at identical per-GPU load); set
REPRO_BENCH_SCALE=1.0 for the full-size clusters.
"""

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import fig10


def test_fig10_large_scale(benchmark, record):
    data = run_once(
        benchmark, fig10,
        scale=bench_scale(0.1), duration_s=bench_duration(30.0),
    )
    record("fig10_largescale_cdf", data)
    for scenario, rows in data.items():
        by_name = {r["scheme"]: r for r in rows}
        arlo = by_name["arlo"]
        # Arlo wins the mean against every baseline; bursty ST melts.
        for other in ("st", "dt", "infaas"):
            assert arlo["mean_ms"] < by_name[other]["mean_ms"], scenario
        # Tail: clearly ahead of ST and INFaaS; DT's tail can be close
        # at light utilisation (statistical multiplexing of one big
        # pool), so only a generous bound applies there.
        assert arlo["p98_ms"] < by_name["st"]["p98_ms"], scenario
        assert arlo["p98_ms"] < by_name["infaas"]["p98_ms"] * 1.3, scenario
        assert arlo["p98_ms"] < by_name["dt"]["p98_ms"] * 2.5, scenario
        # INFaaS underperforms DT on the mean (paper §5.2.2).
        assert by_name["dt"]["mean_ms"] < by_name["infaas"]["mean_ms"], scenario
        assert by_name["st"]["arlo_mean_reduction_%"] > 50, scenario
        # BERT-Large under burst saturation: ST's reduction approaches
        # the paper's 98%.
        if scenario == "fig10b":
            assert by_name["st"]["arlo_mean_reduction_%"] > 80, scenario
