"""Fig. 6 — testbed-scale latency comparison, Twitter-Stable, 10 GPUs.

Paper values (mean-latency reductions by Arlo): 70.3 %/66.7 % vs ST,
23.7 %/29.2 % vs DT, 24.9 %/39.3 % vs INFaaS for the BERT-Base and
BERT-Large streams; tail reductions up to 89.4 %/25.9 %/40.1 %.

The ordering Arlo < DT < INFaaS ≤ ST and the reduction bands are the
reproduced shape. (Fig. 6b uses the equivalent-pressure 700 req/s —
see EXPERIMENTS.md.)
"""

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import fig6


def test_fig6_testbed_latency(benchmark, record):
    data = run_once(
        benchmark, fig6,
        scale=bench_scale(1.0), duration_s=bench_duration(45.0),
    )
    record("fig06_testbed_cdf", data)
    for scenario, rows in data.items():
        by_name = {r["scheme"]: r for r in rows}
        arlo, st = by_name["arlo"], by_name["st"]
        dt, infaas = by_name["dt"], by_name["infaas"]
        # Arlo wins on mean latency against every baseline.
        assert arlo["mean_ms"] < dt["mean_ms"], scenario
        assert arlo["mean_ms"] < infaas["mean_ms"], scenario
        assert arlo["mean_ms"] < st["mean_ms"], scenario
        # DT beats full-padding ST.
        assert dt["mean_ms"] < st["mean_ms"], scenario
        # Reductions land in a generous band around the paper's numbers.
        assert 30 <= st["arlo_mean_reduction_%"] <= 90, scenario
        assert 10 <= dt["arlo_mean_reduction_%"] <= 60, scenario
        assert arlo["slo_violation_%"] < 1.0, scenario
