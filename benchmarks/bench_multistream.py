"""Extension — §6 multi-stream pool sharing.

Not a paper figure: §6 sketches "a dedicated Arlo for each stream and
resource sharing among them" as future work. This bench co-simulates
two streams with anti-correlated load surges over one pool and checks
that pool sharing beats static halves: the surge-hit stream's mean
latency improves while the quiet stream keeps meeting its SLO.
"""

import numpy as np

from benchmarks.conftest import bench_scale, run_once
from repro.baselines.schemes import build_scheme
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.multistream import MultiStreamConfig, StreamInput, run_multistream
from repro.sim.simulation import run_simulation
from repro.units import seconds
from repro.workload.arrivals import PoissonArrivals, RateProfile
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.lengths import LogNormalLengths

DURATION_S = 50.0


def surging_trace(rate: float, seed: int, surge_first: bool):
    """One 15 s surge per stream, separated by a calm buffer long
    enough for the coordinator to rebalance between them."""
    surge, calm = seconds(15), seconds(35)
    segments = ((surge, 2.4), (calm, 0.25)) if surge_first else \
        ((calm, 0.25), (surge, 2.4))
    lengths = LogNormalLengths.from_quantiles(86, 295, max_length=512)
    return generate_trace(
        WorkloadSpec(
            lengths=lengths,
            arrivals=RateProfile(base=PoissonArrivals(), segments=segments),
            rate_per_s=rate, duration_ms=seconds(DURATION_S), seed=seed,
        )
    )


def _run(scale: float):
    gpus = max(3, int(round(5 * scale)))
    rate = 850 * scale
    rt_cfg = RuntimeSchedulerConfig(period_ms=seconds(6))

    def make_stream(name, seed, surge_first):
        trace = surging_trace(rate, seed, surge_first)
        scheme = build_scheme(
            "arlo", "bert-base", gpus,
            trace_hint=trace.slice_time(0, seconds(4)),
            runtime_scheduler_config=rt_cfg,
        )
        return StreamInput(name=name, scheme=scheme, trace=trace), trace

    (s_a, trace_a), (s_b, trace_b) = (
        make_stream("a", 71, True), make_stream("b", 72, False)
    )
    shared = run_multistream(
        [s_a, s_b],
        MultiStreamConfig(coordinator_period_ms=seconds(5), headroom=1.4),
    )

    # Baseline: the same streams on isolated static halves.
    isolated = {}
    for name, trace, seed in (("a", trace_a, 71), ("b", trace_b, 72)):
        scheme = build_scheme(
            "arlo", "bert-base", gpus,
            trace_hint=trace.slice_time(0, seconds(4)),
            runtime_scheduler_config=rt_cfg,
        )
        isolated[name] = run_simulation(scheme, trace)

    return {
        "shared": {
            name: {"mean_ms": sr.stats.mean_ms, "p98_ms": sr.stats.p98_ms,
                   "transfers_in": sr.transfers_in}
            for name, sr in shared.streams.items()
        },
        "isolated": {
            name: {"mean_ms": res.mean_ms, "p98_ms": res.p98_ms}
            for name, res in isolated.items()
        },
    }


def test_multistream_sharing_beats_static_split(benchmark, record):
    data = run_once(benchmark, _run, bench_scale(1.0))
    record("multistream_sharing", data)
    shared_mean = np.mean([d["mean_ms"] for d in data["shared"].values()])
    isolated_mean = np.mean([d["mean_ms"] for d in data["isolated"].values()])
    # Pool sharing must not lose overall, and GPUs actually moved.
    assert shared_mean <= 1.05 * isolated_mean
    assert sum(d["transfers_in"] for d in data["shared"].values()) > 0
