"""Fig. 9 — Request Scheduler dispatch overhead at scale.

Paper values: with 12 runtimes, 200–1200 emulated instances and bursts
of 400–2400 concurrent requests, dispatching a burst takes ≤ ~0.737 ms
(C++); larger peek limits L cost slightly more; throughput comfortably
exceeds 150k requests/s.

We measure the same quantity for the Python implementation: per-request
dispatch stays in the tens of microseconds, so the scheduler is not the
bottleneck of a simulated cluster either. The shape assertions mirror
the paper's: near-linear in the burst size, mild growth with L.
"""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler, RequestSchedulerConfig
from repro.runtimes.models import bert_large
from repro.runtimes.registry import build_polymorph_set
from repro.runtimes.staircase import polymorph_lengths_for_count

NUM_RUNTIMES = 12


def build_scheduler(num_instances: int, peek_levels: int):
    model = bert_large()
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(model.max_length, NUM_RUNTIMES),
    )
    per_level, extra = divmod(num_instances, NUM_RUNTIMES)
    alloc = [per_level] * NUM_RUNTIMES
    alloc[-1] += extra
    state = ClusterState.bootstrap(registry, alloc)
    mlq = MultiLevelQueue.from_cluster(state)
    return ArloRequestScheduler(
        registry=registry, mlq=mlq,
        config=RequestSchedulerConfig(max_peek_levels=peek_levels),
    )


def burst_lengths(count: int, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(1, 513, size=count)


@pytest.mark.parametrize("instances,burst", [(200, 400), (600, 1200),
                                             (1200, 2400)])
def test_fig9_dispatch_burst(benchmark, instances, burst):
    scheduler = build_scheduler(instances, peek_levels=6)
    lengths = burst_lengths(burst)

    def dispatch_burst():
        for ln in lengths:
            scheduler.dispatch(0.0, int(ln))

    benchmark.pedantic(dispatch_burst, rounds=3, iterations=1,
                       warmup_rounds=1)
    per_request_us = benchmark.stats["mean"] / burst * 1e6
    # Python target: well under 1 ms per dispatch (paper's C++: ~0.3 µs).
    assert per_request_us < 1000


def _peek_level_sweep():
    import time

    rows = []
    for peek in (2, 6, 12):
        scheduler = build_scheduler(600, peek_levels=peek)
        lengths = burst_lengths(1200)
        start = time.perf_counter()
        for ln in lengths:
            scheduler.dispatch(0.0, int(ln))
        elapsed = time.perf_counter() - start
        rows.append({"L": peek, "burst_ms": elapsed * 1e3,
                     "per_request_us": elapsed / 1200 * 1e6})
    return rows


def test_fig9_larger_peek_level_costs_slightly_more(benchmark, record):
    rows = benchmark.pedantic(_peek_level_sweep, rounds=1, iterations=1)
    record("fig09_dispatch_overhead", rows)
    # Mild growth with L: the largest peek limit costs at most a few
    # times the smallest, never an order of magnitude.
    assert rows[-1]["burst_ms"] < 10 * rows[0]["burst_ms"]
