"""Fig. 12 — GPUs allocated to each runtime over the trace.

Paper shape: the Runtime Scheduler re-balances the eight runtimes every
period, tracking the drifting length distribution — allocations are
neither static nor uniform, and every snapshot sums to the cluster
size with the max-length runtime always present (Eq. 7).
"""

import numpy as np

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import fig12


def test_fig12_allocation_timeline(benchmark, record):
    data = run_once(
        benchmark, fig12,
        scale=bench_scale(1.0), duration_s=bench_duration(120.0),
    )
    record("fig12_allocation_timeline", data)
    allocs = np.asarray(data["allocations"])
    assert allocs.shape[0] >= 3  # several decision periods fired
    assert allocs.shape[1] == 8
    totals = allocs.sum(axis=1)
    assert np.all(totals == totals[0])  # Eq. 2 at every decision
    assert np.all(allocs[:, -1] >= 1)  # Eq. 7 at every decision
    # The allocation actually moves over time (the drift is tracked).
    assert np.any(np.diff(allocs, axis=0) != 0)
