"""Extension — are the headline reductions robust to the trace seed?

Replicates the Fig. 6b comparison across five random seeds (parallel
sweep) and checks that Arlo's mean-latency win over ST holds for every
replication, not just the benchmarked seed — the guard against a
lucky-seed reproduction.
"""

import numpy as np

from benchmarks.conftest import bench_scale, run_once
from repro.experiments.runner import ExperimentSpec
from repro.experiments.sweep import expand_grid, run_sweep


def _replicate(scale: float):
    base = ExperimentSpec(
        name="fig6b-seeds", model="bert-large", num_gpus=10,
        rate_per_s=700, duration_s=25.0, pattern="stable",
        schemes=("st", "arlo"), seed=0, warmup_s=2.0,
    ).scaled(scale)
    specs = expand_grid(base, seed=[11, 22, 33, 44, 55])
    results = run_sweep(specs, workers=1)
    rows = []
    for name, per_scheme in results.items():
        st, arlo = per_scheme["st"], per_scheme["arlo"]
        rows.append({
            "spec": name,
            "st_mean_ms": st["mean_ms"],
            "arlo_mean_ms": arlo["mean_ms"],
            "reduction_%": 100 * (1 - arlo["mean_ms"] / st["mean_ms"]),
        })
    return rows


def test_seed_robustness(benchmark, record):
    rows = run_once(benchmark, _replicate, bench_scale(1.0))
    record("seed_robustness", rows)
    reductions = np.array([r["reduction_%"] for r in rows])
    # Arlo wins on every seed, comfortably.
    assert np.all(reductions > 30)
    # The effect size is stable, not one lucky draw.
    assert reductions.std() < 20
    assert 45 <= reductions.mean() <= 85  # paper: 66.7 %
