"""Fig. 7 — mean latency vs request load, BERT-Base, 10 GPUs.

Paper shape: below ~1k req/s all schemes are close; as load rises, ST
deteriorates first and hardest (full padding shrinks its capacity),
while Arlo's curve stays lowest throughout.
"""

import numpy as np

from benchmarks.conftest import bench_duration, bench_scale, run_once
from repro.experiments.figures import fig7


def test_fig7_load_sweep(benchmark, record):
    data = run_once(
        benchmark, fig7,
        rates=(600, 1_000, 1_400, 1_800),
        scale=bench_scale(1.0), duration_s=bench_duration(15.0),
    )
    record("fig07_load_sweep", data)
    means = data["mean_ms"]
    st, arlo, dt = map(np.asarray, (means["st"], means["arlo"], means["dt"]))
    # Arlo lowest at every load point.
    assert np.all(arlo <= dt + 1e-9)
    assert np.all(arlo < st)
    # ST deteriorates fastest with load.
    assert st[-1] / st[0] > arlo[-1] / arlo[0]
    # Under high load the gap is pronounced (paper: "particularly
    # pronounced for ST ... elongated queuing").
    assert st[-1] > 2.0 * arlo[-1]
