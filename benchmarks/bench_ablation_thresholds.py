"""Extension ablation — Request Scheduler threshold parameters (λ, α, L).

Not a paper figure: the paper fixes λ=0.85, α=0.9, L=6 (§5 "Parameter
settings") without a sensitivity study. This bench sweeps the knobs on
a bursty trace and checks that the paper's defaults sit on the good
part of the curve: degenerate settings (λ→1 with α=1, i.e. demote
almost never conservatively... and L=1, never demote at all) must not
beat them meaningfully.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.core.request_scheduler import RequestSchedulerConfig
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.baselines.schemes import build_scheme
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def _sweep(scale: float):
    # Threshold knobs only matter once ideal-runtime queues approach the
    # congestion bound, so this runs at ~60 % utilisation with strong,
    # fast distribution drift.
    trace = generate_twitter_trace(
        rate_per_s=1_400 * scale, duration_ms=seconds(40), pattern="bursty",
        seed=81, drift_scale=0.20, drift_window_ms=seconds(10),
    )
    hint = trace.slice_time(0, seconds(5))
    gpus = max(2, int(round(10 * scale)))
    rows = []
    for lam, alpha, peek in [
        (0.85, 0.9, 6),   # paper defaults
        (0.5, 0.9, 6),    # eager demotion
        (0.99, 1.0, 6),   # almost never reject the ideal head
        (0.85, 0.5, 6),   # harsh decay: effectively no deep demotion
        (0.85, 0.9, 1),   # L=1: never look past the ideal runtime
    ]:
        scheme = build_scheme(
            "arlo", "bert-large", gpus, trace_hint=hint,
            request_scheduler_config=RequestSchedulerConfig(
                lam=lam, alpha=alpha, max_peek_levels=peek
            ),
            runtime_scheduler_config=RuntimeSchedulerConfig(
                period_ms=seconds(15)
            ),
        )
        res = run_simulation(scheme, trace,
                             SimulationConfig(warmup_ms=seconds(2)))
        rows.append({
            "lambda": lam, "alpha": alpha, "L": peek,
            "mean_ms": res.mean_ms, "p98_ms": res.p98_ms,
            "demotion_rate": res.dispatch_stats.get("demotion_rate", 0.0),
        })
    return rows


def test_threshold_ablation(benchmark, record):
    rows = run_once(benchmark, _sweep, bench_scale(1.0))
    record("ablation_thresholds", rows)
    default = rows[0]
    # The paper's defaults are never badly beaten by any degenerate
    # setting on this workload.
    for row in rows[1:]:
        assert default["mean_ms"] <= 1.25 * row["mean_ms"], row
    # Demotion actually occurs at the defaults on a bursty trace, and
    # the sweep explores genuinely different behaviours.
    assert default["demotion_rate"] > 0.0
    assert len({round(r["mean_ms"], 3) for r in rows}) > 1
