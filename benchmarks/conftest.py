"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure: it runs the
corresponding experiment once under ``pytest-benchmark`` timing,
prints the paper-style rows, and persists them as JSON under
``benchmarks/out/`` so results survive the terminal.

Scale: benchmarks default to reduced-scale runs (same per-GPU load,
fewer GPUs/requests) so the suite finishes in minutes. Set
``REPRO_BENCH_SCALE=1.0`` for full-size runs where applicable.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale(default: float) -> float:
    """Experiment scale factor, overridable via REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_duration(default: float) -> float:
    """Trace duration in seconds, overridable via REPRO_BENCH_DURATION."""
    return float(os.environ.get("REPRO_BENCH_DURATION", default))


@pytest.fixture
def record():
    """Persist + print one experiment's output rows."""

    def _record(name: str, payload: Any) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, default=str))
        print(f"\n=== {name} ===")
        print(json.dumps(payload, indent=2, default=str)[:4000])

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (simulations are deterministic and slow)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
