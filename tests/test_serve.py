"""ArloServer: the live-serving integration surface."""

import pytest

from repro.core.arlo import ArloConfig, ArloSystem
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.errors import AdmissionError, ConfigurationError
from repro.resilience.admission import AdmissionConfig, RejectionReason
from repro.serve import ArloServer, Ticket, VirtualClock, WallClock
from repro.units import seconds


def make_server(period_s=120.0, admission=None):
    arlo = ArloSystem.build(
        "bert-base", num_gpus=4,
        config=ArloConfig(
            num_gpus=4,
            runtime_scheduler=RuntimeSchedulerConfig(
                period_ms=seconds(period_s)
            ),
        ),
    )
    clock = VirtualClock()
    return ArloServer(arlo, clock, admission=admission), clock


def test_submit_returns_consistent_ticket():
    server, clock = make_server()
    ticket = server.submit(100)
    assert ticket.expected_finish_ms > 0
    assert ticket.runtime_max_length >= 100
    assert server.stats.in_flight == 1


def test_completions_settle_with_time():
    server, clock = make_server()
    t = server.submit(50)
    assert server.poll() == []  # nothing due yet
    clock.advance(t.expected_finish_ms + 0.001)
    done = server.poll()
    assert [d.request_id for d in done] == [t.request_id]
    assert server.stats.completed == 1
    assert server.stats.mean_latency_ms == pytest.approx(
        t.expected_latency_ms
    )


def test_fifo_backpressure_visible_in_tickets():
    server, clock = make_server()
    first = server.submit(500)
    second = server.submit(500)
    third = server.submit(500)
    # Same-length requests spread over instances or queue behind each
    # other; the last submitted never finishes before the first.
    assert third.expected_finish_ms >= first.expected_finish_ms


def test_drain_completes_everything():
    server, clock = make_server()
    for length in (10, 200, 400, 512):
        server.submit(length)
    remaining = server.drain()
    assert remaining == 0
    assert server.stats.completed == 4
    assert server.arlo.cluster.total_outstanding() == 0


def test_reschedule_fires_on_period():
    server, clock = make_server(period_s=5.0)
    for i in range(50):
        server.submit(80)
        clock.advance(200.0)  # 10 s total
        server.poll()
    assert server.stats.reschedules >= 1
    snap = server.snapshot()
    assert snap["completed"] == server.stats.completed


def test_demotion_reported():
    server, clock = make_server()
    # Saturate the ideal runtime's head so a later request demotes.
    demoted_seen = False
    for _ in range(200):
        ticket = server.submit(30)
        demoted_seen = demoted_seen or ticket.demoted
    assert server.stats.submitted == 200


def test_virtual_clock_validation():
    clock = VirtualClock()
    with pytest.raises(ConfigurationError):
        clock.advance(-1.0)


def test_wall_clock_advances():
    clock = WallClock()
    a = clock.now_ms()
    b = clock.now_ms()
    assert b >= a >= 0.0


def test_snapshot_shape():
    server, clock = make_server()
    server.submit(64)
    snap = server.snapshot()
    assert snap["in_flight"] == 1
    assert "allocation" in snap and "dispatch" in snap
    assert snap["shed"] == 0
    assert snap["solver_fallbacks"] == 0


def test_overlong_request_raises_typed_rejection():
    # Regression: this used to leak a raw CapacityError out of submit.
    server, clock = make_server()
    too_long = server.arlo.registry.max_length + 1
    with pytest.raises(AdmissionError) as excinfo:
        server.submit(too_long)
    rejection = excinfo.value.rejection
    assert rejection.reason is RejectionReason.UNSERVABLE_LENGTH
    assert rejection.length == too_long
    assert server.stats.shed == 1
    assert server.stats.submitted == 0
    assert server.snapshot()["shed_by_reason"] == {"unservable_length": 1}


def test_admission_sheds_on_deadline():
    server, clock = make_server(
        admission=AdmissionConfig(deadline_ms=1_000.0)
    )
    # Max-length requests have exactly one candidate level, so the
    # backlog cannot leak into shallower queues: hammering without
    # advancing the clock must eventually miss the deadline and shed.
    length = server.arlo.registry.max_length
    shed = 0
    for _ in range(3_000):
        try:
            server.submit(length)
        except AdmissionError as exc:
            assert exc.rejection.reason is RejectionReason.DEADLINE_UNMET
            assert exc.rejection.expected_wait_ms > 1_000.0
            shed += 1
    assert shed > 0
    assert server.stats.shed == shed
    assert server.stats.submitted == 3_000 - shed
    assert server.shed_counts["deadline_unmet"] == shed
    # Admitted work still completes normally.
    assert server.drain() == 0


def test_per_request_deadline_overrides_default():
    server, clock = make_server(
        admission=AdmissionConfig(deadline_ms=60_000.0)
    )
    with pytest.raises(AdmissionError):
        server.submit(300, deadline_ms=0.001)
    ticket = server.submit(300)  # default deadline is generous
    assert ticket.length == 300


def test_admission_recovers_after_drain():
    server, clock = make_server(
        admission=AdmissionConfig(deadline_ms=200.0)
    )
    length = server.arlo.registry.max_length
    for _ in range(5_000):
        try:
            server.submit(length)
        except AdmissionError:
            break
    else:
        pytest.fail("admission never shed under unbounded backlog")
    server.drain()
    # Backlog cleared: admission opens up again.
    assert server.submit(length).length == length
