"""Queueing predictions vs closed forms and vs the simulator."""

import numpy as np
import pytest

from repro.analysis.queueing import (
    md1_mean_latency_ms,
    md1_mean_wait_ms,
    predict_allocation,
    predict_uniform_scheme,
    saturation_rate_per_s,
)
from repro.baselines.schemes import build_scheme
from repro.errors import ConfigurationError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.sim.simulation import run_simulation
from repro.units import seconds
from repro.workload.generator import poisson_trace
from repro.workload.lengths import EmpiricalLengths, LogNormalLengths

REGISTRY = build_polymorph_set(bert_base())


def test_md1_closed_form():
    # c=1, ρ = 0.5: W(M/D/1) = ρ·s/(2(1−ρ)) = s/2.
    assert md1_mean_wait_ms(100.0, 5.0) == pytest.approx(2.5)
    assert md1_mean_latency_ms(100.0, 5.0) == pytest.approx(7.5)
    assert md1_mean_wait_ms(0.0, 5.0) == 0.0
    assert md1_mean_wait_ms(200.0, 5.0) == float("inf")  # ρ = 1
    with pytest.raises(ConfigurationError):
        md1_mean_wait_ms(-1.0, 5.0)
    with pytest.raises(ConfigurationError):
        md1_mean_wait_ms(1.0, 0.0)


def test_erlang_c_sanity():
    from repro.analysis.queueing import erlang_c

    # Single server: C(1, ρ) = ρ.
    assert erlang_c(1, 0.5) == pytest.approx(0.5)
    # Pooling lowers the waiting probability at equal per-server load.
    assert erlang_c(10, 5.0) < erlang_c(1, 0.5)
    assert erlang_c(2, 2.5) == 1.0  # overloaded
    assert erlang_c(4, 0.0) == 0.0
    with pytest.raises(ConfigurationError):
        erlang_c(0, 0.5)
    with pytest.raises(ConfigurationError):
        erlang_c(1, -0.1)


def test_pooled_servers_wait_less():
    # Same total load: 10 servers at ρ=0.5 each wait far less than 1.
    single = md1_mean_wait_ms(100.0, 5.0, servers=1)
    pooled = md1_mean_wait_ms(1_000.0, 5.0, servers=10)
    assert pooled < single / 5


def test_saturation_rate():
    assert saturation_rate_per_s(5.0, 1) == pytest.approx(200.0)
    assert saturation_rate_per_s(5.0, 10) == pytest.approx(2000.0)
    with pytest.raises(ConfigurationError):
        saturation_rate_per_s(0.0, 1)


def test_predict_allocation_validation():
    lengths = LogNormalLengths.from_quantiles(86, 295, max_length=512)
    with pytest.raises(ConfigurationError):
        predict_allocation(REGISTRY, np.array([1, 1]), lengths, 100.0)
    with pytest.raises(ConfigurationError):
        predict_allocation(REGISTRY, np.array([1] * 7 + [0]), lengths, 100.0)


def test_prediction_matches_simulator_fixed_length():
    """Deterministic single-length workload on ST: M/D/1 vs the DES."""
    model = bert_base()
    lengths = EmpiricalLengths(np.array([512]))
    rate, gpus = 800.0, 10  # ρ ≈ 0.45
    predicted = predict_uniform_scheme(model, gpus, lengths, rate)
    trace = poisson_trace(lengths, rate, seconds(40), seed=5)
    result = run_simulation(build_scheme("st", "bert-base", gpus), trace)
    assert result.mean_ms == pytest.approx(
        predicted.mean_latency_ms, rel=0.15
    )
    assert predicted.is_stable


def test_prediction_matches_simulator_polymorph():
    lengths = LogNormalLengths.from_quantiles(86, 295, max_length=512)
    allocation = np.array([2, 2, 1, 1, 1, 1, 1, 1])
    rate = 1_500.0
    predicted = predict_allocation(REGISTRY, allocation, lengths, rate)
    trace = poisson_trace(lengths, rate, seconds(30), seed=6)
    scheme = build_scheme("arlo-even", "bert-base", 10)
    # Rebuild with the exact allocation under ILB (the model's dispatch).
    from repro.baselines.dispatchers import IntraGroupLoadBalance
    from repro.cluster.state import ClusterState
    from repro.core.mlq import MultiLevelQueue
    from repro.baselines.schemes import Scheme

    cluster = ClusterState.bootstrap(REGISTRY, allocation)
    mlq = MultiLevelQueue.from_cluster(cluster)
    scheme = Scheme(
        name="ilb", model=bert_base(), registry=REGISTRY, cluster=cluster,
        mlq=mlq, dispatcher=IntraGroupLoadBalance(registry=REGISTRY, mlq=mlq),
    )
    result = run_simulation(scheme, trace)
    assert result.mean_ms == pytest.approx(predicted.mean_latency_ms, rel=0.25)


def test_dt_prediction_uses_service_variance():
    model = bert_base()
    lengths = LogNormalLengths.from_quantiles(86, 295, max_length=512)
    st_pred = predict_uniform_scheme(model, 10, lengths, 1_000.0)
    dt_pred = predict_uniform_scheme(model, 10, lengths, 1_000.0,
                                     dynamic=True)
    # DT's mean service is below full padding -> lower latency, lower util.
    assert dt_pred.mean_latency_ms < st_pred.mean_latency_ms
    assert dt_pred.utilization < st_pred.utilization


def test_saturation_predicts_instability():
    model = bert_base()
    lengths = EmpiricalLengths(np.array([512]))
    service = model.static_latency.compute_ms(512) + 0.8
    rate = saturation_rate_per_s(service, 2) * 1.05
    pred = predict_uniform_scheme(model, 2, lengths, rate)
    assert not pred.is_stable


def test_empty_level_traffic_cascades():
    lengths = EmpiricalLengths(np.array([30]))  # all traffic in bin 0
    allocation = np.array([0, 1, 0, 0, 0, 0, 0, 1])
    pred = predict_allocation(REGISTRY, allocation, lengths, 100.0)
    # bin-0 traffic is served by level 1 (the next populated runtime).
    assert pred.per_runtime_utilization[1] > 0
    assert pred.per_runtime_utilization[0] == 0
