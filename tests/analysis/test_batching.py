"""Dynamic-batching analysis (§6 future-work extension)."""

import pytest

from repro.analysis.batching import (
    BatchLatencyModel,
    best_batch_size,
    sweep_batch_sizes,
)
from repro.errors import ConfigurationError
from repro.runtimes.models import bert_base


@pytest.fixture(scope="module")
def model():
    return BatchLatencyModel(single=bert_base().static_latency)


def test_batching_sublinear_but_increasing(model):
    b1 = model.batch_ms(1, 128)
    b2 = model.batch_ms(2, 128)
    b4 = model.batch_ms(4, 128)
    assert b1 < b2 < b4
    assert b2 < 2 * b1  # sub-linear: batching amortises
    assert b4 < 4 * b1


def test_throughput_monotone_in_batch(model):
    tps = [model.throughput_per_s(b, 128) for b in (1, 2, 4, 8, 16)]
    assert tps == sorted(tps)
    # per-request time shrinks towards the overlap asymptote
    assert model.per_request_ms(32, 128) < model.per_request_ms(1, 128)


def test_batch_model_validation(model):
    with pytest.raises(ConfigurationError):
        BatchLatencyModel(single=bert_base().static_latency, overlap=1.0)
    with pytest.raises(ConfigurationError):
        BatchLatencyModel(single=bert_base().static_latency, max_batch=0)
    with pytest.raises(ConfigurationError):
        model.batch_ms(0, 128)
    with pytest.raises(ConfigurationError):
        model.batch_ms(33, 128)


def test_sweep_shapes(model):
    points = sweep_batch_sizes(model, length=128, rate_per_s=300.0,
                               slo_ms=150.0)
    assert len(points) == model.max_batch
    assert [p.batch for p in points] == list(range(1, 33))
    with pytest.raises(ConfigurationError):
        sweep_batch_sizes(model, 128, 0.0, 150.0)
    with pytest.raises(ConfigurationError):
        sweep_batch_sizes(model, 128, 100.0, 0.0)


def test_low_load_prefers_small_batches(model):
    # At a trickle, batch 1 already sustains the load — no reason to
    # make anyone wait for batch-mates.
    best = best_batch_size(model, length=128, rate_per_s=10.0, slo_ms=150.0)
    assert best.batch == 1


def test_high_load_prefers_larger_batches(model):
    # Batch 1 saturates (service ~2.1 ms -> ~480/s); the batcher must
    # grow the batch to gain throughput while meeting the SLO.
    best = best_batch_size(model, length=128, rate_per_s=700.0, slo_ms=150.0)
    assert best.batch > 1
    assert best.meets_slo
    assert best.throughput_per_s > 700.0


def test_overload_falls_back_to_min_latency(model):
    # No batch size sustains this rate on one instance: the advisor
    # returns the least-bad point instead of a feasible one.
    points = sweep_batch_sizes(model, 128, 50_000.0, 150.0)
    assert not any(p.meets_slo for p in points)
    best = best_batch_size(model, 128, 50_000.0, 150.0)
    assert best.mean_latency_ms == min(p.mean_latency_ms for p in points)
