"""FLOPs-waste accounting (§2.2 claims)."""

import numpy as np
import pytest

from repro.analysis.padding import (
    PaddingReport,
    dynamic_padding_report,
    polymorph_padding_report,
    uniform_padding_report,
)
from repro.errors import ConfigurationError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.workload.trace import Trace

REGISTRY = build_polymorph_set(bert_base())


def make_trace(lengths):
    return Trace(np.arange(len(lengths), dtype=float),
                 np.asarray(lengths))


def test_uniform_padding_arithmetic():
    trace = make_trace([25, 50, 100])
    report = uniform_padding_report(trace, 100, quadratic_ratio=0.0)
    assert report.total_tokens == 175
    assert report.padded_tokens == 75 + 50 + 0
    assert report.wasted_flops_fraction == pytest.approx(1 - 175 / 300)
    assert report.padded_token_fraction == pytest.approx(125 / 300)


def test_dynamic_has_zero_waste():
    trace = make_trace([25, 50, 100])
    report = dynamic_padding_report(trace)
    assert report.padded_tokens == 0
    assert report.wasted_flops_fraction == 0.0


def test_polymorph_between_uniform_and_dynamic():
    rng = np.random.default_rng(5)
    trace = make_trace(rng.integers(1, 513, size=2000))
    uniform = uniform_padding_report(trace, 512)
    poly = polymorph_padding_report(trace, REGISTRY)
    assert 0 < poly.wasted_flops_fraction < uniform.wasted_flops_fraction
    # Polymorph padding is bounded by one staircase step per request.
    assert poly.padded_tokens < 64 * len(trace)


def test_quadratic_term_increases_waste():
    trace = make_trace([10, 10, 10])
    linear = uniform_padding_report(trace, 512, quadratic_ratio=0.0)
    quad = uniform_padding_report(trace, 512, quadratic_ratio=0.01)
    assert quad.wasted_flops_fraction > linear.wasted_flops_fraction


def test_paper_80_percent_claim():
    """§2.2: one Twitter clip wastes ~80.6 % of FLOPs at max_length 125."""
    from repro.units import minutes
    from repro.workload.twitter import TwitterTraceConfig, generate_twitter_trace

    trace = generate_twitter_trace(
        TwitterTraceConfig(rate_per_s=300, duration_ms=minutes(5),
                           recalibrate_to_512=False, seed=2)
    )
    report = uniform_padding_report(trace, 125)
    assert report.wasted_flops_fraction == pytest.approx(0.806, abs=0.03)


def test_validation():
    with pytest.raises(ConfigurationError):
        uniform_padding_report(Trace(np.empty(0), np.empty(0, int)), 125)
    with pytest.raises(ConfigurationError):
        uniform_padding_report(make_trace([200]), 125)  # too long
    with pytest.raises(ConfigurationError):
        polymorph_padding_report(make_trace([600]), REGISTRY)
    with pytest.raises(ConfigurationError):
        dynamic_padding_report(Trace(np.empty(0), np.empty(0, int)))


def test_report_zero_division_guards():
    empty_exec = PaddingReport(requests=0, total_tokens=0, padded_tokens=0,
                               useful_flops=0.0, executed_flops=0.0)
    assert empty_exec.wasted_flops_fraction == 0.0
    assert empty_exec.padded_token_fraction == 0.0
