"""The documented public API surface stays importable and coherent."""

import numpy as np
import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_readme_quickstart_flow():
    arlo = repro.ArloSystem.build("bert-base", num_gpus=4)
    decision, start, finish = arlo.handle(now_ms=0.0, length=37)
    assert finish > start
    arlo.complete(decision.instance.instance_id)
    result, plan = arlo.reschedule(now_ms=120_000.0)
    assert result.allocation.sum() == 4


def test_readme_simulation_flow():
    trace = repro.generate_twitter_trace(rate_per_s=100, duration_ms=5_000)
    hint = trace.slice_time(0, 1_000)
    result = repro.run_simulation(
        repro.build_scheme("arlo", "bert-base", 3, trace_hint=hint), trace
    )
    assert result.stats.count == len(trace)


def test_model_zoo_exposed():
    assert set(repro.MODEL_ZOO) == {"bert-base", "bert-large", "dolly"}
    assert repro.bert_base().slo_ms == 150.0
    assert repro.bert_large().slo_ms == 450.0


def test_solve_allocation_exposed():
    problem = repro.AllocationProblem(
        num_gpus=3,
        demand=np.array([10.0, 5.0]),
        capacity=np.array([10, 5]),
        service_ms=np.array([1.0, 2.0]),
    )
    result = repro.solve_allocation(problem)
    assert result.allocation.sum() == 3
