"""Length distributions and arrival processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.units import SECOND, seconds
from repro.workload.arrivals import MMPPArrivals, PoissonArrivals, RateProfile
from repro.workload.lengths import (
    EmpiricalLengths,
    LogNormalLengths,
    fit_lognormal_quantiles,
)

RNG = lambda seed=0: np.random.default_rng(seed)


# --- length distributions ------------------------------------------------

def test_quantile_fit_roundtrip():
    mu, sigma = fit_lognormal_quantiles(21, 0.5, 72, 0.98)
    assert np.exp(mu) == pytest.approx(21.0)
    # p98 check: mu + z(0.98) sigma == ln 72
    from scipy.special import ndtri

    assert mu + ndtri(0.98) * sigma == pytest.approx(np.log(72.0))


def test_quantile_fit_validation():
    with pytest.raises(ConfigurationError):
        fit_lognormal_quantiles(21, 0.5, 72, 0.5)
    with pytest.raises(ConfigurationError):
        fit_lognormal_quantiles(-1, 0.5, 72, 0.98)
    with pytest.raises(ConfigurationError):
        fit_lognormal_quantiles(72, 0.5, 21, 0.98)  # decreasing


def test_lognormal_matches_twitter_quantiles():
    dist = LogNormalLengths.from_quantiles(median=21, p98=72, max_length=125)
    sample = dist.sample(RNG(1), 200_000)
    assert np.median(sample) == pytest.approx(21, abs=1)
    assert np.quantile(sample, 0.98) == pytest.approx(72, rel=0.06)
    assert sample.max() <= 125
    assert sample.min() >= 1


def test_lognormal_shifted_moves_median():
    dist = LogNormalLengths.from_quantiles(median=21, p98=72)
    up = dist.shifted(0.3)
    s_base = dist.sample(RNG(2), 50_000)
    s_up = up.sample(RNG(2), 50_000)
    assert np.median(s_up) > np.median(s_base)


def test_lognormal_validation():
    with pytest.raises(ConfigurationError):
        LogNormalLengths(mu=1.0, sigma=0.0)
    with pytest.raises(ConfigurationError):
        LogNormalLengths(mu=1.0, sigma=1.0, min_length=0)
    with pytest.raises(ConfigurationError):
        LogNormalLengths.from_quantiles(median=72, p98=21)
    dist = LogNormalLengths.from_quantiles(median=21, p98=72)
    with pytest.raises(ConfigurationError):
        dist.sample(RNG(), -1)


def test_empirical_bootstrap():
    dist = EmpiricalLengths(values=np.array([5, 5, 10]))
    sample = dist.sample(RNG(3), 10_000)
    assert set(np.unique(sample)) <= {5, 10}
    assert dist.max_length == 10
    # 5 appears with probability 2/3
    assert np.mean(sample == 5) == pytest.approx(2 / 3, abs=0.02)


def test_empirical_validation():
    with pytest.raises(ConfigurationError):
        EmpiricalLengths(values=np.array([], dtype=int))
    with pytest.raises(ConfigurationError):
        EmpiricalLengths(values=np.array([0]))


# --- arrival processes ----------------------------------------------------

def test_poisson_rate_and_sortedness():
    arr = PoissonArrivals().generate(RNG(4), 1000.0, seconds(20))
    assert np.all(np.diff(arr) >= 0)
    assert arr.size == pytest.approx(20_000, rel=0.05)
    assert arr.min() >= 0 and arr.max() < seconds(20)


def test_poisson_zero_cases():
    assert PoissonArrivals().generate(RNG(), 0.0, seconds(10)).size == 0
    assert PoissonArrivals().generate(RNG(), 100.0, 0.0).size == 0
    with pytest.raises(ConfigurationError):
        PoissonArrivals().generate(RNG(), -1.0, seconds(1))


def test_mmpp_preserves_mean_rate():
    # Average over several seeds: one MMPP sample path has heavy
    # count variance by design, but the ensemble mean must match.
    rates = []
    for seed in range(8):
        arr = MMPPArrivals().generate(RNG(seed), 1000.0, seconds(300))
        assert np.all(np.diff(arr) >= 0)
        rates.append(arr.size / 300.0)
    assert np.mean(rates) == pytest.approx(1000.0, rel=0.05)


def test_mmpp_burstier_than_poisson():
    """Index of dispersion of per-second counts must exceed Poisson's ~1."""
    dur = seconds(600)
    pois = PoissonArrivals().generate(RNG(6), 500.0, dur)
    mmpp = MMPPArrivals().generate(RNG(6), 500.0, dur)
    bins = np.arange(0, dur + SECOND, SECOND)
    var_over_mean = lambda a: np.histogram(a, bins)[0].var() / np.histogram(a, bins)[0].mean()
    assert var_over_mean(pois) < 2.0
    assert var_over_mean(mmpp) > 3.0


def test_mmpp_validation():
    with pytest.raises(ConfigurationError):
        MMPPArrivals(burst_factor=1.0)
    with pytest.raises(ConfigurationError):
        MMPPArrivals(calm_factor=0.0)
    with pytest.raises(ConfigurationError):
        MMPPArrivals(mean_burst_ms=0.0)


def test_rate_profile_cycles_segments():
    profile = RateProfile(
        base=PoissonArrivals(),
        segments=((seconds(10), 0.0), (seconds(10), 2.0)),
    )
    arr = profile.generate(RNG(7), 1000.0, seconds(40))
    # Quiet segments [0,10) and [20,30) must be (nearly) empty.
    quiet = ((arr >= 0) & (arr < seconds(10))) | (
        (arr >= seconds(20)) & (arr < seconds(30))
    )
    assert quiet.sum() == 0
    assert arr.size == pytest.approx(40_000, rel=0.1)  # mean preserved: 2x half time


def test_rate_profile_validation():
    with pytest.raises(ConfigurationError):
        RateProfile(base=PoissonArrivals(), segments=())
    with pytest.raises(ConfigurationError):
        RateProfile(base=PoissonArrivals(), segments=((0.0, 1.0),))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.floats(min_value=10, max_value=2000))
def test_arrivals_always_sorted_in_range(seed, rate):
    for proc in (PoissonArrivals(), MMPPArrivals()):
        arr = proc.generate(RNG(seed), rate, seconds(5))
        assert np.all(np.diff(arr) >= 0)
        if arr.size:
            assert 0 <= arr.min() and arr.max() < seconds(5)
