"""Trace container invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.workload.trace import Request, Trace


def make_trace(arrivals, lengths):
    return Trace(np.asarray(arrivals, dtype=float), np.asarray(lengths))


def test_basic_properties():
    t = make_trace([0.0, 10.0, 1000.0], [5, 10, 20])
    assert len(t) == 3
    assert t.duration_ms == 1000.0
    assert t.mean_rate_per_s == pytest.approx(3.0)


def test_empty_trace():
    t = make_trace([], [])
    assert len(t) == 0
    assert t.duration_ms == 0.0
    assert t.mean_rate_per_s == 0.0


def test_validation():
    with pytest.raises(TraceError):
        make_trace([10.0, 5.0], [1, 1])  # unsorted
    with pytest.raises(TraceError):
        make_trace([-1.0], [1])  # negative time
    with pytest.raises(TraceError):
        make_trace([0.0], [0])  # zero length
    with pytest.raises(TraceError):
        Trace(np.zeros((2, 2)), np.ones((2, 2), dtype=int))  # 2-D


def test_arrays_immutable():
    t = make_trace([0.0, 1.0], [1, 2])
    with pytest.raises(ValueError):
        t.arrival_ms[0] = 5.0


def test_iteration_yields_requests():
    t = make_trace([0.0, 1.0], [3, 4])
    reqs = list(t)
    assert reqs[0] == Request(0, 0.0, 3)
    assert reqs[1].length == 4


def test_request_validation():
    with pytest.raises(TraceError):
        Request(0, -1.0, 5)
    with pytest.raises(TraceError):
        Request(0, 0.0, 0)


def test_slice_time_rezeroes():
    t = make_trace([0.0, 100.0, 200.0, 300.0], [1, 2, 3, 4])
    s = t.slice_time(100.0, 300.0)
    assert len(s) == 2
    assert s.arrival_ms.tolist() == [0.0, 100.0]
    assert s.length.tolist() == [2, 3]
    with pytest.raises(TraceError):
        t.slice_time(10.0, 5.0)


def test_shift():
    t = make_trace([0.0, 1.0], [1, 1])
    assert t.shift(10.0).arrival_ms.tolist() == [10.0, 11.0]
    with pytest.raises(TraceError):
        t.shift(-1.0)


def test_scale_lengths_clips():
    t = make_trace([0.0, 1.0, 2.0], [1, 100, 125])
    scaled = t.scale_lengths(512 / 125, 512)
    assert scaled.length.tolist() == [4, 410, 512]
    assert scaled.length.min() >= 1
    with pytest.raises(TraceError):
        t.scale_lengths(0.0, 512)


def test_merge_sorts():
    a = make_trace([0.0, 10.0], [1, 2])
    b = make_trace([5.0], [3])
    merged = Trace.merge([a, b])
    assert merged.arrival_ms.tolist() == [0.0, 5.0, 10.0]
    assert merged.length.tolist() == [1, 3, 2]
    assert len(Trace.merge([])) == 0


def test_concat_plays_back_to_back():
    a = make_trace([0.0, 10.0], [1, 2])
    b = make_trace([0.0, 5.0], [3, 4])
    cat = Trace.concat([a, b])
    assert cat.arrival_ms.tolist() == [0.0, 10.0, 10.0, 15.0]


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=512),
)
def test_trace_roundtrip_properties(times, length):
    arr = np.sort(np.asarray(times))
    t = Trace(arr, np.full(arr.size, length))
    assert len(t) == arr.size
    # slicing the full range preserves everything
    s = t.slice_time(0.0, t.duration_ms + 1.0)
    assert len(s) == len(t)
