"""Extra workload patterns: diurnal rates, bimodal and Zipf lengths."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import seconds
from repro.workload.patterns import (
    BimodalLengths,
    DiurnalRateProfile,
    ZipfLengths,
)

RNG = lambda s=0: np.random.default_rng(s)


def test_diurnal_mean_rate_preserved():
    profile = DiurnalRateProfile(period_ms=seconds(60), amplitude=0.6)
    arr = profile.generate(RNG(1), 500.0, seconds(120))  # two full periods
    assert arr.size == pytest.approx(60_000, rel=0.05)
    assert np.all(np.diff(arr) >= 0)


def test_diurnal_peaks_and_troughs():
    profile = DiurnalRateProfile(period_ms=seconds(40), amplitude=0.8)
    arr = profile.generate(RNG(2), 1_000.0, seconds(40))
    # First quarter contains the sine peak; third quarter the trough.
    peak = ((arr >= 0) & (arr < seconds(10))).sum()
    trough = ((arr >= seconds(20)) & (arr < seconds(30))).sum()
    assert peak > 1.8 * trough


def test_diurnal_validation():
    with pytest.raises(ConfigurationError):
        DiurnalRateProfile(period_ms=0)
    with pytest.raises(ConfigurationError):
        DiurnalRateProfile(period_ms=100, amplitude=1.0)
    profile = DiurnalRateProfile(period_ms=seconds(10))
    with pytest.raises(ConfigurationError):
        profile.generate(RNG(), -1.0, 100.0)
    assert profile.generate(RNG(), 0.0, seconds(1)).size == 0


def test_bimodal_two_modes():
    dist = BimodalLengths(short_mean=20, long_mean=400, long_fraction=0.3)
    sample = dist.sample(RNG(3), 50_000)
    short = sample[sample < 150]
    long = sample[sample >= 150]
    assert long.size / sample.size == pytest.approx(0.3, abs=0.02)
    assert np.median(short) == pytest.approx(20, abs=3)
    assert np.median(long) == pytest.approx(400, rel=0.08)
    assert sample.max() <= dist.max_length
    assert sample.min() >= 1


def test_bimodal_validation():
    with pytest.raises(ConfigurationError):
        BimodalLengths(long_fraction=1.5)
    with pytest.raises(ConfigurationError):
        BimodalLengths(short_mean=100, long_mean=50)
    with pytest.raises(ConfigurationError):
        BimodalLengths(spread=0.0)
    with pytest.raises(ConfigurationError):
        BimodalLengths().sample(RNG(), -1)


def test_zipf_heavy_tail():
    dist = ZipfLengths(exponent=1.5, num_templates=64)
    sample = dist.sample(RNG(4), 50_000)
    assert sample.min() >= 1
    assert sample.max() <= 512
    # Heavy head: the most common template dominates.
    assert np.median(sample) <= 16
    # ...but the tail is populated.
    assert (sample > 256).sum() > 0


def test_zipf_validation():
    with pytest.raises(ConfigurationError):
        ZipfLengths(exponent=1.0)
    with pytest.raises(ConfigurationError):
        ZipfLengths(num_templates=0)
    with pytest.raises(ConfigurationError):
        ZipfLengths().sample(RNG(), -5)
