"""Twitter-like trace generator: Fig. 1 statistics and dynamics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import MINUTE, SECOND, minutes, seconds
from repro.workload.stats import summarize_lengths, windowed_quantiles
from repro.workload.twitter import (
    RECALIBRATION_FACTOR,
    TwitterTraceConfig,
    generate_twitter_trace,
    three_bursty_traces,
)


@pytest.fixture(scope="module")
def raw_trace():
    return generate_twitter_trace(
        TwitterTraceConfig(
            rate_per_s=500.0,
            duration_ms=minutes(10),
            recalibrate_to_512=False,
            seed=42,
        )
    )


def test_fig1_quantiles_raw(raw_trace):
    stats = summarize_lengths(raw_trace)
    # Paper Fig. 1a: median 21 tokens, p98 at 72, max ~125.
    assert stats["median"] == pytest.approx(21, abs=2)
    assert stats["p98"] == pytest.approx(72, rel=0.15)
    assert stats["max"] <= 125


def test_recalibrated_trace_spans_512():
    trace = generate_twitter_trace(
        rate_per_s=500.0, duration_ms=minutes(5), seed=42
    )
    stats = summarize_lengths(trace)
    assert stats["max"] <= 512
    assert stats["max"] > 256  # actually uses the upper range
    assert stats["median"] == pytest.approx(21 * RECALIBRATION_FACTOR, rel=0.15)


def test_long_term_stable_short_term_noisy(raw_trace):
    """Fig. 1 / §3.2: minute-scale medians agree; second-scale p98 varies."""
    minute_q = windowed_quantiles(raw_trace, MINUTE)
    second_q = windowed_quantiles(raw_trace.slice_time(0, seconds(30)), SECOND)
    minute_medians = minute_q[:, 0]
    second_p98 = second_q[:, 1]
    assert np.nanstd(minute_medians) < 4.0  # stable long-term median
    # short-term p98 must fluctuate more than the long-term median does
    assert np.nanstd(second_p98) > np.nanstd(minute_q[:, 1]) * 0.5
    assert np.nanstd(second_p98) > 2.0


def test_rate_matches_request(raw_trace):
    assert raw_trace.mean_rate_per_s == pytest.approx(500.0, rel=0.05)


def test_bursty_pattern_runs():
    trace = generate_twitter_trace(
        rate_per_s=800.0, duration_ms=minutes(2), pattern="bursty", seed=9
    )
    assert trace.mean_rate_per_s == pytest.approx(800.0, rel=0.25)


def test_determinism_by_seed():
    a = generate_twitter_trace(rate_per_s=100.0, duration_ms=seconds(30), seed=5)
    b = generate_twitter_trace(rate_per_s=100.0, duration_ms=seconds(30), seed=5)
    c = generate_twitter_trace(rate_per_s=100.0, duration_ms=seconds(30), seed=6)
    assert np.array_equal(a.arrival_ms, b.arrival_ms)
    assert np.array_equal(a.length, b.length)
    assert not np.array_equal(a.length, c.length)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        TwitterTraceConfig(rate_per_s=0.0)
    with pytest.raises(ConfigurationError):
        TwitterTraceConfig(pattern="chaotic")
    with pytest.raises(ConfigurationError):
        TwitterTraceConfig(drift_rho=1.0)
    with pytest.raises(ConfigurationError):
        generate_twitter_trace(TwitterTraceConfig(), rate_per_s=5.0)


def test_three_bursty_traces_distinct():
    # Drift acts per minute, so the traces must span several minutes
    # for the distinction to be observable.
    traces = three_bursty_traces(rate_per_s=150.0, duration_ms=minutes(6))
    assert len(traces) == 3
    assert len({len(t) for t in traces}) > 1
    # Third trace has the weakest per-minute drift by construction.
    drift = [
        np.nanstd(windowed_quantiles(t, MINUTE)[:, 0]) for t in traces
    ]
    assert drift[2] == min(drift)
    assert drift[2] < 0.5 * max(drift)
