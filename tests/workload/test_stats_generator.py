"""Trace statistics helpers and the generic generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.units import SECOND, seconds
from repro.workload.arrivals import PoissonArrivals
from repro.workload.generator import (
    WorkloadSpec,
    generate_mixture_trace,
    generate_trace,
    poisson_trace,
)
from repro.workload.lengths import EmpiricalLengths, LogNormalLengths
from repro.workload.stats import (
    cdf_at,
    empirical_cdf,
    lengths_in_windows,
    summarize_lengths,
    trace_rate_per_second,
    windowed_quantiles,
)
from repro.workload.trace import Trace


def test_empirical_cdf_basics():
    x, p = empirical_cdf(np.array([3, 1, 2]))
    assert x.tolist() == [1, 2, 3]
    assert p.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])
    with pytest.raises(TraceError):
        empirical_cdf(np.array([]))


def test_cdf_at_points():
    vals = np.array([1.0, 2.0, 3.0, 4.0])
    assert cdf_at(vals, np.array([0.0, 2.0, 10.0])).tolist() == [0.0, 0.5, 1.0]
    with pytest.raises(TraceError):
        cdf_at(np.array([]), np.array([1.0]))


def test_lengths_in_windows_alignment():
    t = Trace(np.array([0.0, 500.0, 1500.0, 2500.0]), np.array([1, 2, 3, 4]))
    wins = lengths_in_windows(t, SECOND)
    assert [w.tolist() for w in wins] == [[1, 2], [3], [4]]
    with pytest.raises(TraceError):
        lengths_in_windows(t, 0.0)
    assert lengths_in_windows(Trace(np.empty(0), np.empty(0, int)), SECOND) == []


def test_windowed_quantiles_nan_for_empty():
    t = Trace(np.array([0.0, 2500.0]), np.array([10, 20]))
    q = windowed_quantiles(t, SECOND)
    assert q.shape[0] == 3
    assert np.isnan(q[1]).all()
    assert q[0, 0] == 10


def test_trace_rate_series():
    t = poisson_trace(
        EmpiricalLengths(np.array([5])), rate_per_s=200.0,
        duration_ms=seconds(30), seed=0,
    )
    rates = trace_rate_per_second(t)
    assert rates.mean() == pytest.approx(200.0, rel=0.1)
    assert trace_rate_per_second(Trace(np.empty(0), np.empty(0, int))).size == 0
    with pytest.raises(TraceError):
        trace_rate_per_second(t, window_ms=0)


def test_summarize_validation():
    with pytest.raises(TraceError):
        summarize_lengths(Trace(np.empty(0), np.empty(0, int)))


def test_generator_spec_validation():
    dist = LogNormalLengths.from_quantiles(median=21, p98=72)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(lengths=dist, arrivals=PoissonArrivals(), rate_per_s=0,
                     duration_ms=100)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(lengths=dist, arrivals=PoissonArrivals(), rate_per_s=10,
                     duration_ms=0)
    with pytest.raises(ConfigurationError):
        generate_mixture_trace([])


def test_mixture_superposes():
    short = EmpiricalLengths(np.array([10]))
    long = EmpiricalLengths(np.array([400]))
    mix = generate_mixture_trace([
        WorkloadSpec(short, PoissonArrivals(), 100.0, seconds(10), seed=1),
        WorkloadSpec(long, PoissonArrivals(), 100.0, seconds(10), seed=2),
    ])
    assert set(np.unique(mix.length)) == {10, 400}
    assert mix.mean_rate_per_s == pytest.approx(200.0, rel=0.15)


def test_trace_from_per_second_counts():
    from repro.workload.generator import trace_from_per_second_counts

    counts = np.array([5, 0, 12, 3])
    t = trace_from_per_second_counts(counts, EmpiricalLengths(np.array([9])))
    assert len(t) == 20
    # Exactly the requested count lands inside each second.
    for k, c in enumerate(counts):
        inside = ((t.arrival_ms >= k * 1000) & (t.arrival_ms < (k + 1) * 1000))
        assert inside.sum() == c
    with pytest.raises(ConfigurationError):
        trace_from_per_second_counts(np.array([-1]), EmpiricalLengths(np.array([9])))
    with pytest.raises(ConfigurationError):
        trace_from_per_second_counts(np.array([0, 0]), EmpiricalLengths(np.array([9])))
    with pytest.raises(ConfigurationError):
        trace_from_per_second_counts(np.empty(0, dtype=int),
                                     EmpiricalLengths(np.array([9])))


def test_generate_trace_matches_spec():
    spec = WorkloadSpec(
        lengths=EmpiricalLengths(np.array([7])),
        arrivals=PoissonArrivals(),
        rate_per_s=300.0,
        duration_ms=seconds(20),
        seed=3,
    )
    t = generate_trace(spec)
    assert np.all(t.length == 7)
    assert t.mean_rate_per_s == pytest.approx(300.0, rel=0.1)
