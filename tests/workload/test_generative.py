"""Generative workload model: decode-length sampling and persistence.

The bit-exactness guarantee lives here: a generative trace's prefill
side (arrivals + lengths) must be byte-identical to the discriminative
Twitter trace of the same seed — attaching decode lengths draws from a
dedicated child stream and never perturbs the prefill draws. The pinned
hashes make any change to the decode sampler a loud failure.
"""

import hashlib

import numpy as np
import pytest

from repro.errors import TraceError
from repro.io.traces import load_trace, save_trace
from repro.workload.generative import (
    GenerativeRequest,
    GenerativeTrace,
    GenerativeTraceConfig,
    attach_decode_lengths,
    generate_generative_trace,
)
from repro.workload.lengths import LogNormalLengths
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()[:16]


@pytest.mark.parametrize(
    "pattern,count,decode_hash",
    [
        ("bursty", 44711, "3edebec552a9342e"),
        ("stable", 36038, "2223c68441fd6297"),
    ],
)
def test_generative_trace_pinned(pattern, count, decode_hash):
    trace = generate_generative_trace(
        GenerativeTraceConfig(
            rate_per_s=300.0, duration_ms=120_000.0, pattern=pattern,
            seed=42,
        )
    )
    assert len(trace) == count
    assert _digest(trace.decode_len) == decode_hash


def test_prefill_side_bit_identical_to_twitter():
    """Same seed, with or without decode lengths: identical prefills.

    This is the generative path's bit-exactness guarantee at the
    workload layer — the decode stream is a separate child seed, so the
    prefill hashes equal the discriminative golden hashes exactly.
    """
    gen = generate_generative_trace(
        GenerativeTraceConfig(
            rate_per_s=300.0, duration_ms=120_000.0, pattern="bursty",
            seed=42,
        )
    )
    tw = generate_twitter_trace(
        rate_per_s=300.0, duration_ms=120_000.0, pattern="bursty", seed=42
    )
    assert np.array_equal(gen.arrival_ms, tw.arrival_ms)
    assert np.array_equal(gen.length, tw.length)
    # The same hashes test_golden_traces.py pins for the twitter trace.
    assert _digest(gen.arrival_ms) == "416f81966102d1f6"
    assert _digest(gen.length) == "45ea214960ad516b"


def test_attach_decode_lengths_deterministic():
    tw = generate_twitter_trace(
        rate_per_s=200.0, duration_ms=30_000.0, pattern="stable", seed=5
    )
    dist = LogNormalLengths.from_quantiles(median=64, p98=256,
                                           max_length=512)
    a = attach_decode_lengths(tw, dist, seed=5)
    b = attach_decode_lengths(tw, dist, seed=5)
    c = attach_decode_lengths(tw, dist, seed=6)
    assert isinstance(a, GenerativeTrace)
    assert np.array_equal(a.decode_len, b.decode_len)
    assert not np.array_equal(a.decode_len, c.decode_len)
    assert np.array_equal(a.length, tw.length)


def test_decode_length_quantiles_roughly_calibrated():
    trace = generate_generative_trace(
        GenerativeTraceConfig(rate_per_s=500.0, duration_ms=60_000.0,
                              seed=1)
    )
    dec = trace.decode_len
    assert dec.min() >= 1
    assert dec.max() <= 512
    assert np.median(dec) == pytest.approx(64, rel=0.15)
    assert np.percentile(dec, 98) == pytest.approx(256, rel=0.15)
    assert trace.total_decode_steps == int(dec.sum())


def test_iteration_yields_generative_requests():
    trace = generate_generative_trace(
        GenerativeTraceConfig(rate_per_s=100.0, duration_ms=5_000.0, seed=2)
    )
    first = next(iter(trace))
    assert isinstance(first, GenerativeRequest)
    assert first.request_id == 0
    assert first.prefill_len == trace.length[0]
    assert first.decode_len == trace.decode_len[0]


def test_slicing_and_shift_preserve_decode_alignment():
    trace = generate_generative_trace(
        GenerativeTraceConfig(rate_per_s=200.0, duration_ms=20_000.0, seed=3)
    )
    window = trace.slice_time(5_000.0, 15_000.0)
    assert isinstance(window, GenerativeTrace)
    mask = (trace.arrival_ms >= 5_000.0) & (trace.arrival_ms < 15_000.0)
    assert np.array_equal(window.decode_len, trace.decode_len[mask])
    shifted = window.shift(1_000.0)
    assert isinstance(shifted, GenerativeTrace)
    assert np.array_equal(shifted.decode_len, window.decode_len)
    scaled = trace.scale_lengths(1.5, max_length=512)
    assert isinstance(scaled, GenerativeTrace)
    # Only prefill scales; decode lengths are sampled, not padded.
    assert np.array_equal(scaled.decode_len, trace.decode_len)


def test_npz_roundtrip_preserves_generative_type(tmp_path):
    trace = generate_generative_trace(
        GenerativeTraceConfig(rate_per_s=150.0, duration_ms=10_000.0, seed=4)
    )
    path = save_trace(trace, tmp_path / "gen")
    loaded = load_trace(path)
    assert isinstance(loaded, GenerativeTrace)
    assert np.array_equal(loaded.arrival_ms, trace.arrival_ms)
    assert np.array_equal(loaded.length, trace.length)
    assert np.array_equal(loaded.decode_len, trace.decode_len)
    # Plain traces still round-trip as plain traces.
    tw = Trace(trace.arrival_ms.copy(), trace.length.copy())
    plain = load_trace(save_trace(tw, tmp_path / "plain"))
    assert type(plain) is Trace


def test_misaligned_decode_lengths_rejected():
    tw = generate_twitter_trace(
        rate_per_s=100.0, duration_ms=5_000.0, pattern="stable", seed=0
    )
    with pytest.raises(TraceError):
        GenerativeTrace(tw.arrival_ms, tw.length,
                        np.ones(len(tw) + 1, dtype=np.int64))
    with pytest.raises(TraceError):
        GenerativeTrace(tw.arrival_ms, tw.length,
                        np.zeros(len(tw), dtype=np.int64))
