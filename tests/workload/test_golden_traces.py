"""Golden-trace regressions for the vectorised samplers.

The workload generators draw from numpy ``Generator`` streams in large
vectorised batches; these hashes pin the exact byte-level output per
seed so any change to the sampling structure (batch sizes, draw order,
clipping) is caught immediately instead of silently shifting every
downstream experiment.
"""

import hashlib

import numpy as np
import pytest

from repro.workload.arrivals import MMPPArrivals, PoissonArrivals
from repro.workload.generator import trace_from_per_second_counts
from repro.workload.lengths import LogNormalLengths
from repro.workload.twitter import generate_twitter_trace


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()[:16]


def test_poisson_stream_pinned():
    rng = np.random.default_rng(7)
    arrivals = PoissonArrivals().generate(rng, 500.0, 10_000.0)
    assert arrivals.size == 5025
    assert _digest(arrivals) == "e022c0b6557f1f8a"


def test_mmpp_stream_pinned():
    rng = np.random.default_rng(7)
    arrivals = MMPPArrivals().generate(rng, 500.0, 60_000.0)
    assert arrivals.size == 23333
    assert _digest(arrivals) == "04c6790089dd975c"
    assert np.all(np.diff(arrivals) >= 0)
    assert 0 <= arrivals[0] and arrivals[-1] < 60_000.0


@pytest.mark.parametrize(
    "pattern,count,arrival_hash,length_hash",
    [
        ("bursty", 44711, "416f81966102d1f6", "45ea214960ad516b"),
        ("stable", 36038, "e10902281ebea751", "aad674bbbfbc8d53"),
    ],
)
def test_twitter_trace_pinned(pattern, count, arrival_hash, length_hash):
    trace = generate_twitter_trace(
        rate_per_s=300.0, duration_ms=120_000.0, pattern=pattern, seed=42
    )
    assert len(trace) == count
    assert _digest(trace.arrival_ms) == arrival_hash
    assert _digest(trace.length) == length_hash


def test_per_second_counts_pinned():
    counts = np.array([5, 0, 17, 3, 9, 121, 0, 44])
    dist = LogNormalLengths.from_quantiles(median=21, p98=72)
    trace = trace_from_per_second_counts(counts, dist, seed=3)
    assert len(trace) == int(counts.sum()) == 199
    assert _digest(trace.arrival_ms) == "02eef290db7ad696"
    assert _digest(trace.length) == "e7852a8013d68439"
    # Exactly counts[k] arrivals inside second k.
    seconds = (trace.arrival_ms // 1_000).astype(int)
    assert np.array_equal(np.bincount(seconds, minlength=counts.size), counts)


def test_mmpp_rate_preserved_in_expectation():
    """The vectorised MMPP must keep the long-run average rate."""
    total = 0
    for seed in range(8):
        rng = np.random.default_rng(seed)
        total += MMPPArrivals().generate(rng, 400.0, 120_000.0).size
    observed = total / 8 / 120.0  # requests per second
    assert observed == pytest.approx(400.0, rel=0.08)
