"""Target-tracking autoscaler policy (§4)."""

import pytest

from repro.cluster.autoscaler import (
    AutoscalerConfig,
    ScaleAction,
    TargetTrackingAutoscaler,
)
from repro.errors import ConfigurationError
from repro.units import seconds


def make(slo=150.0, **kwargs):
    defaults = dict(slo_ms=slo, window_size=64)
    defaults.update(kwargs)
    return TargetTrackingAutoscaler(AutoscalerConfig(**defaults))


def fill(scaler, latency, count=64):
    for _ in range(count):
        scaler.observe(latency)


def test_no_decision_without_data():
    scaler = make()
    assert scaler.tail_latency() is None
    assert scaler.decide(0.0, 5) is ScaleAction.NONE


def test_scale_out_at_95_percent_of_slo():
    scaler = make()
    fill(scaler, 150.0 * 0.96)
    assert scaler.decide(seconds(10), 5) is ScaleAction.OUT


def test_scale_out_cooldown():
    scaler = make()
    fill(scaler, 149.0)
    assert scaler.decide(seconds(10), 5) is ScaleAction.OUT
    assert scaler.decide(seconds(11), 6) is ScaleAction.NONE  # cooling down
    assert scaler.decide(seconds(16), 6) is ScaleAction.OUT


def test_scale_out_capped_at_max():
    scaler = make(max_gpus=5)
    fill(scaler, 149.0)
    assert scaler.decide(seconds(10), 5) is ScaleAction.NONE


def test_scale_in_requires_sustained_low_latency():
    scaler = make()
    fill(scaler, 10.0)  # way below 50% of SLO
    assert scaler.decide(seconds(0), 5) is ScaleAction.NONE  # timer starts
    assert scaler.decide(seconds(30), 5) is ScaleAction.NONE  # not yet 60s
    assert scaler.decide(seconds(61), 5) is ScaleAction.IN
    # immediately after, the timer restarts
    assert scaler.decide(seconds(62), 4) is ScaleAction.NONE


def test_scale_in_respects_min_gpus():
    scaler = make(min_gpus=3)
    fill(scaler, 10.0)
    scaler.decide(seconds(0), 3)
    assert scaler.decide(seconds(61), 3) is ScaleAction.NONE


def test_comfortable_band_resets_scale_in_timer():
    scaler = make()
    fill(scaler, 10.0)
    scaler.decide(seconds(0), 5)
    # Latency rises into the comfortable band: timer must reset.
    fill(scaler, 100.0)
    scaler.decide(seconds(30), 5)
    fill(scaler, 10.0)
    assert scaler.decide(seconds(61), 5) is ScaleAction.NONE  # only 31s below


def test_spike_resets_scale_in_timer():
    scaler = make()
    fill(scaler, 10.0)
    scaler.decide(seconds(0), 5)
    fill(scaler, 149.0)
    scaler.decide(seconds(30), 5)  # OUT and resets below-timer
    fill(scaler, 10.0)
    assert scaler.decide(seconds(62), 5) is ScaleAction.NONE


def test_windowed_percentile():
    scaler = make()
    fill(scaler, 10.0, count=62)
    fill(scaler, 1000.0, count=2)  # top 2% outliers lift the windowed p98
    assert scaler.tail_latency() > 10.0


def test_config_validation():
    with pytest.raises(ConfigurationError):
        AutoscalerConfig(slo_ms=0.0)
    with pytest.raises(ConfigurationError):
        AutoscalerConfig(slo_ms=100, scale_in_fraction=0.96)
    with pytest.raises(ConfigurationError):
        AutoscalerConfig(slo_ms=100, window_size=2)
    with pytest.raises(ConfigurationError):
        AutoscalerConfig(slo_ms=100, min_gpus=0)
    with pytest.raises(ConfigurationError):
        AutoscalerConfig(slo_ms=100, percentile=10)
    scaler = make()
    with pytest.raises(ConfigurationError):
        scaler.observe(-1.0)
