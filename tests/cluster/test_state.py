"""ClusterState bookkeeping."""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.errors import SchedulingError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set


@pytest.fixture(scope="module")
def registry():
    return build_polymorph_set(bert_base())


def test_bootstrap_allocation(registry):
    alloc = [2, 1, 0, 0, 0, 0, 0, 1]
    state = ClusterState.bootstrap(registry, alloc)
    assert state.allocation().tolist() == alloc
    assert state.num_gpus == 4
    assert state.num_active_instances == 4
    assert len(state.free_gpus()) == 0


def test_bootstrap_validation(registry):
    with pytest.raises(SchedulingError):
        ClusterState.bootstrap(registry, [1, 2])  # wrong arity
    with pytest.raises(SchedulingError):
        ClusterState.bootstrap(registry, [0] * 8)  # empty
    with pytest.raises(SchedulingError):
        ClusterState.bootstrap(registry, [-1, 1, 0, 0, 0, 0, 0, 1])


def test_deploy_and_retire_roundtrip(registry):
    state = ClusterState.bootstrap(registry, [1, 0, 0, 0, 0, 0, 0, 1])
    inst = state.active_instances(0)[0]
    gpu = state.retire_instance(inst)
    assert gpu.is_free
    assert state.allocation().tolist() == [0, 0, 0, 0, 0, 0, 0, 1]
    redeployed = state.deploy(3, gpu)
    assert state.allocation().tolist() == [0, 0, 0, 1, 0, 0, 0, 1]
    assert redeployed.gpu_id == gpu.gpu_id
    with pytest.raises(SchedulingError):
        state.retire_instance(inst)  # already gone
    with pytest.raises(SchedulingError):
        state.deploy(99, state.add_gpu())


def test_draining_instances_not_active(registry):
    state = ClusterState.bootstrap(registry, [2, 0, 0, 0, 0, 0, 0, 1])
    inst = state.active_instances(0)[0]
    inst.begin_drain()
    assert state.allocation().tolist() == [1, 0, 0, 0, 0, 0, 0, 1]
    assert inst not in state.active_instances()
    assert state.num_active_instances == 2


def test_gpu_time_accounting(registry):
    state = ClusterState.bootstrap(registry, [1, 0, 0, 0, 0, 0, 0, 1])
    assert state.time_weighted_gpus(1000.0) == pytest.approx(2.0)
    # Add a GPU halfway: weighted count between 2 and 3.
    state.add_gpu(now_ms=500.0)
    assert state.time_weighted_gpus(1000.0) == pytest.approx(2.5)
    assert state.time_weighted_gpus(0.0) == 3.0


def test_release_reduces_count(registry):
    state = ClusterState.bootstrap(registry, [1, 0, 0, 0, 0, 0, 0, 1])
    inst = state.active_instances(0)[0]
    gpu = state.retire_instance(inst)
    state.release_gpu(gpu.gpu_id, now_ms=100.0)
    assert state.num_gpus == 1
    assert gpu not in state.free_gpus()


def test_total_outstanding(registry):
    state = ClusterState.bootstrap(registry, [1, 0, 0, 0, 0, 0, 0, 1])
    state.active_instances(0)[0].enqueue(0.0, 10)
    state.active_instances(7)[0].enqueue(0.0, 500)
    assert state.total_outstanding() == 2
