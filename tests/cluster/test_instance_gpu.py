"""RuntimeInstance and Gpu lifecycle semantics."""

import pytest

from repro.cluster.gpu import Gpu
from repro.cluster.instance import InstanceStatus, RuntimeInstance
from repro.errors import CapacityError, SchedulingError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set


@pytest.fixture(scope="module")
def registry():
    return build_polymorph_set(bert_base())


@pytest.fixture
def instance(registry):
    return RuntimeInstance(
        instance_id=0, gpu_id=0, runtime_index=1, profile=registry[1]
    )


def test_enqueue_fifo_timing(instance):
    service = instance.profile.runtime.service_ms(100) + instance.profile.overhead_ms
    s1, f1 = instance.enqueue(0.0, 100)
    assert s1 == 0.0 and f1 == pytest.approx(service)
    s2, f2 = instance.enqueue(0.0, 50)
    assert s2 == pytest.approx(f1)  # waits behind the first
    assert f2 == pytest.approx(f1 + service)  # static shape: same padded time
    assert instance.outstanding == 2


def test_enqueue_after_idle_gap(instance):
    _, f1 = instance.enqueue(0.0, 10)
    s2, _ = instance.enqueue(f1 + 100.0, 10)
    assert s2 == pytest.approx(f1 + 100.0)


def test_congestion_is_load_over_capacity(instance):
    assert instance.congestion() == 0.0
    instance.enqueue(0.0, 10)
    assert instance.congestion() == pytest.approx(1 / instance.capacity)


def test_complete_decrements(instance):
    instance.enqueue(0.0, 10)
    instance.complete()
    assert instance.outstanding == 0
    assert instance.served == 1
    with pytest.raises(SchedulingError):
        instance.complete()


def test_rejects_oversized_requests(instance):
    with pytest.raises(CapacityError):
        instance.enqueue(0.0, instance.max_length + 1)


def test_drain_and_retire(instance):
    instance.enqueue(0.0, 10)
    instance.begin_drain()
    assert instance.status is InstanceStatus.DRAINING
    assert not instance.accepts(10)
    with pytest.raises(SchedulingError):
        instance.enqueue(1.0, 10)
    assert not instance.drained()
    with pytest.raises(SchedulingError):
        instance.retire()
    instance.complete()
    assert instance.drained()
    instance.retire()
    with pytest.raises(SchedulingError):
        instance.begin_drain()


def test_idle_check(instance):
    assert instance.idle_at(0.0)
    _, f = instance.enqueue(0.0, 10)
    assert not instance.idle_at(0.0)
    instance.complete()
    assert not instance.idle_at(f - 0.1)
    assert instance.idle_at(f)


def test_gpu_attach_detach():
    gpu = Gpu(gpu_id=0)
    gpu.attach(7)
    assert not gpu.is_free
    with pytest.raises(SchedulingError):
        gpu.attach(8)
    gpu.detach()
    assert gpu.is_free
    with pytest.raises(SchedulingError):
        gpu.detach()


def test_gpu_release_rules():
    gpu = Gpu(gpu_id=0, provisioned_at_ms=100.0)
    gpu.attach(1)
    with pytest.raises(SchedulingError):
        gpu.release(200.0)
    gpu.detach()
    gpu.release(600.0)
    assert gpu.lifetime_ms(10_000.0) == 500.0
    with pytest.raises(SchedulingError):
        gpu.release(700.0)
    with pytest.raises(SchedulingError):
        gpu.attach(2)
