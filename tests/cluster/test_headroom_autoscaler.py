"""HeadroomAutoscaler — the INFaaS-style utilisation policy."""

import pytest

from repro.cluster.autoscaler import (
    HeadroomAutoscaler,
    HeadroomConfig,
    ScaleAction,
)
from repro.errors import ConfigurationError
from repro.units import seconds


def make(**kwargs):
    defaults = dict(window_size=8)
    defaults.update(kwargs)
    return HeadroomAutoscaler(HeadroomConfig(**defaults))


def fill(scaler, util, count=8):
    for _ in range(count):
        scaler.observe_utilization(util)


def test_no_decision_without_data():
    scaler = make()
    assert scaler.current_utilization() is None
    assert scaler.decide(0.0, 4) is ScaleAction.NONE


def test_scale_out_above_threshold():
    scaler = make()
    fill(scaler, 0.85)
    assert scaler.decide(seconds(10), 4) is ScaleAction.OUT
    # cooldown blocks the immediate follow-up...
    assert scaler.decide(seconds(11), 5) is ScaleAction.NONE
    # ...but a still-hot window scales again once the cooldown passes.
    assert scaler.decide(seconds(16), 5) is ScaleAction.OUT


def test_scale_out_capped():
    scaler = make(max_gpus=4)
    fill(scaler, 0.95)
    assert scaler.decide(seconds(10), 4) is ScaleAction.NONE


def test_scale_in_sustained_low_util():
    scaler = make(scale_in_period_ms=seconds(30))
    fill(scaler, 0.1)
    assert scaler.decide(seconds(0), 4) is ScaleAction.NONE
    assert scaler.decide(seconds(31), 4) is ScaleAction.IN
    assert scaler.decide(seconds(32), 3) is ScaleAction.NONE  # timer reset


def test_scale_in_respects_min():
    scaler = make(min_gpus=4, scale_in_period_ms=seconds(10))
    fill(scaler, 0.05)
    scaler.decide(seconds(0), 4)
    assert scaler.decide(seconds(11), 4) is ScaleAction.NONE


def test_comfort_band_resets_timer():
    scaler = make(scale_in_period_ms=seconds(30))
    fill(scaler, 0.1)
    scaler.decide(seconds(0), 4)
    fill(scaler, 0.5)  # comfortable
    scaler.decide(seconds(15), 4)
    fill(scaler, 0.1)
    assert scaler.decide(seconds(31), 4) is ScaleAction.NONE


def test_latency_observe_is_noop():
    scaler = make()
    scaler.observe(10_000.0)  # must not crash or influence anything
    assert scaler.current_utilization() is None


def test_validation():
    with pytest.raises(ConfigurationError):
        HeadroomConfig(scale_out_utilization=0.2, scale_in_utilization=0.3)
    with pytest.raises(ConfigurationError):
        HeadroomConfig(window_size=2)
    with pytest.raises(ConfigurationError):
        HeadroomConfig(min_gpus=0)
    scaler = make()
    with pytest.raises(ConfigurationError):
        scaler.observe_utilization(-0.1)


def test_simulation_with_headroom_policy():
    """End-to-end: an overloaded ST fleet scales out under headroom."""
    from repro.baselines.schemes import build_scheme
    from repro.sim.simulation import SimulationConfig, run_simulation
    from repro.workload.twitter import generate_twitter_trace

    trace = generate_twitter_trace(rate_per_s=500, duration_ms=seconds(20),
                                   seed=17)
    scheme = build_scheme("st", "bert-base", 1)
    config = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=HeadroomConfig(max_gpus=12, window_size=8),
    )
    result = run_simulation(scheme, trace, config)
    assert result.control_stats["scale_outs"] > 0
    assert scheme.cluster.num_gpus > 1
    assert result.stats.count == len(trace)
