"""Replacement planning: minimality, donor choice, batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.replacement import (
    REPLACEMENT_DURATION_MS,
    plan_replacement,
)
from repro.cluster.state import ClusterState
from repro.errors import SchedulingError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set

REGISTRY = build_polymorph_set(bert_base())


def test_empty_plan_when_allocation_matches():
    state = ClusterState.bootstrap(REGISTRY, [2, 1, 0, 0, 0, 0, 0, 1])
    plan = plan_replacement(state, np.array([2, 1, 0, 0, 0, 0, 0, 1]))
    assert plan.is_empty
    assert plan.duration_ms == 0.0


def test_plan_is_minimal():
    state = ClusterState.bootstrap(REGISTRY, [3, 0, 0, 0, 0, 0, 0, 1])
    target = np.array([1, 2, 0, 0, 0, 0, 0, 1])
    plan = plan_replacement(state, target)
    assert len(plan) == 2  # exactly the surplus
    assert all(s.from_runtime == 0 and s.to_runtime == 1 for s in plan.steps)


def test_least_busy_donors_first():
    state = ClusterState.bootstrap(REGISTRY, [3, 0, 0, 0, 0, 0, 0, 1])
    instances = state.active_instances(0)
    instances[0].enqueue(0.0, 10)
    instances[0].enqueue(0.0, 10)
    instances[1].enqueue(0.0, 10)
    # instances[2] idle -> must be the first donor
    plan = plan_replacement(state, np.array([2, 1, 0, 0, 0, 0, 0, 1]))
    assert plan.steps[0].instance_id == instances[2].instance_id


def test_batching_and_duration():
    state = ClusterState.bootstrap(REGISTRY, [5, 0, 0, 0, 0, 0, 0, 1])
    plan = plan_replacement(
        state, np.array([0, 5, 0, 0, 0, 0, 0, 1]), batch_size=2
    )
    batches = plan.batches()
    assert [len(b) for b in batches] == [2, 2, 1]
    assert plan.duration_ms == 3 * REPLACEMENT_DURATION_MS


def test_validation():
    state = ClusterState.bootstrap(REGISTRY, [1, 0, 0, 0, 0, 0, 0, 1])
    with pytest.raises(SchedulingError):
        plan_replacement(state, np.array([1, 1]))  # arity
    with pytest.raises(SchedulingError):
        plan_replacement(state, np.array([2, 0, 0, 0, 0, 0, 0, 1]))  # GPU count
    with pytest.raises(SchedulingError):
        plan_replacement(state, np.array([-1, 1, 0, 0, 0, 0, 0, 2]))
    with pytest.raises(SchedulingError):
        plan_replacement(state, np.array([0, 1, 0, 0, 0, 0, 0, 1]), batch_size=0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=4), min_size=8, max_size=8),
       st.lists(st.integers(min_value=0, max_value=4), min_size=8, max_size=8))
def test_plan_reaches_target(current, target):
    total = sum(current)
    if total == 0 or sum(target) != total:
        return  # only same-size allocations are plannable
    state = ClusterState.bootstrap(REGISTRY, current)
    plan = plan_replacement(state, np.asarray(target))
    # Applying the plan yields the target allocation.
    result = np.asarray(current)
    for step in plan.steps:
        result[step.from_runtime] -= 1
        result[step.to_runtime] += 1
    assert result.tolist() == list(target)
    # Minimality: steps == total positive surplus.
    surplus = np.maximum(np.asarray(current) - np.asarray(target), 0).sum()
    assert len(plan) == surplus
