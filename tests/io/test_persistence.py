"""Round-trip persistence of traces, profiles and results."""

import json

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.errors import ProfileError, SimulationError, TraceError
from repro.io.profiles import (
    load_registry,
    registry_from_dict,
    registry_to_dict,
    save_registry,
)
from repro.io.results import load_result_summary, save_result_summary
from repro.io.traces import load_trace, save_trace
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.sim.simulation import run_simulation
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


def test_trace_roundtrip(tmp_path):
    trace = generate_twitter_trace(rate_per_s=200, duration_ms=5_000, seed=3)
    path = save_trace(trace, tmp_path / "trace")
    assert path.suffix == ".npz"
    loaded = load_trace(path)
    assert np.array_equal(loaded.arrival_ms, trace.arrival_ms)
    assert np.array_equal(loaded.length, trace.length)


def test_trace_load_errors(tmp_path):
    with pytest.raises(TraceError):
        load_trace(tmp_path / "missing.npz")
    bogus = tmp_path / "bogus.npz"
    np.savez(bogus, whatever=np.arange(3))
    with pytest.raises(TraceError):
        load_trace(bogus)
    bad_version = tmp_path / "badv.npz"
    np.savez(bad_version, version=np.int64(99),
             arrival_ms=np.array([0.0]), length=np.array([1]))
    with pytest.raises(TraceError):
        load_trace(bad_version)


def test_registry_roundtrip(tmp_path):
    registry = build_polymorph_set(bert_base())
    path = save_registry(registry, tmp_path / "profiles.json")
    loaded = load_registry(path)
    assert len(loaded) == len(registry)
    for a, b in zip(loaded, registry):
        assert a.max_length == b.max_length
        assert a.service_ms == pytest.approx(b.service_ms)
        assert a.capacity == b.capacity
        assert a.runtime.spec == b.runtime.spec


def test_registry_dict_errors():
    registry = build_polymorph_set(bert_base())
    payload = registry_to_dict(registry)
    with pytest.raises(ProfileError):
        registry_from_dict({**payload, "version": 42})
    with pytest.raises(ProfileError):
        registry_from_dict({"version": 1, "runtimes": []})
    broken = json.loads(json.dumps(payload))
    del broken["runtimes"][0]["service_ms"]
    with pytest.raises((ProfileError, KeyError)):
        registry_from_dict(broken)


def test_registry_load_errors(tmp_path):
    with pytest.raises(ProfileError):
        load_registry(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ProfileError):
        load_registry(bad)


def test_loaded_registry_serves(tmp_path):
    """A registry loaded from disk drives a full simulation."""
    registry = build_polymorph_set(bert_base())
    loaded = load_registry(save_registry(registry, tmp_path / "p.json"))
    trace = generate_twitter_trace(rate_per_s=100, duration_ms=4_000, seed=1)
    scheme = build_scheme("arlo", "bert-base", 3, registry=loaded)
    result = run_simulation(scheme, trace)
    assert result.stats.count == len(trace)


def test_dynamic_runtime_roundtrip(tmp_path):
    """A registry containing a dynamic-shape runtime survives the disk."""
    from repro.runtimes.compiler import SimulatedCompiler
    from repro.runtimes.profiler import OfflineProfiler
    from repro.runtimes.registry import RuntimeRegistry

    compiler, profiler = SimulatedCompiler(), OfflineProfiler(noise=0.0)
    dyn = compiler.compile_dynamic(bert_base())
    registry = RuntimeRegistry(profiles=profiler.profile_set([dyn], 150.0))
    loaded = load_registry(save_registry(registry, tmp_path / "dyn.json"))
    spec = loaded[0].runtime.spec
    assert spec.dynamic_shape
    # Dynamic execution semantics survive: short requests run short.
    assert loaded[0].runtime.service_ms(10) < loaded[0].runtime.service_ms(500)


def test_result_summary_roundtrip(tmp_path):
    trace = Trace(np.array([0.0, 10.0]), np.array([20, 400]))
    result = run_simulation(build_scheme("st", "bert-base", 2), trace)
    path = save_result_summary(result, tmp_path / "run.json")
    loaded = load_result_summary(path)
    assert loaded["scheme"] == "st"
    assert loaded["requests"] == 2
    assert loaded["mean_ms"] == pytest.approx(result.mean_ms)


def test_result_summary_errors(tmp_path):
    with pytest.raises(SimulationError):
        load_result_summary(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("[")
    with pytest.raises(SimulationError):
        load_result_summary(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"version": 9}))
    with pytest.raises(SimulationError):
        load_result_summary(wrong)
