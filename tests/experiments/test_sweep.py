"""Parallel sweep utility."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec
from repro.experiments.sweep import expand_grid, run_sweep


def base_spec(**kw):
    defaults = dict(
        name="sweep-base", model="bert-base", num_gpus=3, rate_per_s=120,
        duration_s=6.0, schemes=("st", "arlo"), seed=1, hint_s=2.0,
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


def test_expand_grid_cartesian():
    specs = expand_grid(base_spec(), rate_per_s=[100, 200], seed=[1, 2])
    assert len(specs) == 4
    names = {s.name for s in specs}
    assert len(names) == 4
    assert {s.rate_per_s for s in specs} == {100, 200}
    assert {s.seed for s in specs} == {1, 2}


def test_expand_grid_single_value_keeps_name():
    specs = expand_grid(base_spec(), seed=[7])
    assert len(specs) == 1
    assert specs[0].name == "sweep-base"
    assert specs[0].seed == 7


def test_expand_grid_validation():
    with pytest.raises(ConfigurationError):
        expand_grid(base_spec(), nonsense=[1])
    with pytest.raises(ConfigurationError):
        expand_grid(base_spec(), seed=[])
    assert expand_grid(base_spec()) == [base_spec()]


def test_run_sweep_inline():
    specs = expand_grid(base_spec(), rate_per_s=[100, 200])
    out = run_sweep(specs, workers=1)
    assert set(out) == {s.name for s in specs}
    for per_scheme in out.values():
        assert set(per_scheme) == {"st", "arlo"}
        for summary in per_scheme.values():
            assert summary["requests"] > 0
            assert summary["mean_ms"] > 0


def test_run_sweep_scheme_override():
    out = run_sweep([base_spec()], schemes=("st",))
    assert set(out["sweep-base"]) == {"st"}


def test_run_sweep_parallel_matches_inline():
    specs = expand_grid(base_spec(), seed=[3, 4])
    inline = run_sweep(specs, schemes=("st",), workers=1)
    parallel = run_sweep(specs, schemes=("st",), workers=2)
    for name in inline:
        assert inline[name]["st"]["mean_ms"] == pytest.approx(
            parallel[name]["st"]["mean_ms"]
        )
        assert inline[name]["st"]["requests"] == parallel[name]["st"]["requests"]


def test_run_experiments_parallel_accepts_lambda_summarize():
    # Lambdas don't pickle; the runner must fall back to summarizing in
    # the parent instead of surfacing a PicklingError from the pool.
    from repro.experiments.runner import run_experiments

    out = run_experiments(
        [base_spec()],
        schemes=("st",),
        workers=2,
        summarize=lambda r: len(r.latencies()),
    )
    assert out["sweep-base"]["st"] > 0


def test_run_sweep_validation():
    with pytest.raises(ConfigurationError):
        run_sweep([])
    with pytest.raises(ConfigurationError):
        run_sweep([base_spec()], workers=0)
    with pytest.raises(ConfigurationError):
        run_sweep([base_spec(), base_spec()])  # duplicate names
