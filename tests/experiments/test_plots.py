"""ASCII figure renderers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.plots import (
    allocation_timeline,
    cdf_plot,
    line_plot,
    sparkline,
    step_timeline,
)


def test_sparkline_shape_and_range():
    s = sparkline([0, 1, 2, 3, 4], width=10)
    assert len(s) == 5
    assert s[0] == " " and s[-1] == "█"
    flat = sparkline([5, 5, 5])
    assert len(set(flat)) == 1
    long = sparkline(np.arange(500), width=40)
    assert len(long) == 40
    with pytest.raises(ConfigurationError):
        sparkline([])


def test_line_plot_contains_series_markers():
    out = line_plot(
        {"st": (np.array([0, 1, 2]), np.array([5.0, 6.0, 7.0])),
         "arlo": (np.array([0, 1, 2]), np.array([2.0, 2.5, 3.0]))},
        title="fig7", xlabel="rate", ylabel="mean ms",
    )
    assert "fig7" in out
    assert "S" in out and "A" in out
    assert "S=st" in out and "A=arlo" in out
    with pytest.raises(ConfigurationError):
        line_plot({})


def test_cdf_plot_renders_and_truncates():
    rng = np.random.default_rng(0)
    out = cdf_plot(
        {"st": rng.exponential(10, 500), "arlo": rng.exponential(3, 500)},
        title="fig6a", x_max=30.0,
    )
    assert "fig6a" in out and "CDF" in out
    with pytest.raises(ConfigurationError):
        cdf_plot({"x": np.array([])})
    with pytest.raises(ConfigurationError):
        cdf_plot({})


def test_allocation_timeline_rows():
    allocs = np.array([[2, 1, 1], [1, 2, 1], [1, 1, 2]])
    out = allocation_timeline(np.array([0.0, 20.0, 40.0]), allocs,
                              [128, 256, 512])
    assert out.count("max_len") == 3
    assert "128" in out and "512" in out
    with pytest.raises(ConfigurationError):
        allocation_timeline(np.array([0.0]), np.zeros((1, 2)), [1, 2, 3])
    with pytest.raises(ConfigurationError):
        allocation_timeline(np.array([]), np.zeros((0, 2)), [1, 2])


def test_step_timeline():
    out = step_timeline([(0.0, 5), (10_000.0, 8), (20_000.0, 6)],
                        horizon_ms=30_000.0)
    assert "start 5" in out and "peak 8" in out and "end 6" in out
    with pytest.raises(ConfigurationError):
        step_timeline([], 1000.0)
