"""Experiment runner, scenario definitions, report formatting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import (
    cdf_series,
    comparison_table,
    format_table,
    reduction_percent,
    summary_row,
)
from repro.experiments.runner import ExperimentSpec, run_experiment, run_single
from repro.experiments.scenarios import (
    fig6_scenarios,
    fig7_scenario,
    fig8_scenario,
    fig10_scenarios,
    fig11_scenario,
    table3_scenario,
    table4_scenarios,
)


def tiny_spec(**overrides):
    base = dict(
        name="tiny", model="bert-base", num_gpus=3, rate_per_s=100,
        duration_s=8.0, schemes=("st", "arlo"), seed=1, hint_s=2.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def test_run_experiment_returns_all_schemes():
    results = run_experiment(tiny_spec())
    assert set(results) == {"st", "arlo"}
    for res in results.values():
        assert res.stats.count > 0


def test_run_single_exposes_scheme():
    scheme, result = run_single(tiny_spec(), "arlo")
    assert scheme.name == "arlo"
    assert result.stats.count > 0
    assert scheme.cluster.num_gpus >= 3


def test_spec_scaling_preserves_per_gpu_load():
    spec = tiny_spec(num_gpus=10, rate_per_s=1000)
    scaled = spec.scaled(0.5)
    assert scaled.num_gpus == 5
    assert scaled.rate_per_s == 500
    assert spec.rate_per_s / spec.num_gpus == pytest.approx(
        scaled.rate_per_s / scaled.num_gpus
    )
    assert spec.scaled(0.01).num_gpus >= 2  # floor
    with pytest.raises(ConfigurationError):
        spec.scaled(0.0)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        tiny_spec(num_gpus=0)
    with pytest.raises(ConfigurationError):
        tiny_spec(hint_s=100.0)  # hint longer than the trace


def test_custom_runtime_count():
    spec = tiny_spec(num_runtimes=4, schemes=("arlo",))
    scheme, _ = run_single(spec, "arlo")
    assert len(scheme.registry) == 4


def test_all_scenarios_construct():
    specs = (
        fig6_scenarios()
        + [fig7_scenario(1000), fig8_scenario(), fig11_scenario(8),
           table3_scenario()]
        + fig10_scenarios()
        + table4_scenarios()
    )
    for spec in specs:
        assert spec.num_gpus >= 2
        assert spec.rate_per_s > 0
        trace = None  # construction only; running them is the benches' job
    # Fig. 8 carries an autoscaler bound to the scaled GPU count.
    f8 = fig8_scenario(scale=0.6)
    assert f8.autoscaler.min_gpus == f8.num_gpus


# -- report ------------------------------------------------------------------

def test_reduction_percent():
    assert reduction_percent(10.0, 3.0) == pytest.approx(70.0)
    assert reduction_percent(10.0, 12.0) == pytest.approx(-20.0)
    with pytest.raises(ConfigurationError):
        reduction_percent(0.0, 1.0)


def test_cdf_series_monotone():
    lat = np.random.default_rng(0).exponential(10.0, size=1000)
    values, probs = cdf_series(lat, points=50)
    assert values.shape == probs.shape == (50,)
    assert np.all(np.diff(values) >= 0)
    assert probs[0] == 0.0 and probs[-1] == 1.0
    with pytest.raises(ConfigurationError):
        cdf_series(np.empty(0))


def test_comparison_table_and_format():
    results = run_experiment(tiny_spec())
    rows = comparison_table(results, reference="arlo")
    names = {r["scheme"] for r in rows}
    assert names == {"st", "arlo"}
    st_row = next(r for r in rows if r["scheme"] == "st")
    assert "arlo_mean_reduction_%" in st_row
    text = format_table(rows, title="tiny")
    assert "tiny" in text and "st" in text and "mean_ms" in text
    with pytest.raises(ConfigurationError):
        comparison_table(results, reference="nope")
    with pytest.raises(ConfigurationError):
        format_table([])


def test_summary_row_fields():
    results = run_experiment(tiny_spec(schemes=("st",)))
    row = summary_row(results["st"])
    assert set(row) >= {"scheme", "mean_ms", "p98_ms", "slo_violation_%"}
