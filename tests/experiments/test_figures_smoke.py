"""Micro-scale smoke tests of every figure/table entry point.

The benchmarks run these at paper scale; here each one runs at a tiny
scale so ``pytest tests/`` alone exercises the full harness surface.
"""

import numpy as np
import pytest

from repro.experiments import figures


def test_fig1_smoke():
    data = figures.fig1_length_distributions(rate_per_s=50.0)
    assert data["overall"]["max"] <= 125
    assert len(data["per_minute"]) >= 9


@pytest.mark.parametrize("model", ["bert-base", "bert-large", "dolly"])
def test_fig2_smoke(model):
    data = figures.fig2_latency_curves(model)
    assert len(data["lengths"]) == len(data["static_ms"])
    assert np.all(np.asarray(data["dynamic_ms"]) > 0)


def test_fig4_smoke():
    data = figures.fig4_motivating_scenario()
    assert set(data) == {"ideal (ILB)", "greedy (IG)", "request scheduler"}
    rs = data["request scheduler"]["slo_violations"]
    assert rs < data["ideal (ILB)"]["slo_violations"]
    assert rs < data["greedy (IG)"]["slo_violations"]


def test_fig5_smoke():
    data = figures.fig5_worked_example()
    assert data["chosen_max_length"] == 384  # Q3 in the paper's figure
    assert data["ideal_level"] == 1 and data["chosen_level"] == 2
    assert data["levels_peeked"] == 2 and data["demoted"]


def test_fig6_smoke():
    data = figures.fig6(scale=0.3, duration_s=10.0)
    assert set(data) == {"fig6a", "fig6b"}
    for rows in data.values():
        assert {r["scheme"] for r in rows} == {"st", "dt", "infaas", "arlo"}


def test_fig7_smoke():
    data = figures.fig7(rates=(400, 800), scale=0.3, duration_s=8.0)
    assert data["rates"] == [400, 800]
    assert all(len(v) == 2 for v in data["mean_ms"].values())


def test_fig8_smoke():
    data = figures.fig8(scale=0.6, duration_s=40.0)
    for d in data.values():
        assert d["time_weighted_gpus"] >= 1.0
        assert d["p98_ms"] > 0


def test_autoscaling_row_tolerates_results_without_autoscaler():
    """Regression: Fig. 8 rows used to KeyError on results whose
    ``control_stats`` carry no ``scale_outs``/``scale_ins`` counters
    (merged shard summaries, replayed result dicts); they now report
    zero scaling actions and an empty GPU timeline."""
    from types import SimpleNamespace

    result = SimpleNamespace(
        time_weighted_gpus=3.0, p98_ms=42.0, mean_ms=11.0,
        control_stats={"reschedules": 2},
        metrics=SimpleNamespace(),  # no gpu_timeline attribute
    )
    row = figures.autoscaling_row(result)
    assert row["scale_outs"] == 0 and row["scale_ins"] == 0
    assert row["gpu_timeline"] == []
    assert row["time_weighted_gpus"] == 3.0
    assert row["p98_ms"] == 42.0


def test_fig10_smoke():
    data = figures.fig10(scale=0.04, duration_s=10.0)
    assert set(data) == {"fig10a", "fig10b"}


def test_fig11_smoke():
    data = figures.fig11(counts=(4, 8), scale=0.15, duration_s=10.0)
    assert set(data) == {4, 8}
    assert all(v["mean_ms"] > 0 for v in data.values())


def test_fig12_smoke():
    data = figures.fig12(scale=0.4, duration_s=40.0)
    allocs = np.asarray(data["allocations"])
    assert allocs.shape[1] == len(data["max_lengths"]) == 8
    assert allocs.shape[0] >= 2


def test_table2_smoke():
    rows = figures.table2(configs=((10, 4), (40, 8)), repeats=1)
    assert [(r.num_gpus, r.num_runtimes) for r in rows] == [(10, 4), (40, 8)]
    assert all(r.solve_time_s < 5.0 for r in rows)


def test_table3_smoke():
    rows = figures.table3(scale=0.4, duration_s=30.0)
    assert {r["scheme"] for r in rows} == {"arlo", "arlo-even", "arlo-global"}


def test_table4_smoke():
    data = figures.table4(scale=0.3, duration_s=15.0)
    assert len(data) == 3
    for schemes in data.values():
        assert set(schemes) == {"arlo", "arlo-ilb", "arlo-ig"}
