"""CLI commands end-to-end (in-process, no subprocess overhead)."""

import json

import pytest

from repro.cli import main


def test_trace_roundtrip(tmp_path, capsys):
    out = tmp_path / "t.npz"
    rc = main(["trace", "--rate", "100", "--duration", "3",
               "--output", str(out)])
    assert rc == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out


def test_trace_run_mode_summarizes_and_validates(tmp_path, capsys):
    """``trace`` without ``--output`` runs a traced simulation, prints
    the span summary, and exports schema-valid artifacts."""
    spans = tmp_path / "spans.jsonl"
    timeline = tmp_path / "timeline.jsonl"
    prom = tmp_path / "metrics.prom"
    rc = main([
        "trace", "--rate", "80", "--duration", "4", "--gpus", "3",
        "--spans-out", str(spans), "--timeline-out", str(timeline),
        "--prom-out", str(prom), "--validate",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace summary" in out
    assert "tail attribution" in out
    assert spans.exists() and timeline.exists()
    assert all(json.loads(line) for line in spans.read_text().splitlines())
    assert "# TYPE" in prom.read_text()


def test_profile_command(tmp_path, capsys):
    out = tmp_path / "profiles.json"
    rc = main(["profile", "--model", "bert-base", "--output", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert len(payload["runtimes"]) == 8
    assert "max_length" in capsys.readouterr().out


def test_simulate_synthetic(tmp_path, capsys):
    summary_path = tmp_path / "run.json"
    rc = main([
        "simulate", "--rate", "100", "--duration", "3", "--gpus", "3",
        "--scheme", "arlo", "--output", str(summary_path),
    ])
    assert rc == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed["scheme"] == "arlo"
    assert printed["requests"] > 0
    assert json.loads(summary_path.read_text())["scheme"] == "arlo"


def test_simulate_from_saved_trace(tmp_path, capsys):
    trace_path = tmp_path / "t.npz"
    main(["trace", "--rate", "80", "--duration", "3",
          "--output", str(trace_path)])
    capsys.readouterr()
    rc = main(["simulate", "--trace", str(trace_path), "--gpus", "2",
               "--scheme", "st"])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["scheme"] == "st"


def test_compare_with_cdf(capsys):
    rc = main([
        "compare", "--rate", "100", "--duration", "3", "--gpus", "3",
        "--schemes", "st", "arlo", "--cdf",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "arlo_mean_reduction_%" in out or "mean_ms" in out
    assert "latency CDF" in out


def test_solve_from_file(tmp_path, capsys):
    problem = {
        "num_gpus": 4,
        "demand": [20, 8, 3],
        "capacity": [20, 12, 8],
        "service_ms": [1.0, 2.0, 3.0],
    }
    path = tmp_path / "problem.json"
    path.write_text(json.dumps(problem))
    rc = main(["solve", "--input", str(path), "--method", "dp"])
    assert rc == 0
    result = json.loads(capsys.readouterr().out)
    assert sum(result["allocation"]) == 4
    assert result["solver"] == "dp"


def test_solve_from_stdin(monkeypatch, capsys):
    import io

    problem = {
        "num_gpus": 2,
        "demand": [5, 1],
        "capacity": [10, 5],
        "service_ms": [1.0, 2.0],
    }
    monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(problem)))
    rc = main(["solve", "--method", "brute"])
    assert rc == 0
    assert sum(json.loads(capsys.readouterr().out)["allocation"]) == 2


def test_experiment_from_spec_file(tmp_path, capsys):
    spec = {
        "name": "cli-exp",
        "model": "bert-base",
        "num_gpus": 3,
        "rate_per_s": 100,
        "duration_s": 5.0,
        "schemes": ["st", "arlo"],
        "hint_s": 2.0,
        "sweep": {"seed": [1, 2]},
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    out_path = tmp_path / "results.json"
    rc = main(["experiment", "--spec", str(path), "--output", str(out_path)])
    assert rc == 0
    results = json.loads(out_path.read_text())
    assert len(results) == 2  # two sweep points
    for per_scheme in results.values():
        assert set(per_scheme) == {"st", "arlo"}
        assert per_scheme["arlo"]["requests"] > 0


def test_experiment_from_stdin(monkeypatch, capsys):
    import io

    spec = {"name": "cli-stdin", "model": "bert-base", "num_gpus": 2,
            "rate_per_s": 60, "duration_s": 4.0, "schemes": ["st"],
            "hint_s": 1.0}
    monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(spec)))
    rc = main(["experiment"])
    assert rc == 0
    results = json.loads(capsys.readouterr().out)
    assert "cli-stdin" in results


def test_unknown_scheme_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["simulate", "--scheme", "alchemy"])
