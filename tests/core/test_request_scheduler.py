"""Algorithm 1, including the paper's Fig. 5 worked example."""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import (
    ArloRequestScheduler,
    RequestSchedulerConfig,
)
from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from tests.core.helpers import make_registry


def build_scheduler(registry, alloc, **cfg):
    state = ClusterState.bootstrap(registry, alloc)
    mlq = MultiLevelQueue.from_cluster(state)
    scheduler = ArloRequestScheduler(
        registry=registry,
        mlq=mlq,
        config=RequestSchedulerConfig(**cfg) if cfg else RequestSchedulerConfig(),
    )
    return state, mlq, scheduler


def load_instance(mlq, instance, count):
    for _ in range(count):
        instance.enqueue(0.0, 1)
    mlq.refresh(instance)


def test_fig5_worked_example():
    """Fig. 5: λ=0.85, α=0.9, L=3; request len 200.

    Q2 head congestion 54/60 = 0.9 ≥ 0.85 → skip, decay to 0.765;
    Q3 head congestion 28/48 ≈ 0.583 < 0.765 → dispatch to Q3.
    """
    registry = make_registry([128, 256, 384, 512], [80, 60, 48, 40])
    state, mlq, scheduler = build_scheduler(
        registry, [1, 1, 1, 1], lam=0.85, alpha=0.9, max_peek_levels=3
    )
    q2 = state.active_instances(1)[0]
    q3 = state.active_instances(2)[0]
    q4 = state.active_instances(3)[0]
    load_instance(mlq, q2, 54)
    load_instance(mlq, q3, 28)
    load_instance(mlq, q4, 10)
    decision = scheduler.select(200)
    assert decision.instance is q3
    assert decision.ideal_level == 1
    assert decision.level == 2
    assert decision.demoted
    assert not decision.fell_back
    assert decision.levels_peeked == 2


def test_ideal_runtime_preferred_when_uncongested():
    registry = make_registry([128, 256, 384, 512], [80, 60, 48, 40])
    state, mlq, scheduler = build_scheduler(registry, [1, 1, 1, 1])
    decision = scheduler.select(200)
    assert decision.level == 1  # the ideal runtime (256) takes it
    assert not decision.demoted


def test_fallback_to_top_candidate_when_all_congested():
    registry = make_registry([128, 256], [80, 60])
    state, mlq, scheduler = build_scheduler(registry, [1, 1])
    i0 = state.active_instances(0)[0]
    i1 = state.active_instances(1)[0]
    load_instance(mlq, i0, 79)
    load_instance(mlq, i1, 59)
    decision = scheduler.select(100)
    assert decision.fell_back
    assert decision.instance is i0  # top candidate = ideal runtime's head
    assert scheduler.fallbacks == 1


def test_peek_limit_enforced():
    registry = make_registry([64, 128, 192, 256, 320], [90, 80, 70, 60, 50])
    state, mlq, scheduler = build_scheduler(
        registry, [1, 1, 1, 1, 1], lam=0.85, alpha=0.9, max_peek_levels=2
    )
    # Congest the first two candidates; the third is idle but beyond L.
    load_instance(mlq, state.active_instances(0)[0], 89)
    load_instance(mlq, state.active_instances(1)[0], 79)
    decision = scheduler.select(10)
    assert decision.levels_peeked == 2
    assert decision.fell_back
    assert decision.level == 0


def test_empty_levels_skipped_without_consuming_peeks():
    registry = make_registry([64, 128, 192], [90, 80, 70])
    state, mlq, scheduler = build_scheduler(
        registry, [1, 0, 1], max_peek_levels=2
    )
    load_instance(mlq, state.active_instances(0)[0], 89)
    decision = scheduler.select(10)
    # level 1 is empty; level 2 is within the two *peeks* of real heads
    assert decision.level == 2
    assert not decision.fell_back


def test_threshold_decay_makes_demotion_conservative():
    """With heavy decay, far levels need to be much emptier to win."""
    registry = make_registry([64, 128, 192, 256], [80, 80, 80, 80])
    state, mlq, scheduler = build_scheduler(
        registry, [1, 1, 1, 1], lam=0.5, alpha=0.1
    )
    # Ideal slightly above λ; all others moderately loaded (0.25 > λ·α).
    load_instance(mlq, state.active_instances(0)[0], 41)
    for lvl in (1, 2, 3):
        load_instance(mlq, state.active_instances(lvl)[0], 20)
    decision = scheduler.select(10)
    assert decision.fell_back  # nothing beats the decayed threshold
    assert decision.level == 0


def test_long_requests_have_fewer_candidates():
    registry = make_registry([128, 256, 384, 512], [80, 60, 48, 40])
    state, mlq, scheduler = build_scheduler(registry, [1, 1, 1, 1])
    decision = scheduler.select(400)
    assert decision.ideal_level == 3
    assert decision.level == 3


def test_unservable_request_raises():
    registry = make_registry([128, 256], [80, 60])
    _, _, scheduler = build_scheduler(registry, [1, 1])
    with pytest.raises(CapacityError):
        scheduler.select(300)


def test_no_populated_candidate_raises():
    registry = make_registry([128, 256], [80, 60])
    state, mlq, scheduler = build_scheduler(registry, [2, 0])
    # only short-runtime instances exist; a 200-token request has no home
    with pytest.raises(CapacityError):
        scheduler.select(200)


def test_dispatch_enqueues_and_refreshes():
    registry = make_registry([128, 256], [80, 60])
    state, mlq, scheduler = build_scheduler(registry, [2, 1])
    decision, start, finish = scheduler.dispatch(5.0, 100)
    assert start == 5.0
    assert finish > start
    assert decision.instance.outstanding == 1
    # Head moved to the idle sibling.
    assert mlq.head(0) is not decision.instance


def test_stats_accumulate():
    registry = make_registry([128, 256], [80, 60])
    state, mlq, scheduler = build_scheduler(registry, [1, 1])
    for _ in range(10):
        scheduler.dispatch(0.0, 50)
    stats = scheduler.stats()
    assert stats["dispatched"] == 10
    assert 0 <= stats["demotion_rate"] <= 1


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RequestSchedulerConfig(lam=0.0)
    with pytest.raises(ConfigurationError):
        RequestSchedulerConfig(alpha=1.5)
    with pytest.raises(ConfigurationError):
        RequestSchedulerConfig(max_peek_levels=0)
    registry = make_registry([128], [60])
    state = ClusterState.bootstrap(registry, [1])
    with pytest.raises(ConfigurationError):
        ArloRequestScheduler(registry=registry, mlq=MultiLevelQueue(3))


def test_algorithm1_complexity_peek_bound():
    """Dispatch touches at most L heads regardless of runtime count."""
    edges = [64 * i for i in range(1, 9)]
    registry = make_registry(edges, [90 - 5 * i for i in range(8)])
    state, mlq, scheduler = build_scheduler(
        registry, [1] * 8, lam=0.01, alpha=0.99, max_peek_levels=4
    )
    for lvl in range(8):
        load_instance(mlq, state.active_instances(lvl)[0], 5)
    decision = scheduler.select(10)
    assert decision.levels_peeked <= 4
