"""Vectorized batch dispatch vs scalar Algorithm 1.

The contract of ``ArloRequestScheduler.dispatch_batch`` is *decision*
equivalence with the scalar walk, from identical starting state:

- every admitted request lands on its **ideal** level (the slack
  certificate proves the scalar probe would accept it there);
- the per-level multiset of member queue depths after the batch equals
  the scalar run's (water-filling reproduces repeated min-pops), so
  every future probe sees the same head depth;
- the counters advance identically (batch admissions are never
  demotions, fallbacks, or gate rejections by construction);
- anything the certificate cannot prove is left to the scalar path:
  the batch returns a shorter prefix (or ``None``) and the caller
  replays the rest through ``dispatch_fast`` from the updated state.

Request-to-instance *pairing* within a level is explicitly not part of
the contract (same-profile members are interchangeable), so the tests
compare levels, depths, and counters — never instance ids.
"""

import copy

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import (
    ArloRequestScheduler,
    RequestSchedulerConfig,
)
from tests.core.helpers import make_registry


def build_scheduler(alloc, capacities=(8, 6, 4, 4), **cfg):
    registry = make_registry([128, 256, 384, 512], list(capacities))
    state = ClusterState.bootstrap(registry, list(alloc))
    mlq = MultiLevelQueue.from_cluster(state)
    scheduler = ArloRequestScheduler(
        registry=registry,
        mlq=mlq,
        config=RequestSchedulerConfig(**cfg) if cfg else RequestSchedulerConfig(),
    )
    return state, mlq, scheduler


def level_depths(mlq):
    """Per-level sorted member queue depths (the multiset that drives
    every future head probe)."""
    return [
        sorted(inst.outstanding for inst in level._members.values())
        for level in mlq.levels
    ]


def counters(scheduler):
    return (
        scheduler.dispatched,
        scheduler.demotions,
        scheduler.fallbacks,
        scheduler.gated,
    )


def run_scalar(scheduler, now_ms, lengths):
    return [scheduler.dispatch_fast(now_ms, int(l)) for l in lengths]


def run_batched(scheduler, now_ms, lengths):
    """The simulator's batch-then-scalar-tail composition."""
    triples = scheduler.dispatch_batch(now_ms, [int(l) for l in lengths])
    if triples is None:
        triples = []
    for l in lengths[len(triples):]:
        triples.append(scheduler.dispatch_fast(now_ms, int(l)))
    return triples


def assert_equivalent(sched_a, sched_b, out_a, out_b):
    assert [t[0].runtime_index for t in out_a] == [
        t[0].runtime_index for t in out_b
    ]
    assert counters(sched_a) == counters(sched_b)
    assert level_depths(sched_a.mlq) == level_depths(sched_b.mlq)


def test_batch_matches_scalar_on_uncongested_queue():
    rng = np.random.default_rng(3)
    lengths = rng.integers(1, 513, size=48)
    state, _mlq, scalar = build_scheduler([3, 3, 2, 2])
    batched = copy.deepcopy(scalar)

    out_a = run_scalar(scalar, 0.0, lengths)
    out_b = run_batched(batched, 0.0, lengths)

    assert batched.batched > 0, "certificate never engaged"
    assert_equivalent(scalar, batched, out_a, out_b)
    state.congestion.verify(state.instances.values())


def test_batch_prefix_hands_congested_tail_to_scalar():
    """Preload one level near its threshold: the certificate admits
    only the slack, and the scalar tail demotes identically."""
    state, mlq, scalar = build_scheduler([2, 2, 2, 2])
    # λ=0.85, cap=6 → T=6 (5/6≈0.833 < 0.85 ≤ 6/6): load level 1 to
    # depth 4+4 so its slack is (6-4)*2 = 4.
    for inst in state.active_instances(1):
        for _ in range(4):
            inst.enqueue(0.0, 200)
        mlq.refresh(inst)
    batched = copy.deepcopy(scalar)

    lengths = [200] * 10  # all ideal level 1; 4 fit, 6 must demote
    out_a = run_scalar(scalar, 0.0, lengths)
    out_b = run_batched(batched, 0.0, lengths)

    assert batched.batched == 4
    assert scalar.demotions == 6
    assert_equivalent(scalar, batched, out_a, out_b)


def test_batch_over_multiple_rounds_with_completions():
    """Decision equivalence must survive batch → complete → batch:
    completing at each level's head (the min-depth member) keeps the
    two sides' depth multisets comparable between rounds."""
    rng = np.random.default_rng(11)
    state, _mlq, scalar = build_scheduler([3, 3, 2, 2])
    batched = copy.deepcopy(scalar)

    def complete_heads(scheduler, per_level=2):
        for level in scheduler.mlq.levels:
            members = sorted(
                level._members.values(), key=lambda i: i.outstanding
            )
            for inst in members[:per_level]:
                if inst.outstanding:
                    inst.complete()
                    scheduler.mlq.refresh(inst)

    now = 0.0
    for round_no in range(4):
        lengths = rng.integers(1, 513, size=32)
        out_a = run_scalar(scalar, now, lengths)
        out_b = run_batched(batched, now, np.array(lengths))
        assert_equivalent(scalar, batched, out_a, out_b)
        complete_heads(scalar)
        complete_heads(batched)
        now += 50.0

    assert batched.batched > 0
    state.congestion.verify(state.instances.values())


def test_batch_refuses_when_gate_set():
    """A wired circuit breaker disables batching wholesale — gate
    verdicts are per-instance and stay on the scalar path."""
    _state, _mlq, scheduler = build_scheduler([2, 2, 2, 2])
    scheduler.gate = lambda inst: True
    before = level_depths(scheduler.mlq)
    assert scheduler.dispatch_batch(0.0, [100] * 8) is None
    assert level_depths(scheduler.mlq) == before
    assert scheduler.dispatched == 0


def test_batch_refuses_invalid_lengths():
    _state, _mlq, scheduler = build_scheduler([2, 2, 2, 2])
    assert scheduler.dispatch_batch(0.0, [100, 0, 100, 100, 100]) is None
    assert scheduler.dispatch_batch(0.0, [100, 600, 100, 100, 100]) is None
    assert scheduler.dispatched == 0


def test_batch_refuses_tiny_prefix():
    """Below the fixed-cost break-even (and when the first request's
    level has no slack at all) the batch declines and leaves state
    untouched."""
    state, mlq, scheduler = build_scheduler([1, 1, 1, 1])
    assert scheduler.dispatch_batch(0.0, [100, 100, 100]) is None
    inst = state.active_instances(0)[0]
    for _ in range(8):  # cap 8, λ=0.85 → T=7: depth 8 has zero slack
        inst.enqueue(0.0, 100)
    mlq.refresh(inst)
    assert scheduler.dispatch_batch(0.0, [100] * 8) is None
    assert scheduler.dispatched == 0


def test_batch_refuses_heterogeneous_capacity_level():
    """Mixed member capacities break the uniform-threshold argument
    (the min-depth head can reject while slack remains elsewhere), so
    such a level must end the prefix."""
    state, _mlq, scheduler = build_scheduler([2, 2, 2, 2])
    state.active_instances(0)[0]._capacity += 1
    assert scheduler.dispatch_batch(0.0, [100] * 8) is None
    assert scheduler.dispatched == 0


def test_batch_start_finish_use_scalar_enqueue_arithmetic():
    """Chained admissions on one member must reproduce the scalar
    enqueue recurrence bit-for-bit: start = max(now, busy), finish =
    start + service, finish-to-finish within the chain."""
    _state, _mlq, scalar = build_scheduler([1, 2, 2, 2])
    batched = copy.deepcopy(scalar)

    lengths = [100, 100, 100, 100, 100]
    out_a = run_scalar(scalar, 5.0, lengths)
    out_b = run_batched(batched, 5.0, lengths)
    assert batched.batched == len(lengths)
    # One member at level 0 → pairing is forced, so the (start, finish)
    # sequence itself must match, not just the multiset.
    assert [(s, f) for _, s, f in out_a] == [(s, f) for _, s, f in out_b]


def test_batch_matches_scalar_across_mixed_levels_under_load():
    """Randomized steady-state soak: random lengths against partially
    loaded levels, batch+tail vs scalar, repeated."""
    rng = np.random.default_rng(29)
    state, mlq, scalar = build_scheduler([4, 3, 2, 2], lam=0.8)
    for level_idx in (0, 1):
        for inst in state.active_instances(level_idx):
            for _ in range(int(rng.integers(0, 4))):
                inst.enqueue(0.0, 64)
            mlq.refresh(inst)
    batched = copy.deepcopy(scalar)

    for _ in range(6):
        lengths = rng.integers(1, 513, size=24)
        out_a = run_scalar(scalar, 0.0, lengths)
        out_b = run_batched(batched, 0.0, lengths)
        assert_equivalent(scalar, batched, out_a, out_b)
    assert batched.batched > 0
