"""Shared fixtures for core tests: registries with controlled capacities."""

from __future__ import annotations

import numpy as np

from repro.runtimes.compiler import SimulatedCompiler
from repro.runtimes.models import bert_base
from repro.runtimes.profiler import RuntimeProfile
from repro.runtimes.registry import RuntimeRegistry
from repro.units import PER_REQUEST_OVERHEAD_MS


def make_registry(
    max_lengths: list[int],
    capacities: list[int] | None = None,
    slo_ms: float = 450.0,
    model=None,
) -> RuntimeRegistry:
    """Registry with controlled per-runtime capacities.

    With explicit ``capacities``, profiled service times are fabricated
    so runtime i reports exactly ``capacities[i]`` as M_i (useful for
    congestion-threshold tests; the *true* execution model remains the
    BERT staircase). With ``capacities=None``, profiles are measured
    noiselessly from the true latency model, so scheduling decisions and
    actual execution agree exactly.
    """
    compiler = SimulatedCompiler()
    model = model or bert_base()
    profiles = []
    for i, ml in enumerate(max_lengths):
        runtime = compiler.compile_static(model, ml)
        if capacities is None:
            service = runtime.service_ms(ml)
        else:
            service = slo_ms / capacities[i] - PER_REQUEST_OVERHEAD_MS - 1e-6
        profiles.append(
            RuntimeProfile(runtime=runtime, slo_ms=slo_ms, service_ms=service)
        )
    registry = RuntimeRegistry(profiles=profiles)
    if capacities is not None:
        got = [p.capacity for p in registry]
        assert got == list(capacities), f"capacity fabrication failed: {got}"
    return registry


def uniform_demand(registry: RuntimeRegistry, per_bin: float) -> np.ndarray:
    return np.full(len(registry), per_bin)
