"""The Fig. 4 motivating scenario: why naive dispatching violates SLOs.

The paper's setup: a 4-GPU cluster runs two instances with max_length
128, one with 256 and one with 512. A burst of short requests arrives
first; a burst of long requests (257–512) follows. The *ideal*
(least-padding) policy strands short requests behind the two small
instances; the *greedy* policy parks short requests on the big
instance and starves the long latecomers; judiciously demoting some
shorts to the 256 instance serves the most requests within the SLO.

We reproduce the effect with BERT-Large's real staircase latencies and
a tight SLO: the Arlo Request Scheduler (demotion with conservative
decaying thresholds) must incur strictly fewer SLO violations than
both ILB (the ideal policy) and IG (the greedy policy) on this
adversarial trace.
"""

import numpy as np
import pytest

from repro.baselines.dispatchers import (
    ArloDispatcher,
    InterGroupGreedy,
    IntraGroupLoadBalance,
)
from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler, RequestSchedulerConfig
from repro.runtimes.models import bert_large
from repro.workload.trace import Trace
from tests.core.helpers import make_registry

SLO_MS = 40.0
N_SHORT = 30
N_LONG = 9


def build(dispatcher_name):
    registry = make_registry([128, 256, 512], None, slo_ms=SLO_MS,
                             model=bert_large())
    state = ClusterState.bootstrap(registry, [2, 1, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    if dispatcher_name == "rs":
        scheduler = ArloRequestScheduler(
            registry=registry, mlq=mlq,
            config=RequestSchedulerConfig(lam=0.85, alpha=0.9,
                                          max_peek_levels=3),
        )
        return registry, state, ArloDispatcher(scheduler=scheduler)
    cls = IntraGroupLoadBalance if dispatcher_name == "ilb" else InterGroupGreedy
    return registry, state, cls(registry=registry, mlq=mlq)


def adversarial_trace():
    """Short burst then long burst, 0.5 ms apart within each burst."""
    times = np.concatenate([
        np.arange(N_SHORT) * 0.5,
        20.0 + np.arange(N_LONG) * 0.5,
    ])
    lengths = np.concatenate([
        np.full(N_SHORT, 100, dtype=np.int64),
        np.linspace(257, 512, N_LONG).astype(np.int64),
    ])
    return Trace(times, lengths)


def run(dispatcher_name):
    _registry, _state, dispatcher = build(dispatcher_name)
    violations = 0
    # Within this tight window no request completes before the last
    # arrives, so latencies are fully determined at enqueue time.
    for req in adversarial_trace():
        _, _, finish = dispatcher.dispatch(req.arrival_ms, req.length)
        if finish - req.arrival_ms > SLO_MS:
            violations += 1
    return violations


def test_capacities_match_paper_shape():
    registry = make_registry([128, 256, 512], None, slo_ms=SLO_MS,
                             model=bert_large())
    caps = [p.capacity for p in registry]
    # Small instances absorb several requests within SLO, the big one few.
    assert caps == sorted(caps, reverse=True)
    assert caps[0] >= 3 * caps[-1]


def test_ideal_policy_strands_short_requests():
    assert run("ilb") > 0


def test_greedy_starves_latecomers():
    assert run("ig") > 0


def test_rs_strictly_beats_both_heuristics():
    rs, ilb, ig = run("rs"), run("ilb"), run("ig")
    assert rs < ilb
    assert rs < ig
