"""Periodic Runtime Scheduler: demand → allocation → replacement plan."""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.core.runtime_scheduler import RuntimeScheduler, RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.units import seconds

REGISTRY = build_polymorph_set(bert_base())


def make_scheduler(**cfg):
    bins = LengthBins.from_registry(REGISTRY)
    estimator = DemandEstimator(
        bins=bins, slo_ms=bert_base().slo_ms, window_ms=seconds(120)
    )
    return RuntimeScheduler(
        registry=REGISTRY,
        estimator=estimator,
        config=RuntimeSchedulerConfig(**cfg) if cfg else RuntimeSchedulerConfig(),
    )


def feed(scheduler, lengths, rate_per_s=500.0, duration_s=30.0):
    times = np.linspace(0, seconds(duration_s), int(rate_per_s * duration_s))
    lengths = np.resize(np.asarray(lengths), times.size)
    scheduler.estimator.observe_batch(times, lengths)


def test_decide_tracks_short_demand():
    scheduler = make_scheduler()
    feed(scheduler, [30, 50, 60])  # everything in bin 0
    result = scheduler.decide(seconds(30), num_gpus=10)
    assert result.allocation.sum() == 10
    assert result.allocation[0] >= 5  # most GPUs go to the short runtime
    assert result.allocation[-1] >= 1  # Eq. 7


def test_decide_tracks_long_demand():
    scheduler = make_scheduler()
    feed(scheduler, [500, 480, 460])
    result = scheduler.decide(seconds(30), num_gpus=10)
    assert result.allocation[-1] >= 5


def test_overload_falls_back_to_relaxed_bounds():
    scheduler = make_scheduler()
    feed(scheduler, [500], rate_per_s=20_000.0, duration_s=10.0)
    result = scheduler.decide(seconds(10), num_gpus=2)  # hopeless demand
    assert result.relaxed
    assert result.allocation.sum() == 2


def test_step_produces_consistent_plan():
    scheduler = make_scheduler()
    state = ClusterState.bootstrap(REGISTRY, [7, 0, 0, 0, 0, 0, 0, 3])
    feed(scheduler, [300, 310, 280])  # demand concentrated in bin 4
    result, plan = scheduler.step(seconds(30), state)
    assert result.allocation.sum() == 10
    # Replaying the plan reaches the decided allocation.
    current = state.allocation()
    for s in plan.steps:
        current[s.from_runtime] -= 1
        current[s.to_runtime] += 1
    assert np.array_equal(current, result.allocation)


def test_step_requires_active_instances():
    scheduler = make_scheduler()
    state = ClusterState.bootstrap(REGISTRY, [1, 0, 0, 0, 0, 0, 0, 1])
    for inst in list(state.instances.values()):
        inst.begin_drain()
    with pytest.raises(ConfigurationError):
        scheduler.step(0.0, state)


def test_zero_demand_holds_current_allocation():
    scheduler = make_scheduler()
    state = ClusterState.bootstrap(REGISTRY, [3, 2, 1, 1, 1, 0, 1, 1])
    result, plan = scheduler.step(seconds(30), state)
    assert result.solver == "hold"
    assert np.array_equal(result.allocation, state.allocation())
    assert plan.is_empty


def test_history_and_timeline():
    scheduler = make_scheduler()
    feed(scheduler, [100])
    scheduler.decide(seconds(30), num_gpus=4)
    scheduler.decide(seconds(150), num_gpus=4)
    times, allocs = scheduler.allocation_timeline()
    assert times.tolist() == [seconds(30), seconds(150)]
    assert allocs.shape == (2, len(REGISTRY))
    empty = make_scheduler()
    t, a = empty.allocation_timeline()
    assert t.size == 0 and a.shape == (0, len(REGISTRY))


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RuntimeSchedulerConfig(period_ms=0)
    with pytest.raises(ConfigurationError):
        RuntimeSchedulerConfig(replacement_batch_size=0)


def test_solver_failure_holds_previous_allocation():
    scheduler = make_scheduler()
    state = ClusterState.bootstrap(REGISTRY, [3, 2, 1, 1, 1, 0, 1, 1])
    feed(scheduler, [300, 310, 280])
    scheduler.inject_solver_failures()
    result, plan = scheduler.step(seconds(30), state)
    # Graceful degradation: same allocation, empty plan, incident logged.
    assert result.solver == "fallback-hold"
    assert np.array_equal(result.allocation, state.allocation())
    assert plan.is_empty
    assert scheduler.solver_fallbacks == 1
    assert len(scheduler.incidents) == 1
    incident = scheduler.incidents[0]
    assert incident.time_ms == seconds(30)
    assert "SolverError" in incident.error
    assert incident.held_allocation == tuple(state.allocation())
    # The next period solves normally again.
    result2, _plan2 = scheduler.step(seconds(150), state)
    assert result2.solver != "fallback-hold"
    assert scheduler.solver_fallbacks == 1


def test_inject_solver_failures_validation():
    scheduler = make_scheduler()
    with pytest.raises(ConfigurationError):
        scheduler.inject_solver_failures(0)
