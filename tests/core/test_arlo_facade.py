"""ArloSystem facade: end-to-end request handling without the simulator."""

import numpy as np
import pytest

from repro.core.arlo import ArloConfig, ArloSystem
from repro.errors import ConfigurationError
from repro.runtimes.models import bert_base


@pytest.fixture
def arlo():
    return ArloSystem.build("bert-base", num_gpus=6)


def test_build_deploys_all_gpus(arlo):
    assert arlo.cluster.allocation().sum() == 6
    assert arlo.cluster.allocation()[-1] >= 1
    assert arlo.mlq.total_instances() == 6
    assert arlo.slo_ms == 150.0


def test_build_by_profile_object():
    arlo = ArloSystem.build(bert_base(), num_gpus=4)
    assert arlo.model.name == "bert-base"


def test_build_with_demand_hint():
    demand = np.zeros(8)
    demand[0] = 100.0
    arlo = ArloSystem.build("bert-base", num_gpus=6, initial_demand=demand)
    assert arlo.cluster.allocation()[0] >= 3


def test_handle_and_complete_roundtrip(arlo):
    decision, start, finish = arlo.handle(0.0, length=37)
    assert finish > start >= 0.0
    assert arlo.cluster.total_outstanding() == 1
    arlo.complete(decision.instance.instance_id)
    assert arlo.cluster.total_outstanding() == 0
    with pytest.raises(ConfigurationError):
        arlo.complete(10_000)


def test_handle_feeds_demand_estimator(arlo):
    for i in range(50):
        arlo.handle(float(i), length=30)
    assert arlo.runtime_scheduler.estimator.observed == 50


def test_reschedule_adapts_to_observed_lengths(arlo):
    # Saturate demand with long requests, then reschedule.
    for i in range(600):
        arlo.runtime_scheduler.estimator.observe(float(i * 20), 500)
    result, plan = arlo.reschedule(now_ms=12_000.0)
    assert result.allocation[-1] >= 2
    assert result.allocation.sum() == 6


def test_snapshot_shape(arlo):
    arlo.handle(0.0, 100)
    snap = arlo.snapshot()
    assert snap["gpus"] == 6
    assert snap["outstanding"] == 1
    assert len(snap["allocation"]) == 8


def test_config_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        ArloSystem.build("bert-base", num_gpus=4, config=ArloConfig(num_gpus=5))
    with pytest.raises(ConfigurationError):
        ArloConfig(num_gpus=0)
