"""Eqs. 1–7 allocation problem: semantics and solver cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    AllocationProblem,
    solve_allocation,
    solve_bruteforce,
    solve_dp,
    solve_local_search,
    solve_milp_encoding,
)
from repro.errors import ConfigurationError, InfeasibleError


def make_problem(G=4, demand=(10, 5, 2), capacity=(20, 12, 8),
                 service=(1.0, 2.0, 3.0)):
    return AllocationProblem(
        num_gpus=G,
        demand=np.asarray(demand, dtype=float),
        capacity=np.asarray(capacity),
        service_ms=np.asarray(service, dtype=float),
    )


# -- problem semantics -------------------------------------------------------

def test_validation():
    with pytest.raises(ConfigurationError):
        make_problem(G=0)
    with pytest.raises(ConfigurationError):
        make_problem(demand=(-1, 5, 2))
    with pytest.raises(ConfigurationError):
        make_problem(capacity=(0, 12, 8))
    with pytest.raises(ConfigurationError):
        make_problem(service=(0.0, 2.0, 3.0))
    with pytest.raises(ConfigurationError):
        AllocationProblem(num_gpus=2, demand=np.array([1.0]),
                          capacity=np.array([1, 2]),
                          service_ms=np.array([1.0]))


def test_evaluate_cascade_eq4_eq5():
    # One instance of runtime 0 (cap 20) faces demand 30: serves 20 and
    # cascades 10. Runtime 1 then sees 15, serves its capacity of 12 and
    # cascades 3, which the last runtime absorbs unconditionally.
    p = make_problem(G=3, demand=(30, 5, 0))
    cost = p.evaluate(np.array([1, 1, 1]))
    expected = (
        p.mean_latency(0, 20.0) * 20
        + p.mean_latency(1, 12.0) * 12
        + p.mean_latency(2, 3.0) * 3
    )
    assert cost == pytest.approx(expected)


def test_evaluate_last_runtime_takes_everything():
    # Last runtime takes the full remainder even beyond its capacity.
    p = make_problem(G=2, demand=(0, 0, 100), capacity=(20, 12, 8))
    cost = p.evaluate(np.array([0, 0, 2]))
    assert cost == pytest.approx(p.mean_latency(2, 50.0) * 100)


def test_evaluate_stranded_demand_is_infinite():
    p = make_problem(G=1, demand=(0, 0, 5))
    assert p.evaluate(np.array([1, 0, 0])) == float("inf")


def test_evaluate_zero_allocation_zero_demand_ok():
    p = make_problem(G=1, demand=(0, 0, 0))
    assert p.evaluate(np.array([0, 0, 1])) == 0.0


def test_evaluate_arity_checked():
    p = make_problem()
    with pytest.raises(ConfigurationError):
        p.evaluate(np.array([1, 1]))
    with pytest.raises(ConfigurationError):
        p.evaluate(np.array([-1, 2, 3]))


def test_lower_bounds_eq3_eq7():
    p = make_problem(G=10, demand=(45, 5, 0), capacity=(20, 12, 8))
    lb = p.lower_bounds()
    assert lb.tolist() == [2, 0, 1]  # floor(45/20)=2, floor(5/12)=0, Eq.7


def test_lower_bounds_infeasible_raises_and_relaxes():
    p = make_problem(G=2, demand=(100, 50, 10), capacity=(10, 10, 10))
    with pytest.raises(InfeasibleError):
        p.lower_bounds()
    lb = p.lower_bounds(relax=True)
    assert lb.sum() <= 2
    assert lb[-1] >= 1  # Eq. 7 survives relaxation


def test_relaxation_impossible_when_even_one_gpu_short():
    p = make_problem(G=1, demand=(100, 50, 10), capacity=(10, 10, 10))
    lb = p.lower_bounds(relax=True)
    assert lb.tolist() == [0, 0, 1]


def test_is_feasible():
    p = make_problem(G=4, demand=(30, 5, 2), capacity=(20, 12, 8))
    assert p.is_feasible(np.array([1, 2, 1]))
    assert not p.is_feasible(np.array([1, 1, 1]))  # wrong GPU total
    assert not p.is_feasible(np.array([0, 3, 1]))  # violates Eq. 3
    assert not p.is_feasible(np.array([2, 2, 0]))  # violates Eq. 7


# -- solver cross-validation ---------------------------------------------------

def test_dp_matches_bruteforce_basic():
    p = make_problem(G=6, demand=(40, 10, 4))
    dp = solve_dp(p)
    brute = solve_bruteforce(p)
    assert dp.objective == pytest.approx(brute.objective)
    assert p.is_feasible(dp.allocation)


def test_dp_prefers_short_runtimes_for_short_heavy_demand():
    # Nearly all demand in bin 0 and the short runtime is much faster:
    # the DP must give bin 0 the GPUs rather than pooling at the top.
    p = AllocationProblem(
        num_gpus=5,
        demand=np.array([50.0, 0.0, 0.0]),
        capacity=np.array([50, 30, 10]),
        service_ms=np.array([1.0, 3.0, 9.0]),
    )
    res = solve_dp(p)
    assert res.allocation[0] >= 2
    assert res.allocation[-1] >= 1


def test_local_search_matches_dp_on_small_instances():
    p = make_problem(G=8, demand=(60, 25, 10), capacity=(25, 15, 10),
                     service=(1.0, 2.5, 4.0))
    dp = solve_dp(p)
    local = solve_local_search(p)
    assert local.objective <= dp.objective * 1.02 + 1e-9
    assert p.is_feasible(local.allocation)


def test_milp_encoding_matches_dp_on_tiny_instance():
    p = make_problem(G=3, demand=(15, 6, 2), capacity=(20, 12, 8))
    dp = solve_dp(p)
    milp = solve_milp_encoding(p, tangents_per_choice=10)
    assert milp.objective == pytest.approx(dp.objective, rel=0.02)
    # The MILP's internal objective is a valid lower bound.
    assert milp.stats["lower_bound"] <= dp.objective + 1e-6


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.lists(st.floats(min_value=0, max_value=30), min_size=3, max_size=3),
)
def test_dp_equals_bruteforce_randomised(gpus, demand):
    p = AllocationProblem(
        num_gpus=gpus,
        demand=np.asarray(demand),
        capacity=np.array([18, 11, 7]),
        service_ms=np.array([1.0, 2.0, 3.5]),
    )
    try:
        dp = solve_dp(p)
    except InfeasibleError:
        with pytest.raises(InfeasibleError):
            solve_bruteforce(p)
        return
    brute = solve_bruteforce(p)
    assert dp.objective == pytest.approx(brute.objective, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=4, max_value=20),
       st.integers(min_value=0, max_value=10_000))
def test_local_search_feasible_and_near_dp(gpus, seed):
    rng = np.random.default_rng(seed)
    demand = rng.uniform(0, 40, size=4)
    p = AllocationProblem(
        num_gpus=gpus,
        demand=demand,
        capacity=np.array([30, 20, 14, 9]),
        service_ms=np.array([1.0, 1.8, 2.7, 4.1]),
    )
    try:
        local = solve_local_search(p)
    except InfeasibleError:
        return
    assert p.is_feasible(local.allocation)
    dp = solve_dp(p)
    assert local.objective <= dp.objective * 1.05 + 1e-6


# -- facade ---------------------------------------------------------------

def test_solve_allocation_auto_dispatch():
    small = make_problem(G=4)
    assert solve_allocation(small).solver == "dp"
    big = AllocationProblem(
        num_gpus=200,
        demand=np.array([100.0, 50.0, 25.0]),
        capacity=np.array([20, 12, 8]),
        service_ms=np.array([1.0, 2.0, 3.0]),
    )
    assert solve_allocation(big).solver == "local"
    with pytest.raises(ConfigurationError):
        solve_allocation(small, method="quantum")


def test_solver_reports_time_and_stats():
    res = solve_allocation(make_problem(), method="dp")
    assert res.solve_time_s >= 0
    assert res.stats["final_labels"] >= 1


def test_from_profiles_roundtrip():
    from repro.runtimes.models import bert_base
    from repro.runtimes.registry import build_polymorph_set

    registry = build_polymorph_set(bert_base())
    demand = np.linspace(10, 3, len(registry))
    p = AllocationProblem.from_profiles(10, demand, list(registry))
    assert p.num_runtimes == len(registry)
    res = solve_allocation(p)
    assert p.is_feasible(res.allocation)
    with pytest.raises(ConfigurationError):
        AllocationProblem.from_profiles(10, demand[:3], list(registry))
