"""Property-based verification of Algorithm 1's decision invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler, RequestSchedulerConfig
from tests.core.helpers import make_registry

MAX_LENGTHS = [64, 128, 192, 256, 320, 384, 448, 512]
CAPACITIES = [90, 80, 70, 60, 50, 45, 42, 40]


@st.composite
def scenario(draw):
    alloc = draw(st.lists(st.integers(0, 3), min_size=8, max_size=8))
    alloc[-1] = max(alloc[-1], 1)  # Eq. 7
    loads = draw(st.lists(st.integers(0, 100), min_size=sum(alloc),
                          max_size=sum(alloc)))
    length = draw(st.integers(1, 512))
    lam = draw(st.floats(0.3, 1.0))
    alpha = draw(st.floats(0.3, 1.0))
    peek = draw(st.integers(1, 8))
    return alloc, loads, length, lam, alpha, peek


@settings(max_examples=120, deadline=None)
@given(scenario())
def test_algorithm1_decision_invariants(params):
    alloc, loads, length, lam, alpha, peek = params
    registry = make_registry(MAX_LENGTHS, CAPACITIES)
    state = ClusterState.bootstrap(registry, alloc)
    mlq = MultiLevelQueue.from_cluster(state)
    instances = state.active_instances()
    for inst, load in zip(instances, loads):
        for _ in range(load):
            inst.enqueue(0.0, 1)
        mlq.refresh(inst)
    scheduler = ArloRequestScheduler(
        registry=registry, mlq=mlq,
        config=RequestSchedulerConfig(lam=lam, alpha=alpha,
                                      max_peek_levels=peek),
    )
    ideal = registry.ideal_index(length)
    decision = scheduler.select(length)

    # (1) Never a runtime that cannot hold the request.
    assert decision.instance.max_length >= length
    assert decision.level >= ideal
    # (2) The chosen instance is its level's least-loaded active one.
    level_loads = [
        i.outstanding for i in state.active_instances(decision.level)
    ]
    assert decision.instance.outstanding == min(level_loads)
    # (3) Accepted (non-fallback) dispatches beat their decayed threshold.
    if not decision.fell_back:
        threshold = lam * alpha ** (decision.levels_peeked - 1)
        assert decision.instance.congestion() < threshold + 1e-12
        # Every populated level between ideal and the chosen one was
        # peeked and rejected at its own (higher) threshold.
        k = 0
        for lvl in range(ideal, decision.level):
            head = mlq.head(lvl)
            if head is None:
                continue
            assert head.congestion() >= lam * alpha**k - 1e-12
            k += 1
    # (4) The peek budget is honoured.
    assert decision.levels_peeked <= peek
    # (5) Fallback lands on the first populated candidate level.
    if decision.fell_back:
        for lvl in range(ideal, decision.level):
            assert mlq.head(lvl) is None


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(1, 512), min_size=1, max_size=80),
       st.integers(0, 10_000))
def test_dispatch_sequence_conserves_and_balances(lengths, seed):
    """Many dispatches: totals conserve; per-level load stays balanced
    (max-min spread within a level never exceeds 1 under equal traffic)."""
    rng = np.random.default_rng(seed)
    registry = make_registry(MAX_LENGTHS, CAPACITIES)
    alloc = [2, 2, 2, 2, 2, 2, 2, 2]
    state = ClusterState.bootstrap(registry, alloc)
    mlq = MultiLevelQueue.from_cluster(state)
    scheduler = ArloRequestScheduler(registry=registry, mlq=mlq)
    for i, ln in enumerate(lengths):
        scheduler.dispatch(float(i), int(ln))
    assert state.total_outstanding() == len(lengths)
    assert scheduler.dispatched == len(lengths)
    # Within each level, the head choice keeps instances within 1 of
    # each other as long as requests only ever *join* (no completions).
    for lvl in range(8):
        loads = [i.outstanding for i in state.active_instances(lvl)]
        assert max(loads) - min(loads) <= 1
