"""Multi-level queue: heads, lazy invalidation, cross-level queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.state import ClusterState
from repro.core.mlq import InstanceHeap, MultiLevelQueue
from repro.errors import SchedulingError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set

REGISTRY = build_polymorph_set(bert_base())


def make_cluster(alloc):
    return ClusterState.bootstrap(REGISTRY, alloc)


def test_head_is_least_loaded():
    state = make_cluster([3, 0, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    a, b, c = state.active_instances(0)
    a.enqueue(0.0, 10)
    a.enqueue(0.0, 10)
    b.enqueue(0.0, 10)
    for inst in (a, b):
        mlq.refresh(inst)
    assert mlq.head(0) is c
    c.enqueue(0.0, 10)
    c.enqueue(0.0, 10)
    c.enqueue(0.0, 10)
    mlq.refresh(c)
    assert mlq.head(0) is b


def test_head_empty_level():
    state = make_cluster([1, 0, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    assert mlq.head(3) is None


def test_completion_updates_head():
    state = make_cluster([2, 0, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    a, b = state.active_instances(0)
    for _ in range(3):
        a.enqueue(0.0, 10)
    b.enqueue(0.0, 10)
    mlq.refresh(a)
    mlq.refresh(b)
    assert mlq.head(0) is b
    for _ in range(3):
        a.complete()
    mlq.refresh(a)
    assert mlq.head(0) is a


def test_draining_instance_leaves_head():
    state = make_cluster([2, 0, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    a, b = state.active_instances(0)
    b.enqueue(0.0, 10)
    mlq.refresh(b)
    assert mlq.head(0) is a
    a.begin_drain()
    mlq.refresh(a)
    assert mlq.head(0) is b


def test_remove_and_readd():
    state = make_cluster([2, 0, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    a, _ = state.active_instances(0)
    mlq.remove(a)
    assert mlq.head(0) is not a
    with pytest.raises(SchedulingError):
        mlq.remove(a)
    mlq.add(a)
    assert len(mlq.levels[0]) == 2


def test_duplicate_add_rejected():
    state = make_cluster([1, 0, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    with pytest.raises(SchedulingError):
        mlq.add(state.active_instances(0)[0])


def test_least_loaded_across_levels():
    state = make_cluster([1, 1, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    i0 = state.active_instances(0)[0]
    i1 = state.active_instances(1)[0]
    i0.enqueue(0.0, 10)
    i0.enqueue(0.0, 10)
    i1.enqueue(0.0, 10)
    mlq.refresh(i0)
    mlq.refresh(i1)
    # The idle max-length instance (level 7, outstanding 0) wins globally.
    assert mlq.least_loaded(range(0, 8)) is state.active_instances(7)[0]
    assert mlq.least_loaded(range(0, 2)) is i1
    assert mlq.least_loaded([0]) is i0
    assert mlq.least_loaded([2, 3]) is None


def test_total_instances():
    state = make_cluster([2, 3, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    assert mlq.total_instances() == 6


def test_mlq_validation():
    with pytest.raises(SchedulingError):
        MultiLevelQueue(0)
    state = make_cluster([1, 0, 0, 0, 0, 0, 0, 1])
    small = MultiLevelQueue(2)
    with pytest.raises(SchedulingError):
        small.add(state.active_instances(7)[0])  # level 7 out of range


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.booleans()), max_size=60))
def test_heap_head_always_matches_linear_scan(ops):
    """Differential test: lazy heap vs brute-force min after random ops."""
    state = make_cluster([5, 0, 0, 0, 0, 0, 0, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    instances = state.active_instances(0)
    for idx, is_enqueue in ops:
        inst = instances[idx]
        if is_enqueue:
            inst.enqueue(0.0, 10)
        elif inst.outstanding:
            inst.complete()
        mlq.refresh(inst)
        head = mlq.head(0)
        expected_load = min(i.outstanding for i in instances)
        assert head.outstanding == expected_load
