"""Length bins and demand estimation."""

import numpy as np
import pytest

from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.units import seconds


@pytest.fixture(scope="module")
def bins():
    return LengthBins(edges=np.array([64, 128, 256, 512]))


def test_bin_lookup(bins):
    assert bins.bin_of(1) == 0
    assert bins.bin_of(64) == 0
    assert bins.bin_of(65) == 1
    assert bins.bin_of(512) == 3
    with pytest.raises(CapacityError):
        bins.bin_of(513)
    with pytest.raises(CapacityError):
        bins.bin_of(0)


def test_vectorised_matches_scalar(bins):
    lengths = np.array([1, 64, 65, 200, 512])
    assert bins.bins_of(lengths).tolist() == [bins.bin_of(int(x)) for x in lengths]
    with pytest.raises(CapacityError):
        bins.bins_of(np.array([600]))


def test_histogram(bins):
    hist = bins.histogram(np.array([10, 20, 100, 300, 300]))
    assert hist.tolist() == [2, 1, 0, 2]  # 300 > 256 lands in the 512 bin


def test_bins_from_registry_match():
    registry = build_polymorph_set(bert_base())
    bins = LengthBins.from_registry(registry)
    for length in (1, 64, 65, 300, 512):
        assert bins.bin_of(length) == registry.ideal_index(length)


def test_uniform_constructor():
    bins = LengthBins.uniform(512, 64)
    assert len(bins) == 8


def test_bins_validation():
    with pytest.raises(ConfigurationError):
        LengthBins(edges=np.array([], dtype=int))
    with pytest.raises(ConfigurationError):
        LengthBins(edges=np.array([64, 64]))
    with pytest.raises(ConfigurationError):
        LengthBins(edges=np.array([0, 64]))


# -- demand estimator ---------------------------------------------------------

def make_estimator(bins, slo=150.0, window=seconds(10), **kw):
    return DemandEstimator(bins=bins, slo_ms=slo, window_ms=window, **kw)


def test_demand_units(bins):
    """100 arrivals/s in bin 0 with a 150 ms SLO → Q_0 = 15."""
    est = make_estimator(bins)
    times = np.arange(0, seconds(10), 10.0)  # 100/s for 10 s
    est.observe_batch(times, np.full(times.size, 10))
    q = est.demand(seconds(10))
    assert q[0] == pytest.approx(15.0, rel=0.05)
    assert q[1:].sum() == 0


def test_window_eviction(bins):
    est = make_estimator(bins, window=seconds(5))
    est.observe(0.0, 10)
    est.observe(seconds(1), 10)
    assert est.observed == 2
    est.observe(seconds(6.5), 10)
    assert est.observed == 1  # both events before t=1.5s fell out
    q = est.demand(seconds(20))  # everything expired
    assert q.sum() == 0


def test_observe_batch_equivalent_to_loop(bins):
    a = make_estimator(bins)
    b = make_estimator(bins)
    times = np.linspace(0, seconds(5), 100)
    lengths = np.tile(np.array([10, 100, 300, 500]), 25)
    a.observe_batch(times, lengths)
    for t, ln in zip(times, lengths):
        b.observe(float(t), int(ln))
    assert np.array_equal(a.raw_histogram(), b.raw_histogram())
    assert a.demand(seconds(5)) == pytest.approx(b.demand(seconds(5)))


def test_ewma_smoothing(bins):
    est = make_estimator(bins, ewma_alpha=0.5)
    est.observe_batch(np.linspace(0, seconds(9.9), 1000), np.full(1000, 10))
    q1 = est.demand(seconds(10))
    # Demand vanishes, but EWMA remembers half.
    q2 = est.demand(seconds(25))
    assert 0 < q2[0] == pytest.approx(q1[0] / 2, rel=0.01)


def test_estimator_validation(bins):
    with pytest.raises(ConfigurationError):
        DemandEstimator(bins=bins, slo_ms=0, window_ms=seconds(1))
    with pytest.raises(ConfigurationError):
        DemandEstimator(bins=bins, slo_ms=100, window_ms=50)
    with pytest.raises(ConfigurationError):
        DemandEstimator(bins=bins, slo_ms=100, window_ms=seconds(1), ewma_alpha=0)


def test_from_trace_slice(bins):
    q = DemandEstimator.from_trace_slice(
        bins, np.array([10, 10, 100, 500]), span_ms=seconds(2), slo_ms=150.0
    )
    assert q.tolist() == pytest.approx([2 * 0.075, 0.075, 0.0, 0.075])
    with pytest.raises(ConfigurationError):
        DemandEstimator.from_trace_slice(bins, np.array([10]), 0.0, 150.0)
