"""Property-based verification of the coupled prefill/decode split.

Three invariants carry the disaggregated control plane:

1. **Budget partition** — the chosen split always sums to the GPU
   budget with both pools at or above their floors.
2. **Inner feasibility** — the prefill side of every split satisfies
   Eqs. 1–7 on its own sub-budget (``is_feasible`` under the recorded
   relaxation), so the Algorithm-1 walk over the prefill pool keeps
   its Eq. 7 coverage guarantee.
3. **Monotone rebalancing** — the decode pool never *shrinks* as
   decode-occupancy pressure grows (Topkis' monotone selection over
   the scan's decreasing differences; see the module docstring of
   :mod:`repro.core.pool_split`).
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationProblem
from repro.core.pool_split import PoolSplitConfig, solve_pool_split
from repro.errors import ConfigurationError, InfeasibleError


def make_problem(num_gpus, demand):
    """Fabricated staircase: capacities fall, service times rise."""
    n = len(demand)
    return AllocationProblem(
        num_gpus=num_gpus,
        demand=np.asarray(demand, dtype=float),
        capacity=np.linspace(90, 40, n).astype(np.int64),
        service_ms=np.linspace(5.0, 11.0, n),
    )


@st.composite
def scenario(draw):
    n_runtimes = draw(st.integers(2, 6))
    total = draw(st.integers(2, 24))
    demand = draw(
        st.lists(st.floats(0.0, 300.0), min_size=n_runtimes,
                 max_size=n_runtimes)
    )
    occ = draw(st.floats(0.0, 500.0))
    slots = draw(st.integers(1, 16))
    weight = draw(st.floats(0.0, 5000.0))
    return total, demand, occ, slots, weight


@settings(max_examples=100, deadline=None)
@given(scenario())
def test_split_partitions_budget_and_inner_allocation_is_feasible(params):
    total, demand, occ, slots, weight = params
    problem = make_problem(total, demand)
    config = PoolSplitConfig(decode_weight_ms=weight)
    try:
        split = solve_pool_split(
            problem, decode_occupancy=occ,
            decode_slots_per_gpu=float(slots), config=config,
        )
    except InfeasibleError:
        return  # legal outcome: e.g. total < min_prefill + min_decode
    # (1) The split is a partition of the budget above both floors.
    assert split.prefill_gpus + split.decode_gpus == total == split.total_gpus
    assert split.prefill_gpus >= config.min_prefill
    assert split.decode_gpus >= config.min_decode
    # (2) The prefill allocation satisfies Eqs. 2, 3, 7 on its
    # sub-budget (under the relaxation the solver recorded).
    sub = replace(problem, num_gpus=split.prefill_gpus)
    assert sub.is_feasible(split.prefill_allocation, relaxed=split.relaxed)
    assert split.prefill_allocation[-1] >= 1  # Eq. 7 explicitly
    # The recorded objective matches an independent evaluation.
    assert split.prefill_objective == sub.evaluate(split.prefill_allocation)


@settings(max_examples=100, deadline=None)
@given(scenario(), st.floats(0.0, 500.0))
def test_decode_pool_monotone_in_occupancy_pressure(params, extra_occ):
    total, demand, occ, slots, weight = params
    problem = make_problem(total, demand)
    config = PoolSplitConfig(decode_weight_ms=weight)
    try:
        low = solve_pool_split(
            problem, decode_occupancy=occ,
            decode_slots_per_gpu=float(slots), config=config,
        )
    except InfeasibleError:
        return
    high = solve_pool_split(
        problem, decode_occupancy=occ + extra_occ,
        decode_slots_per_gpu=float(slots), config=config,
    )
    assert high.decode_gpus >= low.decode_gpus


def test_split_is_deterministic():
    problem = make_problem(12, [80.0, 40.0, 20.0, 10.0])
    kwargs = dict(decode_occupancy=37.0, decode_slots_per_gpu=8.0)
    a = solve_pool_split(problem, **kwargs)
    b = solve_pool_split(problem, **kwargs)
    assert a.decode_gpus == b.decode_gpus
    assert a.prefill_objective == b.prefill_objective
    assert np.array_equal(a.prefill_allocation, b.prefill_allocation)


def test_zero_pressure_keeps_decode_pool_minimal():
    # With no decode occupancy the scan's decode term vanishes, and
    # more prefill GPUs never worsen the Eq. 1 objective — so the
    # smallest-argmin tie-break must keep decode at its floor.
    problem = make_problem(10, [60.0, 30.0, 15.0, 5.0])
    split = solve_pool_split(
        problem, decode_occupancy=0.0, decode_slots_per_gpu=8.0
    )
    assert split.decode_gpus == 1
    assert split.decode_pressure_ms == 0.0


def test_budget_below_floors_is_infeasible():
    problem = make_problem(1, [10.0, 5.0])
    with pytest.raises(InfeasibleError):
        solve_pool_split(
            problem, decode_occupancy=0.0, decode_slots_per_gpu=8.0
        )


def test_invalid_signals_are_rejected():
    problem = make_problem(8, [10.0, 5.0])
    with pytest.raises(ConfigurationError):
        solve_pool_split(
            problem, decode_occupancy=-1.0, decode_slots_per_gpu=8.0
        )
    with pytest.raises(ConfigurationError):
        solve_pool_split(
            problem, decode_occupancy=1.0, decode_slots_per_gpu=0.0
        )
    with pytest.raises(ConfigurationError):
        PoolSplitConfig(min_prefill=0)
    with pytest.raises(ConfigurationError):
        PoolSplitConfig(decode_weight_ms=-1.0)
