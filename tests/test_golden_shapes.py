"""Golden shape regressions — fast, trimmed versions of the headline
benchmark assertions, so plain ``pytest tests/`` catches calibration
drift without running the full harness."""

import pytest

from repro.experiments.runner import ExperimentSpec, run_experiment


@pytest.fixture(scope="module")
def fig6b_mini():
    spec = ExperimentSpec(
        name="golden-fig6b", model="bert-large", num_gpus=10,
        rate_per_s=700, duration_s=30.0, pattern="stable",
        schemes=("st", "dt", "infaas", "arlo"), seed=62, warmup_s=2.0,
    )
    return run_experiment(spec)


def test_fig6b_scheme_ordering(fig6b_mini):
    means = {k: v.mean_ms for k, v in fig6b_mini.items()}
    assert means["arlo"] < means["dt"] < means["infaas"] < means["st"]


def test_fig6b_st_reduction_band(fig6b_mini):
    """Paper: 66.7 % mean reduction vs ST for the BERT-Large stream."""
    reduction = 100 * (1 - fig6b_mini["arlo"].mean_ms
                       / fig6b_mini["st"].mean_ms)
    assert 50 <= reduction <= 80


def test_fig6b_dt_reduction_band(fig6b_mini):
    """Paper: 29.2 % vs DT (short-trace runs land lower)."""
    reduction = 100 * (1 - fig6b_mini["arlo"].mean_ms
                       / fig6b_mini["dt"].mean_ms)
    assert 8 <= reduction <= 55


def test_arlo_meets_slo_at_design_point(fig6b_mini):
    assert fig6b_mini["arlo"].stats.slo_violation_rate < 0.01
