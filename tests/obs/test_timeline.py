"""Control-plane timeline: ordering, categories, querying, and the
events the simulator's subsystems actually emit."""

import pytest

from repro.baselines.schemes import build_scheme
from repro.cluster.autoscaler import AutoscalerConfig
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.obs.spans import ObservabilityConfig
from repro.obs.timeline import ControlTimeline
from repro.resilience.manager import ResilienceConfig
from repro.runtimes.models import bert_large
from repro.sim.faults import FaultPlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def test_record_and_query():
    tl = ControlTimeline()
    tl.record(10.0, "allocation", "solve", provenance="cold")
    tl.record(20.0, "breaker", "open", instance=3)
    tl.record(30.0, "allocation", "solve", provenance="cache-hit")
    assert len(tl) == 3
    assert [e.kind for e in tl.query(category="allocation")] == [
        "solve", "solve"
    ]
    assert tl.query(category="breaker")[0].detail["instance"] == 3
    assert [e.time_ms for e in tl.query(since_ms=15.0, until_ms=30.0)] == [
        20.0
    ]
    assert tl.counts() == {"allocation/solve": 2, "breaker/open": 1}


def test_unknown_category_rejected():
    with pytest.raises(ValueError):
        ControlTimeline().record(0.0, "bogus", "kind")


def test_simulation_timeline_is_time_ordered_and_complete():
    """A chaos + resilience + autoscaler run lands every subsystem's
    actions in one ordered stream."""
    model = bert_large()
    trace = generate_twitter_trace(
        rate_per_s=250.0, duration_ms=seconds(30), pattern="bursty", seed=21
    )
    scheme = build_scheme(
        "arlo", "bert-large", 4,
        trace_hint=trace.slice_time(0, seconds(2)),
        runtime_scheduler_config=RuntimeSchedulerConfig(
            period_ms=seconds(5)
        ),
    )
    config = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=AutoscalerConfig(
            slo_ms=model.slo_ms, min_gpus=4, max_gpus=10,
            scale_in_period_ms=seconds(10),
        ),
        failures=FaultPlan.chaos(
            seconds(30), crashes=2, slowdowns=2, seed=12,
            slowdown_factor=6.0, slowdown_ms=seconds(6),
        ),
        resilience=ResilienceConfig(),
        observability=ObservabilityConfig(sample_rate=0.0),
    )
    result = run_simulation(scheme, trace, config)
    tl = result.timeline
    assert tl is not None and len(tl) > 0
    times = [e.time_ms for e in tl]
    assert times == sorted(times)

    counts = tl.counts()
    assert counts.get("fault/crash", 0) == 2
    assert counts.get("fault/slowdown", 0) == 2
    # Periodic allocation solves always fire on this config.
    assert counts.get("allocation/solve", 0) >= 1
    # Control counters and timeline events agree where both exist.
    assert (
        len(tl.query("autoscaler", "scale_out"))
        == result.control_stats["scale_outs"]
    )
    assert (
        len(tl.query("breaker", "open"))
        == result.control_stats["breaker_trips"]
    )
    for event in tl.query("allocation"):
        assert event.detail["provenance"] in (
            "hold", "fallback-hold", "cache-hit", "warm-start", "cold"
        )


def test_timeline_disabled_leaves_result_field_none():
    trace = generate_twitter_trace(
        rate_per_s=100.0, duration_ms=seconds(5), seed=3
    )
    scheme = build_scheme(
        "arlo", "bert-large", 4, trace_hint=trace.slice_time(0, seconds(2))
    )
    config = SimulationConfig(
        observability=ObservabilityConfig(sample_rate=0.5, timeline=False)
    )
    result = run_simulation(scheme, trace, config)
    assert result.timeline is None
    assert len(result.spans) > 0


def test_no_observability_config_is_fully_off():
    trace = generate_twitter_trace(
        rate_per_s=100.0, duration_ms=seconds(5), seed=3
    )
    scheme = build_scheme(
        "arlo", "bert-large", 4, trace_hint=trace.slice_time(0, seconds(2))
    )
    result = run_simulation(scheme, trace, SimulationConfig())
    assert result.timeline is None
    assert result.spans == []
