"""Span life-cycle contracts of the request tracer.

The load-bearing invariants: at sample rate 1.0 every request yields
exactly one finished span whose latency reconciles with the metrics
collector; at rate 0 the simulator allocates **zero** span objects (the
overhead contract the perf gate enforces); and the sampling verdict is
a pure function of the request id.
"""

import pytest

from repro.baselines.schemes import build_scheme
from repro.errors import ConfigurationError
from repro.obs.spans import ObservabilityConfig, RequestSpan, RequestTracer
from repro.sim.faults import FaultPlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def _chaos_run(sample_rate: float, scheme_name: str = "arlo"):
    trace = generate_twitter_trace(
        rate_per_s=150.0, duration_ms=seconds(10), pattern="bursty", seed=9
    )
    scheme = build_scheme(
        scheme_name, "bert-large", 6,
        trace_hint=trace.slice_time(0, seconds(2)),
    )
    config = SimulationConfig(
        failures=FaultPlan.chaos(
            seconds(10), crashes=2, slowdowns=1, blackouts=1, seed=4
        ),
        observability=ObservabilityConfig(sample_rate=sample_rate),
    )
    return run_simulation(scheme, trace, config)


def test_span_count_matches_request_count_under_chaos():
    result = _chaos_run(1.0)
    assert len(result.spans) == result.stats.count
    assert all(s.final_phase == "complete" for s in result.spans)
    # Every span carries the full life cycle: admission, a dispatch,
    # and the terminal completion.
    for span in result.spans:
        phases = [e["phase"] for e in span.events]
        assert phases[0] == "admit"
        assert phases[-1] == "complete"
        assert "dispatch" in phases


def test_span_latencies_reconcile_with_metrics():
    """Σ span latency == the sketch's exact running total (warmup 0)."""
    result = _chaos_run(1.0)
    span_total = sum(s.latency_ms for s in result.spans)
    result.metrics._sync_sketch()
    assert span_total == pytest.approx(
        result.metrics.sketch.total_ms, rel=1e-9
    )


def test_spans_attribute_latency_components():
    result = _chaos_run(1.0)
    retried = [s for s in result.spans if s.retry_wait_ms > 0]
    assert result.control_stats["retries"] == 0 or retried
    for span in result.spans:
        assert span.latency_ms >= 0
        assert span.queue_ms == pytest.approx(
            max(
                0.0,
                span.latency_ms - span.service_ms - span.retry_wait_ms,
            )
        )


def test_sampling_off_allocates_zero_spans():
    before = RequestSpan.total_allocated
    result = _chaos_run(0.0)
    assert result.spans == []
    assert RequestSpan.total_allocated == before


def test_baseline_scheme_spans_lack_probes_but_complete():
    result = _chaos_run(1.0, scheme_name="dt")
    assert len(result.spans) == result.stats.count
    assert all(
        e["phase"] != "probe" for s in result.spans for e in s.events
    )


def test_sampling_is_deterministic_and_proportional():
    tracer_a = RequestTracer(0.25)
    tracer_b = RequestTracer(0.25)
    verdicts = [tracer_a.sampled(i) for i in range(20_000)]
    assert verdicts == [tracer_b.sampled(i) for i in range(20_000)]
    hit_rate = sum(verdicts) / len(verdicts)
    assert 0.22 < hit_rate < 0.28
    assert all(RequestTracer(1.0).sampled(i) for i in range(1000))
    assert not any(RequestTracer(0.0).sampled(i) for i in range(1000))


def test_partial_sampling_traces_a_subset():
    result = _chaos_run(0.25)
    assert 0 < len(result.spans) < result.stats.count
    tracer = RequestTracer(0.25)
    assert all(tracer.sampled(s.request_id) for s in result.spans)


def test_max_spans_cap_drops_overflow():
    tracer = RequestTracer(1.0, max_spans=2)
    for rid in range(5):
        tracer.begin(0.0, rid, 0.0, 10)
        tracer.on_complete(rid, 5.0, 2.0)
    assert len(tracer.finished) == 2
    assert tracer.dropped == 3
    assert tracer.stats()["dropped"] == 3


def test_invalid_sample_rate_rejected():
    with pytest.raises(ConfigurationError):
        RequestTracer(1.5)
    with pytest.raises(ConfigurationError):
        ObservabilityConfig(sample_rate=-0.1)
    with pytest.raises(ConfigurationError):
        ObservabilityConfig(max_spans=-1)


def test_span_to_dict_round_trips_key_fields():
    tracer = RequestTracer(1.0)
    span = tracer.begin(1.0, 7, 1.0, 99)
    tracer.on_dispatch(span, 1.0, level=3, ideal_level=1, instance="i4")
    tracer.on_complete(7, 9.0, 6.5)
    d = span.to_dict()
    assert d["request_id"] == 7
    assert d["level"] == 3 and d["ideal_level"] == 1 and d["demoted"]
    assert d["latency_ms"] == pytest.approx(8.0)
    assert d["service_ms"] == pytest.approx(6.5)
    assert [e["phase"] for e in d["events"]] == [
        "admit", "dispatch", "complete"
    ]
