"""Exporters: JSONL artifacts validate against the checked-in schemas,
the Prometheus snapshot parses, and the summary digests are faithful."""

import json

import pytest

from repro.errors import SchemaError
from repro.obs import (
    format_summary,
    load_schema,
    prometheus_snapshot,
    spans_to_jsonl,
    summarize_spans,
    timeline_to_jsonl,
    validate_instance,
    validate_jsonl,
    validate_prometheus_text,
    write_spans_jsonl,
    write_timeline_jsonl,
)
from repro.obs.spans import RequestTracer
from repro.obs.timeline import ControlTimeline
from repro.sim.metrics import StreamingLatencySummary


def _sample_spans(n: int = 20):
    tracer = RequestTracer(1.0)
    for rid in range(n):
        span = tracer.begin(float(rid), rid, float(rid), 64 + rid)
        tracer.on_probes(span, float(rid), [(1, 0.4, 0.85, "accepted")])
        tracer.on_dispatch(
            span, float(rid), level=1 + rid % 2, ideal_level=1,
            instance=f"i{rid % 3}",
        )
        tracer.on_complete(rid, float(rid) + 5.0 + rid % 7, 3.0)
    return tracer.finished


def _sample_timeline():
    tl = ControlTimeline()
    tl.record(5.0, "allocation", "solve", provenance="cold", plan_steps=2)
    tl.record(9.0, "breaker", "open", instance=1, probe_at_ms=19.0)
    tl.record(19.0, "breaker", "half_open", instance=1)
    tl.record(25.0, "autoscaler", "scale_out", instance=7, gpus=5)
    return tl


def test_spans_jsonl_validates_against_schema(tmp_path):
    spans = _sample_spans()
    path = tmp_path / "spans.jsonl"
    n = write_spans_jsonl(path, spans)
    assert n == len(spans)
    assert validate_jsonl(path, load_schema("trace_span")) == len(spans)
    first = json.loads(path.read_text().splitlines()[0])
    assert first["request_id"] == 0
    assert first["events"][1]["verdict"] == "accepted"


def test_timeline_jsonl_validates_against_schema(tmp_path):
    tl = _sample_timeline()
    path = tmp_path / "timeline.jsonl"
    n = write_timeline_jsonl(path, tl)
    assert n == len(tl)
    assert validate_jsonl(path, load_schema("timeline_event")) == len(tl)


def test_schema_violation_is_reported_with_line_numbers(tmp_path):
    path = tmp_path / "bad.jsonl"
    good = json.loads(spans_to_jsonl(_sample_spans(1)).strip())
    bad = dict(good)
    bad["final_phase"] = "exploded"
    path.write_text(
        json.dumps(good) + "\n" + json.dumps(bad) + "\nnot json\n"
    )
    with pytest.raises(SchemaError) as err:
        validate_jsonl(path, load_schema("trace_span"))
    assert "line 2" in str(err.value)
    assert "line 3" in str(err.value)


def test_validate_instance_covers_the_mini_schema_subset():
    schema = {
        "type": "object",
        "required": ["a"],
        "additionalProperties": False,
        "properties": {
            "a": {"type": "integer", "minimum": 0},
            "b": {"type": "array", "items": {"enum": ["x", "y"]}},
        },
    }
    assert validate_instance({"a": 1, "b": ["x"]}, schema) == []
    errors = validate_instance({"a": -1, "b": ["z"], "c": 0}, schema)
    assert any("below minimum" in e for e in errors)
    assert any("not in" in e for e in errors)
    assert any("unexpected key" in e for e in errors)
    assert any(
        "missing required" in e for e in validate_instance({}, schema)
    )
    # booleans are not integers/numbers (Python subclassing quirk).
    assert validate_instance(True, {"type": "integer"})
    assert validate_instance(True, {"type": "number"})
    assert validate_instance(True, {"type": "boolean"}) == []


def test_prometheus_snapshot_validates_and_carries_quantiles():
    sketch = StreamingLatencySummary(slo_ms=100.0)
    for v in (1.0, 5.0, 20.0, 120.0):
        sketch.add(v)
    text = prometheus_snapshot(
        counters={"requests": 4},
        gauges={"in_flight": 0},
        sketch=sketch,
        labels={"scheme": "arlo"},
    )
    assert validate_prometheus_text(text) > 0
    assert "# TYPE repro_requests_total counter" in text
    assert 'repro_latency_ms{quantile="0.5",scheme="arlo"}' in text
    assert "repro_latency_ms_sum" in text
    assert "repro_latency_ms_count{scheme=\"arlo\"} 4" in text


def test_prometheus_snapshot_omits_empty_sketch():
    empty = StreamingLatencySummary(slo_ms=100.0)
    text = prometheus_snapshot(counters={"requests": 0}, sketch=empty)
    assert "latency_ms" not in text
    assert validate_prometheus_text(text) == 1
    assert "nan" not in text.lower()


def test_validate_prometheus_rejects_malformed_text():
    with pytest.raises(SchemaError):
        validate_prometheus_text("orphan_metric 1.0\n")
    with pytest.raises(SchemaError):
        validate_prometheus_text(
            "# TYPE m gauge\nm not-a-number\n"
        )
    with pytest.raises(SchemaError):
        validate_prometheus_text("# TYPE m gauge\nm nan\n")


def test_summarize_spans_digest():
    spans = _sample_spans(40)
    summary = summarize_spans(spans, tail_fraction=0.1)
    assert summary["spans"] == 40
    assert summary["completed"] == 40
    assert summary["demoted"] == sum(1 for s in spans if s.demoted)
    assert set(summary["per_level"]) == {1, 2}
    assert summary["demotion_chains"] == {"1->2": 20}
    tail = summary["tail_attribution"]
    assert tail["tail_count"] == 4
    shares = (
        tail["queue_share"] + tail["service_share"] + tail["retry_share"]
    )
    assert shares == pytest.approx(1.0)

    text = format_summary(summary, "arlo")
    assert "trace summary — arlo" in text
    assert "demotion chains" in text
    assert "tail attribution" in text


def test_summarize_spans_empty_population():
    summary = summarize_spans([])
    assert summary["spans"] == 0
    assert summary["tail_attribution"] == {}
    assert "spans: 0" in format_summary(summary)


def test_jsonl_strings_are_one_object_per_line():
    spans = _sample_spans(3)
    lines = spans_to_jsonl(spans).splitlines()
    assert len(lines) == 3
    assert all(json.loads(line) for line in lines)
    tl_lines = timeline_to_jsonl(_sample_timeline()).splitlines()
    assert [json.loads(x)["category"] for x in tl_lines] == [
        "allocation", "breaker", "breaker", "autoscaler"
    ]


def test_load_schema_unknown_name():
    with pytest.raises(SchemaError):
        load_schema("no_such_schema")
