"""Cross-module property tests on system-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dispatchers import (
    INFaaSBinPacking,
    InterGroupGreedy,
    IntraGroupLoadBalance,
    UniformLoadBalance,
)
from repro.baselines.schemes import build_scheme
from repro.cluster.state import ClusterState
from repro.core.allocation import AllocationProblem, solve_dp
from repro.core.mlq import MultiLevelQueue
from repro.errors import InfeasibleError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.sim.simulation import run_simulation
from repro.units import PER_REQUEST_OVERHEAD_MS
from repro.workload.trace import Trace

REGISTRY = build_polymorph_set(bert_base())


@st.composite
def random_trace(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    arrivals = np.sort(rng.uniform(0, 2_000, size=n))
    lengths = rng.integers(1, 513, size=n)
    return Trace(arrivals, lengths)


@settings(max_examples=20, deadline=None)
@given(random_trace(), st.sampled_from(["st", "dt", "infaas", "arlo"]))
def test_every_request_completes_with_sane_latency(trace, scheme_name):
    scheme = build_scheme(scheme_name, "bert-base", 3)
    result = run_simulation(scheme, trace)
    lat = result.latencies()
    assert lat.size == len(trace)
    # No request can finish faster than the fastest possible service.
    min_service = REGISTRY[0].runtime.service_ms(1) + PER_REQUEST_OVERHEAD_MS
    assert lat.min() >= min_service - 1e-9
    # Work conservation: the cluster is empty at the end.
    assert scheme.cluster.total_outstanding() == 0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=40),
    st.sampled_from([UniformLoadBalance, IntraGroupLoadBalance,
                     InterGroupGreedy, INFaaSBinPacking]),
)
def test_dispatchers_never_violate_max_length(lengths, dispatcher_cls):
    state = ClusterState.bootstrap(REGISTRY, [1, 1, 1, 1, 1, 1, 1, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    dispatcher = dispatcher_cls(registry=REGISTRY, mlq=mlq)
    for i, length in enumerate(lengths):
        instance, _, _ = dispatcher.dispatch(float(i), length)
        assert instance.max_length >= length


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=12),
       st.integers(min_value=0, max_value=10_000))
def test_dp_allocation_invariants(gpus, seed):
    rng = np.random.default_rng(seed)
    problem = AllocationProblem(
        num_gpus=gpus,
        demand=rng.uniform(0, 25, size=4),
        capacity=np.array([24, 16, 11, 7]),
        service_ms=np.array([1.0, 1.7, 2.6, 3.9]),
    )
    try:
        result = solve_dp(problem)
    except InfeasibleError:
        return
    alloc = result.allocation
    # Eqs. 2, 3, 7 hold on whatever the DP returns.
    assert alloc.sum() == gpus
    assert alloc[-1] >= 1
    assert np.all(alloc >= problem.lower_bounds())
    # The reported objective matches independent re-evaluation.
    assert result.objective == pytest.approx(problem.evaluate(alloc))
    # Optimality is monotone in resources: one more GPU never hurts.
    try:
        richer = solve_dp(
            AllocationProblem(
                num_gpus=gpus + 1,
                demand=problem.demand,
                capacity=problem.capacity,
                service_ms=problem.service_ms,
            )
        )
        assert richer.objective <= result.objective + 1e-9
    except InfeasibleError:  # pragma: no cover - more GPUs cannot infeasible
        raise AssertionError("adding a GPU made the problem infeasible")


@settings(max_examples=15, deadline=None)
@given(random_trace())
def test_simulation_latency_stats_consistent(trace):
    scheme = build_scheme("st", "bert-base", 2)
    result = run_simulation(scheme, trace)
    lat = result.latencies()
    assert result.stats.mean_ms == pytest.approx(float(lat.mean()))
    assert result.stats.p98_ms == pytest.approx(float(np.percentile(lat, 98)))
    assert result.stats.max_ms == pytest.approx(float(lat.max()))
