"""Spatial (space-shard) equivalence and merge semantics.

Two partition modes with different contracts:

- ``level``: shard k owns the MLQ levels with ``index % S == k`` and
  exactly the requests whose *ideal* level it owns. When the serial
  run never crosses level boundaries (static scheme, zero demotions /
  fallbacks / deferrals — certified inside the tests before anything
  is compared), the merged run is **bin-exact**: levels share no state
  and every request is served by its ideal level in both executions.
- ``request``: round-robin arrivals over scaled GPU replicas — a
  load-preserving approximation, exact in counts, approximate in
  latency moments.

Plus the ``mode="space"`` merge reductions: max-end span, max-end GPU
renormalisation, empty-shard neutral element, order independence.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_single
from repro.sim.faults import FaultPlan, FailureEvent
from repro.sim.metrics import StreamingLatencySummary
from repro.sim.sharded import (
    ShardSummary,
    merge_shard_summaries,
    run_spatial,
    space_shard_specs,
)


def _spec(**overrides):
    base = dict(
        name="spatial-eq", model="bert-base", num_gpus=8, rate_per_s=150.0,
        duration_s=20.0, schemes=("arlo-even",), seed=11, retry=None,
        space_partition="level",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(scope="module")
def level_serial():
    spec = _spec()
    _, result = run_single(spec, "arlo-even")
    result.metrics._sync_sketch()
    # Certify the equivalence preconditions on the *serial* run: a
    # static scheme that never crosses level boundaries. If load
    # tuning ever breaks this, the bin-exact assertion below would be
    # vacuous rather than wrong — fail loudly instead.
    assert result.dispatch_stats["demotion_rate"] == 0.0
    assert result.dispatch_stats["fallback_rate"] == 0.0
    assert result.metrics.deferred_requests == 0
    return spec, result


@pytest.mark.parametrize("num_shards", [2, 4])
def test_level_partition_bin_exact_vs_serial(level_serial, num_shards):
    spec, serial = level_serial
    merged = run_spatial(spec, "arlo-even", num_shards)
    sketch = serial.metrics.sketch

    assert np.array_equal(merged.sketch.counts, sketch.counts)
    assert merged.sketch.total_ms == sketch.total_ms
    assert merged.sketch.min_ms == sketch.min_ms
    assert merged.sketch.max_ms == sketch.max_ms
    assert merged.sketch.violations == sketch.violations
    assert merged.stats.count == serial.stats.count
    assert merged.events_processed == serial.events_processed
    assert merged.end_ms == serial.end_ms
    assert merged.dispatch_stats["dispatched"] == (
        serial.dispatch_stats["dispatched"]
    )
    assert merged.dispatch_stats["demotion_rate"] == 0.0
    # Foreign levels are retired at t=0 (vs idling to the end in the
    # serial cluster) and early-draining shards hold zero GPUs for the
    # remainder, so the GPU integral agrees only approximately.
    assert merged.time_weighted_gpus == pytest.approx(
        serial.time_weighted_gpus, rel=0.02
    )
    assert len(merged.shard_walls) == num_shards
    assert all(w >= 0.0 for w in merged.shard_walls)


def test_level_partition_synthesizes_empty_shards():
    """3 levels over 4 shards: shard 3 owns nothing and must merge as
    the neutral element, not round-trip a zero-request simulation."""
    spec = _spec(num_runtimes=3, num_gpus=6)
    _, serial = run_single(spec, "arlo-even")
    serial.metrics._sync_sketch()
    assert serial.dispatch_stats["demotion_rate"] == 0.0
    assert serial.dispatch_stats["fallback_rate"] == 0.0

    merged = run_spatial(spec, "arlo-even", 4)
    assert np.array_equal(merged.sketch.counts, serial.metrics.sketch.counts)
    assert merged.stats.count == serial.stats.count
    assert merged.num_shards == 4
    assert merged.shard_walls.count(0.0) >= 1  # the empty shard


def test_request_partition_approximates_serial():
    """Scaled replicas: exact population, approximate moments."""
    spec = _spec(space_partition="request", schemes=("arlo",))
    _, serial = run_single(spec, "arlo")
    merged = run_spatial(spec, "arlo", 4)
    assert merged.stats.count == serial.stats.count
    assert merged.stats.mean_ms == pytest.approx(
        serial.stats.mean_ms, rel=0.5
    )
    assert merged.stats.p99_ms == pytest.approx(serial.stats.p99_ms, rel=0.5)


def test_space_shard_spec_validation():
    spec = _spec()
    with pytest.raises(ConfigurationError):
        space_shard_specs(spec, 0)
    shards = space_shard_specs(spec, 3)
    assert [s.space_shard for s in shards] == [(0, 3), (1, 3), (2, 3)]
    with pytest.raises(ConfigurationError):
        space_shard_specs(shards[0], 2)  # already a shard
    # Faults do not partition spatially: victim ranking is global.
    with pytest.raises(ConfigurationError):
        dataclasses.replace(
            shards[0],
            failures=FaultPlan(events=[FailureEvent(time_ms=1_000.0)]),
        )
    # Request mode needs at least one GPU per shard.
    with pytest.raises(ConfigurationError):
        _spec(space_partition="request", num_gpus=2, space_shard=(0, 4))
    with pytest.raises(ConfigurationError):
        _spec(space_partition="diagonal")


def test_level_partition_rejects_single_level_schemes():
    """st/dt have one level — nothing to partition ownership over."""
    spec = _spec(schemes=("st",), space_shard=(0, 2))
    with pytest.raises(ConfigurationError):
        spec.make_scheme("st", spec.make_trace())


# ---------------------------------------------------------------------------
# mode="space" merge reductions
# ---------------------------------------------------------------------------

def _summary(dispatched: float, gated: float = 0.0, end_ms: float = 1_000.0,
             gpus: float = 2.0, latencies=(10.0, 20.0),
             wall_s: float = 0.5) -> ShardSummary:
    sketch = StreamingLatencySummary(slo_ms=100.0)
    for v in latencies:
        sketch.add(v)
    return ShardSummary(
        scheme_name="arlo", sketch=sketch, events_processed=len(latencies),
        end_ms=end_ms, time_weighted_gpus=gpus, control_stats={},
        dispatch_stats={
            "dispatched": dispatched, "gated": gated,
            "demotion_rate": 0.0, "fallback_rate": 0.0,
        },
        wall_s=wall_s,
    )


def _empty() -> ShardSummary:
    return ShardSummary(
        scheme_name="arlo", sketch=StreamingLatencySummary(slo_ms=100.0),
        events_processed=0, end_ms=0.0, time_weighted_gpus=0.0,
        control_stats={}, dispatch_stats={},
    )


def test_space_merge_four_shards_with_empty_and_gated_only():
    """≥4 shards including the two degenerate kinds: an empty shard
    (neutral element everywhere) and a shed-everything shard (counters
    kept, zero rate weight)."""
    pairs = [
        (0.0, _summary(dispatched=100.0, end_ms=2_000.0, gpus=4.0)),
        (0.0, _summary(dispatched=50.0, end_ms=1_000.0, gpus=2.0)),
        (0.0, _empty()),
        (0.0, _summary(dispatched=0.0, gated=30.0, end_ms=500.0, gpus=1.0,
                       latencies=())),
    ]
    merged = merge_shard_summaries(pairs, mode="space")
    assert merged.num_shards == 4
    assert merged.events_processed == 4
    # Concurrent clocks: span is the max shard end, not the sum.
    assert merged.end_ms == 2_000.0
    # GPU integral renormalised by the max-end span: (4·2000 + 2·1000
    # + 0 + 1·500) / 2000.
    assert merged.time_weighted_gpus == pytest.approx(10_500.0 / 2_000.0)
    assert merged.dispatch_stats["dispatched"] == 150.0
    assert merged.dispatch_stats["gated"] == 30.0
    assert merged.dispatch_stats["demotion_rate"] == 0.0
    assert merged.shard_walls == [0.5, 0.5, 0.0, 0.5]

    # Order independence: every reduction is commutative/associative.
    backward = merge_shard_summaries(list(reversed(pairs)), mode="space")
    assert np.array_equal(backward.sketch.counts, merged.sketch.counts)
    assert backward.end_ms == merged.end_ms
    assert backward.time_weighted_gpus == merged.time_weighted_gpus
    assert backward.dispatch_stats == merged.dispatch_stats


def test_space_merge_rejects_shifted_windows_and_unknown_modes():
    pairs = [(0.0, _summary(10.0)), (1_000.0, _summary(10.0))]
    with pytest.raises(ConfigurationError):
        merge_shard_summaries(pairs, mode="space")
    with pytest.raises(ConfigurationError):
        merge_shard_summaries([(0.0, _summary(10.0))], mode="spacetime")


def test_time_merge_unchanged_by_mode_parameter():
    """The default mode must reproduce the historical time-window
    semantics: span-sum GPU renormalisation, absolute end times."""
    pairs = [
        (0.0, _summary(10.0, end_ms=1_000.0, gpus=4.0)),
        (1_000.0, _summary(10.0, end_ms=1_000.0, gpus=2.0)),
    ]
    merged = merge_shard_summaries(pairs, mode="time")
    assert merged.end_ms == 2_000.0
    assert merged.time_weighted_gpus == pytest.approx(3.0)
    assert merged.shard_walls == [0.5, 0.5]
