"""Chaos integration: rescheduling, auto-scaling and crashes together.

Everything that mutates the cluster runs in one simulation; the test
asserts only the hard conservation invariants that must survive any
interleaving of control actions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.schemes import build_scheme
from repro.cluster.autoscaler import AutoscalerConfig
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.resilience.manager import ResilienceConfig
from repro.sim.faults import (
    BlackoutEvent,
    FailureEvent,
    FailurePlan,
    FaultPlan,
    SlowdownEvent,
    SolverFaultEvent,
)
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def run_chaos(seed: int, failures: int, recovery_s: float | None):
    trace = generate_twitter_trace(
        rate_per_s=500, duration_ms=seconds(25), pattern="bursty",
        seed=seed, drift_scale=0.15, drift_window_ms=seconds(8),
    )
    scheme = build_scheme(
        "arlo", "bert-base", 5,
        trace_hint=trace.slice_time(0, seconds(4)),
        runtime_scheduler_config=RuntimeSchedulerConfig(
            period_ms=seconds(7)
        ),
    )
    plan = FailurePlan.random(
        count=failures, horizon_ms=seconds(25), seed=seed + 1,
        recovery_ms=None if recovery_s is None else seconds(recovery_s),
    )
    config = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=AutoscalerConfig(slo_ms=150.0, min_gpus=2, max_gpus=10,
                                    window_size=128,
                                    scale_in_period_ms=seconds(8)),
        failures=plan,
    )
    return scheme, run_simulation(scheme, trace, config), len(trace)


@pytest.mark.parametrize("seed,failures,recovery_s", [
    (201, 2, 4.0),
    (202, 4, 2.0),
    (203, 3, None),  # permanent losses while autoscaling
])
def test_chaos_conservation(seed, failures, recovery_s):
    scheme, result, n = run_chaos(seed, failures, recovery_s)
    assert result.stats.count == n  # every request served exactly once
    assert scheme.cluster.total_outstanding() == 0
    assert result.control_stats["failures"] == failures
    # Cluster invariants after the dust settles:
    alloc = scheme.cluster.allocation()
    assert alloc.sum() == scheme.cluster.num_active_instances
    assert alloc[-1] >= 0  # top level may be mid-replacement, but...
    # ...every remaining instance is consistent with its GPU.
    for inst in scheme.cluster.instances.values():
        gpu = scheme.cluster.gpus[inst.gpu_id]
        assert gpu.instance_id == inst.instance_id


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_chaos_randomised(seed):
    scheme, result, n = run_chaos(300 + seed, failures=2, recovery_s=3.0)
    assert result.stats.count == n
    assert scheme.cluster.total_outstanding() == 0


def make_trace(seed=13, rate=500, duration_s=25):
    return generate_twitter_trace(
        rate_per_s=rate, duration_ms=seconds(duration_s), pattern="bursty",
        seed=seed, drift_scale=0.15, drift_window_ms=seconds(8),
    )


def make_arlo(trace, name="arlo", gpus=5):
    return build_scheme(
        name, "bert-base", gpus,
        trace_hint=trace.slice_time(0, seconds(4)),
        runtime_scheduler_config=RuntimeSchedulerConfig(period_ms=seconds(7)),
    )


@pytest.mark.chaos
def test_slowdowns_and_blackouts_under_autoscaling():
    """Degraded-but-alive faults while the autoscaler churns the fleet.

    Hard invariants: every request is served exactly once, and no
    request is ever dispatched to an instance whose breaker is OPEN
    (the simulator counts such events as ``quarantine_violations``).
    """
    trace = make_trace(seed=17)
    scheme = make_arlo(trace)
    plan = FaultPlan(events=[
        SlowdownEvent(time_ms=seconds(5), factor=3.0,
                      duration_ms=seconds(5)),
        SlowdownEvent(time_ms=seconds(9), factor=2.5,
                      duration_ms=seconds(4)),
        BlackoutEvent(time_ms=seconds(12), duration_ms=seconds(2)),
        BlackoutEvent(time_ms=seconds(16), duration_ms=seconds(1)),
    ])
    config = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=AutoscalerConfig(slo_ms=150.0, min_gpus=2, max_gpus=10,
                                    window_size=128,
                                    scale_in_period_ms=seconds(8)),
        failures=plan,
        resilience=ResilienceConfig(),
    )
    result = run_simulation(scheme, trace, config)
    assert result.stats.count == len(trace)  # conservation
    assert scheme.cluster.total_outstanding() == 0
    assert result.control_stats["slowdowns"] == 2
    assert result.control_stats["blackouts"] == 2
    # Quarantine is airtight: zero dispatches landed on an instance
    # while its breaker was open.
    assert result.control_stats["quarantine_violations"] == 0
    # The stragglers were caught and benched at least once.
    assert result.control_stats["breaker_trips"] >= 1
    assert result.control_stats["quarantines"] >= 1
    # Blacked-out in-flight work timed out and was retried with backoff.
    assert result.control_stats["timeouts"] >= 1
    assert result.control_stats["retries"] >= 1


@pytest.mark.chaos
def test_acceptance_mixed_grade_chaos():
    """The PR's acceptance scenario: 2 crashes + 2 slowdowns + 1 solver
    failure. Zero lost requests, the breaker trips AND recovers, the
    solver fallback is recorded, and Arlo's p98 stays within 1.15x of
    the same-run intra-group load-balance baseline."""
    trace = make_trace(seed=23)
    plan = FaultPlan(events=[
        SlowdownEvent(time_ms=seconds(6), factor=3.0,
                      duration_ms=seconds(5)),
        SlowdownEvent(time_ms=seconds(8), factor=3.0,
                      duration_ms=seconds(5)),
        SolverFaultEvent(time_ms=seconds(13.5)),
        FailureEvent(time_ms=seconds(15), recovery_ms=seconds(4)),
        FailureEvent(time_ms=seconds(18), recovery_ms=seconds(4)),
    ])
    config = SimulationConfig(failures=plan, resilience=ResilienceConfig())

    arlo = make_arlo(trace, "arlo")
    result = run_simulation(arlo, trace, config)
    assert result.stats.count == len(trace)  # zero lost requests
    assert arlo.cluster.total_outstanding() == 0
    assert result.control_stats["failures"] == 2
    assert result.control_stats["slowdowns"] == 2
    assert result.control_stats["breaker_trips"] >= 1
    assert result.control_stats["breaker_recoveries"] >= 1
    assert result.control_stats["quarantine_violations"] == 0
    # The injected solver failure was survived, not crashed on:
    assert result.control_stats["solver_faults_injected"] == 1
    assert result.control_stats["solver_fallbacks"] >= 1
    incidents = arlo.runtime_scheduler.incidents
    assert len(incidents) >= 1
    assert "injected solver failure" in incidents[0].error

    ilb = make_arlo(trace, "arlo-ilb")
    baseline = run_simulation(ilb, trace, config)
    assert baseline.stats.count == len(trace)
    assert result.p98_ms <= 1.15 * baseline.p98_ms
