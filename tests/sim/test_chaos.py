"""Chaos integration: rescheduling, auto-scaling and crashes together.

Everything that mutates the cluster runs in one simulation; the test
asserts only the hard conservation invariants that must survive any
interleaving of control actions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.schemes import build_scheme
from repro.cluster.autoscaler import AutoscalerConfig
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.sim.faults import FailureEvent, FailurePlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.twitter import generate_twitter_trace


def run_chaos(seed: int, failures: int, recovery_s: float | None):
    trace = generate_twitter_trace(
        rate_per_s=500, duration_ms=seconds(25), pattern="bursty",
        seed=seed, drift_scale=0.15, drift_window_ms=seconds(8),
    )
    scheme = build_scheme(
        "arlo", "bert-base", 5,
        trace_hint=trace.slice_time(0, seconds(4)),
        runtime_scheduler_config=RuntimeSchedulerConfig(
            period_ms=seconds(7)
        ),
    )
    plan = FailurePlan.random(
        count=failures, horizon_ms=seconds(25), seed=seed + 1,
        recovery_ms=None if recovery_s is None else seconds(recovery_s),
    )
    config = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=AutoscalerConfig(slo_ms=150.0, min_gpus=2, max_gpus=10,
                                    window_size=128,
                                    scale_in_period_ms=seconds(8)),
        failures=plan,
    )
    return scheme, run_simulation(scheme, trace, config), len(trace)


@pytest.mark.parametrize("seed,failures,recovery_s", [
    (201, 2, 4.0),
    (202, 4, 2.0),
    (203, 3, None),  # permanent losses while autoscaling
])
def test_chaos_conservation(seed, failures, recovery_s):
    scheme, result, n = run_chaos(seed, failures, recovery_s)
    assert result.stats.count == n  # every request served exactly once
    assert scheme.cluster.total_outstanding() == 0
    assert result.control_stats["failures"] == failures
    # Cluster invariants after the dust settles:
    alloc = scheme.cluster.allocation()
    assert alloc.sum() == scheme.cluster.num_active_instances
    assert alloc[-1] >= 0  # top level may be mid-replacement, but...
    # ...every remaining instance is consistent with its GPU.
    for inst in scheme.cluster.instances.values():
        gpu = scheme.cluster.gpus[inst.gpu_id]
        assert gpu.instance_id == inst.instance_id


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_chaos_randomised(seed):
    scheme, result, n = run_chaos(300 + seed, failures=2, recovery_s=3.0)
    assert result.stats.count == n
    assert scheme.cluster.total_outstanding() == 0
