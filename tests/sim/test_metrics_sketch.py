"""Streaming sketch accuracy: quantiles within 1 % of the exact
population, moments exact, merge order-independent.

Satellite of the data-plane PR: the sharded driver replaces the exact
latency array with :class:`StreamingLatencySummary`, so the sketch's
error bound (√growth − 1 ≈ 0.5 % at the default growth 1.01) must
actually hold on realistic latency shapes — heavy-tailed, bimodal, and
simulator-produced — with margin below the 1 % contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptySketchError, SimulationError
from repro.experiments.runner import ExperimentSpec, run_single
from repro.sim.metrics import LatencyStats, StreamingLatencySummary


def _exact(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, 100.0 * q))


DISTRIBUTIONS = {
    # Log-normal: the canonical heavy-tailed latency shape.
    "lognormal": lambda rng: rng.lognormal(mean=4.0, sigma=0.8, size=50_000),
    # Bimodal: two runtimes with very different service times.
    "bimodal": lambda rng: np.concatenate([
        rng.normal(40.0, 5.0, size=30_000).clip(min=1.0),
        rng.normal(900.0, 80.0, size=20_000).clip(min=1.0),
    ]),
    # Exponential with a constant queueing floor.
    "shifted-exp": lambda rng: 25.0 + rng.exponential(120.0, size=50_000),
}


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_quantile_error_under_one_percent(name):
    rng = np.random.default_rng(7)
    values = DISTRIBUTIONS[name](rng)
    sketch = StreamingLatencySummary(slo_ms=200.0)
    sketch.add_array(values)

    for q in (0.50, 0.90, 0.99):
        exact = _exact(values, q)
        approx = sketch.quantile(q)
        assert abs(approx - exact) / exact < 0.01, (
            f"{name} P{int(q * 100)}: sketch {approx:.3f} vs exact "
            f"{exact:.3f} — error exceeds 1 %"
        )

    # Moments, extremes, and SLO accounting are exact, not sketched.
    assert sketch.mean_ms == pytest.approx(values.mean(), rel=1e-12)
    assert sketch.min_ms == values.min()
    assert sketch.max_ms == values.max()
    assert sketch.violations == int(np.count_nonzero(values > 200.0))


def test_scalar_and_vector_ingestion_agree():
    rng = np.random.default_rng(11)
    values = rng.lognormal(mean=3.0, sigma=1.0, size=2_000)
    one = StreamingLatencySummary(slo_ms=50.0)
    for v in values:
        one.add(float(v))
    many = StreamingLatencySummary(slo_ms=50.0)
    many.add_array(values)
    assert np.array_equal(one.counts, many.counts)
    assert one.count == many.count
    assert one.violations == many.violations
    assert one.total_ms == pytest.approx(many.total_ms, rel=1e-12)


def test_merge_equals_single_sketch_and_commutes():
    rng = np.random.default_rng(3)
    parts = [rng.lognormal(4.0, 0.7, size=10_000) for _ in range(4)]
    whole = StreamingLatencySummary()
    whole.add_array(np.concatenate(parts))

    def merged(order):
        sketches = []
        for part in parts:
            s = StreamingLatencySummary()
            s.add_array(part)
            sketches.append(s)
        acc = sketches[order[0]]
        for i in order[1:]:
            acc.merge(sketches[i])
        return acc

    forward = merged([0, 1, 2, 3])
    backward = merged([3, 2, 1, 0])
    assert np.array_equal(forward.counts, whole.counts)
    assert np.array_equal(forward.counts, backward.counts)
    assert forward.count == whole.count
    assert forward.quantile(0.99) == backward.quantile(0.99)
    assert forward.max_ms == whole.max_ms


def test_merge_rejects_incompatible_shapes():
    a = StreamingLatencySummary(slo_ms=100.0)
    b = StreamingLatencySummary(slo_ms=200.0)
    with pytest.raises(SimulationError):
        a.merge(b)


def test_snapshot_stats_tracks_exact_stats_on_simulator_output():
    """End-to-end: the collector's O(1) snapshot matches the exact
    population produced by a real simulation within the sketch bound."""
    spec = ExperimentSpec(
        name="sketch-e2e", model="bert-base", num_gpus=4, rate_per_s=120.0,
        duration_s=10.0, schemes=("arlo",), seed=5, scheduler_period_s=5.0,
        hint_s=2.0,
    )
    _, result = run_single(spec, "arlo")
    exact: LatencyStats = result.metrics.stats()
    approx: LatencyStats = result.metrics.snapshot_stats()

    assert approx.count == exact.count
    assert approx.mean_ms == pytest.approx(exact.mean_ms, rel=1e-12)
    assert approx.max_ms == exact.max_ms
    assert approx.slo_violation_rate == exact.slo_violation_rate

    # The sketch's bound is against the *rank* quantile (the value at
    # rank ⌈q·n⌉); np.percentile's default linear interpolation differs
    # from that by up to one order-statistic gap at small n, which is
    # not sketch error.
    lat = np.sort(result.metrics.latencies())
    for q, got in ((0.50, approx.p50_ms), (0.99, approx.p99_ms)):
        rank_exact = float(lat[int(np.ceil(q * lat.size)) - 1])
        assert got == pytest.approx(rank_exact, rel=0.01)


def test_empty_sketch_raises():
    sketch = StreamingLatencySummary()
    with pytest.raises(SimulationError):
        sketch.quantile(0.5)
    with pytest.raises(SimulationError):
        sketch.stats()
    with pytest.raises(SimulationError):
        sketch.add(-1.0)


def test_empty_sketch_error_is_typed():
    """Regression: exporters need to distinguish 'no samples yet' from
    genuine simulator corruption, so empty-sketch queries raise the
    :class:`EmptySketchError` subtype."""
    sketch = StreamingLatencySummary()
    with pytest.raises(EmptySketchError):
        sketch.quantile(0.5)
    with pytest.raises(EmptySketchError):
        sketch.stats()
    assert issubclass(EmptySketchError, SimulationError)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=200,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_extreme_quantiles_are_exact(values, num_parts):
    """Regression: ``quantile(0)``/``quantile(1)`` used to return bin
    midpoints (off by up to √growth−1); they now return the exact
    running min/max, and merging preserves that exactness."""
    sketch = StreamingLatencySummary()
    for k in range(num_parts):
        part = StreamingLatencySummary()
        part.add_array(np.asarray(values[k::num_parts]))
        if k == 0:
            sketch = part
        elif part.count:
            sketch.merge(part)
    assert sketch.quantile(0.0) == min(values)
    assert sketch.quantile(1.0) == max(values)
    lo, mid, hi = sketch.quantiles([0.0, 0.5, 1.0])
    assert lo == min(values) and hi == max(values)
    assert lo <= mid <= hi
