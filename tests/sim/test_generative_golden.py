"""Golden regression: the co-located generative path is bit-exact.

The disaggregated pools PR touches ``repro.sim.generative`` (TPOT
accounting, the ``GenerativeConfig.disagg`` field); these pins prove
the co-located path (``SimulationConfig.generative`` without disagg)
still produces byte-for-byte the PR 7 baseline results. The digests
were computed at the PR 7 head, same style as
``tests/workload/test_golden_traces.py``: sha256 over the ``repr`` of
the pinned field tuple, floats in ``float.hex()`` form so the pin is
exact, not approximate.

If one of these fails, the generative event loop's float stream or
event ordering changed — that is a correctness regression unless the
change is deliberate (in which case recompute the digests *and say so
in the commit*).
"""

import hashlib

import pytest

from repro.baselines.schemes import build_scheme
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.sim.generative import GenerativeConfig
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.generative import (
    GenerativeTraceConfig,
    generate_generative_trace,
)

pytestmark = pytest.mark.generative


def _golden_fields(seed: int, gen: GenerativeConfig) -> tuple:
    trace = generate_generative_trace(
        GenerativeTraceConfig(
            rate_per_s=250, duration_ms=seconds(5),
            pattern="bursty", seed=seed,
        )
    )
    scheme = build_scheme(
        "arlo", "bert-base", 4,
        trace_hint=trace.slice_time(0, seconds(2)),
        runtime_scheduler_config=RuntimeSchedulerConfig(
            period_ms=seconds(60)
        ),
    )
    result = run_simulation(scheme, trace, SimulationConfig(generative=gen))
    return (
        result.stats.count,
        result.stats.mean_ms.hex(),
        result.p98_ms.hex(),
        result.control_stats["decode_steps"],
        result.control_stats["step_events"],
        result.control_stats["batch_joins"],
        result.dispatch_stats["ttft_mean_ms"].hex(),
        result.dispatch_stats["ttft_p50_ms"].hex(),
        result.dispatch_stats["ttft_p98_ms"].hex(),
    )


def _digest(fields: tuple) -> str:
    return hashlib.sha256(repr(fields).encode()).hexdigest()[:16]


#: (seed, config kwargs) -> PR 7 baseline digest. Three configurations
#: cover the three decode-loop regimes: continuous batching, chunked
#: small-batch, and gang scheduling.
GOLDEN = {
    (11, ()): "9b0077e5659ff532",
    (21, (("max_batch", 4), ("chunk_steps", 2))): "de30e7b09d2798f7",
    (7, (("continuous_batching", False),)): "0ae823fc1f0e673d",
}


@pytest.mark.parametrize("seed,kwargs", sorted(GOLDEN, key=repr))
def test_colocated_generative_matches_pr7_baseline(seed, kwargs):
    fields = _golden_fields(seed, GenerativeConfig(**dict(kwargs)))
    assert _digest(fields) == GOLDEN[(seed, kwargs)], fields
