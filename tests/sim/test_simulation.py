"""Integration tests of the event-driven simulator."""

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.cluster.autoscaler import AutoscalerConfig
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.errors import ConfigurationError, SimulationError
from repro.runtimes.models import bert_base
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import PER_REQUEST_OVERHEAD_MS, seconds
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


def tiny_trace(lengths, gap_ms=50.0):
    times = np.arange(len(lengths), dtype=float) * gap_ms
    return Trace(times, np.asarray(lengths))


def test_single_request_latency_exact():
    scheme = build_scheme("st", "bert-base", 1)
    trace = tiny_trace([20])
    result = run_simulation(scheme, trace)
    # ST pads to 512: latency = true execution time at 512 + 0.8 ms
    # overhead (the noisy *profiled* service only informs scheduling).
    service = scheme.registry[0].runtime.service_ms(20)
    assert result.mean_ms == pytest.approx(service + PER_REQUEST_OVERHEAD_MS)
    assert result.stats.count == 1


def test_fifo_queueing_on_one_instance():
    scheme = build_scheme("st", "bert-base", 1)
    trace = Trace(np.zeros(3), np.array([10, 10, 10]))  # simultaneous burst
    result = run_simulation(scheme, trace)
    per = scheme.registry[0].runtime.service_ms(10) + PER_REQUEST_OVERHEAD_MS
    lat = np.sort(result.latencies())
    assert lat == pytest.approx([per, 2 * per, 3 * per])


def test_all_requests_complete_and_counts_match():
    trace = generate_twitter_trace(rate_per_s=100, duration_ms=seconds(10), seed=3)
    scheme = build_scheme("arlo", "bert-base", 4)
    result = run_simulation(scheme, trace)
    assert result.stats.count == len(trace)
    assert result.events_processed >= 2 * len(trace)
    assert result.control_stats["deferred"] == 0


def test_dynamic_runtime_uses_actual_length():
    scheme = build_scheme("dt", "bert-base", 1)
    short = run_simulation(build_scheme("dt", "bert-base", 1), tiny_trace([10]))
    long = run_simulation(build_scheme("dt", "bert-base", 1), tiny_trace([500]))
    assert short.mean_ms < long.mean_ms


def test_warmup_excludes_early_requests():
    trace = tiny_trace([10] * 10, gap_ms=100.0)
    cfg = SimulationConfig(warmup_ms=450.0)
    result = run_simulation(build_scheme("st", "bert-base", 1), trace, cfg)
    assert result.stats.count == 5  # arrivals at 500..900 only


def test_reschedule_fires_and_adapts():
    # 30s trace with a 10s scheduler period: allocation must converge
    # towards the short-dominated demand.
    trace = generate_twitter_trace(rate_per_s=300, duration_ms=seconds(30), seed=5)
    scheme = build_scheme(
        "arlo", "bert-base", 8,
        runtime_scheduler_config=RuntimeSchedulerConfig(period_ms=seconds(10)),
    )
    before = scheme.cluster.allocation().copy()
    result = run_simulation(scheme, trace)
    after = scheme.cluster.allocation()
    assert scheme.runtime_scheduler.history  # periods actually ran
    assert not np.array_equal(before, after)
    assert result.control_stats["replacements"] > 0
    # Median length ~86 -> bin 1; the adapted allocation serves it directly.
    assert after[1] >= 1


def test_autoscaler_scales_out_under_overload():
    model = bert_base()
    trace = generate_twitter_trace(rate_per_s=600, duration_ms=seconds(30), seed=7)
    scheme = build_scheme("st", "bert-base", 1)  # hopeless single GPU
    cfg = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=AutoscalerConfig(slo_ms=model.slo_ms, max_gpus=20,
                                    window_size=64),
    )
    result = run_simulation(scheme, trace, cfg)
    assert result.control_stats["scale_outs"] > 0
    assert scheme.cluster.num_gpus > 1
    assert result.time_weighted_gpus > 1.0


def test_autoscaler_scales_in_when_idle():
    model = bert_base()
    # Load only in the first 5 s, then 60+ s of near-silence.
    busy = generate_twitter_trace(rate_per_s=400, duration_ms=seconds(5), seed=9)
    idle = generate_twitter_trace(rate_per_s=2, duration_ms=seconds(90), seed=10)
    trace = Trace.concat([busy, idle])
    scheme = build_scheme("st", "bert-base", 6)
    cfg = SimulationConfig(
        enable_autoscaler=True,
        autoscaler=AutoscalerConfig(slo_ms=model.slo_ms, min_gpus=1,
                                    window_size=64),
    )
    result = run_simulation(scheme, trace, cfg)
    assert result.control_stats["scale_ins"] > 0
    assert scheme.cluster.num_gpus < 6


def test_event_cap_guard():
    trace = generate_twitter_trace(rate_per_s=100, duration_ms=seconds(5), seed=1)
    with pytest.raises(SimulationError):
        run_simulation(
            build_scheme("st", "bert-base", 2), trace,
            SimulationConfig(max_events=10),
        )


def test_empty_trace_rejected():
    with pytest.raises(SimulationError):
        run_simulation(
            build_scheme("st", "bert-base", 1),
            Trace(np.empty(0), np.empty(0, dtype=int)),
        )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SimulationConfig(autoscale_check_ms=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(warmup_ms=-1)
    with pytest.raises(ConfigurationError):
        SimulationConfig(enable_autoscaler=True)  # missing autoscaler config
    with pytest.raises(ConfigurationError):
        SimulationConfig(trace_decisions=-1)


def test_decision_tracing():
    trace = generate_twitter_trace(rate_per_s=200, duration_ms=seconds(5),
                                   seed=31)
    scheme = build_scheme("arlo", "bert-base", 4)
    result = run_simulation(scheme, trace,
                            SimulationConfig(trace_decisions=25))
    log = result.decision_log
    assert len(log) == 25
    for entry in log:
        assert entry["chosen_level"] >= entry["ideal_level"]
        assert entry["demoted"] == (entry["chosen_level"] >
                                    entry["ideal_level"])
        assert entry["queue_depth"] >= 0
    # request ids follow arrival order for the traced prefix
    assert [e["request_id"] for e in log] == sorted(
        e["request_id"] for e in log
    )
    # tracing disabled -> empty log
    untraced = run_simulation(build_scheme("arlo", "bert-base", 4), trace)
    assert untraced.decision_log == []
    # non-Arlo dispatchers have no decision objects -> empty log, no crash
    st = run_simulation(build_scheme("st", "bert-base", 2), trace,
                        SimulationConfig(trace_decisions=10))
    assert st.decision_log == []


def test_deterministic_given_seed():
    trace = generate_twitter_trace(rate_per_s=150, duration_ms=seconds(10), seed=2)
    r1 = run_simulation(build_scheme("arlo", "bert-base", 4), trace)
    r2 = run_simulation(build_scheme("arlo", "bert-base", 4), trace)
    assert np.array_equal(r1.latencies(), r2.latencies())


def test_schemes_rank_as_in_paper():
    """Fig. 6 ordering: Arlo < DT < ST on mean latency."""
    trace = generate_twitter_trace(rate_per_s=300, duration_ms=seconds(20), seed=11)
    hint = trace.slice_time(0, seconds(5))
    results = {
        name: run_simulation(build_scheme(name, "bert-base", 6, trace_hint=hint),
                             trace)
        for name in ("st", "dt", "arlo")
    }
    assert results["arlo"].mean_ms < results["dt"].mean_ms < results["st"].mean_ms
