"""§5.2.1 fidelity: event-driven simulator vs the independent replayer.

The paper reports its simulator within 4.3 % (mean) / 2.6 % (p98) of
the testbed. Our cross-check is stricter: two independent
implementations of the same serving semantics must agree to
floating-point precision on static schemes.
"""

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.errors import SimulationError
from repro.sim.replay import replay_trace
from repro.sim.simulation import run_simulation
from repro.units import seconds
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


@pytest.mark.parametrize("name", ["st", "dt", "infaas", "arlo-even"])
def test_simulator_matches_replayer(name):
    trace = generate_twitter_trace(rate_per_s=250, duration_ms=seconds(15), seed=21)
    kwargs = {"trace_hint": trace.slice_time(0, seconds(3))} if name.startswith(
        "arlo") else {}
    sim_result = run_simulation(
        build_scheme(name, "bert-base", 5, **kwargs), trace
    )
    replay_lat = replay_trace(build_scheme(name, "bert-base", 5, **kwargs), trace)
    sim_lat = np.sort(sim_result.latencies())
    replay_lat = np.sort(replay_lat)
    assert sim_lat.shape == replay_lat.shape
    np.testing.assert_allclose(sim_lat, replay_lat, rtol=1e-9, atol=1e-9)


def test_replay_matches_under_bursty_arrivals():
    trace = generate_twitter_trace(
        rate_per_s=400, duration_ms=seconds(10), pattern="bursty", seed=22
    )
    sim = run_simulation(build_scheme("st", "bert-large", 4), trace)
    rep = replay_trace(build_scheme("st", "bert-large", 4), trace)
    np.testing.assert_allclose(
        np.sort(sim.latencies()), np.sort(rep), rtol=1e-9
    )


def test_replay_rejects_dynamic_schemes():
    trace = generate_twitter_trace(rate_per_s=50, duration_ms=seconds(2), seed=1)
    with pytest.raises(SimulationError):
        replay_trace(build_scheme("arlo", "bert-base", 3), trace)
    with pytest.raises(SimulationError):
        replay_trace(
            build_scheme("st", "bert-base", 1),
            Trace(np.empty(0), np.empty(0, dtype=int)),
        )


def test_paper_fidelity_bound_with_overhead_perturbation():
    """Even with the paper's 0.8 ms overhead removed from one side,
    the two paths stay within the paper's reported 4.3 %/2.6 % bands
    for this workload — a sanity check on the calibration story."""
    trace = generate_twitter_trace(rate_per_s=200, duration_ms=seconds(10), seed=23)
    sim = run_simulation(build_scheme("st", "bert-base", 5), trace)
    rep = np.sort(replay_trace(build_scheme("st", "bert-base", 5), trace))
    mean_gap = abs(sim.mean_ms - rep.mean()) / rep.mean()
    p98_gap = abs(sim.p98_ms - np.percentile(rep, 98)) / np.percentile(rep, 98)
    assert mean_gap <= 0.043
    assert p98_gap <= 0.026
