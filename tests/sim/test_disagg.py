"""Disaggregated prefill/decode pools: conservation, determinism, chaos.

Hard invariants under every configuration: each request completes
exactly once, the simulated decode-step count equals the trace's token
budget (with equality in fault-free runs and ``>=`` under faults —
re-dispatched requests redo their decode from step zero), every prompt
pays exactly one KV handoff per successful prefill, and two seeded
runs produce byte-identical statistics.
"""

import json

import pytest

from repro.baselines.schemes import build_scheme
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.obs.spans import ObservabilityConfig
from repro.resilience.retry import RetryPolicy
from repro.sim.disagg import DisaggConfig
from repro.sim.faults import FailureEvent, FaultPlan
from repro.sim.generative import GenerativeConfig
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.generative import GenerativeTraceConfig, generate_generative_trace

pytestmark = [pytest.mark.disagg, pytest.mark.generative]


def make_trace(seed=11, rate=300, duration_s=6, pattern="bursty"):
    return generate_generative_trace(
        GenerativeTraceConfig(
            rate_per_s=rate, duration_ms=seconds(duration_s),
            pattern=pattern, seed=seed,
        )
    )


def make_scheme(trace, gpus=6, period_s=60):
    return build_scheme(
        "arlo", "bert-base", gpus,
        trace_hint=trace.slice_time(0, seconds(2)),
        runtime_scheduler_config=RuntimeSchedulerConfig(
            period_ms=seconds(period_s)
        ),
    )


def run(trace, generative, *, gpus=6, period_s=60, **kwargs):
    scheme = make_scheme(trace, gpus=gpus, period_s=period_s)
    config = SimulationConfig(generative=generative, **kwargs)
    return scheme, run_simulation(scheme, trace, config)


@pytest.mark.parametrize("gen", [
    GenerativeConfig(disagg=DisaggConfig()),
    GenerativeConfig(disagg=DisaggConfig(transfer_ms_per_token=0.0)),
    GenerativeConfig(disagg=DisaggConfig(prefill_fraction=0.75,
                                         max_flips_per_period=2)),
    GenerativeConfig(max_batch=4, chunk_steps=2, disagg=DisaggConfig()),
    GenerativeConfig(continuous_batching=False, disagg=DisaggConfig()),
    GenerativeConfig(disagg=DisaggConfig(rebalance=False)),
])
def test_conservation_across_disagg_configs(gen):
    trace = make_trace()
    scheme, result = run(trace, gen)
    assert result.stats.count == len(trace)
    assert result.control_stats["decode_steps"] == trace.total_decode_steps
    # Fault-free: every prefill hands off exactly once, nothing voided.
    assert result.control_stats["prefill_completions"] == len(trace)
    assert result.control_stats["kv_transfers"] == len(trace)
    assert result.control_stats["kv_transfers_voided"] == 0
    assert scheme.cluster.total_outstanding() == 0
    for inst in scheme.cluster.instances.values():
        if inst.tracker is not None:
            assert inst.tracker.total_decoding() == 0
            break


def test_pools_partition_the_cluster_and_report_latency_stats():
    trace = make_trace(seed=5)
    _, result = run(trace, GenerativeConfig(disagg=DisaggConfig()),
                    period_s=1)
    ds = result.dispatch_stats
    assert ds["prefill_pool_size"] >= 1
    assert ds["decode_pool_size"] >= 1
    assert ds["prefill_pool_size"] + ds["decode_pool_size"] == 6
    # Per-pool SLO signals: TTFT (prefill+handoff+first step) and TPOT.
    for key in ("ttft_mean_ms", "ttft_p50_ms", "ttft_p98_ms",
                "tpot_mean_ms", "tpot_p50_ms", "tpot_p98_ms"):
        assert ds[key] > 0.0
    assert ds["ttft_p98_ms"] >= ds["ttft_p50_ms"]
    assert ds["tpot_p98_ms"] >= ds["tpot_p50_ms"]


def test_deterministic_rerun_is_byte_identical():
    gen = GenerativeConfig(disagg=DisaggConfig())
    blobs = []
    for _ in range(2):
        trace = make_trace(seed=21)
        _, result = run(trace, gen, period_s=1)
        blobs.append(json.dumps(
            {**result.dispatch_stats, **result.control_stats},
            sort_keys=True,
        ))
    assert blobs[0] == blobs[1]


def chaos_run(seed=11):
    """A decode-pool crash with KV transfers in flight.

    ``transfer_ms_per_token=5.0`` keeps handoffs airborne for hundreds
    of ms, and the rank-0 victim (max outstanding) at t=1.2s is a
    decode instance by construction — decode members hold whole batches
    while prefill members serve one prompt at a time.
    """
    trace = make_trace(seed=seed)
    gen = GenerativeConfig(
        disagg=DisaggConfig(transfer_ms_per_token=5.0)
    )
    plan = FaultPlan(events=(
        FailureEvent(time_ms=1200.0, recovery_ms=700.0, victim_rank=0),
    ))
    scheme = make_scheme(trace)
    result = run_simulation(scheme, trace, SimulationConfig(
        generative=gen, failures=plan, retry=RetryPolicy(),
        observability=ObservabilityConfig(sample_rate=1.0, timeline=True),
    ))
    return trace, result


def test_decode_crash_mid_handoff_conserves_requests():
    trace, result = chaos_run()
    cs = result.control_stats
    # The crash voided in-flight KV transfers; every voided request
    # re-entered through the budgeted retry path, redid prefill, and
    # still completed — with the redone decode work on top.
    assert result.stats.count == len(trace)
    assert cs["failures"] == 1
    assert cs["kv_transfers_voided"] >= 1
    assert cs["retries"] >= 1
    assert cs["decode_steps"] >= trace.total_decode_steps
    # Handoffs: one per successful prefill, voided ones re-dispatched.
    assert cs["kv_transfers"] >= len(trace)
    crash = result.timeline.query(category="fault", kind="crash")
    assert len(crash) == 1 and crash[0].detail["role"] == "decode"


def test_chaos_rerun_is_byte_identical():
    blobs = []
    for _ in range(2):
        _, result = chaos_run()
        blobs.append(json.dumps(
            {**result.dispatch_stats, **result.control_stats},
            sort_keys=True,
        ))
    assert blobs[0] == blobs[1]


def test_rebalancer_flips_roles_under_decode_skew():
    # Decode-skewed scenario: start the partition prefill-heavy (3/4 of
    # a 8-instance cluster) against a decode-hungry trace. The coupled
    # split sees decode occupancy pile up and must migrate prefill
    # instances into the decode pool at period boundaries.
    trace = generate_generative_trace(
        GenerativeTraceConfig(
            rate_per_s=250, duration_ms=seconds(6), pattern="bursty",
            seed=11,
        )
    )
    gen = GenerativeConfig(disagg=DisaggConfig(
        prefill_fraction=0.75, max_flips_per_period=2,
    ))
    scheme = make_scheme(trace, gpus=8, period_s=1)
    result = run_simulation(scheme, trace, SimulationConfig(
        generative=gen,
        observability=ObservabilityConfig(sample_rate=0.0, timeline=True),
    ))
    assert result.stats.count == len(trace)
    assert result.control_stats["pool_flips"] >= 1
    flips = result.timeline.query(category="pool", kind="flip")
    assert len(flips) == result.control_stats["pool_flips"]
    assert any(
        f.detail["from_role"] == "prefill" and f.detail["to_role"] == "decode"
        for f in flips
    )
    # Every flip follows a recorded split decision in the same stream.
    splits = result.timeline.query(category="pool", kind="split")
    assert splits and splits[0].time_ms <= flips[0].time_ms
    # The migration actually moved the standing partition.
    assert result.dispatch_stats["decode_pool_size"] > 2


def test_rebalance_off_freezes_the_partition():
    trace = make_trace(seed=9)
    gen = GenerativeConfig(disagg=DisaggConfig(rebalance=False))
    scheme = make_scheme(trace, period_s=1)
    result = run_simulation(scheme, trace, SimulationConfig(
        generative=gen,
        observability=ObservabilityConfig(sample_rate=0.0, timeline=True),
    ))
    assert result.control_stats["pool_flips"] == 0
    # Splits are still solved and recorded (the signal keeps flowing),
    # only the migration is disabled.
    assert result.timeline.query(category="pool", kind="split")
    assert not result.timeline.query(category="pool", kind="flip")


def test_disagg_vs_colocated_tpot_with_free_transfer():
    # With a free handoff and the same cluster, disaggregation relieves
    # decode batches of prefill fold-ins; experienced TPOT must not
    # regress by more than noise, and token conservation holds on both
    # paths. (TTFT trades the other way: prompts queue on fewer
    # instances. The bench row quantifies both directions.)
    trace = make_trace(seed=13, rate=200)
    _, co = run(trace, GenerativeConfig())
    trace2 = make_trace(seed=13, rate=200)
    _, dis = run(
        trace2,
        GenerativeConfig(disagg=DisaggConfig(transfer_ms_per_token=0.0)),
    )
    assert co.control_stats["decode_steps"] == trace.total_decode_steps
    assert dis.control_stats["decode_steps"] == trace.total_decode_steps
    assert dis.dispatch_stats["tpot_mean_ms"] <= (
        co.dispatch_stats["tpot_mean_ms"] * 1.10
    )


def test_disagg_config_validation():
    with pytest.raises(ConfigurationError):
        DisaggConfig(transfer_ms_per_token=-0.1)
    with pytest.raises(ConfigurationError):
        DisaggConfig(prefill_fraction=0.0)
    with pytest.raises(ConfigurationError):
        DisaggConfig(prefill_fraction=1.0)
    with pytest.raises(ConfigurationError):
        DisaggConfig(max_flips_per_period=-1)
    with pytest.raises(ConfigurationError):
        DisaggConfig(min_decode=0)


def test_disagg_requires_generative_trace_and_arlo():
    from repro.workload.twitter import TwitterTraceConfig, generate_twitter_trace

    plain = generate_twitter_trace(TwitterTraceConfig(
        rate_per_s=50, duration_ms=seconds(2), seed=1,
    ))
    scheme = make_scheme(make_trace())
    gen = GenerativeConfig(disagg=DisaggConfig())
    with pytest.raises(ConfigurationError):
        run_simulation(scheme, plain, SimulationConfig(generative=gen))
    trace = make_trace()
    st_scheme = build_scheme("st", "bert-base", 6)
    with pytest.raises(ConfigurationError):
        run_simulation(st_scheme, trace, SimulationConfig(generative=gen))


def test_too_few_instances_for_both_pools_is_rejected():
    trace = make_trace(rate=50, duration_s=3)
    scheme = build_scheme(
        "arlo", "bert-base", 1,
        trace_hint=trace.slice_time(0, seconds(1)),
    )
    gen = GenerativeConfig(disagg=DisaggConfig())
    with pytest.raises(ConfigurationError):
        run_simulation(scheme, trace, SimulationConfig(generative=gen))


def test_experiment_spec_routes_disagg():
    from repro.experiments.runner import ExperimentSpec

    spec = ExperimentSpec(
        name="disagg-route", model="bert-base", num_gpus=6,
        rate_per_s=150, duration_s=4, hint_s=1.0, schemes=("arlo",),
        generative=True, disagg=True, transfer_ms_per_token=0.1,
        prefill_fraction=0.6,
    )
    cfg = spec.sim_config()
    assert isinstance(cfg.generative.disagg, DisaggConfig)
    assert cfg.generative.disagg.transfer_ms_per_token == 0.1
    assert cfg.generative.disagg.prefill_fraction == 0.6


def test_experiment_spec_validates_generative_knobs():
    from repro.experiments.runner import ExperimentSpec

    base = dict(name="x", model="bert-base", num_gpus=4, rate_per_s=100,
                duration_s=4, hint_s=1.0, generative=True)
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, chunk_steps=0)
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, max_batch=0)
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, decode_median=0)
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, decode_median=128, decode_p98=64)
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, disagg=True, transfer_ms_per_token=-1.0)
    with pytest.raises(ConfigurationError):
        ExperimentSpec(**base, disagg=True, prefill_fraction=1.5)
    with pytest.raises(ConfigurationError):
        ExperimentSpec(name="x", model="bert-base", num_gpus=4,
                       rate_per_s=100, duration_s=4, hint_s=1.0,
                       disagg=True)  # disagg without generative
