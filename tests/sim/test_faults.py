"""Failure injection: crashes, work re-dispatch, recovery."""

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.errors import ConfigurationError
from repro.sim.faults import FailureEvent, FailurePlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


def bursty_trace(rate=300, duration_s=20, seed=13):
    return generate_twitter_trace(
        rate_per_s=rate, duration_ms=seconds(duration_s), seed=seed
    )


def test_failure_event_validation():
    with pytest.raises(ConfigurationError):
        FailureEvent(time_ms=-1.0)
    with pytest.raises(ConfigurationError):
        FailureEvent(time_ms=0.0, victim_rank=-1)
    with pytest.raises(ConfigurationError):
        FailureEvent(time_ms=0.0, recovery_ms=-1.0)
    with pytest.raises(ConfigurationError):
        FailurePlan.random(count=-1, horizon_ms=100.0)


def test_instant_recovery_is_legal():
    # recovery_ms=0 means "recovers in the same timestamp" (e.g. a
    # supervised process restart) and must be accepted — only negative
    # recovery is nonsense. Pin the contract end to end: the fleet is
    # whole again and every request completes.
    event = FailureEvent(time_ms=seconds(3), recovery_ms=0.0)
    assert event.recovery_ms == 0.0
    trace = bursty_trace(rate=100, duration_s=8)
    scheme = build_scheme("st", "bert-base", 3)
    result = run_simulation(
        scheme, trace, SimulationConfig(failures=FailurePlan(events=[event]))
    )
    assert result.stats.count == len(trace)
    assert scheme.cluster.num_gpus == 3
    assert scheme.cluster.num_active_instances == 3


def test_random_plan_within_horizon():
    plan = FailurePlan.random(count=5, horizon_ms=seconds(100), seed=3)
    assert len(plan) == 5
    times = [e.time_ms for e in plan.sorted_events()]
    assert times == sorted(times)
    assert all(seconds(10) <= t <= seconds(90) for t in times)


def test_all_requests_still_complete_under_failures():
    trace = bursty_trace()
    plan = FailurePlan(events=[
        FailureEvent(time_ms=seconds(5)),
        FailureEvent(time_ms=seconds(10)),
    ])
    scheme = build_scheme("arlo", "bert-base", 5)
    result = run_simulation(scheme, trace, SimulationConfig(failures=plan))
    assert result.stats.count == len(trace)
    assert result.control_stats["failures"] == 2
    assert result.control_stats["requests_lost"] >= 0
    assert scheme.cluster.total_outstanding() == 0


def test_recovery_restores_capacity():
    trace = bursty_trace(rate=200, duration_s=15)
    plan = FailurePlan(events=[FailureEvent(time_ms=seconds(4),
                                            recovery_ms=seconds(2))])
    scheme = build_scheme("st", "bert-base", 3)
    result = run_simulation(scheme, trace, SimulationConfig(failures=plan))
    assert result.stats.count == len(trace)
    # The GPU came back: full fleet at the end, no GPU released.
    assert scheme.cluster.num_gpus == 3
    assert scheme.cluster.num_active_instances == 3


def test_permanent_failure_releases_gpu():
    trace = bursty_trace(rate=100, duration_s=10)
    plan = FailurePlan(events=[FailureEvent(time_ms=seconds(3),
                                            recovery_ms=None)])
    scheme = build_scheme("st", "bert-base", 3)
    result = run_simulation(scheme, trace, SimulationConfig(failures=plan))
    assert result.stats.count == len(trace)
    assert scheme.cluster.num_gpus == 2
    assert result.control_stats["failures"] == 1


def test_failures_hurt_tail_latency():
    trace = bursty_trace(rate=400, duration_s=20)
    scheme_ok = build_scheme("arlo", "bert-base", 4)
    baseline = run_simulation(scheme_ok, trace)
    plan = FailurePlan.random(count=4, horizon_ms=seconds(20), seed=5,
                              recovery_ms=seconds(5))
    scheme_bad = build_scheme("arlo", "bert-base", 4)
    faulty = run_simulation(scheme_bad, trace, SimulationConfig(failures=plan))
    assert faulty.control_stats["requests_lost"] > 0
    assert faulty.p98_ms > baseline.p98_ms


def test_lost_requests_keep_original_arrival_time():
    # One instance, one failure right after a burst: re-dispatched
    # requests must be charged from their original arrival.
    trace = Trace(np.array([0.0, 1.0, 2.0]), np.array([100, 100, 100]))
    plan = FailurePlan(events=[FailureEvent(time_ms=3.0,
                                            recovery_ms=1_000.0)])
    scheme = build_scheme("st", "bert-base", 2)
    result = run_simulation(scheme, trace, SimulationConfig(failures=plan))
    # Victim is the busier instance; its requests finish only after the
    # survivor or the recovered instance serves them -> latency includes
    # the failure-induced delay measured from the original arrival.
    assert result.stats.count == 3
    assert result.stats.max_ms > 6.0


def test_failure_with_crashless_cluster_is_noop():
    trace = bursty_trace(rate=50, duration_s=5)
    # Failure scheduled long after the trace drains, when no active
    # instance remains to kill... instances persist, so it still fires.
    plan = FailurePlan(events=[FailureEvent(time_ms=seconds(60))])
    scheme = build_scheme("st", "bert-base", 2)
    result = run_simulation(scheme, trace, SimulationConfig(failures=plan))
    assert result.stats.count == len(trace)
