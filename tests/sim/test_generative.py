"""Generative data plane: decode event loop, batching, chaos, spans.

Hard invariants under every configuration: each request completes
exactly once, the simulated decode-step count equals the trace's token
budget (``total_decode_steps``), and the congestion tracker's decode
occupancy drains to zero when the run ends.
"""

import json

import pytest

from repro.baselines.schemes import build_scheme
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.obs.exporters import write_spans_jsonl
from repro.obs.schema import load_schema, validate_jsonl
from repro.obs.spans import ObservabilityConfig
from repro.resilience.manager import ResilienceConfig
from repro.resilience.retry import RetryPolicy
from repro.sim.events import decode_task_pool_stats
from repro.sim.faults import BlackoutEvent, FailureEvent, FaultPlan, SlowdownEvent
from repro.sim.generative import GenerativeConfig
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.workload.generative import GenerativeTraceConfig, generate_generative_trace
from repro.workload.twitter import generate_twitter_trace

pytestmark = pytest.mark.generative


def make_trace(seed=11, rate=300, duration_s=6, pattern="bursty"):
    return generate_generative_trace(
        GenerativeTraceConfig(
            rate_per_s=rate, duration_ms=seconds(duration_s),
            pattern=pattern, seed=seed,
        )
    )


def make_scheme(trace, gpus=4):
    return build_scheme(
        "arlo", "bert-base", gpus,
        trace_hint=trace.slice_time(0, seconds(2)),
        runtime_scheduler_config=RuntimeSchedulerConfig(
            period_ms=seconds(60)
        ),
    )


def run(trace, generative, *, gpus=4, **kwargs):
    scheme = make_scheme(trace, gpus=gpus)
    config = SimulationConfig(generative=generative, **kwargs)
    return scheme, run_simulation(scheme, trace, config)


@pytest.mark.parametrize("gen", [
    GenerativeConfig(),                                   # continuous, b=8
    GenerativeConfig(max_batch=1),                        # serial decode
    GenerativeConfig(max_batch=8, continuous_batching=False),  # gang
    GenerativeConfig(chunk_steps=4),                      # chunked steps
])
def test_conservation_across_batching_modes(gen):
    trace = make_trace()
    scheme, result = run(trace, gen)
    assert result.stats.count == len(trace)
    assert result.control_stats["decode_steps"] == trace.total_decode_steps
    assert scheme.cluster.total_outstanding() == 0
    for inst in scheme.cluster.instances.values():
        if inst.tracker is not None:
            assert inst.tracker.total_decoding() == 0
            break


def test_deterministic_rerun():
    trace = make_trace(seed=21)
    _, a = run(trace, GenerativeConfig())
    _, b = run(trace, GenerativeConfig())
    assert a.stats.count == b.stats.count
    assert a.stats.mean_ms == b.stats.mean_ms
    assert a.p98_ms == b.p98_ms
    assert a.control_stats["decode_steps"] == b.control_stats["decode_steps"]
    assert a.control_stats["step_events"] == b.control_stats["step_events"]
    assert a.control_stats["batch_joins"] == b.control_stats["batch_joins"]
    assert a.dispatch_stats["ttft_p98_ms"] == b.dispatch_stats["ttft_p98_ms"]


def test_continuous_batching_coalesces_steps():
    """Batched decode must fire far fewer events than serial decode,
    and requests must actually join running batches mid-flight."""
    trace = make_trace(seed=31)
    _, batched = run(trace, GenerativeConfig(max_batch=8))
    _, serial = run(trace, GenerativeConfig(max_batch=1))
    assert batched.control_stats["batch_joins"] > 0
    assert batched.control_stats["step_events"] < serial.control_stats["step_events"]
    # Serial decode never amortises: one event per chunk of one request.
    assert serial.control_stats["batch_joins"] == 0
    # Same token budget either way.
    assert (batched.control_stats["decode_steps"]
            == serial.control_stats["decode_steps"]
            == trace.total_decode_steps)
    # Batching shares step cost, so mean latency must not be worse.
    assert batched.stats.mean_ms <= serial.stats.mean_ms


def test_gang_mode_never_joins_mid_batch():
    trace = make_trace(seed=41)
    _, gang = run(trace, GenerativeConfig(max_batch=8,
                                          continuous_batching=False))
    assert gang.control_stats["batch_joins"] == 0
    assert gang.stats.count == len(trace)


def test_ttft_reported():
    trace = make_trace(seed=51, rate=200, duration_s=4)
    _, result = run(trace, GenerativeConfig())
    stats = result.dispatch_stats
    assert stats["ttft_mean_ms"] > 0
    assert stats["ttft_p50_ms"] <= stats["ttft_p98_ms"]
    # First token lands before the full completion on average.
    assert stats["ttft_mean_ms"] < result.stats.mean_ms


def test_chaos_crash_mid_decode_redispatches():
    """Crash + blackout + slowdown while decode batches are in flight:
    voided in-batch work is re-dispatched (with backoff while the retry
    budget lasts) and every request still completes exactly once."""
    trace = make_trace(seed=61, rate=300, duration_s=6)
    plan = FaultPlan(events=[
        SlowdownEvent(time_ms=seconds(1.5), factor=3.0,
                      duration_ms=seconds(2)),
        FailureEvent(time_ms=seconds(2), recovery_ms=seconds(2)),
        BlackoutEvent(time_ms=seconds(3.5), duration_ms=seconds(1)),
    ])
    scheme, result = run(trace, GenerativeConfig(), failures=plan)
    assert result.stats.count == len(trace)
    assert scheme.cluster.total_outstanding() == 0
    assert result.control_stats["failures"] == 1
    assert result.control_stats["blackouts"] == 1
    assert result.control_stats["slowdowns"] == 1
    # The crash/blackout voided live decode batches -> timed-out work
    # came back through the retry path.
    assert result.control_stats["timeouts"] >= 1
    assert result.control_stats["retries"] >= 1
    # Conservation of tokens: lost steps are re-decoded from scratch,
    # so the step count can only exceed the trace budget, never trail it.
    assert result.control_stats["decode_steps"] >= trace.total_decode_steps


def test_chaos_zero_retry_budget_still_completes():
    """budget_fraction=0 now means literally zero budgeted retries (the
    satellite bugfix); lost work falls back to immediate re-admission
    and conservation still holds."""
    trace = make_trace(seed=71, rate=250, duration_s=5)
    plan = FaultPlan(events=[
        FailureEvent(time_ms=seconds(2), recovery_ms=seconds(2)),
    ])
    scheme, result = run(
        trace, GenerativeConfig(), failures=plan,
        retry=RetryPolicy(budget_fraction=0.0),
    )
    assert result.stats.count == len(trace)
    assert result.control_stats["retries"] == 0
    assert result.control_stats["retry_budget_exhausted"] >= 1
    assert scheme.cluster.total_outstanding() == 0


def test_spans_carry_first_token_and_decode_steps(tmp_path):
    trace = make_trace(seed=81, rate=150, duration_s=4)
    _, result = run(
        trace, GenerativeConfig(),
        observability=ObservabilityConfig(sample_rate=1.0),
    )
    assert len(result.spans) == len(trace)
    first_token_seen = 0
    for span in result.spans:
        phases = [event["phase"] for event in span.events]
        completes = [e for e in span.events if e["phase"] == "complete"]
        assert len(completes) == 1
        assert completes[0]["decode_steps"] >= 1
        if "first_token" in phases:
            first_token_seen += 1
            ft = next(e for e in span.events if e["phase"] == "first_token")
            assert ft["ttft_ms"] >= 0
            assert ft["batch_size"] >= 1
            assert ft["t_ms"] <= completes[0]["t_ms"]
    assert first_token_seen == len(trace)
    # The extended span events validate against the checked-in schema.
    path = tmp_path / "spans.jsonl"
    written = write_spans_jsonl(path, result.spans)
    assert validate_jsonl(path, load_schema("trace_span")) == written
    # And decode_steps round-trips through the JSONL export.
    line = json.loads(path.read_text().splitlines()[0])
    assert any("decode_steps" in event for event in line["events"])


def test_decode_task_pool_reuses_freed_tasks():
    trace = make_trace(seed=91, rate=150, duration_s=3)
    run(trace, GenerativeConfig())
    allocated = decode_task_pool_stats()["total_allocated"]
    run(trace, GenerativeConfig())
    # An identical rerun is fully served from the free list.
    assert decode_task_pool_stats()["total_allocated"] == allocated
    assert decode_task_pool_stats()["free"] >= 1


def test_generative_requires_generative_trace_and_clean_control_plane():
    gen_trace = make_trace(seed=5, rate=100, duration_s=2)
    plain = generate_twitter_trace(
        rate_per_s=100, duration_ms=seconds(2), pattern="bursty", seed=5
    )
    scheme = make_scheme(gen_trace)
    with pytest.raises(ConfigurationError):
        run_simulation(scheme, plain,
                       SimulationConfig(generative=GenerativeConfig()))
    with pytest.raises(ConfigurationError):
        run_simulation(
            scheme, gen_trace,
            SimulationConfig(generative=GenerativeConfig(),
                             enable_autoscaler=True),
        )
    with pytest.raises(ConfigurationError):
        run_simulation(
            scheme, gen_trace,
            SimulationConfig(generative=GenerativeConfig(),
                             resilience=ResilienceConfig()),
        )
    with pytest.raises(ConfigurationError):
        GenerativeConfig(max_batch=0)
    with pytest.raises(ConfigurationError):
        GenerativeConfig(chunk_steps=0)


def test_discriminative_path_untouched_when_generative_off():
    """Running a generative trace through the classic prefill-only loop
    yields results byte-identical to the plain twitter trace — the
    decode column is simply ignored, so every pre-existing golden
    number stands."""
    gen_trace = make_trace(seed=7, rate=200, duration_s=4)
    plain = generate_twitter_trace(
        rate_per_s=200, duration_ms=seconds(4), pattern="bursty", seed=7
    )
    _, a = run_and_result(gen_trace)
    _, b = run_and_result(plain)
    assert a.stats.count == b.stats.count
    assert a.stats.mean_ms == b.stats.mean_ms
    assert a.p98_ms == b.p98_ms


def run_and_result(trace):
    scheme = make_scheme(trace)
    return scheme, run_simulation(scheme, trace, SimulationConfig())
