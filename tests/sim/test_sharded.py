"""Serial vs sharded equivalence (the data-plane determinism contract).

The sharded driver promises: on a trace with quiescent window
boundaries and self-contained faults, a static scheme's per-request
latency multiset is *identical* to the serial run (instances of a
level are interchangeable when drained, so the two executions differ
only by relabelling). The tests pin that exactly — merged sketch bins
equal the serial sketch bins — plus the ISSUE-level contract: counts
exact, quantiles within sketch tolerance.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_single
from repro.sim.faults import (
    BlackoutEvent,
    FailureEvent,
    FaultPlan,
    SlowdownEvent,
)
from repro.sim.sharded import merge_shard_summaries, run_sharded, shard_specs
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


def _chaos_fixture():
    """A 40 s chaos trace: 4 windows of 7 s arrivals + 3 s drain gap,
    with crashes, a slowdown, and a blackout all healed inside their
    own window."""
    windows = []
    for k in range(4):
        piece = generate_twitter_trace(
            rate_per_s=80.0, duration_ms=7_000.0, pattern="bursty",
            seed=50 + k,
        )
        windows.append(piece.shift(k * 10_000.0))
    trace = Trace.merge(windows)
    plan = FaultPlan(events=[
        FailureEvent(time_ms=2_000.0, recovery_ms=1_500.0),
        SlowdownEvent(time_ms=3_000.0, factor=2.5, duration_ms=2_000.0),
        BlackoutEvent(time_ms=12_000.0, duration_ms=1_500.0),
        FailureEvent(time_ms=22_000.0, recovery_ms=1_000.0),
    ])
    spec = ExperimentSpec(
        name="chaos-eq", model="bert-base", num_gpus=4, rate_per_s=80.0,
        duration_s=40.0, schemes=("dt",), hint_s=2.0, retry=None,
        failures=plan, trace_override=trace,
    )
    return spec, plan


@pytest.fixture(scope="module")
def chaos_serial():
    spec, plan = _chaos_fixture()
    _, result = run_single(spec, "dt")
    result.metrics._sync_sketch()
    return spec, plan, result


@pytest.mark.parametrize("num_shards,workers", [(2, 2), (4, 4)])
def test_sharded_matches_serial_on_chaos_trace(
    chaos_serial, num_shards, workers
):
    spec, plan, serial = chaos_serial
    merged = run_sharded(spec, "dt", num_shards=num_shards, workers=workers)

    # Counts are exact: every request completes in exactly one shard.
    assert merged.stats.count == serial.stats.count
    assert merged.events_processed == serial.events_processed
    assert merged.control_stats["failures"] == plan.counts()["FailureEvent"]
    assert (
        merged.control_stats["slowdowns"] == plan.counts()["SlowdownEvent"]
    )
    assert (
        merged.control_stats["blackouts"] == plan.counts()["BlackoutEvent"]
    )

    # Quiescent boundaries + self-contained faults + a static scheme:
    # the latency multisets are identical, so the merged sketch equals
    # the serial sketch bin for bin.
    serial_sketch = serial.metrics.sketch
    assert np.array_equal(merged.sketch.counts, serial_sketch.counts)
    assert merged.sketch.violations == serial_sketch.violations
    assert merged.stats.mean_ms == pytest.approx(
        serial_sketch.mean_ms, rel=1e-9
    )

    # The ISSUE-level contract (quantiles within sketch tolerance)
    # holds a fortiori; assert it against the exact serial stats too.
    for q, exact in ((0.5, serial.stats.p50_ms), (0.99, serial.stats.p99_ms)):
        assert merged.sketch.quantile(q) == pytest.approx(exact, rel=0.01)


def test_inline_and_pooled_merges_agree(chaos_serial):
    spec, _, _ = chaos_serial
    inline = run_sharded(spec, "dt", num_shards=2, workers=1)
    pooled = run_sharded(spec, "dt", num_shards=2, workers=2)
    assert np.array_equal(inline.sketch.counts, pooled.sketch.counts)
    assert inline.stats == pooled.stats
    assert inline.control_stats == pooled.control_stats


def test_merge_is_order_independent(chaos_serial):
    spec, _, _ = chaos_serial
    from repro.experiments.runner import run_experiments
    from repro.sim.sharded import summarize_shard

    specs = shard_specs(spec, 4)
    out = run_experiments(specs, schemes=("dt",), workers=1,
                          summarize=summarize_shard)
    pairs = [
        (s.shard_window_ms()[0], out[s.name]["dt"]) for s in specs
    ]
    forward = merge_shard_summaries(pairs)
    backward = merge_shard_summaries(list(reversed(pairs)))
    assert np.array_equal(forward.sketch.counts, backward.sketch.counts)
    assert forward.stats == backward.stats
    assert forward.end_ms == backward.end_ms
    assert forward.control_stats == backward.control_stats


def test_shard_specs_validation():
    spec, _ = _chaos_fixture()
    with pytest.raises(ConfigurationError):
        shard_specs(spec, 0)
    shards = shard_specs(spec, 3)
    with pytest.raises(ConfigurationError):
        shard_specs(shards[0], 2)  # already a shard
    # Windows tile the horizon exactly.
    edges = [s.shard_window_ms() for s in shards]
    assert edges[0][0] == 0.0
    assert edges[-1][1] == 40_000.0
    for (_, end), (start, _) in zip(edges, edges[1:]):
        assert end == start


def _summary(dispatched: float, gated: float, demotion_rate: float = 0.0,
             latencies=(10.0, 20.0)) -> "ShardSummary":
    from repro.sim.metrics import StreamingLatencySummary
    from repro.sim.sharded import ShardSummary

    sketch = StreamingLatencySummary(slo_ms=100.0)
    for v in latencies:
        sketch.add(v)
    return ShardSummary(
        scheme_name="arlo", sketch=sketch, events_processed=len(latencies),
        end_ms=1_000.0, time_weighted_gpus=2.0, control_stats={},
        dispatch_stats={
            "dispatched": dispatched, "gated": gated,
            "demotion_rate": demotion_rate, "fallback_rate": 0.0,
        },
    )


def test_merge_preserves_gated_counts_when_nothing_dispatched():
    """Regression: an all-gated merge (every shard sheds everything at
    the dispatcher) used to drop the ``gated`` counter entirely because
    the whole dispatch dict was gated on ``dispatched > 0``."""
    merged = merge_shard_summaries([
        (0.0, _summary(dispatched=0.0, gated=30.0)),
        (1_000.0, _summary(dispatched=0.0, gated=12.0)),
    ])
    assert merged.dispatch_stats["gated"] == 42.0
    assert merged.dispatch_stats["dispatched"] == 0.0
    # Rates degrade to 0 instead of dividing by zero.
    assert merged.dispatch_stats["demotion_rate"] == 0.0
    assert merged.dispatch_stats["fallback_rate"] == 0.0


def test_merge_rate_weights_ignore_gated_only_shards():
    """A shard with zero dispatches contributes zero weight to the
    re-weighted rates rather than diluting or poisoning them."""
    merged = merge_shard_summaries([
        (0.0, _summary(dispatched=100.0, gated=0.0, demotion_rate=0.3)),
        (1_000.0, _summary(dispatched=0.0, gated=50.0, demotion_rate=0.9)),
    ])
    assert merged.dispatch_stats["dispatched"] == 100.0
    assert merged.dispatch_stats["gated"] == 50.0
    assert merged.dispatch_stats["demotion_rate"] == pytest.approx(0.3)


def test_fault_plan_window_filters_and_shifts():
    _, plan = _chaos_fixture()
    sub = plan.window(10_000.0, 20_000.0)
    assert len(sub) == 1
    event = sub.events[0]
    assert isinstance(event, BlackoutEvent)
    assert event.time_ms == 2_000.0
