"""ControlPlane: replacement execution, scaling actions, crash races."""

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.cluster.autoscaler import AutoscalerConfig, TargetTrackingAutoscaler
from repro.cluster.replacement import REPLACEMENT_DURATION_MS, plan_replacement
from repro.errors import SimulationError
from repro.sim.controller import ControlPlane, DrainTrigger, SwapReady
from repro.sim.engine import EventQueue
from repro.sim.events import EventKind


def make_control(alloc=(3, 0, 0, 0, 0, 0, 0, 1), autoscaler=None):
    scheme = build_scheme("arlo", "bert-base", sum(alloc))
    # Force the exact allocation for determinism.
    from repro.cluster.state import ClusterState
    from repro.core.mlq import MultiLevelQueue
    from repro.core.request_scheduler import ArloRequestScheduler
    from repro.baselines.dispatchers import ArloDispatcher

    scheme.cluster = ClusterState.bootstrap(scheme.registry, list(alloc))
    scheme.mlq = MultiLevelQueue.from_cluster(scheme.cluster)
    scheme.dispatcher = ArloDispatcher(
        scheduler=ArloRequestScheduler(registry=scheme.registry,
                                       mlq=scheme.mlq)
    )
    queue = EventQueue()
    return scheme, queue, ControlPlane(scheme=scheme, queue=queue,
                                       autoscaler=autoscaler)


def drain_queue(control, queue):
    new_instances = []
    while queue:
        event = queue.pop()
        if event.kind is EventKind.REPLACEMENT_READY:
            inst = control.on_replacement_event(queue.now_ms, event.payload)
            if inst is not None:
                new_instances.append(inst)
    return new_instances


def test_idle_donors_swap_after_one_second():
    scheme, queue, control = make_control()
    plan = plan_replacement(scheme.cluster,
                            np.array([1, 2, 0, 0, 0, 0, 0, 1]))
    control.start_plan(0.0, plan)
    assert control.has_pending_work
    created = drain_queue(control, queue)
    assert len(created) == 2
    assert scheme.cluster.allocation().tolist() == [1, 2, 0, 0, 0, 0, 0, 1]
    assert control.replacements_executed == 2
    assert not control.has_pending_work


def test_busy_donor_waits_for_drain():
    scheme, queue, control = make_control()
    donors = scheme.cluster.active_instances(0)
    busy = donors[0]
    busy.enqueue(0.0, 10)
    plan = plan_replacement(scheme.cluster,
                            np.array([2, 1, 0, 0, 0, 0, 0, 1]))
    # The planner picks the least busy donor, so force the busy one.
    from repro.cluster.replacement import ReplacementPlan, ReplacementStep

    plan = ReplacementPlan(steps=[
        ReplacementStep(instance_id=busy.instance_id, from_runtime=0,
                        to_runtime=1)
    ])
    control.start_plan(0.0, plan)
    assert len(queue) == 0  # still draining; no swap scheduled yet
    busy.complete()
    control.on_completion(5.0, busy)
    assert len(queue) == 1
    event = queue.pop()
    assert event.time_ms == pytest.approx(5.0 + REPLACEMENT_DURATION_MS)
    control.on_replacement_event(event.time_ms, event.payload)
    assert scheme.cluster.allocation()[1] == 1


def test_staggered_batches_use_drain_triggers():
    scheme, queue, control = make_control(alloc=(4, 0, 0, 0, 0, 0, 0, 1))
    plan = plan_replacement(scheme.cluster,
                            np.array([0, 4, 0, 0, 0, 0, 0, 1]),
                            batch_size=2)
    control.start_plan(0.0, plan)
    # First batch drains immediately; second batch arrives as triggers.
    triggers = [e for e in queue._heap
                if isinstance(e[3], DrainTrigger)]
    assert len(triggers) == 2
    assert all(t[0] == pytest.approx(REPLACEMENT_DURATION_MS)
               for t in triggers)
    created = drain_queue(control, queue)
    assert len(created) == 4


def test_crashed_donor_swap_is_ignored():
    scheme, queue, control = make_control()
    donor = scheme.cluster.active_instances(0)[0]
    from repro.cluster.replacement import ReplacementPlan, ReplacementStep

    control.start_plan(0.0, ReplacementPlan(steps=[
        ReplacementStep(donor.instance_id, 0, 1)
    ]))
    # The donor crashes before its swap fires (start_plan already
    # removed it from the MLQ when the drain began).
    if scheme.mlq.contains(donor):
        scheme.mlq.remove(donor)
    control.note_failure(donor.instance_id)
    scheme.cluster.crash_instance(donor)
    event = queue.pop()
    assert control.on_replacement_event(event.time_ms, event.payload) is None
    assert not control.has_pending_work


def test_unknown_swap_raises():
    scheme, queue, control = make_control()
    with pytest.raises(SimulationError):
        control.on_replacement_event(0.0, SwapReady(999, 1))
    with pytest.raises(SimulationError):
        control.on_replacement_event(0.0, "garbage")


def test_autoscale_out_and_in():
    cfg = AutoscalerConfig(slo_ms=150.0, window_size=64, min_gpus=1)
    scaler = TargetTrackingAutoscaler(cfg)
    scheme, queue, control = make_control(autoscaler=scaler)
    for _ in range(64):
        scaler.observe(149.0)
    control.autoscale_check(10_000.0)
    event = queue.pop()
    assert event.kind is EventKind.SCALE_OUT_READY
    inst = control.on_scale_out_ready(event.time_ms, event.payload)
    assert inst.runtime_index == len(scheme.registry) - 1  # max length
    assert control.scale_outs == 1


def test_scale_in_preserves_top_level():
    cfg = AutoscalerConfig(slo_ms=150.0, window_size=64, min_gpus=1,
                           scale_in_period_ms=1_000.0)
    scaler = TargetTrackingAutoscaler(cfg)
    scheme, queue, control = make_control(alloc=(0, 0, 0, 0, 0, 0, 0, 2),
                                          autoscaler=scaler)
    victim = control._scale_in_victim()
    assert victim is not None  # two top-level instances: one may go
    scheme2, _, control2 = make_control(alloc=(1, 0, 0, 0, 0, 0, 0, 1))
    v2 = control2._scale_in_victim()
    assert v2.runtime_index == 0  # never the only max-length instance
    scheme3, _, control3 = make_control(alloc=(0, 0, 0, 0, 0, 0, 0, 1))
    assert control3._scale_in_victim() is None  # last instance stays
