"""Data-plane configuration contracts: batch dispatch and columnar events.

Three independent switches shape the hot loop, and each must be
invisible in the results:

- ``batch_dispatch`` vectorizes same-timestamp arrival runs through
  the slack-certificate batch path. Decisions (levels, counters) must
  match the scalar walk exactly; latency pairing within a level may
  differ (interchangeable members), so moments agree approximately.
- Faults and tracing *disable* batching (gate verdicts and
  probe-faithful spans are scalar-path features), so those runs must
  be bit-exact regardless of the flag.
- ``data_plane="columnar"`` swaps completion records for
  struct-of-arrays slots. Pure representation change: bit-exact.
"""

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.obs.spans import ObservabilityConfig
from repro.sim.faults import FaultPlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


def quantized_trace(rate_per_s=400.0, duration_ms=20_000.0, seed=23,
                    grid_ms=10.0):
    """Arrivals snapped to a grid so same-timestamp runs exist — the
    precondition for the batch path to engage at all."""
    t = generate_twitter_trace(
        rate_per_s=rate_per_s, duration_ms=duration_ms, seed=seed
    )
    return Trace(np.floor(t.arrival_ms / grid_ms) * grid_ms, t.length)


def run_pair(trace, base_config, **overrides):
    """The same trace under two configs, fresh scheme each (runs
    mutate the scheme)."""
    import dataclasses

    results = []
    for extra in ({}, overrides):
        scheme = build_scheme("arlo-even", "bert-base", 8)
        config = dataclasses.replace(base_config, **extra)
        result = run_simulation(scheme, trace, config)
        result.metrics._sync_sketch()
        results.append(result)
    return results


def assert_bit_exact(a, b):
    assert np.array_equal(a.metrics.sketch.counts, b.metrics.sketch.counts)
    assert a.metrics.sketch.total_ms == b.metrics.sketch.total_ms
    assert a.events_processed == b.events_processed
    assert a.control_stats == b.control_stats
    assert a.dispatch_stats == b.dispatch_stats


def test_batch_dispatch_matches_scalar_decisions_end_to_end():
    """Same trace, batch on vs off: identical decision counters and
    population, means within pairing tolerance."""
    trace = quantized_trace()
    on, off = run_pair(
        trace, SimulationConfig(batch_dispatch=True), batch_dispatch=False
    )
    assert on.dispatch_stats["batched"] > 0, "batch path never engaged"
    assert off.dispatch_stats["batched"] == 0
    for key in ("dispatched", "gated", "demotion_rate", "fallback_rate"):
        assert on.dispatch_stats[key] == off.dispatch_stats[key], key
    assert on.stats.count == off.stats.count
    assert on.events_processed == off.events_processed
    assert on.metrics.deferred_requests == off.metrics.deferred_requests
    # Pairing within a level differs (block chains vs interleaved
    # min-pops over interchangeable members), so the latency multiset
    # is only approximately equal.
    assert on.stats.mean_ms == pytest.approx(off.stats.mean_ms, rel=5e-3)
    assert on.stats.p99_ms == pytest.approx(off.stats.p99_ms, rel=0.05)


def test_batch_flag_is_inert_under_faults():
    """A fault plan turns batching off wholesale (victim ranking
    reads per-instance depths that batch pairing would perturb) —
    chaos runs are bit-exact whatever the flag."""
    trace = quantized_trace(seed=31)
    plan = FaultPlan.chaos(20_000.0, seed=9)
    on, off = run_pair(
        trace,
        SimulationConfig(batch_dispatch=True, failures=plan),
        batch_dispatch=False,
    )
    assert on.dispatch_stats["batched"] == 0
    assert_bit_exact(on, off)


def test_batch_flag_is_inert_under_tracing():
    """Probe-faithful spans require the scalar walk; a live tracer
    disables batching, and span totals still reconcile bit-exactly
    with the metrics sketch."""
    trace = quantized_trace(seed=37, duration_ms=10_000.0)
    config = SimulationConfig(
        batch_dispatch=True,
        observability=ObservabilityConfig(sample_rate=1.0),
    )
    on, off = run_pair(trace, config, batch_dispatch=False)
    assert on.dispatch_stats["batched"] == 0
    assert_bit_exact(on, off)
    span_total = sum(s.latency_ms for s in on.spans)
    assert span_total == pytest.approx(on.metrics.sketch.total_ms, rel=1e-9)


def test_columnar_matches_pooled_bit_exact_under_chaos():
    """The columnar store is a representation change only — crashes,
    retries, and stale-token discards included."""
    trace = quantized_trace(seed=41)
    plan = FaultPlan.chaos(20_000.0, seed=13)
    pooled, columnar = run_pair(
        trace,
        SimulationConfig(failures=plan, data_plane="pooled"),
        data_plane="columnar",
    )
    assert_bit_exact(pooled, columnar)


def test_columnar_matches_pooled_with_batch_engaged():
    """Columnar slots and batch admission compose: same decisions,
    same bits, both representations."""
    trace = quantized_trace(seed=43)
    pooled, columnar = run_pair(
        trace,
        SimulationConfig(batch_dispatch=True, data_plane="pooled"),
        data_plane="columnar",
    )
    assert pooled.dispatch_stats["batched"] > 0
    assert (
        pooled.dispatch_stats["batched"]
        == columnar.dispatch_stats["batched"]
    )
    assert_bit_exact(pooled, columnar)
