"""Event queue determinism and metrics accounting."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventQueue
from repro.sim.events import EventKind
from repro.sim.metrics import LatencyStats, MetricsCollector


def test_queue_orders_by_time():
    q = EventQueue()
    q.push(5.0, EventKind.ARRIVAL, "late")
    q.push(1.0, EventKind.ARRIVAL, "early")
    assert q.pop().payload == "early"
    assert q.now_ms == 1.0
    assert q.pop().payload == "late"


def test_same_time_completion_before_arrival():
    q = EventQueue()
    q.push(2.0, EventKind.ARRIVAL, "arrival")
    q.push(2.0, EventKind.COMPLETION, "completion")
    assert q.pop().payload == "completion"
    assert q.pop().payload == "arrival"


def test_same_time_control_before_arrival():
    """Coordinator/reschedule actions apply before same-instant traffic."""
    q = EventQueue()
    q.push(2.0, EventKind.ARRIVAL, "arrival")
    q.push(2.0, EventKind.COORDINATE, "coordinate")
    q.push(2.0, EventKind.RESCHEDULE, "reschedule")
    kinds = [q.pop().payload for _ in range(3)]
    assert kinds == ["reschedule", "coordinate", "arrival"]


def test_same_time_same_kind_fifo():
    q = EventQueue()
    q.push(2.0, EventKind.ARRIVAL, "first")
    q.push(2.0, EventKind.ARRIVAL, "second")
    assert q.pop().payload == "first"


def test_no_scheduling_into_the_past():
    q = EventQueue()
    q.push(5.0, EventKind.ARRIVAL)
    q.pop()
    with pytest.raises(SimulationError):
        q.push(4.0, EventKind.ARRIVAL)
    q.push(5.0, EventKind.ARRIVAL)  # same time is fine


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_counters_and_peek():
    q = EventQueue()
    assert q.peek_time() is None
    q.push(3.0, EventKind.ARRIVAL)
    assert q.peek_time() == 3.0
    assert len(q) == 1
    q.pop()
    assert q.events_processed == 1
    assert not q


# -- metrics --------------------------------------------------------------

def test_latency_stats_fields():
    lat = np.array([1.0, 2.0, 3.0, 100.0])
    stats = LatencyStats.from_array(lat, slo_ms=50.0)
    assert stats.count == 4
    assert stats.mean_ms == pytest.approx(26.5)
    assert stats.max_ms == 100.0
    assert stats.slo_violation_rate == 0.25
    with pytest.raises(SimulationError):
        LatencyStats.from_array(np.empty(0), slo_ms=50.0)


def test_collector_chunks_grow():
    c = MetricsCollector(slo_ms=100.0)
    n = MetricsCollector._CHUNK * 2 + 17
    for i in range(n):
        c.record(float(i % 50), i % 3)
    assert c.completed == n
    assert c.latencies().size == n
    assert c.runtime_indexes().size == n
    assert c.stats().count == n


def test_collector_per_runtime_mean():
    c = MetricsCollector(slo_ms=100.0)
    c.record(10.0, 0)
    c.record(20.0, 0)
    c.record(50.0, 3)
    means = c.per_runtime_mean()
    assert means[0] == pytest.approx(15.0)
    assert means[3] == pytest.approx(50.0)


def test_collector_validation():
    with pytest.raises(SimulationError):
        MetricsCollector(slo_ms=0.0)
    c = MetricsCollector(slo_ms=10.0)
    with pytest.raises(SimulationError):
        c.record(-1.0, 0)
    with pytest.raises(SimulationError):
        c.time_weighted_gpus(10.0)


def test_time_weighted_gpus_step_function():
    c = MetricsCollector(slo_ms=10.0)
    c.sample_gpus(0.0, 5)
    c.sample_gpus(1000.0, 10)
    # 5 GPUs for 1s + 10 GPUs for 1s over 2s = 7.5
    assert c.time_weighted_gpus(2000.0) == pytest.approx(7.5)
    # Degenerate horizon: report the last count.
    c2 = MetricsCollector(slo_ms=10.0)
    c2.sample_gpus(0.0, 4)
    assert c2.time_weighted_gpus(0.0) == 4.0
