"""Simulated compiler and CompiledRuntime semantics."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.compiler import SimulatedCompiler, staircase_of
from repro.runtimes.models import bert_base, dolly


@pytest.fixture
def compiler():
    return SimulatedCompiler()


def test_static_runtime_pads_to_max_length(compiler):
    rt = compiler.compile_static(bert_base(), 128)
    # Any accepted length executes at the compiled length.
    assert rt.service_ms(1) == rt.service_ms(128)
    assert rt.padded_tokens(28) == 100
    assert rt.padded_tokens(128) == 0


def test_static_runtime_rejects_long_requests(compiler):
    rt = compiler.compile_static(bert_base(), 128)
    with pytest.raises(CapacityError):
        rt.service_ms(129)
    with pytest.raises(CapacityError):
        rt.padded_tokens(200)
    with pytest.raises(CapacityError):
        rt.service_ms(0)


def test_dynamic_runtime_no_padding_but_inflated(compiler):
    model = bert_base()
    dyn = compiler.compile_dynamic(model)
    static_full = compiler.compile_static(model, 512)
    assert dyn.padded_tokens(100) == 0
    # Short requests are cheaper than full padding but pay inflation.
    assert dyn.service_ms(20) < static_full.service_ms(20)
    assert dyn.service_ms(20) > model.static_latency.compute_ms(20)


def test_compile_bounds_validated(compiler):
    with pytest.raises(ConfigurationError):
        compiler.compile_static(bert_base(), 0)
    with pytest.raises(ConfigurationError):
        compiler.compile_static(bert_base(), 1024)


def test_polymorph_set_sorted_and_deduped(compiler):
    rts = compiler.compile_polymorph_set(bert_base(), [256, 64, 128, 64])
    assert [r.max_length for r in rts] == [64, 128, 256]
    with pytest.raises(ConfigurationError):
        compiler.compile_polymorph_set(bert_base(), [])


def test_build_cost_accounting(compiler):
    compiler.compile_static(bert_base(), 64)
    after_static = compiler.total_build_cost_s
    compiler.compile_dynamic(bert_base())
    after_dyn = compiler.total_build_cost_s
    compiler.compile_dynamic(dolly())  # TVM tuning is the expensive one
    after_tvm = compiler.total_build_cost_s
    assert 0 < after_static < after_dyn < after_tvm
    assert after_tvm - after_dyn > after_dyn - after_static


def test_staircase_of_unwraps_models(compiler):
    static_rt = compiler.compile_static(bert_base(), 64)
    dyn_rt = compiler.compile_dynamic(bert_base())
    assert staircase_of(static_rt).step == 64
    assert staircase_of(dyn_rt) == staircase_of(static_rt)


def test_spec_keys_distinct(compiler):
    a = compiler.compile_static(bert_base(), 64)
    b = compiler.compile_static(bert_base(), 128)
    d = compiler.compile_dynamic(bert_base())
    assert len({a.spec.key, b.spec.key, d.spec.key}) == 3
