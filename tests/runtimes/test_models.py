"""Model zoo calibration against the numbers quoted in the paper."""

import pytest

from repro.errors import ConfigurationError
from repro.runtimes.models import MODEL_ZOO, bert_base, bert_large, dolly, get_model


def test_bert_base_fig2a_calibration():
    m = bert_base()
    lat512 = m.static_latency.step_latency_ms(8)
    lat64 = m.static_latency.step_latency_ms(1)
    # Paper: 4.86 ms at length 512; 4.22x ratio vs length 64.
    assert lat512 == pytest.approx(4.86, rel=0.01)
    assert lat512 / lat64 == pytest.approx(4.22, rel=0.02)
    assert m.slo_ms == 150.0
    assert m.num_buckets == 8


def test_bert_base_padding_inflation_example():
    # Paper §2.2: a length-20 request on a max_length-512 runtime takes
    # 4.86 ms, 4.28x its actual computation time.
    m = bert_base()
    padded = m.static_latency.step_latency_ms(8)
    actual = m.static_latency.compute_ms(20)
    assert padded / actual == pytest.approx(4.28, rel=0.05)


def test_bert_large_fig2b_calibration():
    m = bert_large()
    ratio = m.static_latency.step_latency_ms(8) / m.static_latency.step_latency_ms(1)
    assert ratio == pytest.approx(5.25, rel=0.02)
    assert m.slo_ms == 450.0


def test_dolly_uses_tvm():
    m = dolly()
    assert m.compiler.value == "tvm_unity"


def test_zoo_lookup():
    assert get_model("bert-base").name == "bert-base"
    assert set(MODEL_ZOO) == {"bert-base", "bert-large", "dolly"}
    with pytest.raises(ConfigurationError):
        get_model("gpt-17")


def test_profile_validation():
    import dataclasses

    m = bert_base()
    with pytest.raises(ConfigurationError):
        dataclasses.replace(m, max_length=500)  # not a multiple of step
    with pytest.raises(ConfigurationError):
        dataclasses.replace(m, slo_ms=0.0)
