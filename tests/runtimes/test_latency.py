"""Latency model behaviour and paper-number calibration (Fig. 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.runtimes.latency import (
    DynamicShapeLatencyModel,
    StaircaseLatencyModel,
    TunedDynamicLatencyModel,
)

LENGTHS = st.integers(min_value=1, max_value=512)


@pytest.fixture
def base_static():
    return StaircaseLatencyModel(step=64, base_ms=0.624, per_step_ms=0.530)


def test_staircase_bucket_boundaries(base_static):
    assert base_static.bucket(1) == 1
    assert base_static.bucket(64) == 1
    assert base_static.bucket(65) == 2
    assert base_static.bucket(512) == 8


def test_staircase_jump_at_step_dominates(base_static):
    within = base_static.compute_ms(63) / base_static.compute_ms(2)
    across = base_static.compute_ms(65) / base_static.compute_ms(63)
    assert within < 1.05  # "<5%" in-step change
    assert across > 1.2  # step jump is significant


@given(LENGTHS, LENGTHS)
def test_staircase_monotone(l1, l2):
    m = StaircaseLatencyModel()
    if l1 <= l2:
        assert m.compute_ms(l1) <= m.compute_ms(l2) + 1e-12


@given(LENGTHS)
def test_dynamic_never_beats_static(length):
    static = StaircaseLatencyModel()
    dyn = DynamicShapeLatencyModel(static=static)
    assert dyn.compute_ms(length) >= static.compute_ms(length)


def test_dynamic_inflation_range(base_static):
    dyn = DynamicShapeLatencyModel(static=base_static)
    # worst at shortest, approaching 1.22 at the longest bucket
    assert dyn.inflation(1) == pytest.approx(3.56, rel=1e-6)
    assert 1.22 <= dyn.inflation(512) <= 1.35
    # monotone decreasing in the bucket
    factors = [dyn.inflation(64 * b) for b in range(1, 9)]
    assert factors == sorted(factors, reverse=True)


def test_tuned_dynamic_average_close_to_paper(base_static):
    tuned = TunedDynamicLatencyModel(static=base_static)
    factors = [tuned.inflation(64 * b) for b in range(1, 9)]
    avg = sum(factors) / len(factors)
    assert avg == pytest.approx(2.86, rel=0.1)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        StaircaseLatencyModel(step=0)
    with pytest.raises(ConfigurationError):
        StaircaseLatencyModel(per_step_ms=0.0)
    with pytest.raises(ConfigurationError):
        StaircaseLatencyModel(in_step_slope=0.06)
    static = StaircaseLatencyModel()
    with pytest.raises(ConfigurationError):
        DynamicShapeLatencyModel(static=static, inflation_long=0.9)
    with pytest.raises(ConfigurationError):
        DynamicShapeLatencyModel(static=static, inflation_short=1.0,
                                 inflation_long=1.22)
    with pytest.raises(ConfigurationError):
        TunedDynamicLatencyModel(static=static, average_inflation=0.5)


def test_nonpositive_length_rejected(base_static):
    with pytest.raises(ConfigurationError):
        base_static.compute_ms(0)
    with pytest.raises(ConfigurationError):
        base_static.compute_ms(-5)


def test_callable_protocol(base_static):
    assert base_static(100) == base_static.compute_ms(100)
