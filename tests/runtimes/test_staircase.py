"""Staircase step detection and polymorph ladder construction (§3.3)."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.runtimes.latency import StaircaseLatencyModel
from repro.runtimes.models import bert_base, bert_large
from repro.runtimes.staircase import (
    detect_step_size,
    is_staircase,
    polymorph_lengths,
    polymorph_lengths_for_count,
)


def _curve(model, lengths):
    return np.asarray([model.compute_ms(int(ln)) for ln in lengths])


@pytest.mark.parametrize("factory", [bert_base, bert_large])
def test_detects_64_for_bert(factory):
    model = factory().static_latency
    lengths = np.arange(8, 513, 8)
    assert detect_step_size(lengths, _curve(model, lengths)) == 64


def test_detects_other_steps():
    model = StaircaseLatencyModel(step=32, base_ms=1.0, per_step_ms=0.5)
    lengths = np.arange(4, 257, 4)
    assert detect_step_size(lengths, _curve(model, lengths)) == 32


def test_detection_robust_to_noise():
    rng = np.random.default_rng(11)
    model = bert_base().static_latency
    lengths = np.arange(8, 513, 8)
    noisy = _curve(model, lengths) * rng.normal(1.0, 0.01, size=lengths.size)
    assert detect_step_size(lengths, noisy) == 64


def test_detection_input_validation():
    with pytest.raises(ProfileError):
        detect_step_size(np.array([1, 2]), np.array([1.0, 2.0]))
    with pytest.raises(ProfileError):
        detect_step_size(np.array([3, 2, 1]), np.array([1.0, 2.0, 3.0]))
    with pytest.raises(ProfileError):
        detect_step_size(np.array([1, 2, 3]), np.array([1.0, -2.0, 3.0]))
    # range too small to observe any candidate boundary
    with pytest.raises(ProfileError):
        detect_step_size(np.array([1, 2, 3]), np.array([1.0, 1.0, 1.0]))


def test_is_staircase_checks_flatness():
    model = bert_base().static_latency
    lengths = np.arange(8, 513, 8)
    assert is_staircase(lengths, _curve(model, lengths), 64)
    # A linear ramp is not a staircase for step 64.
    ramp = np.linspace(1, 50, lengths.size)
    assert not is_staircase(lengths, ramp, 64)


def test_polymorph_ladder_default():
    assert polymorph_lengths(512, 64) == [64, 128, 192, 256, 320, 384, 448, 512]


def test_polymorph_ladder_nonmultiple_max():
    assert polymorph_lengths(125, 64) == [64, 125]
    assert polymorph_lengths(50, 64) == [50]


def test_polymorph_ladder_validation():
    with pytest.raises(ProfileError):
        polymorph_lengths(0, 64)
    with pytest.raises(ProfileError):
        polymorph_lengths(512, 0)


@pytest.mark.parametrize("count,expected", [
    (2, [256, 512]),
    (4, [128, 256, 384, 512]),
    (8, [64, 128, 192, 256, 320, 384, 448, 512]),
    (16, [32, 64, 96, 128, 160, 192, 224, 256, 288, 320, 352, 384, 416, 448,
          480, 512]),
])
def test_ladder_for_count_matches_fig11(count, expected):
    assert polymorph_lengths_for_count(512, count) == expected


def test_ladder_for_count_validation():
    with pytest.raises(ProfileError):
        polymorph_lengths_for_count(512, 0)
    with pytest.raises(ProfileError):
        polymorph_lengths_for_count(4, 8)
