"""Offline profiler: capacity, L_i(B) shape, noise behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProfileError
from repro.runtimes.compiler import SimulatedCompiler
from repro.runtimes.models import bert_base
from repro.runtimes.profiler import OfflineProfiler, RuntimeProfile


@pytest.fixture
def runtime_64():
    return SimulatedCompiler().compile_static(bert_base(), 64)


def test_noiseless_measurement_exact(runtime_64):
    p = OfflineProfiler(noise=0.0)
    assert p.measure_ms(runtime_64, 30) == runtime_64.service_ms(30)


def test_noise_within_tolerance(runtime_64):
    p = OfflineProfiler(repeats=64, noise=0.01, seed=3)
    true = runtime_64.service_ms(64)
    measured = p.measure_ms(runtime_64, 64)
    assert measured == pytest.approx(true, rel=0.02)


def test_capacity_is_slo_over_service(runtime_64):
    prof = OfflineProfiler(noise=0.0).profile(runtime_64, slo_ms=150.0)
    per_request = prof.service_ms + prof.overhead_ms
    assert prof.capacity == int(150.0 // per_request)
    assert prof.capacity >= 1


def test_latency_for_batch_monotone(runtime_64):
    prof = OfflineProfiler(noise=0.0).profile(runtime_64, slo_ms=150.0)
    values = [prof.latency_for_batch(b) for b in range(1, 50)]
    assert values == sorted(values)
    # B=0 and B=1 coincide: an instance with work serves at least one.
    assert prof.latency_for_batch(0) == prof.latency_for_batch(1)
    with pytest.raises(ProfileError):
        prof.latency_for_batch(-1)


def test_latency_for_batch_closed_form(runtime_64):
    prof = OfflineProfiler(noise=0.0).profile(runtime_64, slo_ms=150.0)
    expected = prof.overhead_ms + prof.service_ms * (5 + 1) / 2
    assert prof.latency_for_batch(5) == pytest.approx(expected)
    assert prof.total_cost(5, 10) == pytest.approx(expected * 10)


def test_profile_rejects_impossible_slo(runtime_64):
    with pytest.raises(ProfileError):
        OfflineProfiler(noise=0.0).profile(runtime_64, slo_ms=0.5)


def test_profile_set_requires_sorted_runtimes():
    compiler = SimulatedCompiler()
    model = bert_base()
    rts = [compiler.compile_static(model, ml) for ml in (128, 64)]
    with pytest.raises(ProfileError):
        OfflineProfiler().profile_set(rts, model.slo_ms)
    with pytest.raises(ProfileError):
        OfflineProfiler().profile_set([], model.slo_ms)


def test_profiler_parameter_validation():
    with pytest.raises(ProfileError):
        OfflineProfiler(repeats=0)
    with pytest.raises(ProfileError):
        OfflineProfiler(noise=0.5)


def test_runtime_profile_validation(runtime_64):
    with pytest.raises(ProfileError):
        RuntimeProfile(runtime=runtime_64, slo_ms=150.0, service_ms=0.0)


@given(st.floats(min_value=1.0, max_value=200.0))
def test_capacity_at_least_one(batch):
    runtime = SimulatedCompiler().compile_static(bert_base(), 512)
    prof = OfflineProfiler(noise=0.0).profile(runtime, slo_ms=150.0)
    assert prof.capacity >= 1
    assert prof.latency_for_batch(batch) >= prof.service_ms
