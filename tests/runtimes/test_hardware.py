"""Hardware retargeting: speed scaling and staircase re-stepping."""

import pytest

from repro.errors import ConfigurationError
from repro.runtimes.hardware import (
    A100,
    COARSE_TILE,
    HARDWARE_ZOO,
    HardwareProfile,
    RTX_3090,
    retarget_model,
)
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set


def test_identity_on_calibration_device():
    model = bert_base()
    same = retarget_model(model, RTX_3090)
    for ln in (1, 64, 200, 512):
        assert same.static_latency.compute_ms(ln) == pytest.approx(
            model.static_latency.compute_ms(ln)
        )
    assert same.num_buckets == model.num_buckets


def test_a100_scales_latency_down():
    model = bert_base()
    fast = retarget_model(model, A100)
    assert fast.static_latency.compute_ms(512) == pytest.approx(
        model.static_latency.compute_ms(512) / 2.2, rel=1e-6
    )
    # Ratio endpoints preserved.
    ratio = (fast.static_latency.step_latency_ms(8)
             / fast.static_latency.step_latency_ms(1))
    assert ratio == pytest.approx(4.22, rel=0.02)


def test_coarse_tiles_halve_polymorph_count():
    model = bert_base()
    coarse = retarget_model(model, COARSE_TILE)
    assert coarse.step == 128
    assert coarse.num_buckets == 4
    registry = build_polymorph_set(coarse)
    assert len(registry) == 4
    assert registry.max_length == 512
    # Same per-token cost line sampled coarser: lat(512) preserved up to
    # speed, but a 65-token request pays the full 128-token rung.
    # (small tolerance: the <5 % in-step slope is sampled at different
    # in-bucket positions for different step sizes)
    assert coarse.static_latency.compute_ms(512) == pytest.approx(
        model.static_latency.compute_ms(512) / COARSE_TILE.speed_factor,
        rel=2e-3,
    )
    short_fine = model.static_latency.compute_ms(65) / COARSE_TILE.speed_factor
    short_coarse = coarse.static_latency.compute_ms(65)
    assert short_coarse > short_fine  # coarser tiles hurt short requests


def test_dynamic_model_retargets_with_static():
    model = bert_base()
    fast = retarget_model(model, A100)
    for ln in (10, 200, 512):
        assert fast.dynamic_latency.compute_ms(ln) == pytest.approx(
            model.dynamic_latency.compute_ms(ln) / 2.2, rel=1e-6
        )


def test_retargeted_model_serves_end_to_end():
    from repro.baselines.schemes import build_scheme
    from repro.sim.simulation import run_simulation
    from repro.workload.twitter import generate_twitter_trace

    coarse = retarget_model(bert_base(), COARSE_TILE)
    trace = generate_twitter_trace(rate_per_s=150, duration_ms=5_000, seed=3)
    scheme = build_scheme("arlo", coarse, 3)
    result = run_simulation(scheme, trace)
    assert result.stats.count == len(trace)
    assert len(scheme.registry) == 4


def test_validation():
    with pytest.raises(ConfigurationError):
        HardwareProfile(name="x", speed_factor=0.0)
    with pytest.raises(ConfigurationError):
        HardwareProfile(name="x", speed_factor=1.0, step=0)
    bad = HardwareProfile(name="odd", speed_factor=1.0, step=96)
    with pytest.raises(ConfigurationError):
        retarget_model(bert_base(), bad)  # 512 % 96 != 0
    assert set(HARDWARE_ZOO) == {"rtx-3090", "v100", "a100", "coarse-tile"}
