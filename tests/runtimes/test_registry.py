"""RuntimeRegistry: candidate lookup, bins, polymorph-set construction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import RuntimeRegistry, build_polymorph_set


@pytest.fixture(scope="module")
def registry():
    return build_polymorph_set(bert_base())


def test_default_set_is_eight_runtimes(registry):
    assert len(registry) == 8
    assert list(registry.bin_edges()) == [64, 128, 192, 256, 320, 384, 448, 512]
    assert registry.max_length == 512


def test_ideal_runtime_minimises_padding(registry):
    assert registry.ideal_index(1) == 0
    assert registry.ideal_index(64) == 0
    assert registry.ideal_index(65) == 1
    assert registry.ideal_index(512) == 7


def test_candidates_are_suffix(registry):
    cands = registry.candidate_indexes(200)
    assert list(cands) == [3, 4, 5, 6, 7]  # 256..512


def test_unservable_lengths_raise(registry):
    with pytest.raises(CapacityError):
        registry.ideal_index(513)
    with pytest.raises(CapacityError):
        registry.ideal_index(0)


def test_histogram_counts_per_bin(registry):
    lengths = np.array([10, 64, 65, 120, 200, 512])
    hist = registry.histogram(lengths)
    assert hist.tolist() == [2, 2, 0, 1, 0, 0, 0, 1]
    assert registry.histogram(np.array([])).tolist() == [0] * 8
    with pytest.raises(CapacityError):
        registry.histogram(np.array([1000]))


@given(st.integers(min_value=1, max_value=512))
def test_ideal_is_first_accepting_runtime(length):
    registry = build_polymorph_set(bert_base())
    idx = registry.ideal_index(length)
    assert registry[idx].max_length >= length
    if idx > 0:
        assert registry[idx - 1].max_length < length


def test_custom_ladder():
    reg = build_polymorph_set(bert_base(), max_lengths=[128, 512])
    assert len(reg) == 2
    assert reg.ideal_index(129) == 1


def test_step_detection_path():
    reg = build_polymorph_set(bert_base(), detect_step=True)
    assert len(reg) == 8


def test_registry_validation():
    reg = build_polymorph_set(bert_base())
    with pytest.raises(ConfigurationError):
        RuntimeRegistry(profiles=[])
    with pytest.raises(ConfigurationError):
        RuntimeRegistry(profiles=list(reg)[::-1])
    with pytest.raises(ConfigurationError):
        RuntimeRegistry(profiles=[reg[0], reg[0]])


def test_profiles_sorted_by_capacity(registry):
    # Shorter runtimes are faster, so capacity must be non-increasing.
    caps = [p.capacity for p in registry]
    assert caps == sorted(caps, reverse=True)
    assert caps[-1] >= 1
