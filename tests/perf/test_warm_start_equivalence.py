"""Warm-started and cached solves must not change the objective.

The acceptance bar for the memoization layer: for exact solvers a warm
start may only *prune faster*, never steer the search away from the
optimum. Tied-optimal allocations may differ (pruning changes which
equal-cost label survives the Pareto filter), so equivalence is stated
on the objective, exactly as the solver docstrings promise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    AllocationProblem,
    solve_allocation,
    solve_dp,
    solve_local_search,
    solve_milp_encoding,
)

_OBJ_TOL = 1e-6


@st.composite
def problems(draw, max_runtimes=4, max_gpus=8):
    n = draw(st.integers(min_value=2, max_value=max_runtimes))
    num_gpus = draw(st.integers(min_value=n, max_value=max_gpus))
    demand = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    capacity = draw(
        st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n)
    )
    # Longer polymorphs serve slower — keep the staircase monotone.
    service = np.sort(
        draw(
            st.lists(
                st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    return AllocationProblem(
        num_gpus=num_gpus,
        demand=np.asarray(demand, dtype=float),
        capacity=np.asarray(capacity, dtype=np.int64),
        service_ms=service,
    )


@st.composite
def warm_starts(draw, problem):
    """A random (often infeasible) allocation vector for the problem."""
    n = len(problem.demand)
    return np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=problem.num_gpus),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_dp_warm_start_preserves_objective(data):
    problem = data.draw(problems())
    cold = solve_dp(problem, relax=True)
    # Warm from the optimum itself: the tightest possible upper bound.
    warm_self = solve_dp(problem, relax=True, warm_start=cold.allocation)
    assert abs(warm_self.objective - cold.objective) <= _OBJ_TOL
    # Warm from an arbitrary (possibly infeasible) vector: infeasible
    # seeds are discarded, feasible ones only prune dominated labels.
    garbage = data.draw(warm_starts(problem))
    warm_any = solve_dp(problem, relax=True, warm_start=garbage)
    assert abs(warm_any.objective - cold.objective) <= _OBJ_TOL
    assert int(warm_any.allocation.sum()) <= problem.num_gpus


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_milp_warm_start_preserves_objective(data):
    problem = data.draw(problems(max_runtimes=3, max_gpus=5))
    cold = solve_milp_encoding(problem, relax=True)
    warm = solve_milp_encoding(
        problem, relax=True, warm_start=cold.allocation
    )
    assert abs(warm.objective - cold.objective) <= _OBJ_TOL
    # The tangent under-approximation may mis-rank near-tied allocations
    # (documented), but the exact-evaluated objective of any feasible
    # MILP pick can never beat the DP optimum.
    dp = solve_dp(problem, relax=True)
    assert cold.objective >= dp.objective - _OBJ_TOL


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_local_search_warm_start_never_worse_than_seed(data):
    problem = data.draw(problems())
    optimum = solve_dp(problem, relax=True)
    warm = solve_local_search(
        problem, relax=True, warm_start=optimum.allocation
    )
    # Local descent seeded at the optimum can only stay there.
    assert warm.objective <= optimum.objective + _OBJ_TOL


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_auto_solver_accepts_warm_start(data):
    problem = data.draw(problems())
    cold = solve_allocation(problem, method="auto", relax=True)
    warm = solve_allocation(
        problem, method="auto", relax=True, warm_start=cold.allocation
    )
    assert abs(warm.objective - cold.objective) <= _OBJ_TOL
