"""Allocation discipline of the data plane: ``__slots__`` events, the
completion free list, and batch popping.

The microbench here is the ISSUE's acceptance check: at steady state
the simulator must construct (essentially) zero completion records per
event — the pool recycles them — and the event/payload classes must
not carry per-instance ``__dict__``s.
"""

import gc

import pytest

from repro.experiments.runner import ExperimentSpec, run_single
from repro.sim.engine import EventQueue
from repro.sim.events import (
    ArrivalPayload,
    CompletionPayload,
    CompletionRecord,
    Event,
    EventKind,
    acquire_completion,
    completion_pool_stats,
    release_completion,
)


def _spec(seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"pool-bench-{seed}", model="bert-base", num_gpus=4,
        rate_per_s=150.0, duration_s=8.0, schemes=("arlo",), seed=seed,
        scheduler_period_s=4.0, hint_s=2.0,
    )


def test_event_and_payloads_have_slots():
    # Instances must not carry a per-object __dict__.
    assert not hasattr(Event(1.0, EventKind.ARRIVAL, 0), "__dict__")
    assert not hasattr(ArrivalPayload(0, 1), "__dict__")
    assert not hasattr(CompletionRecord(), "__dict__")


def test_completion_pool_reuses_records():
    rec = acquire_completion(1, None, 0.0, 10, 0, 0, 5.0)
    release_completion(rec)
    again = acquire_completion(2, None, 1.0, 12, 0, 1, 6.0)
    assert again is rec  # LIFO free list hands the same object back
    assert again.request_id == 2
    release_completion(again)
    assert completion_pool_stats()["free"] >= 1


def test_steady_state_simulation_allocates_no_completion_records():
    """The allocation microbench: run once to warm the pool, then
    assert a second full simulation constructs zero new records —
    per-event allocations dropped to amortised zero."""
    _, first = run_single(_spec(seed=1), "arlo")
    assert first.events_processed > 1000

    gc.collect()
    before = CompletionRecord.total_allocated
    _, second = run_single(_spec(seed=2), "arlo")
    allocated = CompletionRecord.total_allocated - before

    assert second.events_processed > 1000
    assert allocated == 0, (
        f"{allocated} completion records constructed in steady state "
        f"({second.events_processed} events) — pool reuse broken"
    )


def test_gc_object_growth_bounded_per_event():
    """Per-event garbage stays bounded: a run must not leave O(events)
    tracked objects behind (events are tuples + pooled records)."""
    run_single(_spec(seed=3), "arlo")  # warm pool, import caches
    gc.collect()
    before = len(gc.get_objects())
    _, result = run_single(_spec(seed=4), "arlo")
    gc.collect()
    growth = len(gc.get_objects()) - before
    # The metrics arrays and result object survive; per-event leftovers
    # would show up as multiple objects per event.
    assert growth < result.events_processed / 2


def test_pop_batch_drains_same_time_same_kind_run():
    q = EventQueue()
    q.push(5.0, EventKind.COMPLETION, "a")
    q.push(5.0, EventKind.COMPLETION, "b")
    q.push(5.0, EventKind.RESCHEDULE, "r")
    q.push(6.0, EventKind.COMPLETION, "c")
    out: list = []
    time_ms, kind, n = q.pop_batch(out)
    assert (time_ms, kind, n) == (5.0, EventKind.COMPLETION, 2)
    assert out == ["a", "b"]  # seq order within the batch
    time_ms, kind, n = q.pop_batch(out)
    assert (time_ms, kind, n) == (5.0, EventKind.RESCHEDULE, 1)
    assert out == ["r"]
    time_ms, kind, n = q.pop_batch(out)
    assert (time_ms, kind, n) == (6.0, EventKind.COMPLETION, 1)
    assert q.events_processed == 4
    with pytest.raises(Exception):
        q.pop_batch(out)
