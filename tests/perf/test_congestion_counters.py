"""CongestionTracker conservation: unit lifecycles + chaos simulation."""

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.errors import ConfigurationError
from repro.perf.counters import CongestionTracker
from repro.runtimes.models import get_model
from repro.runtimes.registry import build_polymorph_set
from repro.runtimes.staircase import polymorph_lengths_for_count
from repro.sim.faults import FaultPlan
from repro.sim.simulation import SimulationConfig, run_simulation
from repro.units import seconds
from repro.cluster.state import ClusterState


def small_cluster():
    model = get_model("bert-base")
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(model.max_length, 3),
    )
    return ClusterState.bootstrap(registry, [2, 1, 1])


def check(cluster):
    cluster.congestion.verify(cluster.instances.values())


def test_tracker_validation():
    with pytest.raises(ConfigurationError):
        CongestionTracker(num_levels=0)


def test_bootstrap_wires_tracker():
    cluster = small_cluster()
    assert all(i.tracker is cluster.congestion for i in cluster.instances.values())
    assert np.array_equal(cluster.allocation(), [2, 1, 1])
    assert cluster.total_outstanding() == 0
    check(cluster)


def test_enqueue_complete_lifecycle():
    cluster = small_cluster()
    inst = cluster.active_instances(0)[0]
    for _ in range(3):
        inst.enqueue(0.0, inst.max_length)
    check(cluster)
    assert cluster.total_outstanding() == 3
    assert cluster.congestion.outstanding[0] == 3
    inst.complete()
    check(cluster)
    assert cluster.total_outstanding() == 2


def test_drain_keeps_all_outstanding_until_completion():
    # A draining donor leaves the active aggregates but its in-flight
    # work still counts toward total_outstanding until it completes.
    cluster = small_cluster()
    inst = cluster.active_instances(1)[0]
    inst.enqueue(0.0, inst.max_length)
    inst.begin_drain()
    check(cluster)
    assert cluster.congestion.active[1] == 0
    assert cluster.congestion.outstanding[1] == 0
    assert cluster.total_outstanding() == 1
    inst.complete()
    inst.retire()  # drain→retire after crash-path deactivate is a no-op
    check(cluster)
    assert cluster.total_outstanding() == 0


def test_on_enqueue_many_matches_repeated_on_enqueue():
    """The batch dispatcher's bulk hook must leave the aggregates
    exactly where N single enqueues would — active and drained
    (uncounted) members alike."""
    one, many = small_cluster(), small_cluster()
    for cluster, bulk in ((one, False), (many, True)):
        inst = cluster.active_instances(0)[0]
        if bulk:
            inst.outstanding += 3  # dispatch_batch bumps state itself
            cluster.congestion.on_enqueue_many(inst, 3)
        else:
            for _ in range(3):
                inst.enqueue(0.0, inst.max_length)
        drained = cluster.active_instances(1)[0]
        drained.enqueue(0.0, drained.max_length)
        drained.begin_drain()
        # A drained member is uncounted per-level but still carries
        # in-flight totals; drive the tracker hooks directly (enqueue
        # itself refuses non-active instances).
        drained.outstanding += 2
        if bulk:
            cluster.congestion.on_enqueue_many(drained, 2)
        else:
            for _ in range(2):
                cluster.congestion.on_enqueue(drained)
    assert np.array_equal(one.congestion.outstanding, many.congestion.outstanding)
    assert one.congestion.all_outstanding == many.congestion.all_outstanding
    check(one)
    check(many)


def test_crash_voids_outstanding_work():
    cluster = small_cluster()
    inst = cluster.active_instances(0)[0]
    inst.enqueue(0.0, inst.max_length)
    inst.enqueue(0.0, inst.max_length)
    _, lost = cluster.crash_instance(inst)
    assert lost == 2
    check(cluster)
    assert cluster.total_outstanding() == 0
    assert cluster.congestion.active[0] == 1


def test_suspend_resume_roundtrip():
    cluster = small_cluster()
    inst = cluster.active_instances(2)[0]
    inst.enqueue(0.0, inst.max_length)
    lost = inst.suspend()
    assert lost == 1
    check(cluster)
    assert cluster.congestion.active[2] == 0
    assert cluster.total_outstanding() == 0
    inst.resume()
    check(cluster)
    assert cluster.congestion.active[2] == 1
    assert cluster.congestion.capacity[2] == inst.capacity


def test_double_deactivate_is_idempotent():
    cluster = small_cluster()
    inst = cluster.active_instances(0)[0]
    cluster.congestion.deactivate(inst)
    cluster.congestion.deactivate(inst)  # must not double-subtract
    assert cluster.congestion.active[0] == 1
    cluster.congestion.activate(inst)
    cluster.congestion.activate(inst)  # must not double-add
    assert cluster.congestion.active[0] == 2
    check(cluster)


def test_deploy_and_retire_adjust_capacity():
    cluster = small_cluster()
    before = cluster.congestion.total_capacity()
    inst = cluster.deploy_on_new_gpu(0)
    check(cluster)
    assert cluster.congestion.total_capacity() == before + inst.capacity
    inst.begin_drain()
    cluster.retire_instance(inst)
    check(cluster)
    assert cluster.congestion.total_capacity() == before


@pytest.mark.parametrize("scheme_name", ["arlo", "st"])
def test_counters_conserve_under_chaos(scheme_name):
    """End-to-end: retries, quarantine, blackouts, and replacement churn
    must leave the O(1) aggregates equal to a from-scratch recount."""
    from repro.workload.twitter import generate_twitter_trace

    horizon = seconds(30)
    trace = generate_twitter_trace(
        rate_per_s=150, duration_ms=horizon, seed=17
    )
    plan = FaultPlan.chaos(
        horizon, crashes=2, slowdowns=2, blackouts=2, solver_faults=1, seed=5
    )
    scheme = build_scheme(scheme_name, "bert-base", 4)
    result = run_simulation(
        scheme, trace, SimulationConfig(failures=plan)
    )
    assert result.stats.count > 0
    check(scheme.cluster)
    # Every admitted request either completed or was voided by a fault;
    # nothing may linger in the O(1) totals after the drain.
    assert scheme.cluster.total_outstanding() == 0
    assert scheme.cluster.num_active_instances == int(
        cluster_active_recount(scheme.cluster)
    )


def cluster_active_recount(cluster) -> int:
    return sum(1 for i in cluster.instances.values() if i.is_active)
