"""AllocationCache: keying, TTL/LRU, and scheduler integration."""

import numpy as np
import pytest

from repro.cluster.state import ClusterState
from repro.core.allocation import AllocationProblem, solve_allocation
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.core.runtime_scheduler import RuntimeScheduler, RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.perf.cache import AllocationCache, profile_fingerprint
from repro.runtimes.models import get_model
from repro.runtimes.registry import build_polymorph_set
from repro.runtimes.staircase import polymorph_lengths_for_count


def small_problem(demand=(1.5, 2.0, 0.5), num_gpus=5):
    return AllocationProblem(
        num_gpus=num_gpus,
        demand=np.asarray(demand, dtype=float),
        capacity=np.array([3, 2, 2]),
        service_ms=np.array([1.0, 2.0, 4.0]),
    )


def keyed(problem, method="dp"):
    fp = profile_fingerprint(
        problem.capacity, problem.service_ms, problem.overhead_ms
    )
    return (
        AllocationCache.key_for(problem.demand, problem.num_gpus, fp, method, False),
        fp,
    )


def test_validation():
    with pytest.raises(ConfigurationError):
        AllocationCache(ttl_ms=0.0)
    with pytest.raises(ConfigurationError):
        AllocationCache(max_entries=0)


def test_exact_hit_returns_stored_result():
    cache = AllocationCache()
    problem = small_problem()
    key, fp = keyed(problem)
    assert cache.lookup(0.0, key) is None
    result = solve_allocation(problem, method="dp")
    cache.store(0.0, key, problem.num_gpus, fp, problem.demand, result)
    entry = cache.lookup(1.0, key)
    assert entry is not None
    assert np.array_equal(entry.result.allocation, result.allocation)
    assert entry.result.objective == result.objective
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1


def test_key_separates_everything_the_solve_depends_on():
    problem = small_problem()
    key, fp = keyed(problem)
    # Different demand, budget, solver, relaxation, profiles → new keys.
    other_demand = AllocationCache.key_for(
        problem.demand + 0.5, problem.num_gpus, fp, "dp", False
    )
    other_budget = AllocationCache.key_for(
        problem.demand, problem.num_gpus + 1, fp, "dp", False
    )
    other_method = AllocationCache.key_for(
        problem.demand, problem.num_gpus, fp, "local", False
    )
    other_relax = AllocationCache.key_for(
        problem.demand, problem.num_gpus, fp, "dp", True
    )
    other_fp = AllocationCache.key_for(
        problem.demand, problem.num_gpus, "deadbeef", "dp", False
    )
    keys = {key, other_demand, other_budget, other_method, other_relax, other_fp}
    assert len(keys) == 6
    # Sub-resolution float noise collapses onto the same key.
    noisy = AllocationCache.key_for(
        problem.demand + 1e-9, problem.num_gpus, fp, "dp", False
    )
    assert noisy == key


def test_profile_fingerprint_sensitivity():
    base = profile_fingerprint([3, 2, 2], [1.0, 2.0, 4.0], 0.8)
    assert base == profile_fingerprint([3, 2, 2], [1.0, 2.0, 4.0], 0.8)
    assert base != profile_fingerprint([3, 2, 1], [1.0, 2.0, 4.0], 0.8)
    assert base != profile_fingerprint([3, 2, 2], [1.0, 2.0, 4.1], 0.8)
    assert base != profile_fingerprint([3, 2, 2], [1.0, 2.0, 4.0], 0.9)


def test_ttl_expiry():
    cache = AllocationCache(ttl_ms=100.0)
    problem = small_problem()
    key, fp = keyed(problem)
    result = solve_allocation(problem, method="dp")
    cache.store(0.0, key, problem.num_gpus, fp, problem.demand, result)
    assert cache.lookup(100.0, key) is not None  # at TTL: still live
    assert cache.lookup(100.1, key) is None  # past TTL: expired
    assert cache.stats()["expirations"] == 1
    assert len(cache) == 0


def test_lru_eviction_order():
    cache = AllocationCache(max_entries=2)
    result = solve_allocation(small_problem(), method="dp")
    problems = [small_problem(demand=(1.0 + i, 2.0, 0.5)) for i in range(3)]
    keys = []
    for p in problems[:2]:
        key, fp = keyed(p)
        keys.append(key)
        cache.store(0.0, key, p.num_gpus, fp, p.demand, result)
    cache.lookup(1.0, keys[0])  # refresh entry 0 → entry 1 becomes LRU
    key2, fp2 = keyed(problems[2])
    cache.store(2.0, key2, problems[2].num_gpus, fp2, problems[2].demand, result)
    assert cache.lookup(3.0, keys[0]) is not None
    assert cache.lookup(3.0, keys[1]) is None  # evicted
    assert cache.stats()["evictions"] == 1


def test_nearest_neighbour_scoping():
    cache = AllocationCache()
    near = small_problem(demand=(1.5, 2.0, 0.5))
    far = small_problem(demand=(5.0, 0.1, 0.1))
    for p in (near, far):
        key, fp = keyed(p)
        cache.store(0.0, key, p.num_gpus, fp, p.demand,
                    solve_allocation(p, method="dp"))
    query = small_problem(demand=(1.6, 2.1, 0.5))
    _, fp = keyed(query)
    seed = cache.nearest(1.0, query.num_gpus, fp, query.demand)
    assert np.array_equal(
        seed, solve_allocation(near, method="dp").allocation
    )
    # A different budget or fingerprint disqualifies every entry.
    assert cache.nearest(1.0, query.num_gpus + 1, fp, query.demand) is None
    assert cache.nearest(1.0, query.num_gpus, "deadbeef", query.demand) is None


def test_stored_result_is_isolated_from_caller_mutation():
    cache = AllocationCache()
    problem = small_problem()
    key, fp = keyed(problem)
    result = solve_allocation(problem, method="dp")
    cache.store(0.0, key, problem.num_gpus, fp, problem.demand, result)
    result.allocation[0] = 99  # caller mutates its copy
    entry = cache.lookup(1.0, key)
    assert entry.result.allocation[0] != 99


def build_scheduler(enable_cache=True, warm_start=True):
    model = get_model("bert-base")
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(model.max_length, 4),
    )
    config = RuntimeSchedulerConfig(
        period_ms=5_000.0, enable_cache=enable_cache, warm_start=warm_start
    )
    estimator = DemandEstimator(
        bins=LengthBins.from_registry(registry),
        slo_ms=model.slo_ms,
        window_ms=config.period_ms,
    )
    rng = np.random.default_rng(11)
    for t in np.sort(rng.uniform(0, 5_000.0, size=200)):
        estimator.observe(float(t), int(rng.integers(1, model.max_length + 1)))
    cluster = ClusterState.bootstrap(registry, [2, 2, 2, 2])
    return (
        RuntimeScheduler(registry=registry, estimator=estimator, config=config),
        cluster,
    )


def test_scheduler_step_hits_cache_on_identical_demand():
    sched, cluster = build_scheduler()
    cold, _ = sched.step(5_000.0, cluster)
    assert "cache_hit" not in cold.stats
    hit, _ = sched.step(5_000.0, cluster)  # same instant → same demand
    assert hit.stats.get("cache_hit") is True
    assert np.array_equal(hit.allocation, cold.allocation)
    assert hit.objective == cold.objective
    stats = sched.cache_stats()
    assert stats["hits"] == 1 and stats["stores"] == 1


def test_scheduler_cache_disabled():
    sched, cluster = build_scheduler(enable_cache=False)
    assert sched.cache is None
    a, _ = sched.step(5_000.0, cluster)
    b, _ = sched.step(5_000.0, cluster)
    assert "cache_hit" not in b.stats
    assert np.array_equal(a.allocation, b.allocation)
    assert sched.cache_stats() == {}
    assert sched.invalidate_cache() == 0


def test_scheduler_invalidate_cache_forces_resolve():
    sched, cluster = build_scheduler()
    sched.step(5_000.0, cluster)
    assert sched.invalidate_cache() == 1
    again, _ = sched.step(5_000.0, cluster)
    assert "cache_hit" not in again.stats
    assert sched.cache_stats()["invalidations"] == 1


def test_scheduler_ttl_expires_entries():
    sched, cluster = build_scheduler()
    sched.step(5_000.0, cluster)
    # 8 periods × 5000 ms later the entry is past its TTL. The demand
    # window is empty by then, so exercise decide() directly.
    ttl_ms = sched.config.cache_ttl_periods * sched.config.period_ms
    assert sched.cache.lookup(5_000.0 + ttl_ms + 1.0, next(iter(
        sched.cache._entries
    ))) is None
