"""Forecaster accuracy and the pre-solve → boundary cache contract.

Two acceptance properties from the anytime control plane:

- on a drifting Twitter-like demand series the one-step-ahead
  relative-L1 error stays within a bound set by the drift magnitude
  (and the seasonal variant learns a planted diurnal cycle);
- a cache entry the forecaster *pre-solved* is byte-identical to the
  allocation an on-demand solve of the same demand vector produces —
  pre-solving moves work off the boundary without changing results.
"""

import numpy as np
import pytest

from repro.baselines.allocators import even_allocation
from repro.cluster.state import ClusterState
from repro.core.allocation import AllocationProblem
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.core.runtime_scheduler import RuntimeScheduler, RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.perf.anytime import solve_anytime
from repro.perf.cache import AllocationCache, profile_fingerprint
from repro.perf.forecast import DemandForecaster
from repro.runtimes.models import get_model
from repro.runtimes.registry import build_polymorph_set
from repro.runtimes.staircase import polymorph_lengths_for_count
from repro.units import SECOND


def _drifting_series(periods, num_bins, innovation=0.03, seed=0):
    """AR(1) log-mix drift, the Twitter-like traffic shape the bench
    and the drifting experiment traces use."""
    rng = np.random.default_rng(seed)
    log_mix = rng.normal(0.0, 0.8, size=num_bins)
    out = []
    for _ in range(periods):
        log_mix = 0.97 * log_mix + rng.normal(0.0, innovation, size=num_bins)
        mix = np.exp(log_mix)
        out.append(2000.0 * mix / mix.sum())
    return out


def test_ewma_tracks_drifting_series_with_bounded_error():
    series = _drifting_series(periods=200, num_bins=8, innovation=0.03)
    fc = DemandForecaster(num_bins=8, alpha=0.7)
    for demand in series:
        fc.observe(demand)
    stats = fc.error_stats()
    assert stats["scored_predictions"] == len(series) - 1
    # A 3 % per-period innovation admits roughly 3 % one-step error for
    # a well-tuned tracker; 8 % leaves slack for the burn-in periods.
    assert stats["mean_rel_error"] < 0.08, stats


def test_seasonal_component_learns_planted_cycle():
    # Constant level + strong period-6 additive cycle: the seasonal
    # forecaster must beat the plain EWMA by a wide margin.
    period = 6
    cycle = np.array([1.0, 2.0, 4.0, 2.0, 1.0, 0.5])
    series = [
        np.full(4, 100.0) + 40.0 * cycle[k % period]
        for k in range(period * 30)
    ]
    plain = DemandForecaster(num_bins=4, alpha=0.35)
    seasonal = DemandForecaster(
        num_bins=4, alpha=0.35, season_length=period, gamma=0.4
    )
    for demand in series:
        plain.observe(demand)
        seasonal.observe(demand)
    plain_err = plain.error_stats()["mean_rel_error"]
    seasonal_err = seasonal.error_stats()["mean_rel_error"]
    assert seasonal_err < plain_err / 2, (plain_err, seasonal_err)
    assert seasonal_err < 0.05, seasonal_err


def test_idle_periods_do_not_inflate_relative_error():
    # Regression: the relative-error denominator used only the realized
    # vector's L1 mass, so an idle period (y ≈ 0) divided the miss by
    # EPS and one quiet second could blow mean_rel_error into the 1e9
    # range even when the forecast was tiny too. With the symmetric
    # max(|y|, |pending|, EPS) denominator, the worst any single period
    # can score is 1.0 (predicted something, saw nothing — or the
    # reverse).
    fc = DemandForecaster(num_bins=4, alpha=0.5)
    for _ in range(5):
        fc.observe(np.full(4, 50.0))
    for _ in range(20):  # traffic goes fully idle
        fc.observe(np.zeros(4))
        assert fc.error_stats()["last_rel_error"] <= 1.0 + 1e-12
    stats = fc.error_stats()
    assert stats["mean_rel_error"] <= 1.0 + 1e-12, stats

    # Fully-idle series (zero forecast, zero realization) scores zero
    # error rather than 0/EPS noise.
    quiet = DemandForecaster(num_bins=2, alpha=0.5)
    for _ in range(10):
        quiet.observe(np.zeros(2))
    assert quiet.error_stats()["mean_rel_error"] == 0.0


def test_predict_none_before_first_observation():
    fc = DemandForecaster(num_bins=3)
    assert fc.predict() is None
    fc.observe(np.array([1.0, 2.0, 3.0]))
    assert fc.predict() is not None


def test_forecaster_validates_configuration():
    with pytest.raises(ConfigurationError):
        DemandForecaster(num_bins=0)
    with pytest.raises(ConfigurationError):
        DemandForecaster(num_bins=2, alpha=0.0)
    with pytest.raises(ConfigurationError):
        DemandForecaster(num_bins=2, season_length=4, gamma=1.5)
    with pytest.raises(ConfigurationError):
        DemandForecaster(num_bins=2).observe(np.zeros(3))


def _ladder_scheduler(num_runtimes=4, num_gpus=8):
    model = get_model("bert-base")
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(model.max_length, num_runtimes),
    )
    config = RuntimeSchedulerConfig(
        period_ms=1 * SECOND,
        enable_cache=True,
        warm_start=True,
        solver_ladder=True,
        # Generous: every rung finishes on this tiny instance, so the
        # solve is deterministic (the dp rung ends the climb exactly).
        solve_deadline_ms=2_000.0,
        forecast=True,
    )
    estimator = DemandEstimator(
        bins=LengthBins.from_registry(registry),
        slo_ms=model.slo_ms,
        window_ms=config.period_ms,
    )
    scheduler = RuntimeScheduler(
        registry=registry, estimator=estimator, config=config
    )
    cluster = ClusterState.bootstrap(
        registry, even_allocation(num_runtimes, num_gpus)
    )
    return scheduler, cluster, registry, model


def _feed(estimator, registry, now_ms, window_ms, counts, seed):
    rng = np.random.default_rng(seed)
    times, lengths = [], []
    for b, count in enumerate(counts):
        times.append(rng.uniform(now_ms - window_ms, now_ms, size=count))
        lengths.append(np.full(count, registry[b].max_length, dtype=np.int64))
    order = np.argsort(np.concatenate(times), kind="stable")
    estimator.observe_batch(
        np.concatenate(times)[order], np.concatenate(lengths)[order]
    )


def test_presolved_entry_byte_identical_to_on_demand_solve():
    scheduler, cluster, registry, model = _ladder_scheduler()
    period = 1 * SECOND
    # Two periods of traffic so the forecaster has a prediction and the
    # scheduler has warm history, then a pre-solve.
    for k, counts in enumerate(((40, 25, 10, 5), (42, 24, 11, 6))):
        now = (k + 1) * period
        _feed(scheduler.estimator, registry, now, period, counts, seed=k)
        scheduler.step(now, cluster)

    # step() runs the idle-time pre-solve itself after planning.
    detail = scheduler.last_presolve
    assert detail is not None and detail["outcome"] == "stored", detail
    num_gpus = int(cluster.allocation().sum())

    # Dig the stored entry back out under the exact forecast key.
    predicted = scheduler.forecaster.predict()
    problem = AllocationProblem.from_profiles(
        num_gpus=num_gpus, demand=predicted, profiles=list(registry)
    )
    fingerprint = profile_fingerprint(
        problem.capacity, problem.service_ms, problem.overhead_ms
    )
    key = AllocationCache.key_for(predicted, num_gpus, fingerprint, "anytime", False)
    entry = scheduler.cache.lookup(2 * period + 100.0, key)
    assert entry is not None
    assert entry.result.stats.get("presolved") is True

    # On-demand solve of the *same* demand vector, same warm seed the
    # pre-solve used (the previous period's allocation): allocations
    # must match byte for byte.
    warm = scheduler.history[-1][2]
    direct = solve_anytime(problem, deadline_s=2.0, warm_start=warm)
    assert (
        entry.result.allocation.tobytes() == direct.allocation.tobytes()
    ), (entry.result.allocation, direct.allocation)
    assert abs(entry.result.objective - direct.objective) <= 1e-9

    assert scheduler._anytime["presolves"] == 1
