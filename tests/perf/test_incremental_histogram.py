"""IncrementalHistogram: incremental counts must equal batch recompute."""

import numpy as np
import pytest

from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.errors import ConfigurationError
from repro.perf.incremental import IncrementalHistogram


def test_validation():
    with pytest.raises(ConfigurationError):
        IncrementalHistogram(num_bins=0, window_ms=10.0)
    with pytest.raises(ConfigurationError):
        IncrementalHistogram(num_bins=3, window_ms=0.0)
    h = IncrementalHistogram(num_bins=3, window_ms=10.0)
    with pytest.raises(ConfigurationError):
        h.add(0.0, 3)
    with pytest.raises(ConfigurationError):
        h.add(0.0, -1)


def test_incremental_matches_rebuild_randomized():
    rng = np.random.default_rng(42)
    h = IncrementalHistogram(num_bins=5, window_ms=100.0)
    now = 0.0
    for _ in range(2000):
        now += float(rng.exponential(3.0))
        h.add(now, int(rng.integers(0, 5)))
        if rng.random() < 0.05:
            assert np.array_equal(h.counts, h.rebuild())
            assert h.total == int(h.counts.sum())
    assert np.array_equal(h.counts, h.rebuild())


def test_eviction_boundary_is_right_open():
    # An event exactly at the horizon (t == now - window) survives;
    # anything strictly older is dropped. This pins the estimator's
    # original deque semantics bit for bit.
    h = IncrementalHistogram(num_bins=2, window_ms=10.0)
    h.add(0.0, 0)
    h.add(5.0, 1)
    h.evict(10.0)  # horizon = 0.0; event at 0.0 stays
    assert h.total == 2
    h.evict(10.0 + 1e-9)  # horizon just past 0.0; event at 0.0 drops
    assert h.total == 1
    assert h.counts[1] == 1 and h.counts[0] == 0
    assert h.oldest_ms() == 5.0


def test_add_batch_equals_sequential_adds():
    rng = np.random.default_rng(7)
    times = np.sort(rng.uniform(0, 500, size=300))
    bins = rng.integers(0, 4, size=300)
    one = IncrementalHistogram(num_bins=4, window_ms=120.0)
    for t, b in zip(times, bins):
        one.add(float(t), int(b))
    batch = IncrementalHistogram(num_bins=4, window_ms=120.0)
    batch.add_batch(times, bins)
    assert np.array_equal(one.counts, batch.counts)
    assert one.total == batch.total
    assert one.oldest_ms() == batch.oldest_ms()


def test_add_batch_validation_and_empty():
    h = IncrementalHistogram(num_bins=2, window_ms=10.0)
    h.add_batch(np.array([]), np.array([]))
    assert h.total == 0
    with pytest.raises(ConfigurationError):
        h.add_batch(np.array([1.0]), np.array([1, 2]))
    with pytest.raises(ConfigurationError):
        h.add_batch(np.array([1.0]), np.array([5]))


def test_demand_estimator_window_counts_match_oracle():
    """The estimator's histogram equals a from-scratch window recount."""
    bins = LengthBins(edges=[64, 128, 256, 512])
    est = DemandEstimator(bins=bins, slo_ms=50.0, window_ms=400.0)
    rng = np.random.default_rng(3)
    events: list[tuple[float, int]] = []
    now = 0.0
    for _ in range(1500):
        now += float(rng.exponential(1.5))
        length = int(rng.integers(1, 513))
        est.observe(now, length)
        events.append((now, length))
    est.demand(now)  # forces an eviction pass at `now`
    oracle = np.zeros(len(bins), dtype=np.int64)
    for t, length in events:
        if t >= now - 400.0:
            oracle[bins.bin_of(length)] += 1
    assert np.array_equal(est.raw_histogram(), oracle)
    assert est.observed == int(oracle.sum())
