"""Anytime ladder contracts: monotone climb, exactness, feasibility.

The ladder's promises (docstring of :func:`solve_anytime`), stated as
properties over random Eq. 1–7 instances:

- **Monotone** — each *accepted* rung strictly improves the incumbent,
  so accepted objectives read in climb order are non-increasing;
- **Exact when allowed** — whenever the deadline lets the DP rung
  finish uninterrupted, the final objective equals the exact DP
  optimum (the ladder never trades correctness for speed it has);
- **Feasible-first** — even a microscopic deadline yields a feasible
  allocation (the bootstrap rung runs regardless of budget).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    AllocationProblem,
    solve_dp,
    solve_greedy,
)
from repro.errors import ConfigurationError
from repro.perf.anytime import DEFAULT_LADDER, RUNGS, resolve_ladder, solve_anytime

_OBJ_TOL = 1e-6

#: Long enough for every rung to finish on the tiny instances below, so
#: the exactness property is about the algorithm, not the clock.
_GENEROUS_S = 5.0


@st.composite
def problems(draw, max_runtimes=4, max_gpus=8):
    n = draw(st.integers(min_value=2, max_value=max_runtimes))
    num_gpus = draw(st.integers(min_value=n, max_value=max_gpus))
    demand = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    capacity = draw(
        st.lists(st.integers(min_value=1, max_value=4), min_size=n, max_size=n)
    )
    service = np.sort(
        draw(
            st.lists(
                st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    return AllocationProblem(
        num_gpus=num_gpus,
        demand=np.asarray(demand, dtype=float),
        capacity=np.asarray(capacity, dtype=np.int64),
        service_ms=service,
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_ladder_monotone_and_exact_when_dp_finishes(data):
    problem = data.draw(problems())
    result = solve_anytime(problem, deadline_s=_GENEROUS_S, relax=True)

    # Monotone climb: accepted objectives are non-increasing in order.
    accepted = [
        r["objective"] for r in result.stats["rungs"] if r["accepted"]
    ]
    assert accepted, result.stats
    assert all(
        later <= earlier + _OBJ_TOL
        for earlier, later in zip(accepted, accepted[1:])
    ), result.stats["rungs"]
    assert abs(result.objective - accepted[-1]) <= _OBJ_TOL

    # Exactness: when the dp rung ran to completion, the final
    # incumbent matches the exact DP optimum.
    dp_runs = [
        r for r in result.stats["rungs"]
        if r["name"] == "dp" and not r["interrupted"] and r["objective"] is not None
    ]
    if dp_runs:
        exact = solve_dp(problem, relax=True)
        assert abs(result.objective - exact.objective) <= _OBJ_TOL

    # The incumbent is always feasible and fully spends the budget.
    assert problem.is_feasible(result.allocation, relaxed=True)
    assert int(result.allocation.sum()) == problem.num_gpus


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_tiny_deadline_still_feasible(data):
    problem = data.draw(problems())
    # 1 ms: only the bootstrap rung is guaranteed to run — it must
    # still hand back a feasible allocation.
    result = solve_anytime(problem, deadline_s=1e-3, relax=True)
    assert problem.is_feasible(result.allocation, relaxed=True)
    assert int(result.allocation.sum()) == problem.num_gpus
    assert result.stats["rung"]


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_greedy_feasible_and_dominated_by_dp(data):
    problem = data.draw(problems())
    greedy = solve_greedy(problem, relax=True)
    assert problem.is_feasible(greedy.allocation, relaxed=True)
    assert int(greedy.allocation.sum()) == problem.num_gpus
    exact = solve_dp(problem, relax=True)
    assert greedy.objective >= exact.objective - _OBJ_TOL


def test_resolve_ladder_validates():
    assert resolve_ladder(None) == tuple(RUNGS[n] for n in DEFAULT_LADDER)
    assert [r.name for r in resolve_ladder(("greedy", "dp"))] == ["greedy", "dp"]
    with pytest.raises(ConfigurationError):
        resolve_ladder(("greedy", "simulated-annealing"))
    # Empty falls back to the default ladder, same as None.
    assert resolve_ladder(()) == resolve_ladder(None)


def test_zero_deadline_rejected():
    problem = AllocationProblem(
        num_gpus=4,
        demand=np.array([1.0, 1.0]),
        capacity=np.array([2, 2], dtype=np.int64),
        service_ms=np.array([1.0, 2.0]),
    )
    with pytest.raises(ConfigurationError):
        solve_anytime(problem, deadline_s=0.0)
