"""Every example script runs end-to-end and prints its comparison."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "polymorph set" in out
    assert "snapshot" in out
    assert "ideal" in out or "demoted" in out


def test_serve_twitter_stream():
    out = run_example("serve_twitter_stream.py", "300", "8")
    assert "Arlo mean latency reduction vs ST" in out
    assert "arlo" in out and "infaas" in out


def test_autoscaling_cluster():
    out = run_example("autoscaling_cluster.py", "30")
    assert "time-weighted GPUs" in out
    assert "timeline" in out


def test_dispatcher_ablation():
    out = run_example("dispatcher_ablation.py")
    assert "SLO violations" in out
    assert "Table 4-style" in out


def test_multistream_pool():
    out = run_example("multistream_pool.py", "25")
    assert "pool partition over time" in out
    assert "bert-base" in out and "bert-large" in out
    assert "transfers in/out" in out


def test_capacity_planning():
    out = run_example("capacity_planning.py", "800")
    assert "planning pick" in out
    assert "prediction" in out and "simulation" in out


def test_live_server():
    out = run_example("live_server.py", "400", "12")
    assert "in-flight" in out
    assert "final:" in out and "scheduler periods" in out


def test_paper_figures_quick():
    out = run_example("paper_figures.py", "0.2")
    assert "Fig. 1" in out and "Fig. 12" in out
    assert "Table 2" in out and "Table 4" in out
    assert "done" in out
