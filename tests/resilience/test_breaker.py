"""Circuit breaker: closed → open → half-open state machine."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.resilience.breaker import BreakerConfig, BreakerState, CircuitBreaker


def test_config_validation():
    with pytest.raises(ConfigurationError):
        BreakerConfig(open_ms=0)
    with pytest.raises(ConfigurationError):
        BreakerConfig(backoff_multiplier=0.5)
    with pytest.raises(ConfigurationError):
        BreakerConfig(open_ms=100, max_open_ms=50)
    with pytest.raises(ConfigurationError):
        BreakerConfig(close_after=0)
    with pytest.raises(ConfigurationError):
        BreakerConfig(half_open_max_inflight=0)


def test_trip_opens_with_base_window():
    breaker = CircuitBreaker(config=BreakerConfig(open_ms=2_000))
    until = breaker.trip(now_ms=100.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.is_open and not breaker.is_half_open
    assert until == pytest.approx(2_100.0)
    assert breaker.trips == 1


def test_consecutive_trips_back_off_exponentially():
    breaker = CircuitBreaker(config=BreakerConfig(
        open_ms=1_000, backoff_multiplier=2.0, max_open_ms=3_000
    ))
    assert breaker.trip(0.0) == pytest.approx(1_000.0)
    breaker.begin_probe()
    assert breaker.trip(0.0) == pytest.approx(2_000.0)
    breaker.begin_probe()
    assert breaker.trip(0.0) == pytest.approx(3_000.0)  # capped
    breaker.begin_probe()
    assert breaker.trip(0.0) == pytest.approx(3_000.0)  # still capped


def test_probe_only_from_open():
    breaker = CircuitBreaker()
    with pytest.raises(SchedulingError):
        breaker.begin_probe()
    with pytest.raises(SchedulingError):
        breaker.record_probe(True)


def test_closes_after_consecutive_healthy_probes():
    breaker = CircuitBreaker(config=BreakerConfig(close_after=3))
    breaker.trip(0.0)
    breaker.begin_probe()
    assert breaker.record_probe(True) is BreakerState.HALF_OPEN
    assert breaker.record_probe(True) is BreakerState.HALF_OPEN
    assert breaker.record_probe(True) is BreakerState.CLOSED
    assert breaker.recoveries == 1
    # Recovery resets the backoff: the next trip uses the base window.
    assert breaker.trip(0.0) == pytest.approx(
        breaker.config.open_ms
    )


def test_unhealthy_probe_leaves_half_open_for_retrip():
    breaker = CircuitBreaker(config=BreakerConfig(close_after=2))
    breaker.trip(0.0)
    breaker.begin_probe()
    breaker.record_probe(True)
    # An unhealthy probe discards progress; caller trips with backoff.
    assert breaker.record_probe(False) is BreakerState.HALF_OPEN
    breaker.trip(10.0)
    breaker.begin_probe()
    assert breaker.record_probe(True) is BreakerState.HALF_OPEN
    assert breaker.record_probe(True) is BreakerState.CLOSED
