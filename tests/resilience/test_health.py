"""Health monitor: EWMA deviation + consecutive-timeout detectors."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.health import HealthConfig, HealthMonitor


def test_config_validation():
    with pytest.raises(ConfigurationError):
        HealthConfig(ewma_alpha=0.0)
    with pytest.raises(ConfigurationError):
        HealthConfig(ewma_alpha=1.5)
    with pytest.raises(ConfigurationError):
        HealthConfig(deviation_threshold=1.0)
    with pytest.raises(ConfigurationError):
        HealthConfig(min_samples=0)
    with pytest.raises(ConfigurationError):
        HealthConfig(timeout_threshold=0)


def test_healthy_instance_never_trips():
    monitor = HealthMonitor()
    for _ in range(50):
        assert not monitor.observe(1, 1.0)
    assert not monitor.is_unhealthy(1)


def test_unknown_instance_is_healthy():
    assert not HealthMonitor().is_unhealthy(99)


def test_deviation_detector_needs_min_samples():
    config = HealthConfig(ewma_alpha=1.0, deviation_threshold=1.5,
                          min_samples=5)
    monitor = HealthMonitor(config=config)
    # Four grossly inflated samples: not enough evidence yet.
    for _ in range(4):
        assert not monitor.observe(1, 3.0)
    # The fifth crosses min_samples and fires.
    assert monitor.observe(1, 3.0)


def test_ewma_converges_to_straggler_ratio():
    monitor = HealthMonitor(config=HealthConfig(ewma_alpha=0.3))
    for _ in range(30):
        monitor.observe(7, 2.0)
    assert monitor.health(7).ewma_ratio == pytest.approx(2.0, abs=1e-3)
    assert monitor.is_unhealthy(7)


def test_single_outlier_does_not_trip():
    monitor = HealthMonitor(config=HealthConfig(ewma_alpha=0.3,
                                                min_samples=1))
    for _ in range(20):
        monitor.observe(1, 1.0)
    # One bad sample amid a healthy history is smoothed away.
    assert not monitor.observe(1, 2.0)


def test_consecutive_timeouts_trip():
    monitor = HealthMonitor(config=HealthConfig(timeout_threshold=3))
    assert not monitor.record_timeout(1)
    assert not monitor.record_timeout(1)
    assert monitor.record_timeout(1)


def test_success_resets_timeout_streak():
    monitor = HealthMonitor(config=HealthConfig(timeout_threshold=3))
    monitor.record_timeout(1)
    monitor.record_timeout(1)
    monitor.observe(1, 1.0)  # a completion breaks the streak
    assert not monitor.record_timeout(1)
    assert not monitor.record_timeout(1)
    assert monitor.record_timeout(1)


def test_negative_ratio_rejected():
    with pytest.raises(ConfigurationError):
        HealthMonitor().observe(1, -0.1)


def test_reset_forgets_history():
    monitor = HealthMonitor(config=HealthConfig(ewma_alpha=1.0,
                                                min_samples=1))
    monitor.observe(1, 5.0)
    assert monitor.is_unhealthy(1)
    monitor.reset(1)
    assert not monitor.is_unhealthy(1)


def test_sample_healthy_verdict():
    monitor = HealthMonitor(config=HealthConfig(deviation_threshold=1.5))
    assert monitor.is_sample_healthy(1.0)
    assert monitor.is_sample_healthy(1.5)
    assert not monitor.is_sample_healthy(1.51)
