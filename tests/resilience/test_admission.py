"""Admission controller: typed sheds over the multi-level queue."""

import pytest

from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.errors import ConfigurationError
from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    RejectionReason,
)
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set

REGISTRY = build_polymorph_set(bert_base())


def make_controller(alloc=None, **cfg):
    if alloc is None:
        alloc = [1] + [0] * (len(REGISTRY) - 2) + [1]
    state = ClusterState.bootstrap(REGISTRY, alloc)
    mlq = MultiLevelQueue.from_cluster(state)
    controller = AdmissionController(
        registry=REGISTRY, mlq=mlq, slo_ms=450.0,
        config=AdmissionConfig(**cfg),
    )
    return controller, state, mlq


def test_config_validation():
    with pytest.raises(ConfigurationError):
        AdmissionConfig(deadline_factor=0)
    with pytest.raises(ConfigurationError):
        AdmissionConfig(deadline_ms=-1.0)


def test_default_deadline_from_slo_factor():
    controller, _, _ = make_controller(deadline_factor=4.0)
    assert controller.default_deadline_ms() == pytest.approx(1_800.0)
    controller, _, _ = make_controller(deadline_ms=500.0)
    assert controller.default_deadline_ms() == 500.0


def test_admits_idle_cluster():
    controller, _, _ = make_controller()
    assert controller.check(0.0, 10) is None
    assert controller.total_shed == 0


def test_unservable_length_is_typed():
    controller, _, _ = make_controller()
    rejection = controller.check(0.0, REGISTRY.max_length + 1)
    assert rejection is not None
    assert rejection.reason is RejectionReason.UNSERVABLE_LENGTH
    assert controller.check(0.0, 0) is not None  # non-positive too
    assert controller.shed_counts == {"unservable_length": 2}


def test_no_active_runtime_when_queue_is_empty():
    controller, state, mlq = make_controller()
    for inst in list(state.instances.values()):
        mlq.remove(inst)
    rejection = controller.check(0.0, 10)
    assert rejection is not None
    assert rejection.reason is RejectionReason.NO_ACTIVE_RUNTIME


def test_deadline_unmet_sheds_under_backlog():
    controller, state, mlq = make_controller(deadline_ms=100.0)
    # Saturate every instance far past the deadline (the 0.8 ms fixed
    # per-request overhead alone puts 200 queued requests past 100 ms).
    for inst in state.instances.values():
        for _ in range(200):
            inst.enqueue(0.0, min(10, inst.max_length))
        mlq.refresh(inst)
    rejection = controller.check(0.0, 10)
    assert rejection is not None
    assert rejection.reason is RejectionReason.DEADLINE_UNMET
    assert rejection.expected_wait_ms > 100.0
    # A generous per-request deadline overrides the config and admits.
    assert controller.check(0.0, 10, deadline_ms=10_000_000.0) is None


def test_per_request_deadline_tightens():
    controller, _, _ = make_controller(deadline_ms=60_000.0)
    # Even an idle instance cannot finish in a microsecond.
    rejection = controller.check(0.0, 10, deadline_ms=0.001)
    assert rejection is not None
    assert rejection.reason is RejectionReason.DEADLINE_UNMET
