"""Retry policy: backoff growth, jitter bounds, budget accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.retry import RetryBudget, RetryPolicy


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(base_delay_ms=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(base_delay_ms=10, max_delay_ms=5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(budget_fraction=1.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.0)


def test_backoff_grows_and_caps_without_jitter():
    policy = RetryPolicy(base_delay_ms=10, multiplier=2.0,
                         max_delay_ms=50, jitter=0.0)
    rng = policy.rng()
    delays = [policy.delay_ms(a, rng) for a in range(5)]
    assert delays == [10, 20, 40, 50, 50]


def test_jitter_stays_within_fraction():
    policy = RetryPolicy(base_delay_ms=100, multiplier=1.0,
                         max_delay_ms=100, jitter=0.2, seed=7)
    rng = policy.rng()
    for _ in range(200):
        d = policy.delay_ms(0, rng)
        assert 80.0 <= d <= 120.0


def test_jitter_is_deterministic_per_seed():
    policy = RetryPolicy(seed=42)
    a = [policy.delay_ms(i % 4, policy.rng()) for i in range(3)]
    b = [policy.delay_ms(i % 4, policy.rng()) for i in range(3)]
    assert a == b


def test_negative_attempt_rejected():
    policy = RetryPolicy()
    with pytest.raises(ConfigurationError):
        policy.delay_ms(-1, policy.rng())


def test_budget_scales_with_trace_size():
    policy = RetryPolicy(budget_fraction=0.25)
    assert policy.budget_for(1_000) == 250
    # Small traces still get a usable floor.
    assert policy.budget_for(10) == 32


def test_zero_budget_fraction_means_zero_retries():
    # Regression: the 32-retry floor used to apply even with retries
    # disabled, so budget_fraction=0 still granted a 32-retry budget.
    policy = RetryPolicy(budget_fraction=0.0)
    assert policy.budget_for(0) == 0
    assert policy.budget_for(10) == 0
    assert policy.budget_for(1_000_000) == 0
    # A zero-limit budget refuses every consume attempt.
    budget = RetryBudget(limit=policy.budget_for(1_000))
    assert not budget.try_consume()
    assert budget.used == 0
    # Tiny positive fractions keep the floor.
    assert RetryPolicy(budget_fraction=0.001).budget_for(10) == 32


def test_budget_consumption_and_exhaustion():
    budget = RetryBudget(limit=2)
    assert budget.try_consume()
    assert budget.try_consume()
    assert budget.remaining == 0
    assert not budget.try_consume()
    assert not budget.try_consume()
    assert budget.used == 2
    assert budget.exhausted_events == 2
    with pytest.raises(ConfigurationError):
        RetryBudget(limit=-1)
