"""ResilienceManager: health verdicts driving MLQ quarantine."""

import pytest

from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.resilience.breaker import BreakerConfig, BreakerState
from repro.resilience.health import HealthConfig
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set

REGISTRY = build_polymorph_set(bert_base())


def make_manager(**over):
    alloc = [2] + [0] * (len(REGISTRY) - 2) + [1]
    state = ClusterState.bootstrap(REGISTRY, alloc)
    mlq = MultiLevelQueue.from_cluster(state)
    config = ResilienceConfig(
        health=over.pop("health", HealthConfig(ewma_alpha=1.0, min_samples=2)),
        breaker=over.pop("breaker", BreakerConfig(open_ms=1_000,
                                                  close_after=2)),
    )
    manager = ResilienceManager(config=config, mlq=mlq)
    return manager, state, mlq


def trip_instance(manager, instance, now_ms=0.0):
    """Feed inflated samples until the breaker trips; returns probe time."""
    for _ in range(10):
        probe_at = manager.on_service_sample(now_ms, instance, ratio=3.0)
        if probe_at is not None:
            return probe_at
    raise AssertionError("breaker never tripped")


def test_healthy_instances_flow_freely():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    assert manager.allow_dispatch(inst)
    assert manager.on_service_sample(0.0, inst, 1.0) is None
    assert not manager.is_quarantined(inst.instance_id)
    assert manager.state_of(inst.instance_id) is BreakerState.CLOSED


def test_trip_quarantines_out_of_mlq():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    probe_at = trip_instance(manager, inst, now_ms=5.0)
    assert probe_at == pytest.approx(1_005.0)
    assert manager.is_quarantined(inst.instance_id)
    assert not manager.allow_dispatch(inst)
    assert not mlq.contains(inst)
    # The level still serves through its other instance.
    other = state.active_instances(0)[1]
    assert mlq.head(0) is other
    assert manager.quarantines == 1
    assert manager.breaker_trips == 1


def test_timeouts_quarantine_too():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    probe_at = manager.on_timeouts(0.0, inst, count=5)
    assert probe_at is not None
    assert manager.is_quarantined(inst.instance_id)


def test_probe_window_readmits_half_open():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    trip_instance(manager, inst)
    assert manager.on_probe_window(1_000.0, inst)
    assert manager.state_of(inst.instance_id) is BreakerState.HALF_OPEN
    assert mlq.contains(inst)
    # Half-open gate: one in-flight probe request at a time.
    assert manager.allow_dispatch(inst)
    inst.enqueue(1_000.0, 10)
    assert not manager.allow_dispatch(inst)
    inst.complete()


def test_healthy_probes_close_and_recover():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    trip_instance(manager, inst)
    manager.on_probe_window(1_000.0, inst)
    assert manager.on_service_sample(1_100.0, inst, 1.0) is None
    assert manager.on_service_sample(1_200.0, inst, 1.0) is None
    assert manager.state_of(inst.instance_id) is BreakerState.CLOSED
    assert manager.breaker_recoveries == 1
    assert manager.allow_dispatch(inst)


def test_unhealthy_probe_retrips_with_backoff():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    first = trip_instance(manager, inst)
    manager.on_probe_window(first, inst)
    again = manager.on_service_sample(first + 10.0, inst, ratio=3.0)
    assert again is not None
    # Second consecutive trip: doubled window.
    assert again - (first + 10.0) == pytest.approx(2_000.0)
    assert not mlq.contains(inst)
    assert manager.breaker_trips == 2


def test_probe_window_skips_missing_or_inactive():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    trip_instance(manager, inst)
    inst.begin_drain()
    # Inactive: breaker goes half-open but the queue is untouched.
    assert not manager.on_probe_window(1_000.0, inst)
    assert not mlq.contains(inst)
    # Vanished instance: state is dropped entirely.
    assert not manager.on_probe_window(1_000.0, None)


def test_requeue_respects_open_breaker():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    trip_instance(manager, inst)
    assert not manager.requeue(inst)  # breaker OPEN holds it out
    assert not mlq.contains(inst)
    manager.on_probe_window(1_000.0, inst)
    mlq.remove(inst)
    assert manager.requeue(inst)  # half-open may rejoin
    assert mlq.contains(inst)


def test_instance_gone_forgets_state():
    manager, state, mlq = make_manager()
    inst = state.active_instances(0)[0]
    trip_instance(manager, inst)
    manager.on_instance_gone(inst.instance_id)
    assert manager.state_of(inst.instance_id) is BreakerState.CLOSED
    assert not manager.is_quarantined(inst.instance_id)
    # Lifetime counters survive the garbage collection.
    assert manager.breaker_trips == 1
