"""Offline allocators and scheme construction."""

import numpy as np
import pytest

from repro.baselines.allocators import even_allocation, global_distribution_allocation
from repro.baselines.schemes import SCHEME_NAMES, build_scheme
from repro.errors import ConfigurationError
from repro.runtimes.models import bert_base
from repro.runtimes.registry import build_polymorph_set
from repro.units import seconds
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace

REGISTRY = build_polymorph_set(bert_base())


def test_even_allocation_split():
    assert even_allocation(8, 16).tolist() == [2] * 8
    assert even_allocation(8, 10).tolist() == [1, 1, 1, 1, 1, 1, 2, 2]
    assert even_allocation(4, 2).tolist() == [0, 0, 1, 1]
    assert even_allocation(3, 1).tolist() == [0, 0, 1]  # Eq. 7 preserved
    with pytest.raises(ConfigurationError):
        even_allocation(0, 5)
    with pytest.raises(ConfigurationError):
        even_allocation(5, 0)


def test_global_allocation_tracks_trace_distribution():
    short = Trace(np.linspace(0, seconds(10), 2000), np.full(2000, 30))
    alloc = global_distribution_allocation(REGISTRY, short, 8, 150.0)
    assert alloc.sum() == 8
    assert alloc[0] >= 4  # demand lives entirely in bin 0
    assert alloc[-1] >= 1
    with pytest.raises(ConfigurationError):
        global_distribution_allocation(
            REGISTRY, Trace(np.empty(0), np.empty(0, int)), 8, 150.0
        )


def test_every_scheme_builds():
    trace = generate_twitter_trace(rate_per_s=100, duration_ms=seconds(5), seed=0)
    for name in SCHEME_NAMES:
        scheme = build_scheme(name, "bert-base", 4, trace_hint=trace)
        assert scheme.cluster.allocation().sum() == 4
        assert scheme.name == name
        assert scheme.slo_ms == 150.0


def test_st_dt_single_runtime():
    st = build_scheme("st", "bert-base", 3)
    dt = build_scheme("dt", "bert-base", 3)
    assert len(st.registry) == 1 and not st.registry[0].runtime.spec.dynamic_shape
    assert len(dt.registry) == 1 and dt.registry[0].runtime.spec.dynamic_shape
    assert st.runtime_scheduler is None and dt.runtime_scheduler is None


def test_arlo_has_periodic_scheduler_ablations_do_not():
    trace = generate_twitter_trace(rate_per_s=100, duration_ms=seconds(5), seed=0)
    arlo = build_scheme("arlo", "bert-base", 4, trace_hint=trace)
    even = build_scheme("arlo-even", "bert-base", 4)
    glob = build_scheme("arlo-global", "bert-base", 4, trace_hint=trace)
    assert arlo.runtime_scheduler is not None
    assert even.runtime_scheduler is None
    assert glob.runtime_scheduler is None
    # Table-4 dispatch ablations keep the periodic scheduler.
    assert build_scheme("arlo-ilb", "bert-base", 4).runtime_scheduler is not None
    assert build_scheme("arlo-ig", "bert-base", 4).runtime_scheduler is not None


def test_arlo_global_requires_hint():
    with pytest.raises(ConfigurationError):
        build_scheme("arlo-global", "bert-base", 4)


def test_unknown_scheme_and_bad_gpus():
    with pytest.raises(ConfigurationError):
        build_scheme("magic", "bert-base", 4)
    with pytest.raises(ConfigurationError):
        build_scheme("arlo", "bert-base", 0)


def test_scale_out_runtime_is_max_length():
    scheme = build_scheme("arlo", "bert-base", 4)
    assert scheme.scale_out_runtime_index == len(scheme.registry) - 1


def test_snapshot_shape():
    scheme = build_scheme("infaas", "bert-base", 4)
    snap = scheme.snapshot()
    assert snap["gpus"] == 4
    assert sum(snap["allocation"]) == 4
