"""Dispatch strategies: ILB, IG, uniform LB, INFaaS bin-packing."""

import pytest

from repro.baselines.dispatchers import (
    INFaaSBinPacking,
    InterGroupGreedy,
    IntraGroupLoadBalance,
    UniformLoadBalance,
)
from repro.cluster.state import ClusterState
from repro.core.mlq import MultiLevelQueue
from repro.errors import CapacityError
from tests.core.helpers import make_registry


def setup(alloc, max_lengths=(128, 256, 384, 512), capacities=(80, 60, 48, 40)):
    registry = make_registry(list(max_lengths), list(capacities))
    state = ClusterState.bootstrap(registry, alloc)
    mlq = MultiLevelQueue.from_cluster(state)
    return registry, state, mlq


def load(mlq, instance, n):
    for _ in range(n):
        instance.enqueue(0.0, 1)
    mlq.refresh(instance)


def test_ilb_uses_ideal_level_despite_congestion():
    registry, state, mlq = setup([2, 1, 1, 1])
    disp = IntraGroupLoadBalance(registry=registry, mlq=mlq)
    a, b = state.active_instances(0)
    load(mlq, a, 50)
    load(mlq, b, 70)
    # ILB never demotes: a 100-token request goes to the less-loaded
    # ideal-level instance even though other levels are idle.
    assert disp.select(100) is a


def test_ilb_falls_through_empty_ideal_level():
    registry, state, mlq = setup([0, 1, 1, 1])
    disp = IntraGroupLoadBalance(registry=registry, mlq=mlq)
    assert disp.select(100).runtime_index == 1


def test_ig_takes_globally_least_loaded():
    registry, state, mlq = setup([1, 1, 1, 1])
    disp = InterGroupGreedy(registry=registry, mlq=mlq)
    load(mlq, state.active_instances(0)[0], 3)
    load(mlq, state.active_instances(1)[0], 2)
    load(mlq, state.active_instances(2)[0], 1)
    # 100-token request: the idle 512 instance wins despite max padding.
    assert disp.select(100).runtime_index == 3


def test_uniform_lb_least_loaded():
    registry, state, mlq = setup([2, 0, 0, 1])
    disp = UniformLoadBalance(registry=registry, mlq=mlq)
    a, b = state.active_instances(0)
    load(mlq, a, 2)
    assert disp.select(50) is b


def test_infaas_packs_within_cheapest_level():
    registry, state, mlq = setup([2, 1, 1, 1])
    disp = INFaaSBinPacking(registry=registry, mlq=mlq)
    a, b = state.active_instances(0)
    load(mlq, a, 3)  # below pack_depth (4)
    # Packs onto the *most* loaded headroom-positive ideal instance.
    assert disp.select(100) is a


def test_infaas_spills_when_level_saturated():
    registry, state, mlq = setup([1, 1, 1, 1])
    disp = INFaaSBinPacking(registry=registry, mlq=mlq)
    i0 = state.active_instances(0)[0]
    load(mlq, i0, 4)  # at pack depth
    chosen = disp.select(100)
    assert chosen.runtime_index == 1  # next level up


def test_infaas_keeps_packing_cheapest_level_past_depth():
    """Tier 2: with every instance beyond pack depth but below SLO
    capacity, stale-rate packing stays on the cheapest variant."""
    registry, state, mlq = setup([1, 1, 1, 1])
    disp = INFaaSBinPacking(registry=registry, mlq=mlq)
    loads = (9, 7, 5, 4)  # all at/above pack depth, below capacity
    for lvl, n in enumerate(loads):
        load(mlq, state.active_instances(lvl)[0], n)
    assert disp.select(100).runtime_index == 0


def test_infaas_global_spill_when_everything_at_capacity():
    registry, state, mlq = setup([1, 1, 1, 1])
    disp = INFaaSBinPacking(registry=registry, mlq=mlq)
    loads = (80, 60, 48, 39)  # levels 0-2 at capacity, level 3 one below
    for lvl, n in enumerate(loads):
        load(mlq, state.active_instances(lvl)[0], n)
    # Tier 2 finds headroom only at level 3; fill it and tier 3 takes
    # the least-loaded candidate.
    assert disp.select(100).runtime_index == 3
    load(mlq, state.active_instances(3)[0], 2)  # now at/over capacity
    chosen = disp.select(100)
    assert chosen.outstanding == min(
        state.active_instances(l)[0].outstanding for l in range(4)
    )


def test_dispatch_enqueues_and_reports_times():
    registry, state, mlq = setup([1, 1, 1, 1])
    disp = UniformLoadBalance(registry=registry, mlq=mlq)
    inst, start, finish = disp.dispatch(7.0, 100)
    assert start == 7.0 and finish > 7.0
    assert inst.outstanding == 1


def test_unservable_raises_everywhere():
    registry, state, mlq = setup([1, 1, 1, 1])
    for cls in (UniformLoadBalance, IntraGroupLoadBalance, InterGroupGreedy,
                INFaaSBinPacking):
        with pytest.raises(CapacityError):
            cls(registry=registry, mlq=mlq).select(600)


def test_no_instances_raises():
    registry, state, mlq = setup([1, 0, 0, 1])
    for inst in state.active_instances(0) + state.active_instances(3):
        inst.begin_drain()
        mlq.refresh(inst)
    for cls in (UniformLoadBalance, IntraGroupLoadBalance, InterGroupGreedy,
                INFaaSBinPacking):
        with pytest.raises(CapacityError):
            cls(registry=registry, mlq=mlq).select(100)
