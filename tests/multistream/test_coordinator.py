"""Multi-stream GPU pool partitioning (§6 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InfeasibleError
from repro.multistream.coordinator import (
    StreamDemand,
    StreamPoolCoordinator,
    StreamSpec,
)


def demand(name, q, m, min_gpus=1, weight=1.0):
    return StreamDemand(
        spec=StreamSpec(name=name, min_gpus=min_gpus, weight=weight),
        demand=np.asarray(q, dtype=float),
        capacity=np.asarray(m),
    )


def test_gpu_need_and_hard_minimum():
    d = demand("a", [45, 5, 0], [20, 12, 8])
    assert d.gpu_need == pytest.approx(45 / 20 + 5 / 12)
    assert d.hard_minimum == 2 + 0 + 1  # floors + Eq. 7


def test_partition_sums_and_minimums():
    coord = StreamPoolCoordinator(total_gpus=10)
    parts = coord.partition([
        demand("hot", [100, 40], [20, 10]),
        demand("cold", [1, 1], [20, 10]),
    ])
    assert sum(parts.values()) == 10
    assert parts["cold"] >= 1
    assert parts["hot"] > parts["cold"]  # demand-proportional


def test_idle_capacity_flows_to_loaded_stream():
    coord = StreamPoolCoordinator(total_gpus=12)
    balanced = coord.partition([
        demand("a", [40, 10], [20, 10]),
        demand("b", [40, 10], [20, 10]),
    ])
    assert balanced["a"] == balanced["b"]
    skewed = coord.partition([
        demand("a", [150, 30], [20, 10]),
        demand("b", [5, 1], [20, 10]),
    ])
    assert skewed["a"] > balanced["a"]
    assert skewed["b"] < balanced["b"]


def test_weights_bias_surplus():
    coord = StreamPoolCoordinator(total_gpus=9)
    parts = coord.partition([
        demand("gold", [1, 1], [20, 10], weight=3.0),
        demand("bronze", [1, 1], [20, 10], weight=1.0),
    ])
    assert parts["gold"] > parts["bronze"]


def test_min_guarantees_respected_and_infeasible_detected():
    coord = StreamPoolCoordinator(total_gpus=4)
    parts = coord.partition([
        demand("a", [0, 0], [20, 10], min_gpus=3),
        demand("b", [500, 100], [20, 10], min_gpus=1),
    ])
    assert parts["a"] >= 3
    with pytest.raises(InfeasibleError):
        coord.partition([
            demand("a", [0, 0], [20, 10], min_gpus=3),
            demand("b", [0, 0], [20, 10], min_gpus=3),
        ])


def test_validation():
    with pytest.raises(ConfigurationError):
        StreamPoolCoordinator(total_gpus=0)
    with pytest.raises(ConfigurationError):
        StreamPoolCoordinator(total_gpus=4, headroom=0.5)
    with pytest.raises(ConfigurationError):
        StreamSpec(name="x", min_gpus=0)
    with pytest.raises(ConfigurationError):
        StreamSpec(name="x", weight=0.0)
    with pytest.raises(ConfigurationError):
        StreamDemand(spec=StreamSpec(name="x"),
                     demand=np.array([1.0]), capacity=np.array([1, 2]))
    coord = StreamPoolCoordinator(total_gpus=4)
    with pytest.raises(ConfigurationError):
        coord.partition([])
    with pytest.raises(ConfigurationError):
        coord.partition([demand("same", [1], [1]), demand("same", [1], [1])])


def test_rebalance_moves():
    coord = StreamPoolCoordinator(total_gpus=8)
    moves = coord.rebalance_moves({"a": 5, "b": 3}, {"a": 3, "b": 5})
    assert moves == [("a", "b"), ("a", "b")]
    assert coord.rebalance_moves({"a": 4, "b": 4}, {"a": 4, "b": 4}) == []
    with pytest.raises(ConfigurationError):
        coord.rebalance_moves({"a": 4}, {"b": 4})
    with pytest.raises(ConfigurationError):
        coord.rebalance_moves({"a": 4}, {"a": 5})


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=200),
                  st.floats(min_value=0, max_value=200),
                  st.floats(min_value=0.5, max_value=4.0)),
        min_size=1, max_size=5,
    ),
)
def test_partition_always_valid(total, stream_params):
    if total < len(stream_params):
        return
    coord = StreamPoolCoordinator(total_gpus=total)
    demands = [
        demand(f"s{i}", [q1, q2], [20, 10], weight=w)
        for i, (q1, q2, w) in enumerate(stream_params)
    ]
    parts = coord.partition(demands)
    assert sum(parts.values()) == total
    assert all(v >= 1 for v in parts.values())
