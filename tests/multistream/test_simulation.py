"""Multi-stream co-simulation: transfers, conservation, adaptation."""

import numpy as np
import pytest

from repro.baselines.schemes import build_scheme
from repro.errors import ConfigurationError
from repro.multistream.simulation import (
    MultiStreamConfig,
    StreamInput,
    run_multistream,
)
from repro.units import seconds
from repro.workload.trace import Trace
from repro.workload.twitter import generate_twitter_trace


def stream(name, model, gpus, rate, duration_s, seed, **kw):
    trace = generate_twitter_trace(
        rate_per_s=rate, duration_ms=seconds(duration_s), seed=seed,
        drift_window_ms=seconds(10),
    )
    scheme = build_scheme("arlo", model, gpus,
                          trace_hint=trace.slice_time(0, seconds(3)))
    return StreamInput(name=name, scheme=scheme, trace=trace, **kw)


def test_two_streams_all_requests_served():
    result = run_multistream(
        [
            stream("base", "bert-base", 4, 300, 20, seed=1),
            stream("large", "bert-large", 4, 200, 20, seed=2),
        ],
        MultiStreamConfig(coordinator_period_ms=seconds(8)),
    )
    assert set(result.streams) == {"base", "large"}
    for name, sr in result.streams.items():
        assert sr.stats.count > 0
    total_gpus = sum(sr.gpus_final for sr in result.streams.values())
    assert total_gpus == 8  # pool conserved
    assert len(result.partition_timeline) >= 1


def test_pool_flows_toward_the_loaded_stream():
    """A heavily loaded stream steals GPUs from a near-idle one."""
    result = run_multistream(
        [
            stream("hot", "bert-base", 4, 2_000, 25, seed=3),
            stream("cold", "bert-base", 4, 20, 25, seed=4),
        ],
        MultiStreamConfig(coordinator_period_ms=seconds(6)),
    )
    hot = result.streams["hot"]
    cold = result.streams["cold"]
    assert hot.transfers_in > 0
    assert cold.transfers_out > 0
    assert hot.gpus_final > cold.gpus_final
    assert hot.gpus_final + cold.gpus_final == 8


def test_transfers_respect_min_guarantee():
    result = run_multistream(
        [
            stream("hot", "bert-base", 4, 1_500, 20, seed=5),
            stream("cold", "bert-base", 3, 10, 20, seed=6, min_gpus=2),
        ],
        MultiStreamConfig(coordinator_period_ms=seconds(5)),
    )
    assert result.streams["cold"].gpus_final >= 2


def test_single_stream_degenerates_gracefully():
    result = run_multistream(
        [stream("solo", "bert-base", 3, 200, 10, seed=7)],
        MultiStreamConfig(coordinator_period_ms=seconds(5)),
    )
    assert result.streams["solo"].transfers_out == 0
    assert result.streams["solo"].gpus_final == 3


def test_input_validation():
    with pytest.raises(ConfigurationError):
        run_multistream([])
    s = stream("dup", "bert-base", 2, 100, 5, seed=8)
    with pytest.raises(ConfigurationError):
        run_multistream([s, stream("dup", "bert-base", 2, 100, 5, seed=9)])
    with pytest.raises(ConfigurationError):
        MultiStreamConfig(coordinator_period_ms=0)
    with pytest.raises(ConfigurationError):
        StreamInput(
            name="x",
            scheme=build_scheme("arlo", "bert-base", 2),
            trace=Trace(np.empty(0), np.empty(0, dtype=int)),
        )
    with pytest.raises(ConfigurationError):
        # ST has no demand estimator -> not coordinatable.
        StreamInput(
            name="x",
            scheme=build_scheme("st", "bert-base", 2),
            trace=generate_twitter_trace(rate_per_s=10, duration_ms=1_000),
        )


def test_isolation_weights_bias_partition():
    result = run_multistream(
        [
            stream("gold", "bert-base", 3, 600, 15, seed=10, weight=3.0),
            stream("bronze", "bert-base", 3, 600, 15, seed=11, weight=1.0),
        ],
        MultiStreamConfig(coordinator_period_ms=seconds(5)),
    )
    # Same load, higher weight -> gold never ends with fewer GPUs.
    assert result.streams["gold"].gpus_final >= result.streams["bronze"].gpus_final
