"""Tests for the branch & bound MILP solver, differential vs scipy.milp."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.solver.branch_bound import solve_milp
from repro.solver.simplex import LinearProgram, LpStatus


def test_simple_knapsack():
    # max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binary
    lp = LinearProgram(
        c=np.array([-5.0, -4.0, -3.0]),
        a_ub=np.array([[2.0, 3.0, 1.0]]),
        b_ub=np.array([5.0]),
        ub=np.ones(3),
    )
    res = solve_milp(lp, np.array([True, True, True]))
    assert res.is_optimal
    # a=1, b=1 uses the full budget of 5 for value 9.
    assert res.objective == pytest.approx(-9.0)
    assert res.x == pytest.approx([1.0, 1.0, 0.0])
    ref = milp(
        c=lp.c,
        constraints=[LinearConstraint(lp.a_ub, -np.inf, lp.b_ub)],
        integrality=np.ones(3),
        bounds=Bounds(np.zeros(3), np.ones(3)),
    )
    assert res.objective == pytest.approx(ref.fun)


def test_integer_rounding_not_truncation():
    # LP optimum fractional; integer optimum requires branching both ways.
    # max x + y s.t. 2x + 2y <= 5 integer -> best 2 (e.g. x=2,y=0)
    lp = LinearProgram(
        c=np.array([-1.0, -1.0]),
        a_ub=np.array([[2.0, 2.0]]),
        b_ub=np.array([5.0]),
    )
    res = solve_milp(lp, np.array([True, True]))
    assert res.is_optimal
    assert res.objective == pytest.approx(-2.0)
    assert np.allclose(res.x, np.round(res.x))


def test_mixed_integer_continuous():
    # min -x - 10y, y integer, x continuous; x <= 2.5, x + y <= 4
    lp = LinearProgram(
        c=np.array([-1.0, -10.0]),
        a_ub=np.array([[1.0, 0.0], [1.0, 1.0]]),
        b_ub=np.array([2.5, 4.0]),
    )
    res = solve_milp(lp, np.array([False, True]))
    assert res.is_optimal
    # y=4, x=0 gives -40; y=3, x=1 gives -31... so y=4.
    assert res.x[1] == pytest.approx(4.0)
    assert res.objective == pytest.approx(-40.0)


def test_infeasible_milp():
    # 2x == 3 with x integer has no solution.
    lp = LinearProgram(
        c=np.array([1.0]),
        a_eq=np.array([[2.0]]),
        b_eq=np.array([3.0]),
        ub=np.array([10.0]),
    )
    res = solve_milp(lp, np.array([True]))
    assert res.status is LpStatus.INFEASIBLE


def test_gap_reported():
    lp = LinearProgram(
        c=np.array([-3.0, -2.0]),
        a_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([4.0]),
        ub=np.array([3.0, 3.0]),
    )
    res = solve_milp(lp, np.array([True, True]))
    assert res.is_optimal
    assert res.gap <= 1e-6


@st.composite
def random_milp(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    a = rng.integers(-3, 4, size=(m, n)).astype(float)
    x_feas = rng.integers(0, 4, size=n).astype(float)
    b = a @ x_feas + rng.integers(0, 3, size=m)
    c = rng.integers(-5, 6, size=n).astype(float)
    ub = np.full(n, 6.0)
    mask = rng.random(n) < 0.7
    if not mask.any():
        mask[0] = True
    return LinearProgram(c=c, a_ub=a, b_ub=b.astype(float), ub=ub), mask


@settings(max_examples=40, deadline=None)
@given(random_milp())
def test_matches_scipy_milp(problem):
    lp, mask = problem
    ours = solve_milp(lp, mask)
    ref = milp(
        c=lp.c,
        constraints=[LinearConstraint(lp.a_ub, -np.inf, lp.b_ub)],
        integrality=mask.astype(float),
        bounds=Bounds(lp.lb, lp.ub),
    )
    assert ours.is_optimal == bool(ref.success)
    if ref.success:
        assert ours.objective == pytest.approx(ref.fun, rel=1e-6, abs=1e-6)
        assert np.all(lp.a_ub @ ours.x <= lp.b_ub + 1e-6)
        frac = np.abs(ours.x[mask] - np.round(ours.x[mask]))
        assert np.all(frac <= 1e-6)


def test_node_cap_returns_best_incumbent_interrupted():
    """Exhausting the node budget mid-search must return the best
    incumbent found so far flagged ``interrupted``, never raise — the
    anytime ladder depends on budgeted solves degrading gracefully."""
    # Near-degenerate knapsack (value ≈ weight): weak LP bounds force a
    # deep tree, so node caps genuinely cut the search short.
    rng = np.random.default_rng(7)
    n = 16
    w = rng.integers(10, 30, size=n).astype(float)
    v = w + rng.integers(0, 3, size=n).astype(float)
    lp = LinearProgram(
        c=-v, a_ub=w[None, :], b_ub=np.array([w.sum() / 2]), ub=np.ones(n)
    )
    mask = np.ones(n, dtype=bool)

    full = solve_milp(lp, mask)
    assert full.is_optimal and not full.interrupted
    assert full.nodes_explored > 2

    # Sweep caps below the full tree: every capped run must come back
    # without raising, and at least one holds an interrupted incumbent.
    capped = None
    for cap in range(1, full.nodes_explored):
        res = solve_milp(lp, mask, max_nodes=cap)
        assert not res.is_optimal or res.x is not None
        if res.x is not None and res.interrupted:
            capped = res
            break
    assert capped is not None, "no cap produced an interrupted incumbent"
    assert capped.status is LpStatus.ITERATION_LIMIT
    # The incumbent is feasible and integral, merely not proven optimal.
    assert np.all(lp.a_ub @ capped.x <= lp.b_ub + 1e-6)
    assert np.all(np.abs(capped.x[mask] - np.round(capped.x[mask])) <= 1e-6)
    assert capped.objective >= full.objective - 1e-9


def test_deadline_returns_incumbent_interrupted():
    """An already-expired deadline still yields the root incumbent when
    one exists (the first dive finds it before the clock check trips)."""
    lp = LinearProgram(
        c=np.array([-5.0, -4.0, -3.0]),
        a_ub=np.array([[2.0, 3.0, 1.0]]),
        b_ub=np.array([5.0]),
        ub=np.ones(3),
    )
    mask = np.array([True, True, True])
    res = solve_milp(lp, mask, deadline_s=0.0)
    # Depending on where the clock trips, either we finished the tiny
    # tree (optimal) or we hold an interrupted incumbent — never a
    # crash, never a None x with a feasible problem and zero progress
    # flagged optimal.
    if res.x is not None:
        assert np.all(lp.a_ub @ res.x <= lp.b_ub + 1e-6)
        if res.interrupted:
            assert res.status is LpStatus.ITERATION_LIMIT
    else:
        assert res.interrupted
