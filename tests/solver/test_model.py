"""Tests for the algebraic modeling layer."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver.model import LinExpr, Model
from repro.solver.piecewise import (
    chord_segments,
    interpolate_chords,
    lower_envelope_value,
    tangent_lines,
)


def test_expression_algebra():
    m = Model()
    x = m.add_var(name="x")
    y = m.add_var(name="y")
    expr = 2 * x + 3 * y - 1 + x
    assert expr.coeffs == {x.index: 3.0, y.index: 3.0}
    assert expr.constant == -1.0
    neg = -expr
    assert neg.coeffs[x.index] == -3.0


def test_sum_helper():
    m = Model()
    xs = m.add_vars(4, name="n")
    total = LinExpr.sum(xs)
    assert all(total.coeffs[v.index] == 1.0 for v in xs)


def test_nonlinear_product_rejected():
    m = Model()
    x, y = m.add_var(), m.add_var()
    with pytest.raises(SolverError):
        _ = x * y
    with pytest.raises(SolverError):
        _ = (x + 1) * (y + 1)


def test_lp_solve_through_model():
    m = Model()
    x = m.add_var(ub=4.0)
    y = m.add_var(ub=4.0)
    m.add_constr(x + 2 * y <= 4)
    m.add_constr(3 * x + y <= 6)
    m.maximize(x + y)
    sol = m.solve()
    assert sol.is_optimal
    assert sol[x] + sol[y] == pytest.approx(8 / 5 + 6 / 5)
    # maximize negates internally; objective reported for the min problem
    assert sol.objective == pytest.approx(-(8 / 5 + 6 / 5))


def test_milp_solve_through_model():
    m = Model()
    n = m.add_vars(3, ub=1.0, integer=True, name="pick")
    m.add_constr(2 * n[0] + 3 * n[1] + 1 * n[2] <= 5)
    m.maximize(5 * n[0] + 4 * n[1] + 3 * n[2])
    sol = m.solve()
    assert sol.is_optimal
    assert [sol[v] for v in n] == pytest.approx([1.0, 1.0, 0.0])
    assert sol.objective == pytest.approx(-9.0)


def test_equality_and_constant_in_objective():
    m = Model()
    x = m.add_var(ub=10)
    m.add_constr(x == 3)
    m.minimize(x + 7)
    sol = m.solve()
    assert sol.objective == pytest.approx(10.0)


def test_var_bound_validation():
    m = Model()
    with pytest.raises(SolverError):
        m.add_var(lb=float("-inf"))
    with pytest.raises(SolverError):
        m.add_var(lb=2.0, ub=1.0)


def test_add_constr_rejects_bool():
    m = Model()
    m.add_var()
    with pytest.raises(SolverError):
        m.add_constr(True)  # type: ignore[arg-type]


def test_expression_value():
    m = Model()
    x, y = m.add_var(), m.add_var()
    expr = 2 * x + y + 1
    assert expr.value(np.array([3.0, 4.0])) == pytest.approx(11.0)


def test_tangents_underapproximate_convex():
    fn = lambda s: 0.5 * s * s + 2 * s + 1
    tans = tangent_lines(fn, 0.0, 10.0, 5, derivative=lambda s: s + 2)
    for x in np.linspace(0, 10, 33):
        assert lower_envelope_value(tans, float(x)) <= fn(float(x)) + 1e-9


def test_chords_overapproximate_convex():
    fn = lambda s: s * s
    pts = chord_segments(fn, 0.0, 8.0, 5)
    for x in np.linspace(0, 8, 33):
        assert interpolate_chords(pts, float(x)) >= fn(float(x)) - 1e-9


def test_chord_domain_enforced():
    pts = chord_segments(lambda s: s, 0.0, 1.0, 3)
    with pytest.raises(SolverError):
        interpolate_chords(pts, 2.0)
