"""Unit tests for the dense two-phase simplex, cross-checked vs scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.solver.simplex import LinearProgram, LpStatus, solve_lp


def test_simple_2d_optimum_at_vertex():
    # max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y)
    lp = LinearProgram(
        c=np.array([-1.0, -1.0]),
        a_ub=np.array([[1.0, 2.0], [3.0, 1.0]]),
        b_ub=np.array([4.0, 6.0]),
    )
    res = solve_lp(lp)
    assert res.status is LpStatus.OPTIMAL
    assert res.objective == pytest.approx(-(8 / 5 + 6 / 5))
    assert res.x == pytest.approx([8 / 5, 6 / 5])


def test_equality_constraints():
    # min x + y s.t. x + y == 3, x - y == 1 -> x=2, y=1
    lp = LinearProgram(
        c=np.array([1.0, 1.0]),
        a_eq=np.array([[1.0, 1.0], [1.0, -1.0]]),
        b_eq=np.array([3.0, 1.0]),
    )
    res = solve_lp(lp)
    assert res.is_optimal
    assert res.x == pytest.approx([2.0, 1.0])


def test_infeasible_detected():
    lp = LinearProgram(
        c=np.array([1.0]),
        a_ub=np.array([[1.0], [-1.0]]),
        b_ub=np.array([1.0, -3.0]),  # x <= 1 and x >= 3
    )
    assert solve_lp(lp).status is LpStatus.INFEASIBLE


def test_unbounded_detected():
    lp = LinearProgram(c=np.array([-1.0]), a_ub=np.array([[-1.0]]),
                       b_ub=np.array([0.0]))
    assert solve_lp(lp).status is LpStatus.UNBOUNDED


def test_lower_and_upper_bounds_respected():
    # min -x with 2 <= x <= 5
    lp = LinearProgram(c=np.array([-1.0]), lb=np.array([2.0]), ub=np.array([5.0]))
    res = solve_lp(lp)
    assert res.is_optimal
    assert res.x == pytest.approx([5.0])
    # min x goes to the lower bound
    lp2 = LinearProgram(c=np.array([1.0]), lb=np.array([2.0]), ub=np.array([5.0]))
    assert solve_lp(lp2).x == pytest.approx([2.0])


def test_negative_lower_bounds_shift():
    # min x + y with x >= -3, y >= -1 and x + y >= -2
    lp = LinearProgram(
        c=np.array([1.0, 1.0]),
        a_ub=np.array([[-1.0, -1.0]]),
        b_ub=np.array([2.0]),
        lb=np.array([-3.0, -1.0]),
    )
    res = solve_lp(lp)
    assert res.is_optimal
    assert res.objective == pytest.approx(-2.0)


def test_degenerate_problem_terminates():
    # Klee-Minty-like small instance: must terminate and be optimal.
    n = 4
    a = np.zeros((n, n))
    b = np.zeros(n)
    for i in range(n):
        a[i, i] = 1.0
        for j in range(i):
            a[i, j] = 2.0
        b[i] = 5.0 ** (i + 1)
    c = -np.array([2.0 ** (n - 1 - j) for j in range(n)])
    lp = LinearProgram(c=c, a_ub=a, b_ub=b)
    res = solve_lp(lp)
    assert res.is_optimal
    ref = linprog(c, A_ub=a, b_ub=b, method="highs")
    assert res.objective == pytest.approx(ref.fun, rel=1e-7)


def test_mismatched_shapes_raise():
    with pytest.raises(SolverError):
        LinearProgram(c=np.array([1.0]), a_ub=np.array([[1.0, 2.0]]),
                      b_ub=np.array([1.0]))
    with pytest.raises(SolverError):
        LinearProgram(c=np.array([1.0]), a_ub=np.array([[1.0]]), b_ub=None)
    with pytest.raises(SolverError):
        LinearProgram(c=np.array([1.0]), lb=np.array([2.0]), ub=np.array([1.0]))
    with pytest.raises(SolverError):
        LinearProgram(c=np.array([1.0]), lb=np.array([-np.inf]))


def test_no_constraints_zero_solution():
    lp = LinearProgram(c=np.array([1.0, 2.0]))
    res = solve_lp(lp)
    assert res.is_optimal
    assert res.x == pytest.approx([0.0, 0.0])


def test_no_constraints_unbounded():
    lp = LinearProgram(c=np.array([-1.0]))
    assert solve_lp(lp).status is LpStatus.UNBOUNDED


@st.composite
def random_lp(draw):
    """Feasible-by-construction random LPs for differential testing."""
    n = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=6))
    with_eq = draw(st.booleans())
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    a = rng.uniform(-2, 2, size=(m, n)).round(2)
    x_feas = rng.uniform(0, 3, size=n).round(2)
    slack = rng.uniform(0.1, 2, size=m).round(2)
    b = a @ x_feas + slack
    c = rng.uniform(-1, 1, size=n).round(2)
    ub = x_feas + rng.uniform(1, 5, size=n).round(2)  # finite ub => bounded
    a_eq = b_eq = None
    if with_eq:
        k = draw(st.integers(min_value=1, max_value=min(2, n)))
        a_eq = rng.uniform(-2, 2, size=(k, n)).round(2)
        b_eq = a_eq @ x_feas  # satisfied by construction
    return LinearProgram(c=c, a_ub=a, b_ub=b, a_eq=a_eq, b_eq=b_eq, ub=ub)


@settings(max_examples=80, deadline=None)
@given(random_lp())
def test_matches_scipy_on_random_instances(lp):
    ours = solve_lp(lp)
    ref = linprog(
        lp.c, A_ub=lp.a_ub, b_ub=lp.b_ub, A_eq=lp.a_eq, b_eq=lp.b_eq,
        bounds=list(zip(lp.lb, lp.ub)), method="highs",
    )
    assert ours.is_optimal == ref.success
    if ref.success:
        assert ours.objective == pytest.approx(ref.fun, rel=1e-6, abs=1e-6)
        # Solution must satisfy all constraints.
        assert np.all(lp.a_ub @ ours.x <= lp.b_ub + 1e-6)
        if lp.a_eq is not None:
            assert np.allclose(lp.a_eq @ ours.x, lp.b_eq, atol=1e-6)
        assert np.all(ours.x >= lp.lb - 1e-8)
        assert np.all(ours.x <= lp.ub + 1e-8)


def test_marginal_phase1_residual_is_not_infeasible():
    # Regression: on badly scaled problems (big-M MILP rows) the fast
    # Dantzig path can end phase 1 with a tiny spurious artificial
    # residual and wrongly report INFEASIBLE. solve_lp must re-verify
    # marginal verdicts with Bland's rule. This LP is the branch-and-
    # bound node that exposed it (an Arlo allocation MILP with z[0]
    # fixed to 1); scipy finds the optimum at 42.975.
    from repro.core.allocation import AllocationProblem, solve_milp_encoding

    problem = AllocationProblem(
        num_gpus=3,
        demand=np.array([1.5, 3.0]),
        capacity=np.array([2, 1]),
        service_ms=np.array([1.0, 7.0]),
    )
    result = solve_milp_encoding(problem, relax=True)
    assert np.array_equal(result.allocation, [0, 3])
    assert result.objective == pytest.approx(42.975)


def test_large_phase1_residual_is_not_infeasible():
    # Regression: the spurious phase-1 residual is not always at
    # roundoff scale — on one node LP of this allocation MILP the
    # corrupted Dantzig pivot path stalls at a residual far above any
    # "marginal" threshold, so residual size cannot distinguish the
    # artifact from true infeasibility. Every fast-path infeasible
    # verdict must be re-verified under Bland's rule; before that, the
    # cold solve below pruned the subtree holding the optimum and
    # terminated "infeasible". Found by Hypothesis in
    # test_milp_warm_start_preserves_objective.
    from repro.core.allocation import AllocationProblem, solve_dp, solve_milp_encoding

    problem = AllocationProblem(
        num_gpus=5,
        demand=np.array(
            [0.5366601177964526, 0.5366601177964526, 5.5021848901640915]
        ),
        capacity=np.array([2, 1, 1]),
        service_ms=np.array([1.0, 1.0, 3.903292184850587]),
        overhead_ms=0.8,
    )
    cold = solve_milp_encoding(problem, relax=True)
    dp = solve_dp(problem, relax=True)
    assert cold.objective == pytest.approx(dp.objective, rel=1e-6)
    warm = solve_milp_encoding(problem, relax=True, warm_start=cold.allocation)
    assert warm.objective == pytest.approx(cold.objective)


def test_ill_conditioned_big_m_milp_terminates_quickly():
    # Regression: without row equilibration the big-M rows of this
    # allocation MILP leave the pivot arithmetic so ill-conditioned
    # that node LPs stall at the simplex iteration cap and the branch
    # & bound grinds toward its node limit — minutes of wall clock
    # before a wrong terminal status. Equilibrated, it solves in a
    # handful of nodes. Found by Hypothesis in
    # test_milp_warm_start_preserves_objective.
    import time

    from repro.core.allocation import AllocationProblem, solve_dp, solve_milp_encoding

    problem = AllocationProblem(
        num_gpus=3,
        demand=np.array([0.3, 4.283189425907477, 4.329266080347185]),
        capacity=np.array([2, 2, 2]),
        service_ms=np.array(
            [2.8038841589068304, 4.42134732560782, 7.999999999999999]
        ),
        overhead_ms=0.8,
    )
    start = time.perf_counter()
    cold = solve_milp_encoding(problem, relax=True)
    assert time.perf_counter() - start < 30.0
    dp = solve_dp(problem, relax=True)
    assert cold.objective == pytest.approx(dp.objective, rel=1e-6)
