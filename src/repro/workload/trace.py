"""Request trace containers.

A :class:`Trace` is a struct-of-arrays (arrival time, length) — the
memory layout that keeps trace analytics and the simulator's arrival
feed vectorised, per the HPC guideline of preferring contiguous NumPy
arrays over per-request objects. Individual :class:`Request` records
are materialised only at the simulator boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import TraceError
from repro.units import SECOND


@dataclass(frozen=True)
class Request:
    """One inference request (materialised from a trace row)."""

    request_id: int
    arrival_ms: float
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise TraceError(f"request {self.request_id} has length {self.length}")
        if self.arrival_ms < 0:
            raise TraceError(f"request {self.request_id} arrives before t=0")


class Trace:
    """An immutable, time-sorted request trace."""

    __slots__ = ("arrival_ms", "length")

    def __init__(self, arrival_ms: np.ndarray, length: np.ndarray):
        arrival_ms = np.asarray(arrival_ms, dtype=np.float64)
        length = np.asarray(length, dtype=np.int64)
        if arrival_ms.ndim != 1 or arrival_ms.shape != length.shape:
            raise TraceError("arrival and length arrays must be 1-D and aligned")
        if arrival_ms.size:
            if np.any(np.diff(arrival_ms) < 0):
                raise TraceError("trace must be sorted by arrival time")
            if arrival_ms[0] < 0:
                raise TraceError("arrivals cannot be negative")
            if np.any(length <= 0):
                raise TraceError("lengths must be positive")
        arrival_ms.setflags(write=False)
        length.setflags(write=False)
        self.arrival_ms = arrival_ms
        self.length = length

    # -- basic protocol ---------------------------------------------------
    def __len__(self) -> int:
        return int(self.arrival_ms.size)

    def __iter__(self) -> Iterator[Request]:
        for i in range(len(self)):
            yield Request(i, float(self.arrival_ms[i]), int(self.length[i]))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        if not len(self):
            return "Trace(empty)"
        return (
            f"Trace({len(self)} requests over "
            f"{self.duration_ms / SECOND:.1f}s, "
            f"median len {int(np.median(self.length))})"
        )

    # -- derived quantities ------------------------------------------------
    @property
    def duration_ms(self) -> float:
        """Span from t=0 to the last arrival."""
        return float(self.arrival_ms[-1]) if len(self) else 0.0

    @property
    def mean_rate_per_s(self) -> float:
        """Average arrival rate over the trace span."""
        if len(self) < 2 or self.duration_ms == 0:
            return 0.0
        return len(self) / (self.duration_ms / SECOND)

    # -- transformations ----------------------------------------------------
    def slice_time(self, start_ms: float, end_ms: float) -> "Trace":
        """Sub-trace with arrivals in ``[start_ms, end_ms)``, re-zeroed."""
        if end_ms < start_ms:
            raise TraceError("slice end before start")
        lo = int(np.searchsorted(self.arrival_ms, start_ms, side="left"))
        hi = int(np.searchsorted(self.arrival_ms, end_ms, side="left"))
        return Trace(self.arrival_ms[lo:hi] - start_ms, self.length[lo:hi])

    def shift(self, offset_ms: float) -> "Trace":
        """Trace with all arrivals moved by ``offset_ms`` (≥ 0 result)."""
        if len(self) and self.arrival_ms[0] + offset_ms < 0:
            raise TraceError("shift would move arrivals before t=0")
        return Trace(self.arrival_ms + offset_ms, self.length)

    def scale_lengths(self, factor: float, max_length: int) -> "Trace":
        """Recalibrated trace: lengths multiplied by ``factor`` then
        clipped to ``[1, max_length]`` (the paper's 125 → 512 stretch)."""
        if factor <= 0:
            raise TraceError("scale factor must be positive")
        scaled = np.clip(
            np.round(self.length * factor).astype(np.int64), 1, max_length
        )
        return Trace(self.arrival_ms, scaled)

    @staticmethod
    def merge(traces: list["Trace"]) -> "Trace":
        """Interleave several traces into one sorted trace."""
        traces = [t for t in traces if len(t)]
        if not traces:
            return Trace(np.empty(0), np.empty(0, dtype=np.int64))
        arrival = np.concatenate([t.arrival_ms for t in traces])
        length = np.concatenate([t.length for t in traces])
        order = np.argsort(arrival, kind="stable")
        return Trace(arrival[order], length[order])

    @staticmethod
    def concat(traces: list["Trace"]) -> "Trace":
        """Play traces back-to-back (each shifted after the previous)."""
        out: list[Trace] = []
        offset = 0.0
        for t in traces:
            out.append(t.shift(offset))
            offset += t.duration_ms
        return Trace.merge(out)
