"""Generative (prefill + decode) request traces.

Arlo's staircase runtimes target discriminative BERT-style requests:
one length, one forward pass. Autoregressive serving adds a second
length dimension — every request carries a *prefill* length (the
prompt, known on arrival) and a *decode* length (tokens generated one
step at a time, unknown to the scheduler until the request finishes).
:class:`GenerativeTrace` extends :class:`~repro.workload.trace.Trace`
with a per-request ``decode_len`` column while keeping ``length`` as
the prefill length, so every existing length-keyed component (demand
estimation, staircase tier walk, Eq. 1–7 allocation) reads the prompt
dimension unchanged.

Generation is deterministic: one seed drives the prefill trace (the
same Twitter-like generator the discriminative path uses) and a
fixed-derivation child stream draws the decode lengths, so traces are
golden-hashable exactly like the discriminative ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.units import MINUTE, SECOND
from repro.workload.lengths import LengthDistribution, LogNormalLengths
from repro.workload.trace import Trace
from repro.workload.twitter import TwitterTraceConfig, generate_twitter_trace

#: Default decode-length quantiles: a chat-style mix with a median
#: answer of 64 tokens, a long tail to 256 at p98 and a hard generation
#: cap of 512 (mirrors the shape reported for ShareGPT-like workloads).
DEFAULT_DECODE_MEDIAN = 64
DEFAULT_DECODE_P98 = 256
DEFAULT_DECODE_MAX = 512

#: Fixed label mixed into the seed for the decode-length stream, so the
#: prefill trace of seed ``s`` is byte-identical whether or not decode
#: lengths are attached.
_DECODE_STREAM = 0x6D


@dataclass(frozen=True)
class GenerativeRequest:
    """One prefill+decode request (materialised from a trace row)."""

    request_id: int
    arrival_ms: float
    prefill_len: int
    decode_len: int

    def __post_init__(self) -> None:
        if self.prefill_len <= 0:
            raise TraceError(
                f"request {self.request_id} has prefill {self.prefill_len}"
            )
        if self.decode_len <= 0:
            raise TraceError(
                f"request {self.request_id} has decode {self.decode_len}"
            )
        if self.arrival_ms < 0:
            raise TraceError(f"request {self.request_id} arrives before t=0")


class GenerativeTrace(Trace):
    """An immutable, time-sorted prefill+decode request trace.

    ``length`` holds the prefill length (so discriminative consumers —
    estimators, the staircase walk — see the prompt dimension without
    modification); ``decode_len`` holds the number of decode steps each
    request performs before completing.
    """

    __slots__ = ("decode_len",)

    def __init__(
        self,
        arrival_ms: np.ndarray,
        length: np.ndarray,
        decode_len: np.ndarray,
    ):
        super().__init__(arrival_ms, length)
        decode_len = np.asarray(decode_len, dtype=np.int64)
        if decode_len.shape != self.length.shape:
            raise TraceError("decode_len must align with the arrival array")
        if decode_len.size and np.any(decode_len <= 0):
            raise TraceError("decode lengths must be positive")
        decode_len.setflags(write=False)
        self.decode_len = decode_len

    # -- basic protocol ---------------------------------------------------
    def __iter__(self) -> Iterator[GenerativeRequest]:
        for i in range(len(self)):
            yield GenerativeRequest(
                i,
                float(self.arrival_ms[i]),
                int(self.length[i]),
                int(self.decode_len[i]),
            )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        if not len(self):
            return "GenerativeTrace(empty)"
        return (
            f"GenerativeTrace({len(self)} requests over "
            f"{self.duration_ms / SECOND:.1f}s, "
            f"median prefill {int(np.median(self.length))}, "
            f"median decode {int(np.median(self.decode_len))})"
        )

    # -- derived quantities ------------------------------------------------
    @property
    def prefill_len(self) -> np.ndarray:
        """Alias for ``length`` under its generative name."""
        return self.length

    @property
    def total_decode_steps(self) -> int:
        """Sum of decode lengths — the conservation target for the
        generative event loop (every admitted request must complete
        exactly its ``decode_len`` steps)."""
        return int(self.decode_len.sum())

    # -- transformations ----------------------------------------------------
    def slice_time(self, start_ms: float, end_ms: float) -> "GenerativeTrace":
        """Sub-trace with arrivals in ``[start_ms, end_ms)``, re-zeroed."""
        if end_ms < start_ms:
            raise TraceError("slice end before start")
        lo = int(np.searchsorted(self.arrival_ms, start_ms, side="left"))
        hi = int(np.searchsorted(self.arrival_ms, end_ms, side="left"))
        return GenerativeTrace(
            self.arrival_ms[lo:hi] - start_ms,
            self.length[lo:hi],
            self.decode_len[lo:hi],
        )

    def shift(self, offset_ms: float) -> "GenerativeTrace":
        """Trace with all arrivals moved by ``offset_ms`` (≥ 0 result)."""
        if len(self) and self.arrival_ms[0] + offset_ms < 0:
            raise TraceError("shift would move arrivals before t=0")
        return GenerativeTrace(
            self.arrival_ms + offset_ms, self.length, self.decode_len
        )

    def scale_lengths(self, factor: float, max_length: int) -> "GenerativeTrace":
        """Recalibrated trace: *prefill* lengths scaled and clipped;
        decode lengths are generation budgets and are left alone."""
        if factor <= 0:
            raise TraceError("scale factor must be positive")
        scaled = np.clip(
            np.round(self.length * factor).astype(np.int64), 1, max_length
        )
        return GenerativeTrace(self.arrival_ms, scaled, self.decode_len)


@dataclass(frozen=True)
class GenerativeTraceConfig:
    """Parameters of a synthetic prefill+decode trace.

    The prefill dimension reuses the Twitter-like generator (length
    quantiles, per-window drift, stable/bursty arrival patterns); the
    decode dimension samples per-request generation lengths from its
    own distribution.
    """

    rate_per_s: float = 1_000.0
    duration_ms: float = 10 * MINUTE
    pattern: str = "stable"  # "stable" (Poisson) | "bursty" (MMPP)
    seed: int = 0
    recalibrate_to_512: bool = True
    drift_scale: float = 0.08
    drift_window_ms: float = MINUTE
    decode_lengths: LengthDistribution = field(
        default_factory=lambda: LogNormalLengths.from_quantiles(
            median=DEFAULT_DECODE_MEDIAN,
            p98=DEFAULT_DECODE_P98,
            max_length=DEFAULT_DECODE_MAX,
        )
    )

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        if self.duration_ms <= 0:
            raise ConfigurationError("duration must be positive")
        if self.pattern not in ("stable", "bursty"):
            raise ConfigurationError("pattern must be 'stable' or 'bursty'")

    def twitter_config(self) -> TwitterTraceConfig:
        """The prefill-side config (shared with the discriminative path)."""
        return TwitterTraceConfig(
            rate_per_s=self.rate_per_s,
            duration_ms=self.duration_ms,
            pattern=self.pattern,
            recalibrate_to_512=self.recalibrate_to_512,
            drift_scale=self.drift_scale,
            drift_window_ms=self.drift_window_ms,
            seed=self.seed,
        )


def generate_generative_trace(
    config: GenerativeTraceConfig | None = None, **kwargs
) -> GenerativeTrace:
    """Generate a synthetic prefill+decode trace.

    Deterministic in ``config.seed``: the prefill trace is exactly the
    Twitter-like trace of the same seed, and decode lengths come from a
    child stream seeded as ``[seed, _DECODE_STREAM]`` — attaching the
    decode dimension never perturbs the prefill golden hashes.
    """
    if config is None:
        config = GenerativeTraceConfig(**kwargs)
    elif kwargs:
        raise ConfigurationError("pass either a config or kwargs, not both")
    prefill = generate_twitter_trace(config.twitter_config())
    decode_rng = np.random.default_rng([config.seed, _DECODE_STREAM])
    decode = config.decode_lengths.sample(decode_rng, len(prefill))
    return GenerativeTrace(prefill.arrival_ms, prefill.length, decode)


def attach_decode_lengths(
    trace: Trace,
    decode_lengths: LengthDistribution,
    seed: int = 0,
) -> GenerativeTrace:
    """Promote a discriminative trace to a generative one by sampling a
    decode length for every request (deterministic in ``seed``)."""
    rng = np.random.default_rng([seed, _DECODE_STREAM])
    return GenerativeTrace(
        trace.arrival_ms, trace.length, decode_lengths.sample(rng, len(trace))
    )
