"""Extra workload patterns beyond the paper's Twitter traces.

Useful for what-if studies with the analysis module and for stressing
the schedulers outside the calibrated regime:

- :class:`DiurnalRateProfile` — smooth day/night load curve;
- :class:`BimodalLengths` — a short-chat + long-document mixture, the
  adversarial shape for padding-based serving;
- :class:`ZipfLengths` — heavy-tailed lengths from a Zipf law over
  templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.lengths import LengthDistribution


@dataclass(frozen=True)
class DiurnalRateProfile(ArrivalProcess):
    """Sinusoidal rate modulation around the mean (period = one "day").

    ``rate(t) = rate · (1 + amplitude · sin(2πt/period))`` — generated
    by thinning a Poisson process at the peak rate, which is exact.
    """

    period_ms: float
    amplitude: float = 0.5
    base: ArrivalProcess = PoissonArrivals()

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ConfigurationError("period must be positive")
        if not 0 <= self.amplitude < 1:
            raise ConfigurationError("amplitude must be in [0, 1)")

    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        if rate_per_s < 0 or duration_ms < 0:
            raise ConfigurationError("rate and duration must be non-negative")
        peak = rate_per_s * (1.0 + self.amplitude)
        candidates = self.base.generate(rng, peak, duration_ms)
        if candidates.size == 0:
            return candidates
        instantaneous = rate_per_s * (
            1.0 + self.amplitude * np.sin(2 * np.pi * candidates / self.period_ms)
        )
        keep = rng.random(candidates.size) < instantaneous / peak
        return candidates[keep]


@dataclass(frozen=True)
class BimodalLengths(LengthDistribution):
    """Mixture of a short mode and a long mode (chat + documents)."""

    short_mean: float = 20.0
    long_mean: float = 400.0
    long_fraction: float = 0.2
    spread: float = 0.25
    _max_length: int = 512

    def __post_init__(self) -> None:
        if not 0 <= self.long_fraction <= 1:
            raise ConfigurationError("long_fraction must be in [0, 1]")
        if self.short_mean <= 0 or self.long_mean <= self.short_mean:
            raise ConfigurationError("need 0 < short_mean < long_mean")
        if self.spread <= 0:
            raise ConfigurationError("spread must be positive")

    @property
    def max_length(self) -> int:
        return self._max_length

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        is_long = rng.random(count) < self.long_fraction
        means = np.where(is_long, self.long_mean, self.short_mean)
        raw = rng.normal(means, means * self.spread)
        return np.clip(np.round(raw).astype(np.int64), 1, self._max_length)


@dataclass(frozen=True)
class ZipfLengths(LengthDistribution):
    """Lengths drawn from a Zipf law over ``num_templates`` templates
    whose lengths grow linearly — a heavy-tailed, discrete workload."""

    exponent: float = 1.5
    num_templates: int = 64
    _max_length: int = 512

    def __post_init__(self) -> None:
        if self.exponent <= 1.0:
            raise ConfigurationError("Zipf exponent must exceed 1")
        if self.num_templates < 1:
            raise ConfigurationError("need at least one template")

    @property
    def max_length(self) -> int:
        return self._max_length

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        ranks = np.minimum(
            rng.zipf(self.exponent, size=count), self.num_templates
        )
        lengths = np.round(
            ranks / self.num_templates * self._max_length
        ).astype(np.int64)
        return np.clip(lengths, 1, self._max_length)
