"""Workload substrate: synthetic production-like request traces.

The paper evaluates on Twitter's production trace (archive.org), which
we cannot ship; this subpackage generates synthetic traces that match
the statistics the paper reports and exploits — the length quantiles
(median 21, p98 72, max ≈125 tokens), the long-term-stable /
short-term-fluctuating length distribution (Fig. 1), and the two
arrival patterns (Poisson "Twitter-Stable", Markov-modulated Poisson
"Twitter-Bursty").
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    MMPPArrivals,
    PoissonArrivals,
    RateProfile,
)
from repro.workload.generative import (
    GenerativeRequest,
    GenerativeTrace,
    GenerativeTraceConfig,
    attach_decode_lengths,
    generate_generative_trace,
)
from repro.workload.generator import WorkloadSpec, generate_trace
from repro.workload.lengths import (
    EmpiricalLengths,
    LengthDistribution,
    LogNormalLengths,
    fit_lognormal_quantiles,
)
from repro.workload.stats import (
    empirical_cdf,
    lengths_in_windows,
    trace_rate_per_second,
    windowed_quantiles,
)
from repro.workload.trace import Request, Trace
from repro.workload.twitter import (
    TWITTER_MAX_LENGTH,
    TWITTER_MEDIAN_LENGTH,
    TWITTER_P98_LENGTH,
    TwitterTraceConfig,
    generate_twitter_trace,
)

__all__ = [
    "ArrivalProcess",
    "EmpiricalLengths",
    "GenerativeRequest",
    "GenerativeTrace",
    "GenerativeTraceConfig",
    "LengthDistribution",
    "LogNormalLengths",
    "MMPPArrivals",
    "PoissonArrivals",
    "RateProfile",
    "Request",
    "TWITTER_MAX_LENGTH",
    "TWITTER_MEDIAN_LENGTH",
    "TWITTER_P98_LENGTH",
    "Trace",
    "TwitterTraceConfig",
    "WorkloadSpec",
    "attach_decode_lengths",
    "empirical_cdf",
    "fit_lognormal_quantiles",
    "generate_generative_trace",
    "generate_trace",
    "generate_twitter_trace",
    "lengths_in_windows",
    "trace_rate_per_second",
    "windowed_quantiles",
]
