"""Request length distributions.

The Twitter trace's length CDF (paper Fig. 1a) is well described by a
truncated log-normal: median 21 tokens, p98 at 72, hard maximum ≈125.
:func:`fit_lognormal_quantiles` recovers (μ, σ) from any two quantiles
so alternative workloads can be dialled in the same way.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np
from scipy.special import ndtri

from repro.errors import ConfigurationError


def fit_lognormal_quantiles(
    q1: float, p1: float, q2: float, p2: float
) -> tuple[float, float]:
    """(μ, σ) of a log-normal hitting value ``q1`` at probability ``p1``
    and ``q2`` at ``p2``.

    Solves ``μ + z(p)·σ = ln q`` for the two points.
    """
    if not (0 < p1 < 1 and 0 < p2 < 1 and p1 != p2):
        raise ConfigurationError("probabilities must be distinct and in (0,1)")
    if q1 <= 0 or q2 <= 0:
        raise ConfigurationError("quantile values must be positive")
    z1, z2 = ndtri(p1), ndtri(p2)
    sigma = (math.log(q2) - math.log(q1)) / (z2 - z1)
    if sigma <= 0:
        raise ConfigurationError("quantiles imply non-increasing CDF")
    mu = math.log(q1) - z1 * sigma
    return mu, sigma


class LengthDistribution(ABC):
    """Samples integer request lengths."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` lengths as an int64 array."""

    @property
    @abstractmethod
    def max_length(self) -> int:
        """Largest length this distribution can emit."""


@dataclass(frozen=True)
class LogNormalLengths(LengthDistribution):
    """Truncated log-normal lengths with quantile-based construction."""

    mu: float
    sigma: float
    min_length: int = 1
    _max_length: int = 125

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ConfigurationError("sigma must be positive")
        if not 1 <= self.min_length <= self._max_length:
            raise ConfigurationError("need 1 <= min_length <= max_length")

    @classmethod
    def from_quantiles(
        cls,
        median: float,
        p98: float,
        max_length: int = 125,
        min_length: int = 1,
    ) -> "LogNormalLengths":
        """Build from the two quantiles the paper reports."""
        if p98 <= median:
            raise ConfigurationError("p98 must exceed the median")
        mu, sigma = fit_lognormal_quantiles(median, 0.5, p98, 0.98)
        return cls(mu=mu, sigma=sigma, min_length=min_length,
                   _max_length=max_length)

    @property
    def max_length(self) -> int:
        return self._max_length

    def shifted(self, mu_delta: float, sigma_scale: float = 1.0) -> "LogNormalLengths":
        """A drifted copy — used for per-minute distribution dynamics."""
        return LogNormalLengths(
            mu=self.mu + mu_delta,
            sigma=self.sigma * sigma_scale,
            min_length=self.min_length,
            _max_length=self._max_length,
        )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        raw = rng.lognormal(self.mu, self.sigma, size=count)
        return np.clip(
            np.round(raw).astype(np.int64), self.min_length, self._max_length
        )


@dataclass(frozen=True)
class EmpiricalLengths(LengthDistribution):
    """Bootstrap sampling from observed lengths (replay a real trace)."""

    values: np.ndarray = field(default_factory=lambda: np.array([1]))

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.int64)
        if values.size == 0:
            raise ConfigurationError("empirical distribution needs samples")
        if values.min() <= 0:
            raise ConfigurationError("lengths must be positive")
        object.__setattr__(self, "values", values)

    @property
    def max_length(self) -> int:
        return int(self.values.max())

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return rng.choice(self.values, size=count, replace=True)
