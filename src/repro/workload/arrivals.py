"""Arrival processes: Poisson (Twitter-Stable) and MMPP (Twitter-Bursty).

The Twitter trace only carries per-second counts; the paper fills in
sub-second arrivals with a Poisson process ("stable") or a
Markov-modulated Poisson process ("bursty"), following MArk and
SHEPHERD. We reproduce both, plus a time-varying rate profile used by
the auto-scaling experiment (Fig. 8).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECOND


class ArrivalProcess(ABC):
    """Generates sorted arrival timestamps over a horizon."""

    @abstractmethod
    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        """Arrival times in ms, sorted ascending, within [0, duration)."""


def _check_args(rate_per_s: float, duration_ms: float) -> None:
    if rate_per_s < 0:
        raise ConfigurationError("rate must be non-negative")
    if duration_ms < 0:
        raise ConfigurationError("duration must be non-negative")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process — the Twitter-Stable pattern."""

    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        _check_args(rate_per_s, duration_ms)
        if rate_per_s == 0 or duration_ms == 0:
            return np.empty(0)
        count = rng.poisson(rate_per_s * duration_ms / SECOND)
        return np.sort(rng.uniform(0.0, duration_ms, size=count))


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process — Twitter-Bursty.

    The process alternates between a *calm* state and a *burst* state
    with exponentially distributed sojourns. Rates in the two states are
    chosen so the long-run average equals the requested rate:
    ``calm = rate·calm_factor``, ``burst = rate·burst_factor``, with the
    stationary mix determined by the mean sojourn times.
    """

    burst_factor: float = 2.2
    calm_factor: float = 0.7
    mean_burst_ms: float = 2_000.0
    mean_calm_ms: float = 10_000.0

    def __post_init__(self) -> None:
        if self.burst_factor <= 1.0:
            raise ConfigurationError("burst_factor must exceed 1")
        if not 0 < self.calm_factor <= 1.0:
            raise ConfigurationError("calm_factor must be in (0, 1]")
        if self.mean_burst_ms <= 0 or self.mean_calm_ms <= 0:
            raise ConfigurationError("sojourn means must be positive")

    def _normaliser(self) -> float:
        """Stationary mean of the factor process (to preserve the rate)."""
        pi_burst = self.mean_burst_ms / (self.mean_burst_ms + self.mean_calm_ms)
        return pi_burst * self.burst_factor + (1 - pi_burst) * self.calm_factor

    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        _check_args(rate_per_s, duration_ms)
        if rate_per_s == 0 or duration_ms == 0:
            return np.empty(0)
        norm = self._normaliser()
        arrivals: list[np.ndarray] = []
        t = 0.0
        # Start from the stationary state distribution so short traces
        # are unbiased in expectation.
        pi_burst = self.mean_burst_ms / (self.mean_burst_ms + self.mean_calm_ms)
        bursting = bool(rng.random() < pi_burst)
        while t < duration_ms:
            sojourn = rng.exponential(
                self.mean_burst_ms if bursting else self.mean_calm_ms
            )
            end = min(t + sojourn, duration_ms)
            factor = self.burst_factor if bursting else self.calm_factor
            local_rate = rate_per_s * factor / norm
            count = rng.poisson(local_rate * (end - t) / SECOND)
            if count:
                arrivals.append(rng.uniform(t, end, size=count))
            t = end
            bursting = not bursting
        if not arrivals:
            return np.empty(0)
        return np.sort(np.concatenate(arrivals))


@dataclass(frozen=True)
class RateProfile(ArrivalProcess):
    """Piecewise-constant time-varying rate wrapped around a base process.

    ``segments`` is a list of (duration_ms, rate_multiplier); the pattern
    cycles until the horizon is filled. Used to create the "highly
    varying load" of the Fig. 8 auto-scaling experiment.
    """

    base: ArrivalProcess
    segments: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("rate profile needs at least one segment")
        for dur, mult in self.segments:
            if dur <= 0 or mult < 0:
                raise ConfigurationError("segments need positive duration, rate ≥ 0")

    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        _check_args(rate_per_s, duration_ms)
        out: list[np.ndarray] = []
        t = 0.0
        i = 0
        while t < duration_ms:
            seg_dur, mult = self.segments[i % len(self.segments)]
            seg_dur = min(seg_dur, duration_ms - t)
            chunk = self.base.generate(rng, rate_per_s * mult, seg_dur)
            if chunk.size:
                out.append(chunk + t)
            t += seg_dur
            i += 1
        if not out:
            return np.empty(0)
        return np.sort(np.concatenate(out))
