"""Arrival processes: Poisson (Twitter-Stable) and MMPP (Twitter-Bursty).

The Twitter trace only carries per-second counts; the paper fills in
sub-second arrivals with a Poisson process ("stable") or a
Markov-modulated Poisson process ("bursty"), following MArk and
SHEPHERD. We reproduce both, plus a time-varying rate profile used by
the auto-scaling experiment (Fig. 8).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECOND


class ArrivalProcess(ABC):
    """Generates sorted arrival timestamps over a horizon."""

    @abstractmethod
    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        """Arrival times in ms, sorted ascending, within [0, duration)."""


def _check_args(rate_per_s: float, duration_ms: float) -> None:
    if rate_per_s < 0:
        raise ConfigurationError("rate must be non-negative")
    if duration_ms < 0:
        raise ConfigurationError("duration must be non-negative")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process — the Twitter-Stable pattern."""

    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        _check_args(rate_per_s, duration_ms)
        if rate_per_s == 0 or duration_ms == 0:
            return np.empty(0)
        count = rng.poisson(rate_per_s * duration_ms / SECOND)
        return np.sort(rng.uniform(0.0, duration_ms, size=count))


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process — Twitter-Bursty.

    The process alternates between a *calm* state and a *burst* state
    with exponentially distributed sojourns. Rates in the two states are
    chosen so the long-run average equals the requested rate:
    ``calm = rate·calm_factor``, ``burst = rate·burst_factor``, with the
    stationary mix determined by the mean sojourn times.
    """

    burst_factor: float = 2.2
    calm_factor: float = 0.7
    mean_burst_ms: float = 2_000.0
    mean_calm_ms: float = 10_000.0

    def __post_init__(self) -> None:
        if self.burst_factor <= 1.0:
            raise ConfigurationError("burst_factor must exceed 1")
        if not 0 < self.calm_factor <= 1.0:
            raise ConfigurationError("calm_factor must be in (0, 1]")
        if self.mean_burst_ms <= 0 or self.mean_calm_ms <= 0:
            raise ConfigurationError("sojourn means must be positive")

    def _normaliser(self) -> float:
        """Stationary mean of the factor process (to preserve the rate)."""
        pi_burst = self.mean_burst_ms / (self.mean_burst_ms + self.mean_calm_ms)
        return pi_burst * self.burst_factor + (1 - pi_burst) * self.calm_factor

    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        """Fully vectorised: the state path is drawn as a batch of
        alternating-mean exponential sojourns, then one Poisson call
        yields every segment count and one uniform call every arrival
        offset. Because the two-state chain strictly alternates, the
        sojourn means are a deterministic function of the segment
        parity — which is what makes the batch draw possible. Output is
        a deterministic function of the seed (pinned by the golden
        trace tests), distributionally identical to the scalar loop it
        replaced.
        """
        _check_args(rate_per_s, duration_ms)
        if rate_per_s == 0 or duration_ms == 0:
            return np.empty(0)
        norm = self._normaliser()
        # Start from the stationary state distribution so short traces
        # are unbiased in expectation.
        pi_burst = self.mean_burst_ms / (self.mean_burst_ms + self.mean_calm_ms)
        bursting0 = bool(rng.random() < pi_burst)

        def sojourn_means(offset: int, count: int) -> np.ndarray:
            means = np.empty(count)
            first_is_burst = bursting0 ^ (offset % 2 == 1)
            means[0::2] = self.mean_burst_ms if first_is_burst else self.mean_calm_ms
            means[1::2] = self.mean_calm_ms if first_is_burst else self.mean_burst_ms
            return means

        mean_sojourn = (self.mean_burst_ms + self.mean_calm_ms) / 2
        batch = max(16, int(duration_ms / mean_sojourn * 1.5) + 8)
        sojourns = rng.exponential(sojourn_means(0, batch))
        # Doubling re-draws keep the expected number of exponential
        # calls O(1) while staying seed-deterministic.
        while sojourns.sum() < duration_ms:
            extra = rng.exponential(sojourn_means(sojourns.size, sojourns.size))
            sojourns = np.concatenate([sojourns, extra])
        ends = np.minimum(np.cumsum(sojourns), duration_ms)
        n_segments = int(np.searchsorted(ends, duration_ms)) + 1
        ends = ends[:n_segments]
        starts = np.empty(n_segments)
        starts[0] = 0.0
        starts[1:] = ends[:-1]
        spans = ends - starts

        factors = np.empty(n_segments)
        factors[0::2] = self.burst_factor if bursting0 else self.calm_factor
        factors[1::2] = self.calm_factor if bursting0 else self.burst_factor
        lam = (rate_per_s / norm / SECOND) * factors * spans
        counts = rng.poisson(lam)
        total = int(counts.sum())
        if total == 0:
            return np.empty(0)
        offsets = rng.random(total)
        arrivals = np.repeat(starts, counts) + offsets * np.repeat(spans, counts)
        return np.sort(arrivals)


@dataclass(frozen=True)
class RateProfile(ArrivalProcess):
    """Piecewise-constant time-varying rate wrapped around a base process.

    ``segments`` is a list of (duration_ms, rate_multiplier); the pattern
    cycles until the horizon is filled. Used to create the "highly
    varying load" of the Fig. 8 auto-scaling experiment.
    """

    base: ArrivalProcess
    segments: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("rate profile needs at least one segment")
        for dur, mult in self.segments:
            if dur <= 0 or mult < 0:
                raise ConfigurationError("segments need positive duration, rate ≥ 0")

    def generate(
        self, rng: np.random.Generator, rate_per_s: float, duration_ms: float
    ) -> np.ndarray:
        _check_args(rate_per_s, duration_ms)
        out: list[np.ndarray] = []
        t = 0.0
        i = 0
        while t < duration_ms:
            seg_dur, mult = self.segments[i % len(self.segments)]
            seg_dur = min(seg_dur, duration_ms - t)
            chunk = self.base.generate(rng, rate_per_s * mult, seg_dur)
            if chunk.size:
                out.append(chunk + t)
            t += seg_dur
            i += 1
        if not out:
            return np.empty(0)
        return np.sort(np.concatenate(out))
