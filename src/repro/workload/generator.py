"""Generic workload generation: any length model × any arrival process.

:func:`generate_trace` is the compositional API behind the Twitter
generator; examples and property tests use it to build custom
workloads (uniform lengths, bimodal mixtures, ramping rates...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.lengths import LengthDistribution
from repro.workload.trace import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully specified synthetic workload."""

    lengths: LengthDistribution
    arrivals: ArrivalProcess
    rate_per_s: float
    duration_ms: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        if self.duration_ms <= 0:
            raise ConfigurationError("duration must be positive")


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Materialise a :class:`Trace` from a :class:`WorkloadSpec`."""
    rng = np.random.default_rng(spec.seed)
    arrivals = spec.arrivals.generate(rng, spec.rate_per_s, spec.duration_ms)
    lengths = spec.lengths.sample(rng, arrivals.size)
    return Trace(arrivals, lengths)


def generate_mixture_trace(
    specs: list[WorkloadSpec],
) -> Trace:
    """Superpose several workloads into one trace (multi-tenant streams)."""
    if not specs:
        raise ConfigurationError("need at least one workload spec")
    return Trace.merge([generate_trace(s) for s in specs])


def poisson_trace(
    lengths: LengthDistribution,
    rate_per_s: float,
    duration_ms: float,
    seed: int = 0,
) -> Trace:
    """Shorthand for the most common test workload."""
    return generate_trace(
        WorkloadSpec(
            lengths=lengths,
            arrivals=PoissonArrivals(),
            rate_per_s=rate_per_s,
            duration_ms=duration_ms,
            seed=seed,
        )
    )


def trace_from_per_second_counts(
    counts: np.ndarray,
    lengths: LengthDistribution,
    seed: int = 0,
) -> Trace:
    """Build a trace from real per-second request counts (§5 method).

    The production Twitter trace "only provides per-second time
    information"; the paper synthesises sub-second arrivals within each
    second. This constructor does the same for users who hold such a
    count series: exactly ``counts[k]`` requests land uniformly at
    random inside second ``k``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or counts.size == 0:
        raise ConfigurationError("need a 1-D, non-empty count series")
    if np.any(counts < 0):
        raise ConfigurationError("counts cannot be negative")
    total = int(counts.sum())
    if total == 0:
        raise ConfigurationError("count series sums to zero requests")
    rng = np.random.default_rng(seed)
    # One uniform draw for every request at once; the per-second base
    # offsets come from repeating each second's start time `counts[k]`
    # times. A single global sort replaces the per-second sorts (the
    # windows are disjoint, so the result is identical in law).
    offsets = rng.random(total)
    base = np.repeat(np.arange(counts.size) * 1_000.0, counts)
    arrivals = np.sort(base + offsets * 1_000.0)
    return Trace(arrivals, lengths.sample(rng, arrivals.size))
