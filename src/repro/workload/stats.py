"""Trace statistics: CDFs, windowed quantiles, rates (Fig. 1 analytics)."""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.units import SECOND
from repro.workload.trace import Trace


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probability) — ready to plot or compare."""
    values = np.asarray(values)
    if values.size == 0:
        raise TraceError("cannot compute the CDF of nothing")
    x = np.sort(values)
    p = np.arange(1, x.size + 1) / x.size
    return x, p


def cdf_at(values: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Empirical CDF evaluated at arbitrary points."""
    values = np.sort(np.asarray(values))
    if values.size == 0:
        raise TraceError("cannot compute the CDF of nothing")
    return np.searchsorted(values, np.asarray(points), side="right") / values.size


def lengths_in_windows(trace: Trace, window_ms: float) -> list[np.ndarray]:
    """Split a trace's lengths into consecutive time windows.

    Fig. 1 draws length CDFs for one-minute and one-second windows; this
    is the slicing primitive behind both.
    """
    if window_ms <= 0:
        raise TraceError("window must be positive")
    if not len(trace):
        return []
    edges = np.arange(0.0, trace.duration_ms + window_ms, window_ms)
    out: list[np.ndarray] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        i = np.searchsorted(trace.arrival_ms, lo, side="left")
        j = np.searchsorted(trace.arrival_ms, hi, side="left")
        out.append(trace.length[i:j])
    return out


def windowed_quantiles(
    trace: Trace, window_ms: float, quantiles: tuple[float, ...] = (0.5, 0.98)
) -> np.ndarray:
    """Per-window length quantiles, shape (windows, len(quantiles)).

    Windows with no arrivals yield NaN rows (kept so window indexes stay
    aligned with wall time).
    """
    windows = lengths_in_windows(trace, window_ms)
    out = np.full((len(windows), len(quantiles)), np.nan)
    for i, lens in enumerate(windows):
        if lens.size:
            out[i] = np.quantile(lens, quantiles)
    return out


def trace_rate_per_second(trace: Trace, window_ms: float = SECOND) -> np.ndarray:
    """Arrival rate (req/s) per window — the load series of Fig. 8."""
    if window_ms <= 0:
        raise TraceError("window must be positive")
    if not len(trace):
        return np.empty(0)
    counts = np.histogram(
        trace.arrival_ms,
        bins=np.arange(0.0, trace.duration_ms + window_ms, window_ms),
    )[0]
    return counts / (window_ms / SECOND)


def summarize_lengths(trace: Trace) -> dict[str, float]:
    """Headline statistics used in assertions and reports."""
    if not len(trace):
        raise TraceError("empty trace")
    lens = trace.length
    return {
        "count": float(lens.size),
        "median": float(np.median(lens)),
        "p98": float(np.quantile(lens, 0.98)),
        "max": float(lens.max()),
        "mean": float(lens.mean()),
    }
