"""Synthetic Twitter-like traces (paper §5 "Workloads").

The generator reproduces the three properties of the production trace
the paper relies on:

1. **Length quantiles** — median 21 tokens, p98 = 72, max ≈125
   (Fig. 1a), recalibrated ×(512/125) for serving experiments.
2. **Long-term-stable, short-term-noisy length distribution** — the
   per-minute distribution drifts slowly (AR(1) on the log-normal μ),
   so 10-minute windows look alike while 1-second windows fluctuate
   (Fig. 1b and §3.2's "short-term request length distribution").
3. **Arrival patterns** — Poisson within each minute for
   Twitter-Stable, MMPP for Twitter-Bursty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MINUTE
from repro.workload.arrivals import ArrivalProcess, MMPPArrivals, PoissonArrivals
from repro.workload.lengths import LogNormalLengths
from repro.workload.trace import Trace

#: Statistics of the production trace quoted in the paper (Fig. 1 / §2.1).
TWITTER_MEDIAN_LENGTH = 21
TWITTER_P98_LENGTH = 72
TWITTER_MAX_LENGTH = 125
#: §5: "we recalibrate the sentence length distribution to span up to 512".
RECALIBRATED_MAX_LENGTH = 512
RECALIBRATION_FACTOR = RECALIBRATED_MAX_LENGTH / TWITTER_MAX_LENGTH


@dataclass(frozen=True)
class TwitterTraceConfig:
    """Parameters of a synthetic Twitter-like trace."""

    rate_per_s: float = 1_000.0
    duration_ms: float = 10 * MINUTE
    pattern: str = "stable"  # "stable" (Poisson) | "bursty" (MMPP)
    recalibrate_to_512: bool = True
    #: AR(1) coefficient of the per-window drift of the log-normal μ.
    drift_rho: float = 0.8
    #: Innovation std-dev of the drift (0 disables short-term dynamics).
    drift_scale: float = 0.08
    #: How often the length distribution drifts. The production trace
    #: drifts per minute (Fig. 1); time-compressed experiments shrink
    #: this together with trace duration and scheduler period.
    drift_window_ms: float = MINUTE
    seed: int = 0
    base_lengths: LogNormalLengths = field(
        default_factory=lambda: LogNormalLengths.from_quantiles(
            median=TWITTER_MEDIAN_LENGTH,
            p98=TWITTER_P98_LENGTH,
            max_length=TWITTER_MAX_LENGTH,
        )
    )

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        if self.duration_ms <= 0:
            raise ConfigurationError("duration must be positive")
        if self.pattern not in ("stable", "bursty"):
            raise ConfigurationError("pattern must be 'stable' or 'bursty'")
        if not 0 <= self.drift_rho < 1:
            raise ConfigurationError("drift_rho must be in [0, 1)")
        if self.drift_scale < 0:
            raise ConfigurationError("drift_scale must be non-negative")
        if self.drift_window_ms <= 0:
            raise ConfigurationError("drift_window_ms must be positive")

    @property
    def arrival_process(self) -> ArrivalProcess:
        return PoissonArrivals() if self.pattern == "stable" else MMPPArrivals()

    @property
    def max_length(self) -> int:
        return (
            RECALIBRATED_MAX_LENGTH
            if self.recalibrate_to_512
            else self.base_lengths.max_length
        )


def generate_twitter_trace(config: TwitterTraceConfig | None = None, **kwargs) -> Trace:
    """Generate a synthetic Twitter-like trace.

    Keyword arguments override :class:`TwitterTraceConfig` fields, so
    ``generate_twitter_trace(rate_per_s=8000, pattern="bursty")`` works
    without building a config first.
    """
    if config is None:
        config = TwitterTraceConfig(**kwargs)
    elif kwargs:
        raise ConfigurationError("pass either a config or kwargs, not both")
    rng = np.random.default_rng(config.seed)

    window = config.drift_window_ms
    windows = int(np.ceil(config.duration_ms / window))
    pieces: list[Trace] = []
    mu_drift = 0.0
    for index in range(windows):
        start = index * window
        span = min(window, config.duration_ms - start)
        # AR(1) drift of the length distribution location parameter.
        mu_drift = config.drift_rho * mu_drift + rng.normal(
            0.0, config.drift_scale
        )
        window_dist = config.base_lengths.shifted(mu_drift)
        arrivals = config.arrival_process.generate(rng, config.rate_per_s, span)
        lengths = window_dist.sample(rng, arrivals.size)
        pieces.append(Trace(arrivals + start, lengths))
    trace = Trace.merge(pieces)
    if config.recalibrate_to_512:
        trace = trace.scale_lengths(RECALIBRATION_FACTOR, RECALIBRATED_MAX_LENGTH)
    return trace


def three_bursty_traces(
    rate_per_s: float, duration_ms: float, base_seed: int = 100
) -> list[Trace]:
    """The paper's Table 4 uses "three different Twitter-Bursty traces";
    the third has deliberately weak short-term length fluctuation."""
    configs = [
        TwitterTraceConfig(rate_per_s=rate_per_s, duration_ms=duration_ms,
                           pattern="bursty", seed=base_seed, drift_scale=0.10),
        TwitterTraceConfig(rate_per_s=rate_per_s, duration_ms=duration_ms,
                           pattern="bursty", seed=base_seed + 1, drift_scale=0.16),
        TwitterTraceConfig(rate_per_s=rate_per_s, duration_ms=duration_ms,
                           pattern="bursty", seed=base_seed + 2, drift_scale=0.01),
    ]
    return [generate_twitter_trace(c) for c in configs]
