"""Fault injection: the graded failure taxonomy of the simulator.

The paper motivates the Request Scheduler partly by "idiosyncratic
factors such as failures and bugs [that] lead to imbalanced load even
across instances of the same runtime" (§1). This module injects such
events into the simulator. Four fault grades, from worst to mildest:

- :class:`FailureEvent` — an abrupt **crash**: queued and in-flight
  requests are lost and must be re-dispatched; the GPU comes back with
  a fresh instance of the same runtime after a recovery delay (or
  never, modelling hardware loss).
- :class:`BlackoutEvent` — a **transient blackout**: the instance stops
  responding for a window. Its in-flight requests time out and are
  retried elsewhere; the *same* instance rejoins afterwards (process
  hang, network partition, GC pause).
- :class:`SlowdownEvent` — a **straggler**: the instance keeps serving
  but at a per-instance latency multiplier (thermal throttling, noisy
  neighbour, degraded interconnect). Only the health monitor notices.
- :class:`SolverFaultEvent` — a **control-plane bug**: the next Runtime
  Scheduler period's allocation solve raises; the scheduler must hold
  the previous allocation instead of taking the data plane down.

All grades share a :class:`FaultPlan` schedule. Victims are chosen by
``victim_rank`` at fire time (0 = busiest active instance), matching
the original crash-injection semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECOND


@dataclass(frozen=True)
class FailureEvent:
    """Kill the ``victim_rank``-th busiest instance at ``time_ms``."""

    time_ms: float
    #: 0 = busiest instance, 1 = second busiest, ... (rank at fire time).
    victim_rank: int = 0
    #: GPU comes back with the same runtime after this long; 0 means
    #: instant recovery, None means the GPU is gone for good.
    recovery_ms: float | None = 5 * SECOND

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ConfigurationError("failure time cannot be negative")
        if self.victim_rank < 0:
            raise ConfigurationError("victim_rank cannot be negative")
        if self.recovery_ms is not None and self.recovery_ms < 0:
            raise ConfigurationError(
                "recovery cannot be negative (0 = instant, None = permanent)"
            )


@dataclass(frozen=True)
class SlowdownEvent:
    """Degrade the victim's service times by ``factor`` for a window."""

    time_ms: float
    victim_rank: int = 0
    #: Per-instance latency multiplier while the fault is active.
    factor: float = 2.0
    #: How long the straggler persists; None = until crash/replacement.
    duration_ms: float | None = 10 * SECOND

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ConfigurationError("slowdown time cannot be negative")
        if self.victim_rank < 0:
            raise ConfigurationError("victim_rank cannot be negative")
        if self.factor <= 1.0:
            raise ConfigurationError("slowdown factor must exceed 1.0")
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise ConfigurationError("duration must be positive (or None)")


@dataclass(frozen=True)
class BlackoutEvent:
    """Suspend the victim for a window; its in-flight work times out."""

    time_ms: float
    victim_rank: int = 0
    duration_ms: float = 3 * SECOND

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ConfigurationError("blackout time cannot be negative")
        if self.victim_rank < 0:
            raise ConfigurationError("victim_rank cannot be negative")
        if self.duration_ms <= 0:
            raise ConfigurationError("blackout duration must be positive")


@dataclass(frozen=True)
class SolverFaultEvent:
    """Make the next ``count`` allocation solves raise ``SolverError``."""

    time_ms: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ConfigurationError("fault time cannot be negative")
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")


FaultEvent = Union[FailureEvent, SlowdownEvent, BlackoutEvent,
                   SolverFaultEvent]


@dataclass
class FaultPlan:
    """A schedule of faults (of any grade) to inject into one run."""

    events: list[FaultEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def sorted_events(self) -> list[FaultEvent]:
        return sorted(self.events, key=lambda e: e.time_ms)

    def counts(self) -> dict[str, int]:
        """Events per grade (report/benchmark metadata)."""
        out: dict[str, int] = {}
        for event in self.events:
            key = type(event).__name__
            out[key] = out.get(key, 0) + 1
        return out

    def window(self, start_ms: float, end_ms: float) -> "FaultPlan":
        """The sub-plan firing in ``[start_ms, end_ms)``, re-zeroed.

        Used by the sharded driver: shard *k* replays exactly the
        faults of its time window, shifted into shard-local time. An
        event is assigned to the window containing its *fire* time; a
        slowdown/blackout whose duration straddles the boundary is
        healed by the shard's fresh cluster rather than carried over
        (see ``repro.sim.sharded`` for the fidelity conditions).
        """
        if end_ms < start_ms:
            raise ConfigurationError("window end before start")
        return FaultPlan(events=[
            replace(event, time_ms=event.time_ms - start_ms)
            for event in self.events
            if start_ms <= event.time_ms < end_ms
        ])

    @classmethod
    def random(
        cls,
        count: int,
        horizon_ms: float,
        seed: int = 0,
        recovery_ms: float | None = 5 * SECOND,
    ) -> "FaultPlan":
        """Uniformly random crash times over (10 % .. 90 %) of the run."""
        if count < 0 or horizon_ms <= 0:
            raise ConfigurationError("invalid failure plan dimensions")
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0.1 * horizon_ms, 0.9 * horizon_ms,
                                    size=count))
        return cls(events=[
            FailureEvent(time_ms=float(t), victim_rank=0,
                         recovery_ms=recovery_ms)
            for t in times
        ])

    @classmethod
    def chaos(
        cls,
        horizon_ms: float,
        *,
        crashes: int = 2,
        slowdowns: int = 2,
        blackouts: int = 0,
        solver_faults: int = 1,
        seed: int = 0,
        recovery_ms: float | None = 5 * SECOND,
        slowdown_factor: float = 2.5,
        slowdown_ms: float = 8 * SECOND,
        blackout_ms: float = 3 * SECOND,
    ) -> "FaultPlan":
        """A mixed-grade plan spread over (10 % .. 90 %) of the run."""
        if horizon_ms <= 0:
            raise ConfigurationError("invalid fault plan horizon")
        if min(crashes, slowdowns, blackouts, solver_faults) < 0:
            raise ConfigurationError("fault counts cannot be negative")
        rng = np.random.default_rng(seed)

        def times(n: int) -> list[float]:
            return sorted(
                float(t)
                for t in rng.uniform(0.1 * horizon_ms, 0.9 * horizon_ms,
                                     size=n)
            )

        events: list[FaultEvent] = []
        events += [FailureEvent(time_ms=t, recovery_ms=recovery_ms)
                   for t in times(crashes)]
        events += [
            SlowdownEvent(time_ms=t, factor=slowdown_factor,
                          duration_ms=slowdown_ms)
            for t in times(slowdowns)
        ]
        events += [BlackoutEvent(time_ms=t, duration_ms=blackout_ms)
                   for t in times(blackouts)]
        events += [SolverFaultEvent(time_ms=t) for t in times(solver_faults)]
        return cls(events=events)


#: Backwards-compatible alias — earlier versions only modelled crashes.
FailurePlan = FaultPlan
