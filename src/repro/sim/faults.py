"""Failure injection: abrupt instance crashes during serving.

The paper motivates the Request Scheduler partly by "idiosyncratic
factors such as failures and bugs [that] lead to imbalanced load even
across instances of the same runtime" (§1). This module injects such
events into the simulator: at a scheduled time an instance dies
abruptly — its queued and in-flight requests are lost and must be
re-dispatched, and its GPU comes back with a fresh instance of the
same runtime after a recovery delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECOND


@dataclass(frozen=True)
class FailureEvent:
    """Kill the ``victim_rank``-th busiest instance at ``time_ms``."""

    time_ms: float
    #: 0 = busiest instance, 1 = second busiest, ... (rank at fire time).
    victim_rank: int = 0
    #: GPU comes back with the same runtime after this long; None = gone.
    recovery_ms: float | None = 5 * SECOND

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ConfigurationError("failure time cannot be negative")
        if self.victim_rank < 0:
            raise ConfigurationError("victim_rank cannot be negative")
        if self.recovery_ms is not None and self.recovery_ms <= 0:
            raise ConfigurationError("recovery must be positive (or None)")


@dataclass
class FailurePlan:
    """A schedule of failures to inject into one simulation."""

    events: list[FailureEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def sorted_events(self) -> list[FailureEvent]:
        return sorted(self.events, key=lambda e: e.time_ms)

    @classmethod
    def random(
        cls,
        count: int,
        horizon_ms: float,
        seed: int = 0,
        recovery_ms: float | None = 5 * SECOND,
    ) -> "FailurePlan":
        """Uniformly random failure times over (10 % .. 90 %) of the run."""
        if count < 0 or horizon_ms <= 0:
            raise ConfigurationError("invalid failure plan dimensions")
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0.1 * horizon_ms, 0.9 * horizon_ms,
                                    size=count))
        return cls(events=[
            FailureEvent(time_ms=float(t), victim_rank=0,
                         recovery_ms=recovery_ms)
            for t in times
        ])
