"""The simulator's main loop: trace in, latency population out.

Arrivals are streamed straight off the trace arrays (they never pass
through the event heap), so memory stays flat even for multi-million-
request traces and the per-arrival cost is a list index plus a float
compare. Completions, periodic rescheduling, replacement execution,
auto-scaling checks and fault injection interleave on the same
deterministic event queue; same-timestamp events of one kind are
drained in a single batch pop (see :meth:`EventQueue.pop_batch`).

The arrival bypass preserves the exact event order of the classic
heap-per-arrival design: ARRIVAL is the highest-valued event kind, so
an arrival at time *t* always sorted *after* every other event at *t*
— which is precisely the strict ``arrival_time < heap_time`` test the
bypass uses (ties go to the heap).

Resilience: lost work (crashes, blackouts) is re-dispatched through a
:class:`~repro.resilience.retry.RetryPolicy` (exponential backoff with
jitter, bounded by a run-wide budget) instead of thundering back onto
the survivors instantly. With a :class:`ResilienceConfig` set, a
:class:`~repro.resilience.manager.ResilienceManager` watches every
completion's service-time inflation, quarantines degraded instances out
of the multi-level queue behind a circuit breaker, and probes them back
in — the counters land in ``SimulationResult.control_stats``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter

import numpy as np

from collections import deque

from repro.baselines.dispatchers import ArloDispatcher, _MlqDispatcher
from repro.baselines.schemes import Scheme
from repro.cluster.autoscaler import (
    AutoscalerConfig,
    HeadroomAutoscaler,
    HeadroomConfig,
    TargetTrackingAutoscaler,
)
from repro.cluster.instance import InstanceStatus, RuntimeInstance
from repro.errors import (
    CapacityError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
)
from repro.obs.spans import ObservabilityConfig, RequestSpan, RequestTracer
from repro.obs.timeline import ControlTimeline
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.resilience.retry import RetryBudget, RetryPolicy
from repro.sim.controller import ControlPlane
from repro.sim.engine import EventQueue
from repro.sim.events import (
    COMPLETION_POOL,
    BlackoutEndPayload,
    ColumnarCompletionStore,
    CompletionRecord,
    EventKind,
    ProbePayload,
    RecoveryPayload,
    RetryPayload,
    SlowdownEndPayload,
    release_completion,
)
from repro.sim.faults import (
    BlackoutEvent,
    FailureEvent,
    FaultPlan,
    SlowdownEvent,
    SolverFaultEvent,
)
from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.units import SECOND
from repro.workload.trace import Trace


@dataclass(frozen=True)
class SimulationConfig:
    """Simulator knobs."""

    #: Enable auto-scaling (Fig. 8 experiments). Pass an
    #: :class:`AutoscalerConfig` for the §4 target-tracking policy or a
    #: :class:`HeadroomConfig` for the INFaaS-style load-headroom one.
    enable_autoscaler: bool = False
    autoscaler: AutoscalerConfig | HeadroomConfig | None = None
    autoscale_check_ms: float = 1 * SECOND
    #: Safety cap on processed events (0 disables the cap).
    max_events: int = 0
    #: Drop requests arriving before this time from the statistics
    #: (lets the first scheduling period converge).
    warmup_ms: float = 0.0
    #: Faults to inject — crashes, slowdowns, blackouts, solver faults
    #: (None = fault-free run).
    failures: FaultPlan | None = None
    #: Backoff policy for re-dispatching lost/timed-out work. None
    #: restores the legacy behaviour (instant re-dispatch at the fault
    #: timestamp).
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    #: Health monitoring + circuit breakers (None = disabled).
    resilience: ResilienceConfig | None = None
    #: Record the first N dispatch decisions (Arlo-family schemes only;
    #: 0 disables). Each entry: time, length, ideal/chosen level,
    #: demoted, fell_back, chosen instance's queue depth.
    trace_decisions: int = 0
    #: Observability: per-request span sampling and the control-plane
    #: timeline (None = fully disabled, the zero-overhead default).
    observability: ObservabilityConfig | None = None
    #: Completion payload representation: ``"pooled"`` (free-listed
    #: ``__slots__`` records, the default) or ``"columnar"``
    #: (struct-of-arrays slots — roughly half the per-event memory at
    #: parity throughput). Results are bit-identical either way.
    data_plane: str = "pooled"
    #: Generative (prefill + decode) data plane. None (the default)
    #: keeps the discriminative single-interval model bit-exactly;
    #: a :class:`~repro.sim.generative.GenerativeConfig` routes the run
    #: through the decode event loop with continuous batching (the
    #: trace must then be a GenerativeTrace). String annotation + lazy
    #: import keep the discriminative import graph unchanged.
    generative: "object | None" = None
    #: Vectorised Algorithm 1 over same-timestamp arrival runs
    #: (Arlo-family schemes). Decision-equivalent to the scalar walk —
    #: it only engages when a slack certificate proves every request
    #: admits at its ideal level — and automatically stands down under
    #: tracing, decision logging, or resilience gating, where the
    #: scalar/traced paths keep their bit-exact behaviour. Set False to
    #: force the scalar walk for every request (A/B tests).
    batch_dispatch: bool = True

    def __post_init__(self) -> None:
        if self.autoscale_check_ms <= 0:
            raise ConfigurationError("autoscale check period must be positive")
        if self.warmup_ms < 0:
            raise ConfigurationError("warmup cannot be negative")
        if self.trace_decisions < 0:
            raise ConfigurationError("trace_decisions cannot be negative")
        if self.enable_autoscaler and self.autoscaler is None:
            raise ConfigurationError(
                "enable_autoscaler requires an AutoscalerConfig"
            )
        if self.data_plane not in ("pooled", "columnar"):
            raise ConfigurationError(
                f"unknown data plane {self.data_plane!r} "
                "(expected 'pooled' or 'columnar')"
            )


@dataclass
class SimulationResult:
    """Everything a benchmark needs to print a paper row."""

    scheme_name: str
    stats: LatencyStats
    metrics: MetricsCollector
    end_ms: float
    events_processed: int
    time_weighted_gpus: float
    dispatch_stats: dict[str, float] = field(default_factory=dict)
    control_stats: dict[str, int] = field(default_factory=dict)
    #: First N dispatch decisions when SimulationConfig.trace_decisions
    #: is set (Arlo-family schemes).
    decision_log: list[dict] = field(default_factory=list)
    #: Finished request spans (only when observability sampling is on).
    spans: list[RequestSpan] = field(default_factory=list)
    #: Control-plane timeline (only when observability is on).
    timeline: ControlTimeline | None = None
    #: Wall-clock seconds spent inside :func:`run_simulation` (the
    #: sharded drivers aggregate these into throughput figures).
    wall_s: float = 0.0

    @property
    def mean_ms(self) -> float:
        return self.stats.mean_ms

    @property
    def p98_ms(self) -> float:
        return self.stats.p98_ms

    def latencies(self) -> np.ndarray:
        return self.metrics.latencies()


def run_simulation(
    scheme: Scheme,
    trace: Trace,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Serve ``trace`` with ``scheme`` and collect latency statistics."""
    wall_start = perf_counter()
    if not len(trace):
        raise SimulationError("cannot simulate an empty trace")
    config = config or SimulationConfig()
    if config.generative is not None:
        if getattr(config.generative, "disagg", None) is not None:
            from repro.sim.disagg import run_disagg_simulation

            return run_disagg_simulation(scheme, trace, config)
        from repro.sim.generative import run_generative_simulation

        return run_generative_simulation(scheme, trace, config)

    queue = EventQueue()
    metrics = MetricsCollector(slo_ms=scheme.slo_ms)
    autoscaler = None
    if config.enable_autoscaler:
        if isinstance(config.autoscaler, HeadroomConfig):
            autoscaler = HeadroomAutoscaler(config.autoscaler)
        else:
            autoscaler = TargetTrackingAutoscaler(config.autoscaler)
    obs = config.observability
    tracer: RequestTracer | None = None
    timeline: ControlTimeline | None = None
    if obs is not None:
        if obs.sample_rate > 0:
            tracer = RequestTracer(obs.sample_rate, obs.max_spans)
        if obs.timeline:
            timeline = ControlTimeline()
    control = ControlPlane(
        scheme=scheme, queue=queue, autoscaler=autoscaler, timeline=timeline
    )

    manager: ResilienceManager | None = None
    if config.resilience is not None:
        manager = ResilienceManager(
            config=config.resilience, mlq=scheme.mlq, timeline=timeline
        )
        if isinstance(scheme.dispatcher, ArloDispatcher):
            scheme.dispatcher.scheduler.gate = manager.allow_dispatch

    retry_policy = config.retry
    retry_rng = retry_policy.rng() if retry_policy is not None else None
    retry_budget = (
        RetryBudget(retry_policy.budget_for(len(trace)))
        if retry_policy is not None
        else None
    )

    arrivals_np = trace.arrival_ms
    lengths_np = trace.length
    # Plain Python lists: the arrival loop indexes them once per request
    # and list-of-float indexing avoids a numpy scalar box per access.
    arrivals_ms = arrivals_np.tolist()
    lengths = lengths_np.tolist()
    n_requests = len(trace)
    #: Arrivals processed so far == index of the next pending arrival.
    next_arrival = 0
    #: Arrivals already flushed into the demand estimator.
    observed_upto = 0
    #: (request_id, arrival, length, retries already consumed)
    deferred: list[tuple[int, float, int, int]] = []
    outstanding = 0
    completed = 0
    last_gpu_count = scheme.cluster.num_gpus
    metrics.sample_gpus(0.0, last_gpu_count)
    #: FIFO of (request_id, arrival, length, attempt) per instance —
    #: consulted when an instance crashes or blacks out and its work
    #: must be re-dispatched.
    inflight: dict[int, deque] = {}
    #: request_id -> attempt token of its live dispatch. Completions
    #: carrying any other token are stale (the work was re-dispatched).
    live_attempt: dict[int, int] = {}
    next_token = 0
    failures_injected = 0
    requests_lost = 0
    slowdowns_injected = 0
    blackouts_injected = 0
    solver_faults_injected = 0
    timeouts = 0
    retries_scheduled = 0
    pending_retries = 0
    quarantine_violations = 0

    dispatcher = scheme.dispatcher
    estimator = scheme.demand_estimator
    runtime_scheduler = scheme.runtime_scheduler
    trace_decisions = config.trace_decisions
    warmup_ms = config.warmup_ms
    max_events = config.max_events
    on_complete = dispatcher.on_complete
    # Attempt tokens and per-instance FIFOs exist to void and replay
    # in-flight work when an instance crashes or blacks out. Without a
    # fault plan no dispatch is ever voided, so the whole bookkeeping
    # layer (two dict writes + a deque append per request) is skipped.
    track_attempts = config.failures is not None
    # The tracing path goes through `dispatch` so `last_decision` is
    # populated; the default path takes the allocation-free fast lane
    # (bound past the adapter when the scheme is Arlo-family).
    if trace_decisions:
        dispatch = dispatcher.dispatch
    elif isinstance(dispatcher, ArloDispatcher):
        dispatch = dispatcher.scheduler.dispatch_fast
    else:
        dispatch = dispatcher.dispatch_fast
    # Sampled requests take the narrated Algorithm-1 walk when the
    # scheme exposes one (Arlo family); baseline dispatchers keep their
    # normal path and the span records only the dispatch itself.
    traced_dispatch = (
        dispatcher.scheduler.dispatch_traced
        if tracer is not None
        and not trace_decisions
        and isinstance(dispatcher, ArloDispatcher)
        else None
    )
    # Batch dispatch only engages where it is provably equivalent to
    # the scalar walk: no decision logging, no tracing (sampled spans
    # must narrate the real per-request probes), no resilience manager
    # (its gate and quarantine accounting are per-request), and no
    # fault plan (victim ranking reads per-instance depths, which the
    # batch's block pairing would perturb). The certificate inside
    # `dispatch_batch` guards everything else; on any doubt it returns
    # None and the scalar loop below handles the run one request at a
    # time.
    dispatch_batch = (
        dispatcher.scheduler.dispatch_batch
        if config.batch_dispatch
        and not trace_decisions
        and tracer is None
        and manager is None
        and config.failures is None
        and isinstance(dispatcher, ArloDispatcher)
        else None
    )
    # Only same-timestamp arrival runs may be batched (a mid-run heap
    # event could otherwise interleave); runs shorter than this are not
    # worth the numpy fixed costs. The gate below costs one extra list
    # compare per arrival in the sparse (Poisson) case.
    _MIN_BATCH = 8
    columnar = config.data_plane == "columnar"
    col_store = ColumnarCompletionStore() if columnar else None
    if columnar:
        col_acquire = col_store.acquire
        col_request_id = col_store.request_id
        col_instance = col_store.instance
        col_arrival = col_store.arrival_ms
        col_length = col_store.length
        col_runtime = col_store.runtime_index
        col_token = col_store.attempt_token
        col_service = col_store.service_ms
        col_free = col_store._free

    def flush_observations() -> None:
        """Feed every arrival processed so far into the demand estimator.

        Arrivals are observed lazily in vectorised batches instead of
        one scalar `observe` per event. Equivalent to eager observation
        because (a) histogram eviction is monotone in time, and (b) the
        estimator is only *read* by the runtime scheduler, which calls
        this first.
        """
        nonlocal observed_upto
        if estimator is not None and observed_upto < next_arrival:
            estimator.observe_batch(
                arrivals_np[observed_upto:next_arrival],
                lengths_np[observed_upto:next_arrival],
            )
            observed_upto = next_arrival

    def work_remaining() -> bool:
        # `next_arrival + 1 < n` mirrors the classic heap-per-arrival
        # loop, where the next pending arrival already sat in the heap
        # and did not count as remaining work.
        return (
            next_arrival + 1 < n_requests
            or outstanding > 0
            or bool(deferred)
            or pending_retries > 0
            or control.has_pending_work
        )

    decision_log: list[dict] = []

    def admit(
        now_ms: float,
        request_id: int,
        arrival_ms: float,
        length: int,
        attempt: int = 0,
    ) -> bool:
        nonlocal outstanding, next_token, quarantine_violations
        span = (
            tracer.begin(now_ms, request_id, arrival_ms, length, attempt)
            if tracer is not None
            else None
        )
        if span is not None and traced_dispatch is not None:
            probes: list[tuple[int, float, float, str]] = []
            try:
                decision, start, finish = traced_dispatch(
                    now_ms, length, probes
                )
            except CapacityError:
                tracer.on_probes(span, now_ms, probes)
                tracer.on_defer(span, now_ms)
                return False
            instance = decision.instance
            tracer.on_probes(span, now_ms, probes)
            tracer.on_dispatch(
                span, now_ms, level=decision.level,
                ideal_level=decision.ideal_level,
                instance=f"i{instance.instance_id}",
                fallback=decision.fell_back,
            )
        else:
            try:
                instance, start, finish = dispatch(now_ms, length)
            except CapacityError:
                if span is not None:
                    tracer.on_defer(span, now_ms)
                return False
            if span is not None:
                tracer.on_dispatch(
                    span, now_ms, level=instance.runtime_index,
                    ideal_level=-1, instance=f"i{instance.instance_id}",
                )
        if trace_decisions and len(decision_log) < trace_decisions:
            decision = getattr(dispatcher, "last_decision", None)
            if decision is not None:
                decision_log.append({
                    "time_ms": now_ms,
                    "request_id": request_id,
                    "length": length,
                    "ideal_level": decision.ideal_level,
                    "chosen_level": decision.level,
                    "demoted": decision.demoted,
                    "fell_back": decision.fell_back,
                    "queue_depth": instance.outstanding - 1,
                })
        if manager is not None and manager.is_quarantined(instance.instance_id):
            quarantine_violations += 1
        outstanding += 1
        if track_attempts:
            token = next_token
            next_token = token + 1
            live_attempt[request_id] = token
            fifo = inflight.get(instance.instance_id)
            if fifo is None:
                fifo = inflight[instance.instance_id] = deque()
            fifo.append((request_id, arrival_ms, length, attempt))
        else:
            token = 0
        # Inlined queue.push: `finish` is a float strictly after `now`
        # (service times are positive), so the monotonicity validation
        # is statically satisfied.
        seq = queue._seq
        queue._seq = seq + 1
        if columnar:
            rec = col_acquire(
                request_id, instance, arrival_ms, length,
                instance.runtime_index, token, finish - start,
            )
        else:
            rec = (
                COMPLETION_POOL.pop() if COMPLETION_POOL
                else CompletionRecord()
            )
            rec.request_id = request_id
            rec.instance = instance
            rec.arrival_ms = arrival_ms
            rec.length = length
            rec.runtime_index = instance.runtime_index
            rec.attempt_token = token
            rec.service_ms = finish - start
        heappush(heap, (finish, COMPLETION, seq, rec))
        return True

    def reinject(
        now_ms: float, request_id: int, arrival_ms: float, length: int,
        attempt: int,
    ) -> None:
        """Re-dispatch lost work: backoff retry while the budget lasts,
        plain re-admission (the legacy path) afterwards."""
        nonlocal retries_scheduled, pending_retries
        if (
            retry_policy is not None
            and attempt < retry_policy.max_attempts
            and retry_budget.try_consume()
        ):
            delay = retry_policy.delay_ms(attempt, retry_rng)
            queue.push(
                now_ms + delay,
                EventKind.INSTANCE_FAILURE,
                RetryPayload(request_id, arrival_ms, length, attempt + 1),
            )
            retries_scheduled += 1
            pending_retries += 1
            if tracer is not None:
                span = tracer.active.get(request_id)
                if span is not None:
                    tracer.on_retry(span, now_ms, attempt + 1, delay)
        elif not admit(now_ms, request_id, arrival_ms, length, attempt):
            deferred.append((request_id, arrival_ms, length, attempt))

    def void_and_reinject(now_ms: float, lost: list) -> None:
        nonlocal outstanding
        outstanding -= len(lost)
        for request_id, arrival, length, attempt in lost:
            live_attempt.pop(request_id, None)
            reinject(now_ms, request_id, arrival, length, attempt)

    def flush_deferred(now_ms: float) -> None:
        if not deferred:
            return
        still: list[tuple[int, float, int, int]] = []
        for request_id, arrival, length, attempt in deferred:
            if not admit(now_ms, request_id, arrival, length, attempt):
                still.append((request_id, arrival, length, attempt))
        deferred[:] = still

    def sample_gpus(now_ms: float) -> None:
        nonlocal last_gpu_count
        count = scheme.cluster.num_gpus
        if count != last_gpu_count:
            metrics.sample_gpus(now_ms, count)
            last_gpu_count = count

    def pick_victim(rank: int) -> RuntimeInstance | None:
        """The ``rank``-th busiest active instance at fire time.

        ``heapq.nsmallest(k+1, ...)[-1]`` equals ``sorted(...)[k]`` for
        the same key — a partial selection in O(n log k) instead of a
        full O(n log n) sort on every injected fault event.
        """
        active = scheme.cluster.active_instances()
        if not active:
            return None
        k = min(rank, len(active) - 1)
        top = heapq.nsmallest(
            k + 1, active, key=lambda i: (-i.outstanding, i.instance_id)
        )
        return top[-1]

    def schedule_probe(probe_at_ms: float | None, instance_id: int) -> None:
        if probe_at_ms is not None:
            queue.push(probe_at_ms, EventKind.INSTANCE_FAILURE,
                       ProbePayload(instance_id))

    if runtime_scheduler is not None:
        queue.push(runtime_scheduler.config.period_ms, EventKind.RESCHEDULE)
    if autoscaler is not None:
        queue.push(config.autoscale_check_ms, EventKind.AUTOSCALE_CHECK)
    if config.failures is not None:
        for fault in config.failures.sorted_events():
            queue.push(fault.time_ms, EventKind.INSTANCE_FAILURE, fault)

    heap = queue._heap
    # MetricsCollector.record, inlined into the completion handler: two
    # list appends per served request (the negative-latency validation
    # is statically satisfied — completions never precede arrivals).
    # `_flush_chunk` rebinds the buffers, so they are re-fetched after
    # every flush.
    lat_buf = metrics._current
    rt_buf = metrics._current_runtime
    CHUNK = metrics._CHUNK
    INF = float("inf")
    COMPLETION = EventKind.COMPLETION
    RESCHEDULE = EventKind.RESCHEDULE
    REPLACEMENT_READY = EventKind.REPLACEMENT_READY
    AUTOSCALE_CHECK = EventKind.AUTOSCALE_CHECK
    SCALE_OUT_READY = EventKind.SCALE_OUT_READY
    INSTANCE_FAILURE = EventKind.INSTANCE_FAILURE
    # Every built-in dispatcher's `on_complete` is exactly an MLQ
    # refresh, so the completion loop re-keys the instance's own level
    # heap directly (no adapter call, no level lookup). A dispatcher
    # overriding `on_complete` keeps the virtual call.
    fast_on_complete = type(dispatcher).on_complete in (
        _MlqDispatcher.on_complete,
        ArloDispatcher.on_complete,
    )

    popped = queue._popped  # local mirror, written back after the loop
    while True:
        if max_events and popped + next_arrival >= max_events:
            raise SimulationError(
                f"event cap {max_events} hit with work remaining"
            )
        heap_time = heap[0][0] if heap else INF

        # ---- arrival bypass (the strict `<` gives same-time heap
        # events priority, matching ARRIVAL's maximal kind value) ----
        if next_arrival < n_requests and arrivals_ms[next_arrival] < heap_time:
            now = arrivals_ms[next_arrival]
            # ---- batch fast path: a same-timestamp arrival run.
            # Every arrival in the run shares `now < heap_time`, so
            # the whole run may bypass the heap; same-(time, kind)
            # grouping is what makes batching order-equivalent (any
            # event an admit schedules lands strictly later).
            if (
                dispatch_batch is not None
                and next_arrival + _MIN_BATCH <= n_requests
                and arrivals_ms[next_arrival + _MIN_BATCH - 1] == now
            ):
                run_end = next_arrival + _MIN_BATCH
                while run_end < n_requests and arrivals_ms[run_end] == now:
                    run_end += 1
                base_id = next_arrival
                next_arrival = run_end
                queue._now = now
                triples = dispatch_batch(now, lengths[base_id:run_end])
                scalar_from = base_id
                if triples is not None:
                    # Admit-lite over the certified prefix: success is
                    # guaranteed, so only the completion scheduling
                    # remains. Per instance the requests are chained
                    # in ascending request-id order, so each inflight
                    # FIFO matches its completion order exactly as in
                    # scalar mode.
                    scalar_from = base_id + len(triples)
                    seq = queue._seq
                    rid = base_id
                    for instance, start, finish in triples:
                        if track_attempts:
                            token = next_token
                            next_token = token + 1
                            live_attempt[rid] = token
                            fifo = inflight.get(instance.instance_id)
                            if fifo is None:
                                fifo = inflight[instance.instance_id] = (
                                    deque()
                                )
                            fifo.append((rid, now, lengths[rid], 0))
                        else:
                            token = 0
                        if columnar:
                            rec = col_acquire(
                                rid, instance, now, lengths[rid],
                                instance.runtime_index, token,
                                finish - start,
                            )
                        else:
                            rec = (
                                COMPLETION_POOL.pop() if COMPLETION_POOL
                                else CompletionRecord()
                            )
                            rec.request_id = rid
                            rec.instance = instance
                            rec.arrival_ms = now
                            rec.length = lengths[rid]
                            rec.runtime_index = instance.runtime_index
                            rec.attempt_token = token
                            rec.service_ms = finish - start
                        heappush(heap, (finish, COMPLETION, seq, rec))
                        seq += 1
                        rid += 1
                    queue._seq = seq
                # Replay the uncertified tail (all of it when the
                # certificate yielded nothing) through the scalar
                # walk, in place — no rescan needed, since admits
                # only push strictly-future events and the whole run
                # shares this timestamp.
                for rid in range(scalar_from, run_end):
                    length = lengths[rid]
                    if not admit(now, rid, now, length):
                        deferred.append((rid, now, length, 0))
                        metrics.deferred_requests += 1
                continue
            request_id = next_arrival
            length = lengths[next_arrival]
            next_arrival = request_id + 1
            queue._now = now
            if not admit(now, request_id, now, length):
                deferred.append((request_id, now, length, 0))
                metrics.deferred_requests += 1
            continue
        if not heap:
            break

        entry = heappop(heap)
        now = entry[0]
        kind = entry[1]
        queue._now = now
        popped += 1

        if kind is COMPLETION:
            # Drain every same-timestamp completion in one heap visit
            # (the batch-pop discipline, inlined). The payload is a
            # pooled record or a columnar slot; either way its fields
            # are unpacked into locals once so the body is shared.
            rec = entry[3]
            while True:
                if columnar:
                    slot = rec
                    r_request_id = col_request_id[slot]
                    r_instance = col_instance[slot]
                    r_arrival = col_arrival[slot]
                    r_length = col_length[slot]
                    r_runtime = col_runtime[slot]
                    r_token = col_token[slot]
                    r_service = col_service[slot]
                else:
                    r_request_id = rec.request_id
                    r_instance = rec.instance
                    r_arrival = rec.arrival_ms
                    r_length = rec.length
                    r_runtime = rec.runtime_index
                    r_token = rec.attempt_token
                    r_service = rec.service_ms
                if track_attempts and (
                    live_attempt.get(r_request_id) != r_token
                ):
                    # stale: work was re-dispatched
                    if columnar:
                        col_instance[slot] = None
                        col_free.append(slot)
                    else:
                        release_completion(rec)
                else:
                    instance = r_instance
                    if track_attempts:
                        served = inflight[instance.instance_id].popleft()
                        if served[0] != r_request_id:  # pragma: no cover - FIFO invariant
                            raise SimulationError(
                                "completion order diverged from FIFO"
                            )
                        del live_attempt[r_request_id]
                    # --- RuntimeInstance.complete, inlined (the call
                    # runs once per served request) ---
                    out = instance.outstanding - 1
                    if out < 0:
                        raise SchedulingError(
                            f"instance {instance.instance_id} completed "
                            f"with empty queue"
                        )
                    instance.outstanding = out
                    instance.served += 1
                    instance._epoch += 1
                    tracker = instance.tracker
                    if tracker is not None:
                        tracker.on_complete(instance)
                    if fast_on_complete:
                        # --- InstanceHeap.refresh, inlined (re-keys
                        # the instance's own level heap; no-op when it
                        # left the MLQ) ---
                        level_heap = instance._level_heap
                        if level_heap is not None:
                            last = level_heap._last_outstanding
                            key = instance.instance_id
                            if key in last:
                                level_heap.outstanding_total += out - last[key]
                                last[key] = out
                                heappush(
                                    level_heap._heap,
                                    (out, next(level_heap._counter),
                                     instance._epoch, instance),
                                )
                    else:
                        on_complete(instance)
                    outstanding -= 1
                    completed += 1
                    latency = now - r_arrival
                    if r_arrival >= warmup_ms:
                        lat_buf.append(latency)
                        rt_buf.append(r_runtime)
                        if len(lat_buf) == CHUNK:
                            metrics._flush_chunk()
                            lat_buf = metrics._current
                            rt_buf = metrics._current_runtime
                    if tracer is not None:
                        tracer.on_complete(r_request_id, now, r_service)
                    if autoscaler is not None:
                        autoscaler.observe(latency)
                    if manager is not None:
                        # instance._service_table[L] == nominal service
                        # + overhead, the exact sum the profiler uses.
                        nominal = instance._service_table[r_length]
                        ratio = (
                            r_service / nominal if nominal > 0 else 1.0
                        )
                        schedule_probe(
                            manager.on_service_sample(now, instance, ratio),
                            instance.instance_id,
                        )
                    if control._pending:
                        control.on_completion(now, instance)
                    # inlined release (pool push-back vs slot recycle)
                    if columnar:
                        col_instance[slot] = None
                        col_free.append(slot)
                    else:
                        rec.instance = None
                        COMPLETION_POOL.append(rec)
                    if deferred:
                        flush_deferred(now)
                if heap and heap[0][0] == now and heap[0][1] is COMPLETION:
                    rec = heappop(heap)[3]
                    popped += 1
                else:
                    break

        elif kind is RESCHEDULE:
            if runtime_scheduler is not None and work_remaining():
                flush_observations()
                _result, plan = runtime_scheduler.step(now, scheme.cluster)
                if timeline is not None:
                    solve_detail = {}
                    if _result.solver == "anytime" or "rung" in _result.stats:
                        solve_detail = {
                            "rung": _result.stats.get("rung"),
                            "deadline_ms": _result.stats.get("deadline_ms"),
                            "deadline_hit": _result.stats.get("deadline_hit"),
                        }
                    timeline.record(
                        now, "allocation", "solve",
                        provenance=runtime_scheduler.provenance_of(_result),
                        solver=_result.solver,
                        objective=_result.objective,
                        solve_ms=_result.solve_time_s * 1000.0,
                        plan_steps=len(plan),
                        **solve_detail,
                    )
                    presolve = runtime_scheduler.last_presolve
                    if presolve is not None:
                        timeline.record(
                            now, "allocation", "presolve",
                            provenance="forecast",
                            outcome=presolve.get("outcome"),
                            rung=presolve.get("rung"),
                            solve_ms=presolve.get("elapsed_ms"),
                        )
                control.start_plan(now, plan)
                metrics.sample_allocation(now, scheme.cluster.allocation())
                queue.push(
                    now + runtime_scheduler.config.period_ms,
                    EventKind.RESCHEDULE,
                )

        elif kind is REPLACEMENT_READY:
            control.on_replacement_event(now, entry[3])
            sample_gpus(now)
            flush_deferred(now)

        elif kind is AUTOSCALE_CHECK:
            if autoscaler is not None and work_remaining():
                control.autoscale_check(now)
                queue.push(now + config.autoscale_check_ms,
                           EventKind.AUTOSCALE_CHECK)

        elif kind is SCALE_OUT_READY:
            control.on_scale_out_ready(now, entry[3])
            sample_gpus(now)
            flush_deferred(now)

        elif kind is INSTANCE_FAILURE:
            payload = entry[3]

            if isinstance(payload, RecoveryPayload):
                gpu = scheme.cluster.gpus[payload.gpu_id]
                recovered = scheme.cluster.deploy(payload.runtime_index, gpu)
                scheme.mlq.add(recovered)
                if timeline is not None:
                    timeline.record(
                        now, "fault", "recovery",
                        instance=recovered.instance_id,
                        runtime_index=payload.runtime_index,
                    )
                flush_deferred(now)

            elif isinstance(payload, RetryPayload):
                pending_retries -= 1
                if not admit(now, payload.request_id, payload.arrival_ms,
                             payload.length, payload.attempt):
                    deferred.append((payload.request_id, payload.arrival_ms,
                                     payload.length, payload.attempt))

            elif isinstance(payload, ProbePayload):
                if manager is not None:
                    inst = scheme.cluster.instances.get(payload.instance_id)
                    if inst is None:
                        manager.on_instance_gone(payload.instance_id)
                    elif manager.on_probe_window(now, inst):
                        flush_deferred(now)

            elif isinstance(payload, SlowdownEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is not None:
                    victim.slow_factor = payload.factor
                    slowdowns_injected += 1
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "slowdown",
                            instance=victim.instance_id,
                            factor=payload.factor,
                        )
                    if payload.duration_ms is not None:
                        queue.push(
                            now + payload.duration_ms,
                            EventKind.INSTANCE_FAILURE,
                            SlowdownEndPayload(victim.instance_id),
                        )

            elif isinstance(payload, SlowdownEndPayload):
                inst = scheme.cluster.instances.get(payload.instance_id)
                if inst is not None:
                    inst.slow_factor = 1.0

            elif isinstance(payload, BlackoutEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is not None:
                    lost_requests = list(
                        inflight.pop(victim.instance_id, ())
                    )
                    if scheme.mlq.contains(victim):
                        scheme.mlq.remove(victim)
                    victim.suspend()
                    blackouts_injected += 1
                    timeouts += len(lost_requests)
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "blackout",
                            instance=victim.instance_id,
                            duration_ms=payload.duration_ms,
                            voided=len(lost_requests),
                        )
                    void_and_reinject(now, lost_requests)
                    if manager is not None and lost_requests:
                        schedule_probe(
                            manager.on_timeouts(now, victim,
                                                len(lost_requests)),
                            victim.instance_id,
                        )
                    queue.push(
                        now + payload.duration_ms,
                        EventKind.INSTANCE_FAILURE,
                        BlackoutEndPayload(victim.instance_id),
                    )

            elif isinstance(payload, BlackoutEndPayload):
                inst = scheme.cluster.instances.get(payload.instance_id)
                if inst is not None and inst.status is InstanceStatus.SUSPENDED:
                    inst.resume()
                    if manager is not None:
                        manager.requeue(inst)
                    elif not scheme.mlq.contains(inst):
                        scheme.mlq.add(inst)
                    flush_deferred(now)

            elif isinstance(payload, SolverFaultEvent):
                if runtime_scheduler is not None:
                    runtime_scheduler.inject_solver_failures(payload.count)
                    solver_faults_injected += payload.count
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "solver_fault",
                            count=payload.count,
                        )

            elif isinstance(payload, FailureEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is None:
                    continue  # nothing left to kill
                lost_requests = list(inflight.pop(victim.instance_id, ()))
                if scheme.mlq.contains(victim):
                    scheme.mlq.remove(victim)
                control.note_failure(victim.instance_id)
                if manager is not None:
                    manager.on_instance_gone(victim.instance_id)
                gpu, lost = scheme.cluster.crash_instance(victim)
                failures_injected += 1
                requests_lost += lost
                if timeline is not None:
                    timeline.record(
                        now, "fault", "crash",
                        instance=victim.instance_id,
                        voided=len(lost_requests),
                        recovery_ms=(
                            payload.recovery_ms
                            if payload.recovery_ms is not None
                            else -1.0
                        ),
                    )
                if payload.recovery_ms is not None:
                    queue.push(
                        now + payload.recovery_ms,
                        EventKind.INSTANCE_FAILURE,
                        RecoveryPayload(gpu_id=gpu.gpu_id,
                                        runtime_index=victim.runtime_index),
                    )
                else:
                    scheme.cluster.release_gpu(gpu.gpu_id, now)
                    sample_gpus(now)
                void_and_reinject(now, lost_requests)

            else:
                raise SimulationError(
                    f"unhandled fault payload {payload!r}"
                )

        else:  # pragma: no cover - the enum is closed
            raise SimulationError(f"unhandled event kind {kind}")

    queue._popped = popped
    flush_observations()
    if completed != n_requests:
        raise SimulationError(
            f"simulation ended with {n_requests - completed} unserved requests"
        )

    end_ms = queue.now_ms
    control_stats = {
        "replacements": control.replacements_executed,
        "scale_outs": control.scale_outs,
        "scale_ins": control.scale_ins,
        "deferred": metrics.deferred_requests,
        "failures": failures_injected,
        "requests_lost": requests_lost,
        "slowdowns": slowdowns_injected,
        "blackouts": blackouts_injected,
        "timeouts": timeouts,
        "retries": retries_scheduled,
        "retry_budget_exhausted": (
            retry_budget.exhausted_events if retry_budget is not None else 0
        ),
        "quarantines": manager.quarantines if manager is not None else 0,
        "breaker_trips": manager.breaker_trips if manager is not None else 0,
        "breaker_recoveries": (
            manager.breaker_recoveries if manager is not None else 0
        ),
        "quarantine_violations": quarantine_violations,
        "solver_faults_injected": solver_faults_injected,
        "solver_fallbacks": (
            runtime_scheduler.solver_fallbacks
            if runtime_scheduler is not None
            else 0
        ),
    }
    if runtime_scheduler is not None and runtime_scheduler.config.solver_ladder:
        # Anytime-ladder counters: plain ints so shard merges stay a sum.
        anytime = runtime_scheduler.anytime_stats()
        control_stats.update({
            "anytime_periods": anytime.get("periods", 0),
            "anytime_exact_hits": anytime.get("boundary_exact_hits", 0),
            "anytime_approx_hits": anytime.get("boundary_approx_hits", 0),
            "anytime_forecast_hits": anytime.get("boundary_forecast_hits", 0),
            "anytime_solves": anytime.get("solves", 0),
            "anytime_deadline_hits": anytime.get("deadline_hits", 0),
            "anytime_deadline_misses": anytime.get("deadline_misses", 0),
            "anytime_presolves": anytime.get("presolves", 0),
            "anytime_presolve_covered": anytime.get("presolve_covered", 0),
            "anytime_presolve_failures": anytime.get("presolve_failures", 0),
        })
    return SimulationResult(
        scheme_name=scheme.name,
        stats=metrics.stats(),
        metrics=metrics,
        end_ms=end_ms,
        # Bypassed arrivals count as processed events so the figure is
        # comparable with the classic heap-per-arrival loop.
        events_processed=queue.events_processed + next_arrival,
        time_weighted_gpus=metrics.time_weighted_gpus(end_ms),
        dispatch_stats=(
            dispatcher.scheduler.stats()
            if hasattr(dispatcher, "scheduler")
            else {}
        ),
        control_stats=control_stats,
        decision_log=decision_log,
        spans=tracer.finished if tracer is not None else [],
        timeline=timeline,
        wall_s=perf_counter() - wall_start,
    )
