"""The simulator's main loop: trace in, latency population out.

Arrivals are streamed from the trace one at a time (the heap never
holds more than one future arrival), so memory stays flat even for
multi-million-request traces. Completions, periodic rescheduling,
replacement execution and auto-scaling checks interleave on the same
deterministic event queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from collections import deque

from repro.baselines.schemes import Scheme
from repro.cluster.autoscaler import (
    AutoscalerConfig,
    HeadroomAutoscaler,
    HeadroomConfig,
    TargetTrackingAutoscaler,
)
from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.sim.controller import ControlPlane
from repro.sim.engine import EventQueue
from repro.sim.events import (
    ArrivalPayload,
    CompletionPayload,
    EventKind,
    RecoveryPayload,
)
from repro.sim.faults import FailureEvent, FailurePlan
from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.units import SECOND
from repro.workload.trace import Trace


@dataclass(frozen=True)
class SimulationConfig:
    """Simulator knobs."""

    #: Enable auto-scaling (Fig. 8 experiments). Pass an
    #: :class:`AutoscalerConfig` for the §4 target-tracking policy or a
    #: :class:`HeadroomConfig` for the INFaaS-style load-headroom one.
    enable_autoscaler: bool = False
    autoscaler: AutoscalerConfig | HeadroomConfig | None = None
    autoscale_check_ms: float = 1 * SECOND
    #: Safety cap on processed events (0 disables the cap).
    max_events: int = 0
    #: Drop requests arriving before this time from the statistics
    #: (lets the first scheduling period converge).
    warmup_ms: float = 0.0
    #: Instance crashes to inject (None = fault-free run).
    failures: FailurePlan | None = None
    #: Record the first N dispatch decisions (Arlo-family schemes only;
    #: 0 disables). Each entry: time, length, ideal/chosen level,
    #: demoted, fell_back, chosen instance's queue depth.
    trace_decisions: int = 0

    def __post_init__(self) -> None:
        if self.autoscale_check_ms <= 0:
            raise ConfigurationError("autoscale check period must be positive")
        if self.warmup_ms < 0:
            raise ConfigurationError("warmup cannot be negative")
        if self.trace_decisions < 0:
            raise ConfigurationError("trace_decisions cannot be negative")
        if self.enable_autoscaler and self.autoscaler is None:
            raise ConfigurationError(
                "enable_autoscaler requires an AutoscalerConfig"
            )


@dataclass
class SimulationResult:
    """Everything a benchmark needs to print a paper row."""

    scheme_name: str
    stats: LatencyStats
    metrics: MetricsCollector
    end_ms: float
    events_processed: int
    time_weighted_gpus: float
    dispatch_stats: dict[str, float] = field(default_factory=dict)
    control_stats: dict[str, int] = field(default_factory=dict)
    #: First N dispatch decisions when SimulationConfig.trace_decisions
    #: is set (Arlo-family schemes).
    decision_log: list[dict] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        return self.stats.mean_ms

    @property
    def p98_ms(self) -> float:
        return self.stats.p98_ms

    def latencies(self) -> np.ndarray:
        return self.metrics.latencies()


def run_simulation(
    scheme: Scheme,
    trace: Trace,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Serve ``trace`` with ``scheme`` and collect latency statistics."""
    if not len(trace):
        raise SimulationError("cannot simulate an empty trace")
    config = config or SimulationConfig()

    queue = EventQueue()
    metrics = MetricsCollector(slo_ms=scheme.slo_ms)
    autoscaler = None
    if config.enable_autoscaler:
        if isinstance(config.autoscaler, HeadroomConfig):
            autoscaler = HeadroomAutoscaler(config.autoscaler)
        else:
            autoscaler = TargetTrackingAutoscaler(config.autoscaler)
    control = ControlPlane(scheme=scheme, queue=queue, autoscaler=autoscaler)

    arrivals_ms = trace.arrival_ms
    lengths = trace.length
    n_requests = len(trace)
    next_arrival = 0
    deferred: list[tuple[int, float, int]] = []  # (request_id, arrival, length)
    outstanding = 0
    completed = 0
    last_gpu_count = scheme.cluster.num_gpus
    metrics.sample_gpus(0.0, last_gpu_count)
    #: FIFO of (request_id, arrival, length) per instance — consulted
    #: when an instance crashes and its work must be re-dispatched.
    inflight: dict[int, deque] = {}
    failed_instances: set[int] = set()
    failures_injected = 0
    requests_lost = 0

    def push_next_arrival() -> None:
        nonlocal next_arrival
        if next_arrival < n_requests:
            queue.push(
                float(arrivals_ms[next_arrival]),
                EventKind.ARRIVAL,
                ArrivalPayload(next_arrival, int(lengths[next_arrival])),
            )
            next_arrival += 1

    def work_remaining() -> bool:
        return (
            next_arrival < n_requests
            or outstanding > 0
            or bool(deferred)
            or control.has_pending_work
        )

    decision_log: list[dict] = []

    def admit(now_ms: float, request_id: int, arrival_ms: float, length: int) -> bool:
        nonlocal outstanding
        try:
            instance, _start, finish = scheme.dispatcher.dispatch(now_ms, length)
        except CapacityError:
            return False
        if len(decision_log) < config.trace_decisions:
            decision = getattr(scheme.dispatcher, "last_decision", None)
            if decision is not None:
                decision_log.append({
                    "time_ms": now_ms,
                    "request_id": request_id,
                    "length": length,
                    "ideal_level": decision.ideal_level,
                    "chosen_level": decision.level,
                    "demoted": decision.demoted,
                    "fell_back": decision.fell_back,
                    "queue_depth": instance.outstanding - 1,
                })
        outstanding += 1
        inflight.setdefault(instance.instance_id, deque()).append(
            (request_id, arrival_ms, length)
        )
        queue.push(
            finish,
            EventKind.COMPLETION,
            CompletionPayload(
                request_id=request_id,
                instance_id=instance.instance_id,
                arrival_ms=arrival_ms,
                length=length,
                runtime_index=instance.runtime_index,
            ),
        )
        return True

    def flush_deferred(now_ms: float) -> None:
        if not deferred:
            return
        still: list[tuple[int, float, int]] = []
        for request_id, arrival, length in deferred:
            if not admit(now_ms, request_id, arrival, length):
                still.append((request_id, arrival, length))
        deferred[:] = still

    def sample_gpus(now_ms: float) -> None:
        nonlocal last_gpu_count
        count = scheme.cluster.num_gpus
        if count != last_gpu_count:
            metrics.sample_gpus(now_ms, count)
            last_gpu_count = count

    push_next_arrival()
    if scheme.runtime_scheduler is not None:
        queue.push(scheme.runtime_scheduler.config.period_ms, EventKind.RESCHEDULE)
    if autoscaler is not None:
        queue.push(config.autoscale_check_ms, EventKind.AUTOSCALE_CHECK)
    if config.failures is not None:
        for failure in config.failures.sorted_events():
            queue.push(failure.time_ms, EventKind.INSTANCE_FAILURE, failure)

    while queue:
        if config.max_events and queue.events_processed >= config.max_events:
            raise SimulationError(
                f"event cap {config.max_events} hit with work remaining"
            )
        event = queue.pop()
        now = event.time_ms

        if event.kind is EventKind.ARRIVAL:
            payload: ArrivalPayload = event.payload
            scheme.observe_arrival(now, payload.length)
            if not admit(now, payload.request_id, now, payload.length):
                deferred.append((payload.request_id, now, payload.length))
                metrics.deferred_requests += 1
            push_next_arrival()

        elif event.kind is EventKind.COMPLETION:
            cp: CompletionPayload = event.payload
            if cp.instance_id in failed_instances:
                continue  # the instance crashed; the request was re-sent
            instance = scheme.cluster.instances.get(cp.instance_id)
            if instance is None:
                raise SimulationError(
                    f"completion for retired instance {cp.instance_id}"
                )
            served = inflight[cp.instance_id].popleft()
            if served[0] != cp.request_id:  # pragma: no cover - FIFO invariant
                raise SimulationError("completion order diverged from FIFO")
            instance.complete()
            scheme.dispatcher.on_complete(instance)
            outstanding -= 1
            completed += 1
            latency = now - cp.arrival_ms
            if cp.arrival_ms >= config.warmup_ms:
                metrics.record(latency, cp.runtime_index)
            if autoscaler is not None:
                autoscaler.observe(latency)
            control.on_completion(now, instance)
            flush_deferred(now)

        elif event.kind is EventKind.RESCHEDULE:
            if scheme.runtime_scheduler is not None and work_remaining():
                _result, plan = scheme.runtime_scheduler.step(now, scheme.cluster)
                control.start_plan(now, plan)
                metrics.sample_allocation(now, scheme.cluster.allocation())
                queue.push(
                    now + scheme.runtime_scheduler.config.period_ms,
                    EventKind.RESCHEDULE,
                )

        elif event.kind is EventKind.REPLACEMENT_READY:
            control.on_replacement_event(now, event.payload)
            sample_gpus(now)
            flush_deferred(now)

        elif event.kind is EventKind.AUTOSCALE_CHECK:
            if autoscaler is not None and work_remaining():
                control.autoscale_check(now)
                queue.push(now + config.autoscale_check_ms,
                           EventKind.AUTOSCALE_CHECK)

        elif event.kind is EventKind.SCALE_OUT_READY:
            control.on_scale_out_ready(now, event.payload)
            sample_gpus(now)
            flush_deferred(now)

        elif event.kind is EventKind.INSTANCE_FAILURE:
            if isinstance(event.payload, RecoveryPayload):
                rp: RecoveryPayload = event.payload
                gpu = scheme.cluster.gpus[rp.gpu_id]
                recovered = scheme.cluster.deploy(rp.runtime_index, gpu)
                scheme.mlq.add(recovered)
                flush_deferred(now)
                continue
            failure: FailureEvent = event.payload
            active = sorted(
                scheme.cluster.active_instances(),
                key=lambda i: (-i.outstanding, i.instance_id),
            )
            if not active:
                continue  # nothing left to kill
            victim = active[min(failure.victim_rank, len(active) - 1)]
            lost_requests = list(inflight.pop(victim.instance_id, ()))
            if scheme.mlq.contains(victim):
                scheme.mlq.remove(victim)
            control.note_failure(victim.instance_id)
            gpu, lost = scheme.cluster.crash_instance(victim)
            failed_instances.add(victim.instance_id)
            failures_injected += 1
            requests_lost += lost
            outstanding -= len(lost_requests)
            if failure.recovery_ms is not None:
                queue.push(
                    now + failure.recovery_ms,
                    EventKind.INSTANCE_FAILURE,
                    RecoveryPayload(gpu_id=gpu.gpu_id,
                                    runtime_index=victim.runtime_index),
                )
            else:
                scheme.cluster.release_gpu(gpu.gpu_id, now)
                sample_gpus(now)
            for request_id, arrival, length in lost_requests:
                if not admit(now, request_id, arrival, length):
                    deferred.append((request_id, arrival, length))

        else:  # pragma: no cover - the enum is closed
            raise SimulationError(f"unhandled event kind {event.kind}")

    if completed != n_requests:
        raise SimulationError(
            f"simulation ended with {n_requests - completed} unserved requests"
        )

    end_ms = queue.now_ms
    return SimulationResult(
        scheme_name=scheme.name,
        stats=metrics.stats(),
        metrics=metrics,
        end_ms=end_ms,
        events_processed=queue.events_processed,
        time_weighted_gpus=metrics.time_weighted_gpus(end_ms),
        dispatch_stats=(
            scheme.dispatcher.scheduler.stats()
            if hasattr(scheme.dispatcher, "scheduler")
            else {}
        ),
        control_stats={
            "replacements": control.replacements_executed,
            "scale_outs": control.scale_outs,
            "scale_ins": control.scale_ins,
            "deferred": metrics.deferred_requests,
            "failures": failures_injected,
            "requests_lost": requests_lost,
        },
        decision_log=decision_log,
    )
