"""Disaggregated prefill/decode instance pools with adaptive rebalancing.

The co-located generative loop (:mod:`repro.sim.generative`) folds a
request's prompt pass into its decode instance's next step. Production
LLM serving increasingly *disaggregates* instead (Arrow, arxiv
2505.11916): a **prefill pool** runs prompt passes as ordinary batch-1
service intervals placed by Algorithm 1, a **decode pool** runs the
continuous-batching step loop, and the KV cache produced by prefill is
*transferred* between the pools at a configurable per-token cost. The
two pools decouple the TTFT tail (prefill queueing) from token
throughput (decode batching) — at the price of the handoff and of
having to size the pools.

The loop here models that end to end on the same pooled event store:

- **Prefill**: arrivals walk Algorithm 1 (`ArloRequestScheduler`) over
  a prefill-pool-only multi-level queue; the chosen instance serves the
  prompt as a real ``busy_until``-chained interval, completing with a
  ``PREFILL_DONE`` event.
- **Handoff**: prefill completion starts a ``KV_TRANSFER`` event to
  the least-loaded live decode instance, lasting
  ``transfer_ms_per_token × prefill_len``. The request counts against
  the decode instance's ``outstanding`` from transfer start, so target
  choice sees in-flight handoffs.
- **Decode**: the transferred request joins the target's waiting queue
  and decodes through the same continuous-batching step machinery as
  the co-located loop (``_DecodeState``; batch-size-dependent step
  latency; ``chunk_steps``; gang mode) — minus the prefill fold-in,
  which the prefill pool already paid.
- **Rebalancing**: each Runtime Scheduler period solves the coupled
  split (:meth:`RuntimeScheduler.decide_pool_split` — greedy scan over
  the prompt-demand estimate + decode-occupancy pressure, optionally
  anytime-refined) and *flips* up to ``max_flips_per_period`` idle
  instances between roles toward the target, preserving top-runtime
  coverage in the prefill pool. Splits and flips are recorded in the
  control timeline under the ``pool`` category.
- **Faults** are role-aware: crashing or blacking out a prefill
  instance voids its queued prompts; a decode victim voids its batch,
  waiting queue *and* in-flight KV transfers (``kv_token`` bump).
  Either way the lost requests re-enter through the budgeted retry
  path and redo prefill from scratch — conservation still holds
  (``decode_steps >= trace.total_decode_steps``, equality without
  faults). A recovered GPU rejoins with its victim's role.

Determinism matches the co-located loop: single-threaded over the
deterministic event queue, no wall-clock reads in any decision
(the split scan is greedy; anytime refinement cannot change the
split), so two runs of the same (trace, scheme, config) produce
byte-identical stats.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop
from time import perf_counter

from repro.baselines.dispatchers import ArloDispatcher
from repro.baselines.schemes import Scheme
from repro.cluster.instance import InstanceStatus, RuntimeInstance
from repro.core.mlq import MultiLevelQueue
from repro.core.pool_split import PoolSplitConfig
from repro.core.request_scheduler import ArloRequestScheduler
from repro.errors import (
    CapacityError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
    SolverError,
)
from repro.obs.spans import RequestTracer
from repro.obs.timeline import ControlTimeline
from repro.resilience.retry import RetryBudget
from repro.sim.engine import EventQueue
from repro.sim.events import (
    BlackoutEndPayload,
    EventKind,
    RecoveryPayload,
    RetryPayload,
    SlowdownEndPayload,
    acquire_decode_task,
    release_decode_task,
)
from repro.sim.faults import (
    BlackoutEvent,
    FailureEvent,
    SlowdownEvent,
    SolverFaultEvent,
)
from repro.sim.generative import _DecodeState
from repro.sim.metrics import MetricsCollector, StreamingLatencySummary
from repro.workload.generative import GenerativeTrace

PREFILL = "prefill"
DECODE = "decode"


@dataclass(frozen=True)
class DisaggConfig:
    """Disaggregated-pool knobs, attached to ``GenerativeConfig.disagg``.

    ``transfer_ms_per_token`` prices the KV handoff (cache size grows
    with the prompt, so so does the transfer). ``prefill_fraction``
    sets the initial role partition; the rebalancer moves it from
    there. ``decode_weight_ms`` converts decode occupancy-per-slot
    into the split objective's ms·requests units (see
    :mod:`repro.core.pool_split`).
    """

    transfer_ms_per_token: float = 0.02
    prefill_fraction: float = 0.5
    rebalance: bool = True
    max_flips_per_period: int = 1
    min_prefill: int = 1
    min_decode: int = 1
    decode_weight_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.transfer_ms_per_token < 0:
            raise ConfigurationError(
                "transfer_ms_per_token cannot be negative"
            )
        if not 0.0 < self.prefill_fraction < 1.0:
            raise ConfigurationError(
                "prefill_fraction must be strictly between 0 and 1"
            )
        if self.max_flips_per_period < 0:
            raise ConfigurationError(
                "max_flips_per_period cannot be negative"
            )
        if self.min_prefill < 1 or self.min_decode < 1:
            raise ConfigurationError(
                "both pools need at least one instance"
            )
        if self.decode_weight_ms < 0:
            raise ConfigurationError("decode_weight_ms cannot be negative")

    def split_config(self) -> PoolSplitConfig:
        return PoolSplitConfig(
            min_prefill=self.min_prefill,
            min_decode=self.min_decode,
            decode_weight_ms=self.decode_weight_ms,
        )


def run_disagg_simulation(
    scheme: Scheme,
    trace: GenerativeTrace,
    config,
) -> "SimulationResult":
    """Serve a prefill+decode trace on disaggregated instance pools.

    ``config`` is a :class:`~repro.sim.simulation.SimulationConfig`
    whose ``generative.disagg`` is set; `run_simulation` delegates here
    so callers never invoke this directly.
    """
    from repro.sim.simulation import SimulationResult

    wall_start = perf_counter()
    if not isinstance(trace, GenerativeTrace):
        raise ConfigurationError(
            "disaggregated simulation needs a GenerativeTrace "
            "(attach decode lengths with attach_decode_lengths)"
        )
    if not len(trace):
        raise SimulationError("cannot simulate an empty trace")
    if not isinstance(scheme.dispatcher, ArloDispatcher):
        raise ConfigurationError(
            "the disaggregated data plane requires Algorithm-1 placement "
            f"(Arlo-family scheme), got {scheme.name!r}"
        )
    if config.enable_autoscaler:
        raise ConfigurationError(
            "disaggregated simulation does not support the autoscaler yet"
        )
    if config.resilience is not None:
        raise ConfigurationError(
            "disaggregated simulation does not support the resilience "
            "manager yet (retry policy and fault plans are supported)"
        )
    gen = config.generative
    disagg: DisaggConfig = gen.disagg
    if not isinstance(disagg, DisaggConfig):
        raise ConfigurationError(
            "GenerativeConfig.disagg must be a DisaggConfig, got "
            f"{type(disagg).__name__}"
        )
    max_batch = gen.max_batch
    continuous = gen.continuous_batching
    chunk_steps = gen.chunk_steps
    transfer_per_token = disagg.transfer_ms_per_token

    queue = EventQueue()
    metrics = MetricsCollector(slo_ms=scheme.slo_ms)
    obs = config.observability
    tracer: RequestTracer | None = None
    timeline: ControlTimeline | None = None
    if obs is not None:
        if obs.sample_rate > 0:
            tracer = RequestTracer(obs.sample_rate, obs.max_spans)
        if obs.timeline:
            timeline = ControlTimeline()

    retry_policy = config.retry
    retry_rng = retry_policy.rng() if retry_policy is not None else None
    retry_budget = (
        RetryBudget(retry_policy.budget_for(len(trace)))
        if retry_policy is not None
        else None
    )

    arrivals_np = trace.arrival_ms
    prefill_np = trace.length
    arrivals_ms = arrivals_np.tolist()
    prefills = prefill_np.tolist()
    decode_lens = trace.decode_len.tolist()
    n_requests = len(trace)
    next_arrival = 0
    observed_upto = 0
    deferred: list[tuple[int, int]] = []
    outstanding = 0
    completed = 0
    last_gpu_count = scheme.cluster.num_gpus
    metrics.sample_gpus(0.0, last_gpu_count)
    failures_injected = 0
    requests_lost = 0
    slowdowns_injected = 0
    blackouts_injected = 0
    solver_faults_injected = 0
    timeouts = 0
    retries_scheduled = 0
    pending_retries = 0
    decode_steps_total = 0
    step_events = 0
    batch_joins = 0
    kv_transfers = 0
    kv_transfers_voided = 0
    pool_flips = 0
    prefill_completions = 0

    registry = scheme.registry
    top_level = len(registry) - 1
    estimator = scheme.demand_estimator
    runtime_scheduler = scheme.runtime_scheduler
    warmup_ms = config.warmup_ms
    max_events = config.max_events
    ttft = StreamingLatencySummary()
    tpot = StreamingLatencySummary()

    # ------------------------------------------------------------------
    # Initial role partition. Shortest runtimes decode (their step
    # tables are cheapest per token); the tail of the (runtime_index,
    # instance_id) ordering stays prefill, which always keeps the
    # Eq. 7 top-runtime instance on the prefill side so every prompt
    # length remains placeable.
    # ------------------------------------------------------------------
    all_active = sorted(
        scheme.cluster.active_instances(),
        key=lambda i: (i.runtime_index, i.instance_id),
    )
    n_instances = len(all_active)
    if n_instances < disagg.min_prefill + disagg.min_decode:
        raise ConfigurationError(
            f"{n_instances} instances cannot satisfy min_prefill="
            f"{disagg.min_prefill} + min_decode={disagg.min_decode}"
        )
    n_decode = int(round((1.0 - disagg.prefill_fraction) * n_instances))
    n_decode = max(disagg.min_decode,
                   min(n_decode, n_instances - disagg.min_prefill))
    decode_pool: dict[int, RuntimeInstance] = {
        inst.instance_id: inst for inst in all_active[:n_decode]
    }
    prefill_pool: dict[int, RuntimeInstance] = {
        inst.instance_id: inst for inst in all_active[n_decode:]
    }
    roles: dict[int, str] = {}
    for iid in prefill_pool:
        roles[iid] = PREFILL
    for iid in decode_pool:
        roles[iid] = DECODE

    prefill_mlq = MultiLevelQueue(len(registry))
    for inst in prefill_pool.values():
        prefill_mlq.add(inst)
    prefill_sched = ArloRequestScheduler(
        registry=registry,
        mlq=prefill_mlq,
        config=scheme.dispatcher.scheduler.config,
    )
    if timeline is not None:
        timeline.record(
            0.0, "pool", "partition",
            prefill=len(prefill_pool), decode=len(decode_pool),
        )

    #: instance_id -> _DecodeState for decode-pool instances.
    states: dict[int, _DecodeState] = {}
    #: instance_id -> FIFO of DecodeTasks in prefill (service order).
    prefill_inflight: dict[int, deque] = {}
    #: instance_id -> tasks whose KV transfer is in flight to it.
    kv_inflight: dict[int, list] = {}
    #: Per-instance tokens voiding in-flight PREFILL_DONE/KV_TRANSFER.
    prefill_token: dict[int, int] = {}
    kv_token: dict[int, int] = {}
    #: gpu_id -> role a recovered instance should rejoin with.
    pending_role: dict[int, str] = {}

    DECODE_STEP = EventKind.DECODE_STEP
    PREFILL_DONE = EventKind.PREFILL_DONE
    KV_TRANSFER = EventKind.KV_TRANSFER

    def flush_observations() -> None:
        nonlocal observed_upto
        if estimator is not None and observed_upto < next_arrival:
            estimator.observe_batch(
                arrivals_np[observed_upto:next_arrival],
                prefill_np[observed_upto:next_arrival],
            )
            observed_upto = next_arrival

    def work_remaining() -> bool:
        return (
            next_arrival + 1 < n_requests
            or outstanding > 0
            or bool(deferred)
            or pending_retries > 0
        )

    def schedule_step(state: _DecodeState, now_ms: float) -> None:
        nonlocal step_events
        inst = state.instance
        active = state.active
        b = len(active)
        k = chunk_steps
        if k > 1:
            remaining = min(t.decode_len - t.steps_done for t in active)
            if remaining < k:
                k = remaining
        # No pending_prefill fold-in: the prefill pool already paid the
        # prompt pass; the handoff priced the KV movement.
        dur = k * (state.overhead_ms + state.per_seq_ms * b) * inst.slow_factor
        state.step_k = k
        state.step_dur = dur
        state.stepping = True
        step_events += 1
        queue.push(now_ms + dur, DECODE_STEP, (state, state.token))

    def refill(state: _DecodeState) -> None:
        nonlocal batch_joins
        waiting = state.waiting
        if not waiting:
            return
        active = state.active
        if active and not continuous:
            return  # gang scheduling
        running = bool(active)
        inst = state.instance
        tracker = inst.tracker
        while waiting and len(active) < max_batch:
            task = waiting.popleft()
            active.append(task)
            if tracker is not None:
                tracker.on_decode_start(inst)
            if running:
                batch_joins += 1

    def pick_decode_target(exclude_id: int = -1) -> RuntimeInstance | None:
        """Least-loaded live decode instance (ties: smallest id)."""
        best = None
        for inst in decode_pool.values():
            if inst.status is not InstanceStatus.ACTIVE:
                continue
            if inst.instance_id == exclude_id:
                continue
            if best is None or (inst.outstanding, inst.instance_id) < (
                best.outstanding, best.instance_id
            ):
                best = inst
        return best

    def start_transfer(now_ms: float, task) -> bool:
        """Launch the KV handoff for a finished prefill. False when the
        decode pool has no live instance (the caller reinjects)."""
        nonlocal outstanding, kv_transfers
        target = pick_decode_target()
        if target is None:
            return False
        tid = target.instance_id
        target.outstanding += 1
        target._epoch += 1
        if target.tracker is not None:
            target.tracker.on_enqueue(target)
        kv_inflight.setdefault(tid, []).append(task)
        kv_transfers += 1
        queue.push(
            now_ms + transfer_per_token * task.prefill_len,
            KV_TRANSFER,
            (target, kv_token.get(tid, 0), task),
        )
        return True

    def admit(now_ms: float, request_id: int, attempt: int = 0) -> bool:
        nonlocal outstanding
        prefill = prefills[request_id]
        arrival = arrivals_ms[request_id]
        span = (
            tracer.begin(now_ms, request_id, arrival, prefill, attempt)
            if tracer is not None
            else None
        )
        try:
            decision, _start, finish = prefill_sched.dispatch(now_ms, prefill)
        except CapacityError:
            if span is not None:
                tracer.on_defer(span, now_ms)
            return False
        head = decision.instance
        if span is not None:
            tracer.on_dispatch(
                span, now_ms, level=decision.level,
                ideal_level=decision.ideal_level,
                instance=f"i{head.instance_id}",
                fallback=decision.fell_back,
            )
        outstanding += 1
        task = acquire_decode_task(
            request_id, arrival, prefill, decode_lens[request_id], attempt
        )
        prefill_inflight.setdefault(head.instance_id, deque()).append(task)
        queue.push(
            finish, PREFILL_DONE,
            (head, prefill_token.get(head.instance_id, 0), task),
        )
        return True

    def reinject(now_ms: float, request_id: int, attempt: int) -> None:
        nonlocal retries_scheduled, pending_retries
        if (
            retry_policy is not None
            and attempt < retry_policy.max_attempts
            and retry_budget.try_consume()
        ):
            delay = retry_policy.delay_ms(attempt, retry_rng)
            queue.push(
                now_ms + delay,
                EventKind.INSTANCE_FAILURE,
                RetryPayload(request_id, arrivals_ms[request_id],
                             prefills[request_id], attempt + 1),
            )
            retries_scheduled += 1
            pending_retries += 1
            if tracer is not None:
                span = tracer.active.get(request_id)
                if span is not None:
                    tracer.on_retry(span, now_ms, attempt + 1, delay)
        elif not admit(now_ms, request_id, attempt):
            deferred.append((request_id, attempt))

    def flush_deferred(now_ms: float) -> None:
        if not deferred:
            return
        still: list[tuple[int, int]] = []
        for request_id, attempt in deferred:
            if not admit(now_ms, request_id, attempt):
                still.append((request_id, attempt))
        deferred[:] = still

    def sample_gpus(now_ms: float) -> None:
        nonlocal last_gpu_count
        count = scheme.cluster.num_gpus
        if count != last_gpu_count:
            metrics.sample_gpus(now_ms, count)
            last_gpu_count = count

    def pick_victim(rank: int) -> RuntimeInstance | None:
        active = scheme.cluster.active_instances()
        if not active:
            return None
        ordered = sorted(active, key=lambda i: (-i.outstanding,
                                                i.instance_id))
        return ordered[min(rank, len(ordered) - 1)]

    def void_instance(victim: RuntimeInstance) -> list:
        """Void a victim's live work (role-aware); returns its tasks.

        Must run *before* ``crash_instance``/``suspend`` so the decode
        occupancy counters reconcile while the tracker still counts
        the instance. Prefill victims lose their queued prompts;
        decode victims lose waiting + active batches *and* in-flight
        KV transfers (token bumps void the scheduled events).
        """
        nonlocal kv_transfers_voided
        vid = victim.instance_id
        if roles.get(vid) == PREFILL:
            prefill_token[vid] = prefill_token.get(vid, 0) + 1
            fifo = prefill_inflight.pop(vid, None)
            return list(fifo) if fifo else []
        tasks: list = []
        state = states.pop(vid, None)
        if state is not None:
            if victim.tracker is not None and state.active:
                victim.tracker.on_decode_loss(victim, len(state.active))
            tasks.extend(state.active)
            tasks.extend(state.waiting)
            state.token += 1
            state.active.clear()
            state.waiting.clear()
            state.stepping = False
        kv_token[vid] = kv_token.get(vid, 0) + 1
        transfers = kv_inflight.pop(vid, None)
        if transfers:
            kv_transfers_voided += len(transfers)
            tasks.extend(transfers)
        return tasks

    def reinject_tasks(now_ms: float, tasks: list) -> None:
        nonlocal outstanding
        outstanding -= len(tasks)
        for task in tasks:
            reinject(now_ms, task.request_id, task.attempt)
            release_decode_task(task)

    def drop_from_pools(vid: int) -> None:
        prefill_pool.pop(vid, None)
        decode_pool.pop(vid, None)
        roles.pop(vid, None)

    def rebalance(now_ms: float) -> None:
        """One period of the coupled split + adaptive role migration."""
        nonlocal pool_flips
        if runtime_scheduler is None:
            return
        flush_observations()
        total = len(prefill_pool) + len(decode_pool)
        if total < disagg.min_prefill + disagg.min_decode:
            return
        decode_occ = sum(
            inst.outstanding for inst in decode_pool.values()
        )
        try:
            outcome = runtime_scheduler.decide_pool_split(
                now_ms, total,
                decode_occupancy=float(decode_occ),
                decode_slots_per_gpu=float(max_batch),
                split_config=disagg.split_config(),
            )
        except SolverError:
            runtime_scheduler.solver_fallbacks += 1
            if timeline is not None:
                timeline.record(now_ms, "pool", "hold",
                                reason="solver-failure")
            return
        if outcome is None:
            return  # no demand observed yet: hold the current roles
        split, provenance = outcome
        if timeline is not None:
            timeline.record(
                now_ms, "pool", "split",
                prefill_gpus=split.prefill_gpus,
                decode_gpus=split.decode_gpus,
                current_prefill=len(prefill_pool),
                current_decode=len(decode_pool),
                decode_occupancy=decode_occ,
                objective=split.prefill_objective,
                provenance=provenance,
            )
        if not disagg.rebalance:
            return
        delta = split.decode_gpus - len(decode_pool)
        budget = disagg.max_flips_per_period
        if delta > 0:
            # Prefill → decode: flip idle prompt servers, shortest
            # runtimes first, never the last top-runtime cover.
            top_cover = sum(
                1 for inst in prefill_pool.values()
                if inst.runtime_index == top_level
                and inst.status is InstanceStatus.ACTIVE
            )
            candidates = sorted(
                (
                    inst for inst in prefill_pool.values()
                    if inst.status is InstanceStatus.ACTIVE
                    and inst.outstanding == 0
                ),
                key=lambda i: (i.runtime_index, i.instance_id),
            )
            for inst in candidates:
                if delta <= 0 or budget <= 0:
                    break
                if len(prefill_pool) <= disagg.min_prefill:
                    break
                if inst.runtime_index == top_level and top_cover <= 1:
                    continue
                if inst.runtime_index == top_level:
                    top_cover -= 1
                if prefill_mlq.contains(inst):
                    prefill_mlq.remove(inst)
                vid = inst.instance_id
                del prefill_pool[vid]
                decode_pool[vid] = inst
                roles[vid] = DECODE
                pool_flips += 1
                delta -= 1
                budget -= 1
                if timeline is not None:
                    timeline.record(
                        now_ms, "pool", "flip", instance=vid,
                        from_role=PREFILL, to_role=DECODE,
                    )
        elif delta < 0:
            # Decode → prefill: idle decoders only (no batch, no
            # waiting queue, no in-flight transfer), longest first.
            candidates = sorted(
                (
                    inst for inst in decode_pool.values()
                    if inst.status is InstanceStatus.ACTIVE
                    and inst.outstanding == 0
                ),
                key=lambda i: (-i.runtime_index, i.instance_id),
            )
            for inst in candidates:
                if delta >= 0 or budget <= 0:
                    break
                if len(decode_pool) <= disagg.min_decode:
                    break
                vid = inst.instance_id
                states.pop(vid, None)
                del decode_pool[vid]
                prefill_pool[vid] = inst
                roles[vid] = PREFILL
                prefill_mlq.add(inst)
                pool_flips += 1
                delta += 1
                budget -= 1
                if timeline is not None:
                    timeline.record(
                        now_ms, "pool", "flip", instance=vid,
                        from_role=DECODE, to_role=PREFILL,
                    )
            flush_deferred(now_ms)

    if runtime_scheduler is not None:
        queue.push(runtime_scheduler.config.period_ms, EventKind.RESCHEDULE)
    if config.failures is not None:
        for fault in config.failures.sorted_events():
            queue.push(fault.time_ms, EventKind.INSTANCE_FAILURE, fault)

    heap = queue._heap
    INF = float("inf")
    RESCHEDULE = EventKind.RESCHEDULE
    INSTANCE_FAILURE = EventKind.INSTANCE_FAILURE

    popped = queue._popped
    while True:
        if max_events and popped + next_arrival >= max_events:
            raise SimulationError(
                f"event cap {max_events} hit with work remaining"
            )
        heap_time = heap[0][0] if heap else INF

        if next_arrival < n_requests and arrivals_ms[next_arrival] < heap_time:
            now = arrivals_ms[next_arrival]
            request_id = next_arrival
            next_arrival = request_id + 1
            queue._now = now
            if not admit(now, request_id):
                deferred.append((request_id, 0))
                metrics.deferred_requests += 1
            continue
        if not heap:
            break

        entry = heappop(heap)
        now = entry[0]
        kind = entry[1]
        queue._now = now
        popped += 1

        if kind is DECODE_STEP:
            state, token = entry[3]
            if token != state.token:
                continue  # voided by a crash/blackout
            state.stepping = False
            inst = state.instance
            k = state.step_k
            dur = state.step_dur
            active = state.active
            decode_steps_total += k * len(active)
            batch_size = len(active)
            survivors: list = []
            for task in active:
                task.steps_done += k
                task.service_ms += dur
                if task.awaiting_first:
                    task.awaiting_first = False
                    first_ms = now - task.arrival_ms
                    if task.arrival_ms >= warmup_ms:
                        ttft.add(first_ms)
                    if tracer is not None:
                        span = tracer.active.get(task.request_id)
                        if span is not None:
                            tracer.on_first_token(span, now, first_ms,
                                                  batch_size)
                if task.steps_done < task.decode_len:
                    survivors.append(task)
                    continue
                # --- final decode step: the request completes ---
                out = inst.outstanding - 1
                if out < 0:
                    raise SchedulingError(
                        f"instance {inst.instance_id} completed with "
                        f"empty queue"
                    )
                inst.outstanding = out
                inst.served += 1
                inst._epoch += 1
                tracker = inst.tracker
                if tracker is not None:
                    tracker.on_complete(inst)
                    tracker.on_decode_end(inst)
                outstanding -= 1
                completed += 1
                if task.arrival_ms >= warmup_ms:
                    metrics.record(now - task.arrival_ms,
                                   inst.runtime_index)
                    tpot.add(task.service_ms / task.decode_len)
                if tracer is not None:
                    tracer.on_complete(task.request_id, now,
                                       task.service_ms,
                                       decode_steps=task.decode_len)
                release_decode_task(task)
            state.active = survivors
            if inst.status is not InstanceStatus.RETIRED:
                refill(state)
                if state.active:
                    schedule_step(state, now)

        elif kind is PREFILL_DONE:
            inst, token, task = entry[3]
            iid = inst.instance_id
            if token != prefill_token.get(iid, 0):
                continue  # voided: the task was already reinjected
            fifo = prefill_inflight[iid]
            head_task = fifo.popleft()
            if head_task is not task:  # pragma: no cover - FIFO invariant
                raise SchedulingError(
                    f"prefill completion order broke on instance {iid}"
                )
            inst.complete()
            prefill_mlq.refresh(inst)
            prefill_completions += 1
            if not start_transfer(now, task):
                # Decode pool momentarily empty (crashed away): the
                # request redoes prefill through the retry path.
                reinject_tasks(now, [task])
            if deferred:
                flush_deferred(now)

        elif kind is KV_TRANSFER:
            target, token, task = entry[3]
            tid = target.instance_id
            if token != kv_token.get(tid, 0):
                continue  # voided: the task was already reinjected
            kv_inflight[tid].remove(task)
            state = states.get(tid)
            if state is None:
                state = states[tid] = _DecodeState(target)
            state.waiting.append(task)
            if not state.stepping:
                refill(state)
                if state.active:
                    schedule_step(state, now)

        elif kind is RESCHEDULE:
            if runtime_scheduler is not None and work_remaining():
                rebalance(now)
                metrics.sample_allocation(now, scheme.cluster.allocation())
                queue.push(
                    now + runtime_scheduler.config.period_ms,
                    EventKind.RESCHEDULE,
                )

        elif kind is INSTANCE_FAILURE:
            payload = entry[3]

            if isinstance(payload, RecoveryPayload):
                gpu = scheme.cluster.gpus[payload.gpu_id]
                recovered = scheme.cluster.deploy(payload.runtime_index, gpu)
                role = pending_role.pop(payload.gpu_id, PREFILL)
                roles[recovered.instance_id] = role
                if role == PREFILL:
                    prefill_pool[recovered.instance_id] = recovered
                    prefill_mlq.add(recovered)
                else:
                    decode_pool[recovered.instance_id] = recovered
                if timeline is not None:
                    timeline.record(
                        now, "fault", "recovery",
                        instance=recovered.instance_id,
                        runtime_index=payload.runtime_index,
                        role=role,
                    )
                flush_deferred(now)

            elif isinstance(payload, RetryPayload):
                pending_retries -= 1
                if not admit(now, payload.request_id, payload.attempt):
                    deferred.append((payload.request_id, payload.attempt))

            elif isinstance(payload, SlowdownEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is not None:
                    victim.slow_factor = payload.factor
                    slowdowns_injected += 1
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "slowdown",
                            instance=victim.instance_id,
                            factor=payload.factor,
                        )
                    if payload.duration_ms is not None:
                        queue.push(
                            now + payload.duration_ms,
                            EventKind.INSTANCE_FAILURE,
                            SlowdownEndPayload(victim.instance_id),
                        )

            elif isinstance(payload, SlowdownEndPayload):
                inst = scheme.cluster.instances.get(payload.instance_id)
                if inst is not None:
                    inst.slow_factor = 1.0

            elif isinstance(payload, BlackoutEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is not None:
                    lost_tasks = void_instance(victim)
                    if prefill_mlq.contains(victim):
                        prefill_mlq.remove(victim)
                    victim.suspend()
                    blackouts_injected += 1
                    timeouts += len(lost_tasks)
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "blackout",
                            instance=victim.instance_id,
                            role=roles.get(victim.instance_id),
                            duration_ms=payload.duration_ms,
                            voided=len(lost_tasks),
                        )
                    reinject_tasks(now, lost_tasks)
                    queue.push(
                        now + payload.duration_ms,
                        EventKind.INSTANCE_FAILURE,
                        BlackoutEndPayload(victim.instance_id),
                    )

            elif isinstance(payload, BlackoutEndPayload):
                inst = scheme.cluster.instances.get(payload.instance_id)
                if inst is not None and inst.status is InstanceStatus.SUSPENDED:
                    inst.resume()
                    if (
                        roles.get(inst.instance_id) == PREFILL
                        and not prefill_mlq.contains(inst)
                    ):
                        prefill_mlq.add(inst)
                    flush_deferred(now)

            elif isinstance(payload, SolverFaultEvent):
                if runtime_scheduler is not None:
                    runtime_scheduler.inject_solver_failures(payload.count)
                    solver_faults_injected += payload.count
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "solver_fault",
                            count=payload.count,
                        )

            elif isinstance(payload, FailureEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is None:
                    continue
                role = roles.get(victim.instance_id, PREFILL)
                lost_tasks = void_instance(victim)
                if prefill_mlq.contains(victim):
                    prefill_mlq.remove(victim)
                gpu, lost = scheme.cluster.crash_instance(victim)
                drop_from_pools(victim.instance_id)
                failures_injected += 1
                requests_lost += lost
                if timeline is not None:
                    timeline.record(
                        now, "fault", "crash",
                        instance=victim.instance_id,
                        role=role,
                        voided=len(lost_tasks),
                        recovery_ms=(
                            payload.recovery_ms
                            if payload.recovery_ms is not None
                            else -1.0
                        ),
                    )
                if payload.recovery_ms is not None:
                    pending_role[gpu.gpu_id] = role
                    queue.push(
                        now + payload.recovery_ms,
                        EventKind.INSTANCE_FAILURE,
                        RecoveryPayload(gpu_id=gpu.gpu_id,
                                        runtime_index=victim.runtime_index),
                    )
                else:
                    scheme.cluster.release_gpu(gpu.gpu_id, now)
                    sample_gpus(now)
                reinject_tasks(now, lost_tasks)

            else:
                raise SimulationError(
                    f"unhandled fault payload {payload!r}"
                )

        else:  # pragma: no cover - the enum is closed on this path
            raise SimulationError(f"unhandled event kind {kind}")

    queue._popped = popped
    flush_observations()
    if completed != n_requests:
        raise SimulationError(
            f"simulation ended with {n_requests - completed} unserved "
            f"requests"
        )

    end_ms = queue.now_ms
    control_stats = {
        "replacements": 0,
        "scale_outs": 0,
        "scale_ins": 0,
        "deferred": metrics.deferred_requests,
        "failures": failures_injected,
        "requests_lost": requests_lost,
        "slowdowns": slowdowns_injected,
        "blackouts": blackouts_injected,
        "timeouts": timeouts,
        "retries": retries_scheduled,
        "retry_budget_exhausted": (
            retry_budget.exhausted_events if retry_budget is not None else 0
        ),
        "quarantines": 0,
        "breaker_trips": 0,
        "breaker_recoveries": 0,
        "quarantine_violations": 0,
        "solver_faults_injected": solver_faults_injected,
        "solver_fallbacks": (
            runtime_scheduler.solver_fallbacks
            if runtime_scheduler is not None
            else 0
        ),
        # Generative + disagg counters: plain ints so shard merges sum.
        "decode_steps": decode_steps_total,
        "step_events": step_events,
        "batch_joins": batch_joins,
        "prefill_completions": prefill_completions,
        "kv_transfers": kv_transfers,
        "kv_transfers_voided": kv_transfers_voided,
        "pool_flips": pool_flips,
    }
    dispatch_stats = prefill_sched.stats()
    dispatch_stats["prefill_pool_size"] = len(prefill_pool)
    dispatch_stats["decode_pool_size"] = len(decode_pool)
    if ttft.count:
        dispatch_stats["ttft_mean_ms"] = ttft.mean_ms
        dispatch_stats["ttft_p50_ms"] = ttft.quantile(0.50)
        dispatch_stats["ttft_p98_ms"] = ttft.quantile(0.98)
    if tpot.count:
        dispatch_stats["tpot_mean_ms"] = tpot.mean_ms
        dispatch_stats["tpot_p50_ms"] = tpot.quantile(0.50)
        dispatch_stats["tpot_p98_ms"] = tpot.quantile(0.98)
    return SimulationResult(
        scheme_name=scheme.name,
        stats=metrics.stats(),
        metrics=metrics,
        end_ms=end_ms,
        events_processed=queue.events_processed + next_arrival,
        time_weighted_gpus=metrics.time_weighted_gpus(end_ms),
        dispatch_stats=dispatch_stats,
        control_stats=control_stats,
        spans=tracer.finished if tracer is not None else [],
        timeline=timeline,
        wall_s=perf_counter() - wall_start,
    )
