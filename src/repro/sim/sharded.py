"""Sharded simulation: deterministic time-window shards over a pool.

The discrete-event loop is inherently serial — one heap, one clock —
so the data plane scales *out* instead: the trace is split into
``num_shards`` equal time windows, each window runs as an independent
simulation (its own fresh scheme, shard-local clock, and the fault
sub-plan of its window), and the per-shard summaries are merged with
an order-independent reduction. Workers come from the same
:func:`repro.experiments.runner.run_experiments` process-pool
machinery the scenario fleets use; each worker rebuilds its shard
locally from a picklable :class:`ExperimentSpec`, so only the compact
:class:`ShardSummary` crosses the process boundary.

Equivalence to the serial run
-----------------------------
Sharding cold-starts every window, so it is *exactly* equivalent to
the serial simulation when the windows are independent in the serial
run too:

1. **Quiescent boundaries** — the serial cluster has drained (no
   outstanding or deferred work) by each window edge. Arrival gaps
   longer than the worst-case backlog drain guarantee this.
2. **Self-contained faults** — every crash has recovered, every
   blackout resumed, and every slowdown healed before its window ends
   (a straddling fault is truncated at the boundary in the sharded
   semantics — see :meth:`FaultPlan.window`).
3. **No cross-window adaptive state** — static schemes (``st``,
   ``dt``, ``infaas``) qualify outright. Schemes with a periodic
   Runtime Scheduler or autoscaler carry demand history across
   windows, so sharding approximates them (each shard re-converges
   from the shared hint allocation).

Under 1–3 the per-request latency *multiset* matches the serial run
exactly: at a quiescent boundary all instances of a level are
idle-identical, so the serial and sharded executions differ only by a
relabelling of interchangeable instances. Retry backoff draws from a
per-run RNG stream, so bit-exact equivalence additionally needs
``retry=None`` (instant re-dispatch); with backoff enabled the
agreement is at quantile level instead.

Merge semantics
---------------
Every merged field is a commutative, associative reduction, so the
result is independent of shard completion order:

- latency sketch — bin-wise counter addition
  (:meth:`StreamingLatencySummary.merge`), plus exact running moments,
  min/max, and SLO-violation counts;
- request / event / deferral / control-plane counters — sums;
- wall-clock span — max over absolute shard end times;
- GPU integral — sum of per-shard ``gpu·ms``, renormalised by the
  merged span.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ExperimentSpec,
    SimulationResult,
    run_experiments,
)
from repro.sim.metrics import LatencyStats, StreamingLatencySummary


@dataclass
class ShardSummary:
    """The compact, picklable result of one shard's simulation."""

    scheme_name: str
    #: Full-fidelity latency sketch of the shard (warm-up excluded).
    sketch: StreamingLatencySummary
    events_processed: int
    #: Shard-local time of the last event.
    end_ms: float
    #: Mean GPU count over the shard, weighted by shard-local time.
    time_weighted_gpus: float
    control_stats: dict[str, float]
    dispatch_stats: dict[str, float]


def summarize_shard(result: SimulationResult) -> ShardSummary:
    """Reduce a :class:`SimulationResult` to its mergeable summary.

    Module-level so :func:`run_experiments` can ship it into pool
    workers — the full metrics arrays never cross the process
    boundary.
    """
    metrics = result.metrics
    metrics._sync_sketch()
    return ShardSummary(
        scheme_name=result.scheme_name,
        sketch=copy.deepcopy(metrics.sketch),
        events_processed=result.events_processed,
        end_ms=result.end_ms,
        time_weighted_gpus=result.time_weighted_gpus,
        control_stats=dict(result.control_stats),
        dispatch_stats=dict(result.dispatch_stats),
    )


@dataclass
class ShardedResult:
    """Order-independent merge of every shard of one scheme."""

    scheme_name: str
    num_shards: int
    stats: LatencyStats
    sketch: StreamingLatencySummary
    events_processed: int
    #: Absolute time of the last event across all shards.
    end_ms: float
    time_weighted_gpus: float
    control_stats: dict[str, float]
    dispatch_stats: dict[str, float]

    @property
    def completed(self) -> int:
        return self.stats.count


def shard_specs(spec: ExperimentSpec, num_shards: int) -> list[ExperimentSpec]:
    """The per-window specs of ``spec`` (deterministic, picklable)."""
    if num_shards < 1:
        raise ConfigurationError("need at least one shard")
    if spec.shard is not None:
        raise ConfigurationError("spec is already a shard")
    return [
        replace(spec, name=f"{spec.name}#shard{k}", shard=(k, num_shards))
        for k in range(num_shards)
    ]


def merge_shard_summaries(
    pairs: list[tuple[float, ShardSummary]],
) -> ShardedResult:
    """Merge ``(window_start_ms, summary)`` pairs — order-independent.

    Every reduction below is commutative and associative (sketch bin
    adds, counter sums, max over absolute end times), so any shard
    completion order produces the identical result.
    """
    if not pairs:
        raise ConfigurationError("nothing to merge")
    sketch = copy.deepcopy(pairs[0][1].sketch)
    for _, summary in pairs[1:]:
        sketch.merge(summary.sketch)

    events = sum(s.events_processed for _, s in pairs)
    end_ms = max(start + s.end_ms for start, s in pairs)
    gpu_ms = sum(s.time_weighted_gpus * s.end_ms for _, s in pairs)
    span_ms = sum(s.end_ms for _, s in pairs)

    control: dict[str, float] = {}
    for _, summary in pairs:
        for key, value in summary.control_stats.items():
            control[key] = control.get(key, 0) + value

    # Counters merge unconditionally: a shard that sheds everything
    # (``dispatched == 0`` but ``gated > 0``) must not vanish from the
    # merged result. Only the rate re-weighting is guarded, per key, by
    # its own denominator.
    dispatched = sum(s.dispatch_stats.get("dispatched", 0.0) for _, s in pairs)
    dispatch: dict[str, float] = {}
    if any(s.dispatch_stats for _, s in pairs):
        dispatch = {
            "dispatched": dispatched,
            "gated": sum(s.dispatch_stats.get("gated", 0.0) for _, s in pairs),
        }
        for rate_key in ("demotion_rate", "fallback_rate"):
            # Rates re-weighted by each shard's dispatch volume; a
            # shard with no dispatches contributes zero weight, and an
            # all-gated merge reports a rate of 0 rather than dividing
            # by zero.
            weighted = sum(
                s.dispatch_stats.get(rate_key, 0.0)
                * s.dispatch_stats.get("dispatched", 0.0)
                for _, s in pairs
            )
            dispatch[rate_key] = weighted / dispatched if dispatched else 0.0

    first = pairs[0][1]
    return ShardedResult(
        scheme_name=first.scheme_name,
        num_shards=len(pairs),
        stats=sketch.stats(),
        sketch=sketch,
        events_processed=events,
        end_ms=end_ms,
        time_weighted_gpus=gpu_ms / span_ms if span_ms else 0.0,
        control_stats=control,
        dispatch_stats=dispatch,
    )


def run_sharded(
    spec: ExperimentSpec,
    scheme_name: str,
    num_shards: int,
    workers: int = 1,
) -> ShardedResult:
    """Run ``spec`` × ``scheme_name`` as ``num_shards`` time-window
    shards, optionally across a process pool, and merge the results.

    ``workers=1`` runs the shards inline (deterministic and
    fork-free); ``workers=N`` reuses the :func:`run_experiments`
    process pool. Either path produces the identical merged result —
    the reduction is order-independent.
    """
    specs = shard_specs(spec, num_shards)
    out = run_experiments(
        specs,
        schemes=(scheme_name,),
        workers=workers,
        summarize=summarize_shard,
    )
    pairs = [
        (shard.shard_window_ms()[0], out[shard.name][scheme_name])
        for shard in specs
    ]
    return merge_shard_summaries(pairs)
