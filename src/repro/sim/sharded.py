"""Sharded simulation: time-window or spatial shards over a pool.

The discrete-event loop is inherently serial — one heap, one clock —
so the data plane scales *out* instead, along either axis:

- **time shards** (:func:`run_sharded`): the trace is split into
  ``num_shards`` equal time windows, each window runs as an
  independent simulation (its own fresh scheme, shard-local clock,
  and the fault sub-plan of its window);
- **space shards** (:func:`run_spatial`): the *cluster* is split —
  each shard runs its own clock over a pre-partitioned slice of the
  arrival stream (by request id, or by owned MLQ levels) against its
  own slice of the hardware, on unshifted timestamps.

Per-shard summaries are merged with an order-independent reduction.
Workers come from the same
:func:`repro.experiments.runner.run_experiments` process-pool
machinery the scenario fleets use; each worker rebuilds its shard
locally from a picklable :class:`ExperimentSpec`, so only the compact
:class:`ShardSummary` crosses the process boundary.

Equivalence to the serial run
-----------------------------
Sharding cold-starts every window, so it is *exactly* equivalent to
the serial simulation when the windows are independent in the serial
run too:

1. **Quiescent boundaries** — the serial cluster has drained (no
   outstanding or deferred work) by each window edge. Arrival gaps
   longer than the worst-case backlog drain guarantee this.
2. **Self-contained faults** — every crash has recovered, every
   blackout resumed, and every slowdown healed before its window ends
   (a straddling fault is truncated at the boundary in the sharded
   semantics — see :meth:`FaultPlan.window`).
3. **No cross-window adaptive state** — static schemes (``st``,
   ``dt``, ``infaas``) qualify outright. Schemes with a periodic
   Runtime Scheduler or autoscaler carry demand history across
   windows, so sharding approximates them (each shard re-converges
   from the shared hint allocation).

Under 1–3 the per-request latency *multiset* matches the serial run
exactly: at a quiescent boundary all instances of a level are
idle-identical, so the serial and sharded executions differ only by a
relabelling of interchangeable instances. Retry backoff draws from a
per-run RNG stream, so bit-exact equivalence additionally needs
``retry=None`` (instant re-dispatch); with backoff enabled the
agreement is at quantile level instead.

Merge semantics
---------------
Every merged field is a commutative, associative reduction, so the
result is independent of shard completion order:

- latency sketch — bin-wise counter addition
  (:meth:`StreamingLatencySummary.merge`), plus exact running moments,
  min/max, and SLO-violation counts;
- request / event / deferral / control-plane counters — sums;
- wall-clock span — max over absolute shard end times;
- GPU integral — sum of per-shard ``gpu·ms``, renormalised by the
  merged span.

Spatial merges (``mode="space"``) differ only in the time axis: every
shard's clock starts at 0 and the shards run *concurrently*, so the
merged span is the max shard end (not a sum of windows) and the GPU
integral renormalises by that max — shards that finish early
contribute their full ``gpu·ms`` but hold zero GPUs for the
remainder.

Spatial equivalence to the serial run
-------------------------------------
``space_partition="request"`` (round-robin by request id) is a
*scaled-replica* approximation: each shard gets ``1/S`` of the
arrivals and ``≈1/S`` of the GPUs, so per-level queues see the same
load ratio and the merged latency distribution tracks the serial one
closely — but it is not bit-exact (integer GPU splits round, and
intra-level interleavings differ).

``space_partition="level"`` partitions *ownership*: shard ``k`` keeps
exactly the MLQ levels with ``index % S == k`` (foreign levels are
retired at t=0) and exactly the requests whose **ideal** level it
owns. This is *exactly* equivalent — bin-exact sketch, equal event
counts — whenever the serial run never crosses level boundaries:
a static scheme (no runtime scheduler, no autoscaler, e.g.
``arlo-even``) whose serial run reports zero demotions, zero
fallbacks, and zero deferrals. Under those conditions every request
is served by its ideal level in both executions, and levels share no
state. The equivalence tests certify the serial counters before
asserting bin-exactness.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ExperimentSpec,
    SimulationResult,
    run_experiments,
    space_partition_owners,
)
from repro.runtimes.models import get_model
from repro.sim.metrics import LatencyStats, StreamingLatencySummary


@dataclass
class ShardSummary:
    """The compact, picklable result of one shard's simulation."""

    scheme_name: str
    #: Full-fidelity latency sketch of the shard (warm-up excluded).
    sketch: StreamingLatencySummary
    events_processed: int
    #: Shard-local time of the last event.
    end_ms: float
    #: Mean GPU count over the shard, weighted by shard-local time.
    time_weighted_gpus: float
    control_stats: dict[str, float]
    dispatch_stats: dict[str, float]
    #: Wall-clock seconds the shard's ``run_simulation`` call took.
    #: Drives the spatial throughput metric (events / max shard wall);
    #: defaults to 0.0 so hand-built summaries in tests stay valid.
    wall_s: float = 0.0


def summarize_shard(result: SimulationResult) -> ShardSummary:
    """Reduce a :class:`SimulationResult` to its mergeable summary.

    Module-level so :func:`run_experiments` can ship it into pool
    workers — the full metrics arrays never cross the process
    boundary.
    """
    metrics = result.metrics
    metrics._sync_sketch()
    return ShardSummary(
        scheme_name=result.scheme_name,
        sketch=copy.deepcopy(metrics.sketch),
        events_processed=result.events_processed,
        end_ms=result.end_ms,
        time_weighted_gpus=result.time_weighted_gpus,
        control_stats=dict(result.control_stats),
        dispatch_stats=dict(result.dispatch_stats),
        wall_s=result.wall_s,
    )


@dataclass
class ShardedResult:
    """Order-independent merge of every shard of one scheme."""

    scheme_name: str
    num_shards: int
    stats: LatencyStats
    sketch: StreamingLatencySummary
    events_processed: int
    #: Absolute time of the last event across all shards.
    end_ms: float
    time_weighted_gpus: float
    control_stats: dict[str, float]
    dispatch_stats: dict[str, float]
    #: Per-shard ``run_simulation`` wall seconds, in merge-input order.
    #: The spatial throughput metric divides total events by the max.
    shard_walls: list[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.stats.count


def shard_specs(spec: ExperimentSpec, num_shards: int) -> list[ExperimentSpec]:
    """The per-window specs of ``spec`` (deterministic, picklable)."""
    if num_shards < 1:
        raise ConfigurationError("need at least one shard")
    if spec.shard is not None:
        raise ConfigurationError("spec is already a shard")
    return [
        replace(spec, name=f"{spec.name}#shard{k}", shard=(k, num_shards))
        for k in range(num_shards)
    ]


def merge_shard_summaries(
    pairs: list[tuple[float, ShardSummary]],
    mode: str = "time",
) -> ShardedResult:
    """Merge ``(window_start_ms, summary)`` pairs — order-independent.

    Every reduction below is commutative and associative (sketch bin
    adds, counter sums, max over absolute end times), so any shard
    completion order produces the identical result.

    ``mode`` selects the time-axis semantics:

    - ``"time"`` — shards are consecutive windows: the merged span is
      the max *absolute* end (window start + shard-local end), and the
      GPU integral renormalises by the **sum** of shard spans (the
      windows tile the timeline).
    - ``"space"`` — shards run concurrently from t=0 on unshifted
      timestamps (window starts must all be 0): the merged span is the
      max shard end, and the GPU integral renormalises by that **max**
      — a shard holds zero GPUs after it drains.
    """
    if mode not in ("time", "space"):
        raise ConfigurationError(f"unknown merge mode {mode!r}")
    if not pairs:
        raise ConfigurationError("nothing to merge")
    if mode == "space" and any(start != 0.0 for start, _ in pairs):
        raise ConfigurationError(
            "spatial shards run on unshifted clocks; window starts must be 0"
        )
    sketch = copy.deepcopy(pairs[0][1].sketch)
    for _, summary in pairs[1:]:
        sketch.merge(summary.sketch)

    events = sum(s.events_processed for _, s in pairs)
    end_ms = max(start + s.end_ms for start, s in pairs)
    gpu_ms = sum(s.time_weighted_gpus * s.end_ms for _, s in pairs)
    if mode == "space":
        span_ms = end_ms
    else:
        span_ms = sum(s.end_ms for _, s in pairs)

    control: dict[str, float] = {}
    for _, summary in pairs:
        for key, value in summary.control_stats.items():
            control[key] = control.get(key, 0) + value

    # Counters merge unconditionally: a shard that sheds everything
    # (``dispatched == 0`` but ``gated > 0``) must not vanish from the
    # merged result. Only the rate re-weighting is guarded, per key, by
    # its own denominator.
    dispatched = sum(s.dispatch_stats.get("dispatched", 0.0) for _, s in pairs)
    dispatch: dict[str, float] = {}
    if any(s.dispatch_stats for _, s in pairs):
        dispatch = {
            "dispatched": dispatched,
            "gated": sum(s.dispatch_stats.get("gated", 0.0) for _, s in pairs),
        }
        for rate_key in ("demotion_rate", "fallback_rate"):
            # Rates re-weighted by each shard's dispatch volume; a
            # shard with no dispatches contributes zero weight, and an
            # all-gated merge reports a rate of 0 rather than dividing
            # by zero.
            weighted = sum(
                s.dispatch_stats.get(rate_key, 0.0)
                * s.dispatch_stats.get("dispatched", 0.0)
                for _, s in pairs
            )
            dispatch[rate_key] = weighted / dispatched if dispatched else 0.0

    first = pairs[0][1]
    return ShardedResult(
        scheme_name=first.scheme_name,
        num_shards=len(pairs),
        stats=sketch.stats(),
        sketch=sketch,
        events_processed=events,
        end_ms=end_ms,
        time_weighted_gpus=gpu_ms / span_ms if span_ms else 0.0,
        control_stats=control,
        dispatch_stats=dispatch,
        shard_walls=[s.wall_s for _, s in pairs],
    )


def run_sharded(
    spec: ExperimentSpec,
    scheme_name: str,
    num_shards: int,
    workers: int = 1,
) -> ShardedResult:
    """Run ``spec`` × ``scheme_name`` as ``num_shards`` time-window
    shards, optionally across a process pool, and merge the results.

    ``workers=1`` runs the shards inline (deterministic and
    fork-free); ``workers=N`` reuses the :func:`run_experiments`
    process pool. Either path produces the identical merged result —
    the reduction is order-independent.
    """
    specs = shard_specs(spec, num_shards)
    out = run_experiments(
        specs,
        schemes=(scheme_name,),
        workers=workers,
        summarize=summarize_shard,
    )
    pairs = [
        (shard.shard_window_ms()[0], out[shard.name][scheme_name])
        for shard in specs
    ]
    return merge_shard_summaries(pairs)


def space_shard_specs(
    spec: ExperimentSpec, num_shards: int
) -> list[ExperimentSpec]:
    """The per-shard spatial specs of ``spec`` (deterministic, picklable)."""
    if num_shards < 1:
        raise ConfigurationError("need at least one shard")
    if spec.shard is not None or spec.space_shard is not None:
        raise ConfigurationError("spec is already a shard")
    return [
        replace(spec, name=f"{spec.name}#space{k}", space_shard=(k, num_shards))
        for k in range(num_shards)
    ]


def _empty_summary(scheme_name: str, slo_ms: float) -> ShardSummary:
    """The summary of a shard that owns no requests.

    A level-partitioned trace can leave a shard empty (every owned
    level unused); merging needs its neutral element rather than a
    worker round-trip for a zero-request simulation.
    """
    return ShardSummary(
        scheme_name=scheme_name,
        sketch=StreamingLatencySummary(slo_ms=slo_ms),
        events_processed=0,
        end_ms=0.0,
        time_weighted_gpus=0.0,
        control_stats={},
        dispatch_stats={},
        wall_s=0.0,
    )


def run_spatial(
    spec: ExperimentSpec,
    scheme_name: str,
    num_shards: int,
    workers: int = 1,
) -> ShardedResult:
    """Run ``spec`` × ``scheme_name`` as ``num_shards`` spatial shards
    and merge the results (``mode="space"``).

    Each shard re-derives its request slice locally from the
    deterministic trace seed (only the compact spec crosses the
    process boundary); shards whose slice is empty are synthesised
    in-parent instead of shipping a zero-request simulation to a
    worker. See the module docstring for the equivalence conditions
    of the two ``space_partition`` modes.
    """
    specs = space_shard_specs(spec, num_shards)
    full = spec.make_trace()
    owners = space_partition_owners(spec, full, num_shards)
    counts = np.bincount(owners, minlength=num_shards)
    live = [s for s, count in zip(specs, counts) if count]
    out = run_experiments(
        live,
        schemes=(scheme_name,),
        workers=workers,
        summarize=summarize_shard,
    )
    slo_ms = get_model(spec.model).slo_ms
    pairs = [
        (
            0.0,
            out[shard.name][scheme_name]
            if counts[k]
            else _empty_summary(scheme_name, slo_ms),
        )
        for k, shard in enumerate(specs)
    ]
    return merge_shard_summaries(pairs, mode="space")
