"""Event taxonomy of the cluster simulator.

All event and payload classes carry ``__slots__``: the simulator
allocates one payload per request attempt, so per-object ``__dict__``s
would dominate allocator traffic at millions of events. The hottest
record of all — the completion payload — is additionally *pooled*
(:class:`CompletionRecord`): released records go onto a free list and
are re-initialised in place, so steady-state simulation allocates no
completion objects at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.IntEnum):
    """Ordered so same-timestamp events resolve deterministically:
    completions free capacity before new arrivals claim it, and control
    actions run before the traffic they affect. ARRIVAL never enters
    the heap (both main loops stream arrivals off the trace arrays with
    a strict ``<`` bypass, so every same-time heap event wins the tie);
    DECODE_STEP sits past it only because renumbering the existing
    kinds would change heap tie-breaks and break bit-exactness of the
    discriminative path."""

    COMPLETION = 0
    REPLACEMENT_READY = 1
    SCALE_OUT_READY = 2
    RESCHEDULE = 3
    AUTOSCALE_CHECK = 4
    INSTANCE_FAILURE = 5
    #: Multi-stream pool coordination (repro.multistream.simulation).
    COORDINATE = 6
    ARRIVAL = 7
    #: One decode-batch step boundary of the generative data plane
    #: (repro.sim.generative).
    DECODE_STEP = 8
    #: A prefill-pool instance finished a request's prompt pass
    #: (repro.sim.disagg); the KV handoff to the decode pool follows.
    PREFILL_DONE = 9
    #: KV-cache transfer between the prefill and decode pools landed
    #: (repro.sim.disagg).
    KV_TRANSFER = 10


@dataclass(frozen=True, order=True, slots=True)
class Event:
    """One scheduled simulator event.

    Ordering key: (time, kind, seq). ``payload`` is excluded from the
    ordering to keep comparisons cheap and total.

    Internally the :class:`~repro.sim.engine.EventQueue` stores plain
    ``(time_ms, kind, seq, payload)`` tuples (tuple comparison runs in
    C); this dataclass is the façade :meth:`EventQueue.pop` materialises
    for callers that want named fields.
    """

    time_ms: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


@dataclass(frozen=True, slots=True)
class ArrivalPayload:
    request_id: int
    length: int


@dataclass(frozen=True, slots=True)
class CompletionPayload:
    request_id: int
    instance_id: int
    arrival_ms: float
    length: int
    runtime_index: int
    #: Dispatch-attempt token. A request that is lost (crash, blackout)
    #: and re-dispatched gets a new token; completions carrying a stale
    #: token are ignored, so a request is never served twice.
    attempt_token: int = 0
    #: Pure service time (finish − start) of this attempt — the health
    #: monitor's deviation signal, free of queueing delay.
    service_ms: float = 0.0


class CompletionRecord:
    """Mutable, pooled counterpart of :class:`CompletionPayload`.

    The single-stream simulator schedules exactly one of these per
    dispatch attempt — the hottest allocation in the whole data plane.
    Instead of an ``instance_id`` it carries the instance object itself
    (saving a dict lookup on the completion path; instances are never
    garbage-collected mid-run, and stale-token filtering already covers
    every crash/blackout case the id lookup used to guard).

    Acquire via :func:`acquire_completion` / release via
    :func:`release_completion`, or manipulate ``COMPLETION_POOL``
    directly on the hot path. ``total_allocated`` counts true
    constructions (pool misses) so tests can certify reuse.
    """

    __slots__ = ("request_id", "instance", "arrival_ms", "length",
                 "runtime_index", "attempt_token", "service_ms")

    #: Lifetime count of real allocations (pool misses) — class-level so
    #: the allocation microbench can assert the pool actually reuses.
    total_allocated = 0

    def __init__(self) -> None:
        CompletionRecord.total_allocated += 1
        self.instance = None


#: Process-wide free list. Single-threaded by construction (each
#: simulator worker process owns its own copy).
COMPLETION_POOL: list[CompletionRecord] = []


def acquire_completion(
    request_id: int,
    instance: Any,
    arrival_ms: float,
    length: int,
    runtime_index: int,
    attempt_token: int,
    service_ms: float,
) -> CompletionRecord:
    """Take a record off the free list (or allocate) and fill it."""
    rec = COMPLETION_POOL.pop() if COMPLETION_POOL else CompletionRecord()
    rec.request_id = request_id
    rec.instance = instance
    rec.arrival_ms = arrival_ms
    rec.length = length
    rec.runtime_index = runtime_index
    rec.attempt_token = attempt_token
    rec.service_ms = service_ms
    return rec


def release_completion(rec: CompletionRecord) -> None:
    """Return a record to the free list (drops the instance ref)."""
    rec.instance = None
    COMPLETION_POOL.append(rec)


def completion_pool_stats() -> dict[str, int]:
    """Pool telemetry for benchmarks and the allocation microbench."""
    return {
        "free": len(COMPLETION_POOL),
        "total_allocated": CompletionRecord.total_allocated,
    }


class ColumnarCompletionStore:
    """Struct-of-arrays alternative to the pooled completion records
    (the ``data_plane="columnar"`` knob).

    Completion state lives in seven parallel columns indexed by an
    integer *slot*; the heap payload is just that slot. Compared to the
    pooled path this roughly halves per-completion memory (seven column
    cells vs a 7-``__slots__`` Python object plus its pointer) and
    keeps throughput at parity — the per-event work is the same number
    of interpreter operations, traded from attribute loads to list
    indexing. Slots are recycled through a free list exactly like the
    record pool, so steady-state simulation allocates nothing.

    Single-threaded by construction: each simulator run builds its own
    store.
    """

    __slots__ = ("request_id", "instance", "arrival_ms", "length",
                 "runtime_index", "attempt_token", "service_ms", "_free")

    def __init__(self) -> None:
        self.request_id: list[int] = []
        self.instance: list[Any] = []
        self.arrival_ms: list[float] = []
        self.length: list[int] = []
        self.runtime_index: list[int] = []
        self.attempt_token: list[int] = []
        self.service_ms: list[float] = []
        self._free: list[int] = []

    def acquire(
        self,
        request_id: int,
        instance: Any,
        arrival_ms: float,
        length: int,
        runtime_index: int,
        attempt_token: int,
        service_ms: float,
    ) -> int:
        """Fill a slot (recycled or fresh) and return its index."""
        free = self._free
        if free:
            slot = free.pop()
            self.request_id[slot] = request_id
            self.instance[slot] = instance
            self.arrival_ms[slot] = arrival_ms
            self.length[slot] = length
            self.runtime_index[slot] = runtime_index
            self.attempt_token[slot] = attempt_token
            self.service_ms[slot] = service_ms
            return slot
        slot = len(self.request_id)
        self.request_id.append(request_id)
        self.instance.append(instance)
        self.arrival_ms.append(arrival_ms)
        self.length.append(length)
        self.runtime_index.append(runtime_index)
        self.attempt_token.append(attempt_token)
        self.service_ms.append(service_ms)
        return slot

    def release(self, slot: int) -> None:
        """Recycle a slot (drops the instance ref)."""
        self.instance[slot] = None
        self._free.append(slot)

    def stats(self) -> dict[str, int]:
        return {
            "slots": len(self.request_id),
            "free": len(self._free),
        }


class DecodeTask:
    """Mutable, pooled per-request state of the generative data plane.

    One task tracks a prefill+decode request from placement to its
    final decode step: the generative event loop keeps tasks on
    per-instance waiting queues and active batches, advancing
    ``steps_done`` at every batch step boundary. Pooled exactly like
    :class:`CompletionRecord` — the generative simulator allocates one
    task per dispatch attempt, so the free list keeps steady-state
    allocation at zero.
    """

    __slots__ = ("request_id", "arrival_ms", "prefill_len", "decode_len",
                 "steps_done", "attempt", "service_ms", "awaiting_first")

    #: Lifetime count of real allocations (pool misses).
    total_allocated = 0

    def __init__(self) -> None:
        DecodeTask.total_allocated += 1


#: Process-wide free list (single-threaded by construction, like the
#: completion pool).
DECODE_TASK_POOL: list[DecodeTask] = []


def acquire_decode_task(
    request_id: int,
    arrival_ms: float,
    prefill_len: int,
    decode_len: int,
    attempt: int,
) -> DecodeTask:
    """Take a task off the free list (or allocate) and fill it."""
    task = DECODE_TASK_POOL.pop() if DECODE_TASK_POOL else DecodeTask()
    task.request_id = request_id
    task.arrival_ms = arrival_ms
    task.prefill_len = prefill_len
    task.decode_len = decode_len
    task.steps_done = 0
    task.attempt = attempt
    task.service_ms = 0.0
    task.awaiting_first = True
    return task


def release_decode_task(task: DecodeTask) -> None:
    """Return a task to the free list."""
    DECODE_TASK_POOL.append(task)


def decode_task_pool_stats() -> dict[str, int]:
    """Pool telemetry for benchmarks and pooling tests."""
    return {
        "free": len(DECODE_TASK_POOL),
        "total_allocated": DecodeTask.total_allocated,
    }


@dataclass(frozen=True, slots=True)
class ReplacementPayload:
    """A drained donor instance becoming a receiver runtime."""

    instance_id: int
    to_runtime: int


@dataclass(frozen=True, slots=True)
class RecoveryPayload:
    """A failed instance's GPU rejoining with a fresh runtime."""

    gpu_id: int
    runtime_index: int


@dataclass(frozen=True, slots=True)
class SlowdownEndPayload:
    """A straggler window elapsed; restore the nominal service time."""

    instance_id: int


@dataclass(frozen=True, slots=True)
class BlackoutEndPayload:
    """A blacked-out instance becomes responsive again."""

    instance_id: int


@dataclass(frozen=True, slots=True)
class RetryPayload:
    """A lost request's backoff delay elapsed; re-dispatch it."""

    request_id: int
    arrival_ms: float
    length: int
    #: How many backoff retries this request has already consumed.
    attempt: int


@dataclass(frozen=True, slots=True)
class ProbePayload:
    """A quarantined instance's breaker window elapsed; probe it."""

    instance_id: int
