"""Event taxonomy of the cluster simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.IntEnum):
    """Ordered so same-timestamp events resolve deterministically:
    completions free capacity before new arrivals claim it, and control
    actions run before the traffic they affect."""

    COMPLETION = 0
    REPLACEMENT_READY = 1
    SCALE_OUT_READY = 2
    RESCHEDULE = 3
    AUTOSCALE_CHECK = 4
    INSTANCE_FAILURE = 5
    #: Multi-stream pool coordination (repro.multistream.simulation).
    COORDINATE = 6
    ARRIVAL = 7


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled simulator event.

    Ordering key: (time, kind, seq). ``payload`` is excluded from the
    ordering to keep comparisons cheap and total.
    """

    time_ms: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


@dataclass(frozen=True)
class ArrivalPayload:
    request_id: int
    length: int


@dataclass(frozen=True)
class CompletionPayload:
    request_id: int
    instance_id: int
    arrival_ms: float
    length: int
    runtime_index: int


@dataclass(frozen=True)
class ReplacementPayload:
    """A drained donor instance becoming a receiver runtime."""

    instance_id: int
    to_runtime: int


@dataclass(frozen=True)
class RecoveryPayload:
    """A failed instance's GPU rejoining with a fresh runtime."""

    gpu_id: int
    runtime_index: int
