"""Event taxonomy of the cluster simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.IntEnum):
    """Ordered so same-timestamp events resolve deterministically:
    completions free capacity before new arrivals claim it, and control
    actions run before the traffic they affect."""

    COMPLETION = 0
    REPLACEMENT_READY = 1
    SCALE_OUT_READY = 2
    RESCHEDULE = 3
    AUTOSCALE_CHECK = 4
    INSTANCE_FAILURE = 5
    #: Multi-stream pool coordination (repro.multistream.simulation).
    COORDINATE = 6
    ARRIVAL = 7


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled simulator event.

    Ordering key: (time, kind, seq). ``payload`` is excluded from the
    ordering to keep comparisons cheap and total.
    """

    time_ms: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


@dataclass(frozen=True)
class ArrivalPayload:
    request_id: int
    length: int


@dataclass(frozen=True)
class CompletionPayload:
    request_id: int
    instance_id: int
    arrival_ms: float
    length: int
    runtime_index: int
    #: Dispatch-attempt token. A request that is lost (crash, blackout)
    #: and re-dispatched gets a new token; completions carrying a stale
    #: token are ignored, so a request is never served twice.
    attempt_token: int = 0
    #: Pure service time (finish − start) of this attempt — the health
    #: monitor's deviation signal, free of queueing delay.
    service_ms: float = 0.0


@dataclass(frozen=True)
class ReplacementPayload:
    """A drained donor instance becoming a receiver runtime."""

    instance_id: int
    to_runtime: int


@dataclass(frozen=True)
class RecoveryPayload:
    """A failed instance's GPU rejoining with a fresh runtime."""

    gpu_id: int
    runtime_index: int


@dataclass(frozen=True)
class SlowdownEndPayload:
    """A straggler window elapsed; restore the nominal service time."""

    instance_id: int


@dataclass(frozen=True)
class BlackoutEndPayload:
    """A blacked-out instance becomes responsive again."""

    instance_id: int


@dataclass(frozen=True)
class RetryPayload:
    """A lost request's backoff delay elapsed; re-dispatch it."""

    request_id: int
    arrival_ms: float
    length: int
    #: How many backoff retries this request has already consumed.
    attempt: int


@dataclass(frozen=True)
class ProbePayload:
    """A quarantined instance's breaker window elapsed; probe it."""

    instance_id: int
