"""Metrics collection: latency records, SLO accounting, GPU timelines.

Two complementary latency views coexist here:

- the **exact population** (chunked buffers → one NumPy array at
  summary time), which the paper's figures and the fidelity tests use;
- a **streaming quantile sketch** (:class:`StreamingLatencySummary`)
  with log-spaced fixed bins and running moments, giving O(1)-memory
  snapshots and an *order-independent merge* — the reduction the
  sharded simulator driver (:mod:`repro.sim.sharded`) relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EmptySketchError, SimulationError


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency population (the paper's headline metrics)."""

    count: int
    mean_ms: float
    p50_ms: float
    p98_ms: float
    p99_ms: float
    max_ms: float
    slo_violation_rate: float

    @classmethod
    def from_array(cls, latencies: np.ndarray, slo_ms: float) -> "LatencyStats":
        if latencies.size == 0:
            raise SimulationError("no completed requests to summarise")
        return cls(
            count=int(latencies.size),
            mean_ms=float(latencies.mean()),
            p50_ms=float(np.percentile(latencies, 50)),
            p98_ms=float(np.percentile(latencies, 98)),
            p99_ms=float(np.percentile(latencies, 99)),
            max_ms=float(latencies.max()),
            slo_violation_rate=float(np.mean(latencies > slo_ms)),
        )


class StreamingLatencySummary:
    """Mergeable quantile sketch over log-spaced fixed bins.

    Values are mapped to geometric bins ``lo·g^k`` with growth factor
    ``g``; a quantile query returns the geometric midpoint of the bin
    holding the target rank, so the relative error of any quantile is
    bounded by ``√g − 1`` (≈0.5 % at the default ``g = 1.01``) for
    values inside ``[lo, hi]``. Alongside the bins it keeps exact
    running moments (count, sum, sum of squares, min, max) and the SLO
    violation count.

    ``merge`` adds two sketches bin-wise — a commutative, associative
    reduction, so shard summaries can be combined in any order and the
    result is independent of the worker count.
    """

    __slots__ = ("lo_ms", "growth", "slo_ms", "num_bins", "_log_growth",
                 "counts", "count", "total_ms", "total_sq_ms", "min_ms",
                 "max_ms", "violations")

    #: Defaults cover 0.05 ms .. 10⁷ ms at ≤0.5 % relative error.
    DEFAULT_LO_MS = 0.05
    DEFAULT_HI_MS = 1e7
    DEFAULT_GROWTH = 1.01

    def __init__(
        self,
        slo_ms: float = float("inf"),
        lo_ms: float = DEFAULT_LO_MS,
        hi_ms: float = DEFAULT_HI_MS,
        growth: float = DEFAULT_GROWTH,
    ):
        if lo_ms <= 0 or hi_ms <= lo_ms:
            raise SimulationError("need 0 < lo < hi for the sketch span")
        if growth <= 1.0:
            raise SimulationError("growth factor must exceed 1")
        self.lo_ms = lo_ms
        self.growth = growth
        self.slo_ms = slo_ms
        self._log_growth = math.log(growth)
        # bin 0: v <= lo; bins 1..B-2: (lo·g^(k-1), lo·g^k];
        # bin B-1: overflow (> hi).
        self.num_bins = (
            int(math.ceil(math.log(hi_ms / lo_ms) / self._log_growth)) + 2
        )
        self.counts = np.zeros(self.num_bins, dtype=np.int64)
        self.count = 0
        self.total_ms = 0.0
        self.total_sq_ms = 0.0
        self.min_ms = math.inf
        self.max_ms = 0.0
        self.violations = 0

    # -- ingestion --------------------------------------------------------
    def _bin_of(self, value_ms: float) -> int:
        if value_ms <= self.lo_ms:
            return 0
        k = 1 + int(math.log(value_ms / self.lo_ms) / self._log_growth)
        return k if k < self.num_bins else self.num_bins - 1

    def add(self, value_ms: float) -> None:
        """Record one latency sample."""
        if value_ms < 0:
            raise SimulationError("negative latency recorded")
        self.counts[self._bin_of(value_ms)] += 1
        self.count += 1
        self.total_ms += value_ms
        self.total_sq_ms += value_ms * value_ms
        if value_ms < self.min_ms:
            self.min_ms = value_ms
        if value_ms > self.max_ms:
            self.max_ms = value_ms
        if value_ms > self.slo_ms:
            self.violations += 1

    def add_array(self, values_ms: np.ndarray) -> None:
        """Vectorised bulk ingestion (the collector feeds whole chunks)."""
        values_ms = np.asarray(values_ms, dtype=float)
        if values_ms.size == 0:
            return
        if values_ms.min() < 0:
            raise SimulationError("negative latency recorded")
        clipped = np.maximum(values_ms, self.lo_ms)
        bins = 1 + np.floor(
            np.log(clipped / self.lo_ms) / self._log_growth
        ).astype(np.int64)
        bins[values_ms <= self.lo_ms] = 0
        np.minimum(bins, self.num_bins - 1, out=bins)
        self.counts += np.bincount(bins, minlength=self.num_bins)
        self.count += int(values_ms.size)
        self.total_ms += float(values_ms.sum())
        self.total_sq_ms += float(np.square(values_ms).sum())
        self.min_ms = min(self.min_ms, float(values_ms.min()))
        self.max_ms = max(self.max_ms, float(values_ms.max()))
        self.violations += int(np.count_nonzero(values_ms > self.slo_ms))

    # -- queries ----------------------------------------------------------
    def _bin_value(self, k: int) -> float:
        if k == 0:
            return self.lo_ms
        # Geometric midpoint of (lo·g^(k-1), lo·g^k].
        return self.lo_ms * self.growth ** (k - 1) * math.sqrt(self.growth)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (relative error ≤ √growth − 1).

        The extremes are exact: ``quantile(0.0)`` returns the running
        minimum and ``quantile(1.0)`` the running maximum rather than
        the midpoint of whichever bin holds them.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            raise EmptySketchError("empty sketch has no quantiles")
        if q == 0.0:
            return self.min_ms
        if q == 1.0:
            return self.max_ms
        rank = min(int(math.ceil(q * self.count)), self.count) or 1
        k = int(np.searchsorted(np.cumsum(self.counts), rank))
        return min(max(self._bin_value(k), self.min_ms), self.max_ms)

    def quantiles(self, qs) -> list[float]:
        """Batch :meth:`quantile` (exporter convenience)."""
        return [self.quantile(q) for q in qs]

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def variance(self) -> float:
        if self.count == 0:
            return 0.0
        m = self.mean_ms
        return max(self.total_sq_ms / self.count - m * m, 0.0)

    def stats(self) -> LatencyStats:
        """Sketch-backed :class:`LatencyStats` (quantiles approximate,
        moments/extremes/violation-rate exact).

        Raises :class:`EmptySketchError` on an empty sketch — the stats
        of zero samples would otherwise surface as NaN/inf fields that
        exporters would happily serialize.
        """
        if self.count == 0:
            raise EmptySketchError("no completed requests to summarise")
        return LatencyStats(
            count=self.count,
            mean_ms=self.mean_ms,
            p50_ms=self.quantile(0.50),
            p98_ms=self.quantile(0.98),
            p99_ms=self.quantile(0.99),
            max_ms=self.max_ms,
            slo_violation_rate=self.violations / self.count,
        )

    # -- reduction --------------------------------------------------------
    def _compatible(self, other: "StreamingLatencySummary") -> bool:
        return (
            self.lo_ms == other.lo_ms
            and self.growth == other.growth
            and self.num_bins == other.num_bins
            and self.slo_ms == other.slo_ms
        )

    def merge(self, other: "StreamingLatencySummary") -> None:
        """Absorb another sketch (commutative + associative)."""
        if not self._compatible(other):
            raise SimulationError("cannot merge incompatible sketches")
        self.counts += other.counts
        self.count += other.count
        self.total_ms += other.total_ms
        self.total_sq_ms += other.total_sq_ms
        self.min_ms = min(self.min_ms, other.min_ms)
        self.max_ms = max(self.max_ms, other.max_ms)
        self.violations += other.violations


class MetricsCollector:
    """Streaming per-request records plus step timelines.

    Latencies are appended to plain-list chunks (amortised O(1); list
    appends beat per-element NumPy stores ~5× on the hot path) and
    exposed as one NumPy array at summary time. Each full chunk is also
    folded into a :class:`StreamingLatencySummary`, so an O(1)-memory
    approximate snapshot is available at any time via
    :meth:`snapshot_stats` without touching the exact population.
    """

    _CHUNK = 65_536

    def __init__(self, slo_ms: float):
        if slo_ms <= 0:
            raise SimulationError("SLO must be positive")
        self.slo_ms = slo_ms
        self._chunks: list[np.ndarray] = []
        self._current: list[float] = []
        self._runtime_chunks: list[np.ndarray] = []
        self._current_runtime: list[int] = []
        self.sketch = StreamingLatencySummary(slo_ms=slo_ms)
        #: How many entries of ``_current`` are already in the sketch.
        self._sketched = 0
        #: (time, gpu_count) step samples for the Fig. 8 timeline.
        self.gpu_timeline: list[tuple[float, int]] = []
        #: (time, allocation) samples for the Fig. 12 timeline.
        self.allocation_timeline: list[tuple[float, np.ndarray]] = []
        self.deferred_requests = 0

    # -- per-request ------------------------------------------------------
    def record(self, latency_ms: float, runtime_index: int) -> None:
        if latency_ms < 0:
            raise SimulationError("negative latency recorded")
        current = self._current
        current.append(latency_ms)
        self._current_runtime.append(runtime_index)
        if len(current) == self._CHUNK:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        chunk = np.asarray(self._current)
        self._chunks.append(chunk)
        self._runtime_chunks.append(
            np.asarray(self._current_runtime, dtype=np.int32)
        )
        self.sketch.add_array(chunk[self._sketched:])
        self._sketched = 0
        self._current = []
        self._current_runtime = []

    def _sync_sketch(self) -> None:
        """Fold not-yet-sketched tail records into the sketch."""
        if self._sketched < len(self._current):
            self.sketch.add_array(np.asarray(self._current[self._sketched:]))
            self._sketched = len(self._current)

    @property
    def completed(self) -> int:
        return len(self._chunks) * self._CHUNK + len(self._current)

    def latencies(self) -> np.ndarray:
        parts = self._chunks + [np.asarray(self._current)]
        return np.concatenate(parts) if parts else np.empty(0)

    def runtime_indexes(self) -> np.ndarray:
        parts = self._runtime_chunks + [
            np.asarray(self._current_runtime, dtype=np.int32)
        ]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int32)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_array(self.latencies(), self.slo_ms)

    def snapshot_stats(self) -> LatencyStats:
        """O(1)-memory approximate stats from the streaming sketch
        (quantile error bounded by the sketch's √growth − 1)."""
        self._sync_sketch()
        return self.sketch.stats()

    def snapshot_sketch(self) -> StreamingLatencySummary:
        """The up-to-date sketch (shared, not a copy) — the shard
        driver's mergeable latency summary."""
        self._sync_sketch()
        return self.sketch

    def per_runtime_mean(self) -> dict[int, float]:
        """Mean latency by serving runtime (deep-dive reports)."""
        lat = self.latencies()
        idx = self.runtime_indexes()
        return {
            int(r): float(lat[idx == r].mean()) for r in np.unique(idx)
        }

    # -- timelines --------------------------------------------------------
    def sample_gpus(self, now_ms: float, count: int) -> None:
        self.gpu_timeline.append((now_ms, count))

    def sample_allocation(self, now_ms: float, allocation: np.ndarray) -> None:
        self.allocation_timeline.append((now_ms, allocation.copy()))

    def time_weighted_gpus(self, end_ms: float) -> float:
        """Integral of the GPU-count step function divided by the horizon."""
        if not self.gpu_timeline:
            raise SimulationError("no GPU samples collected")
        total = 0.0
        for (t0, n), (t1, _) in zip(self.gpu_timeline, self.gpu_timeline[1:]):
            total += n * (t1 - t0)
        last_t, last_n = self.gpu_timeline[-1]
        total += last_n * max(end_ms - last_t, 0.0)
        horizon = end_ms - self.gpu_timeline[0][0]
        if horizon <= 0:
            return float(last_n)
        return total / horizon
