"""Metrics collection: latency records, SLO accounting, GPU timelines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency population (the paper's headline metrics)."""

    count: int
    mean_ms: float
    p50_ms: float
    p98_ms: float
    p99_ms: float
    max_ms: float
    slo_violation_rate: float

    @classmethod
    def from_array(cls, latencies: np.ndarray, slo_ms: float) -> "LatencyStats":
        if latencies.size == 0:
            raise SimulationError("no completed requests to summarise")
        return cls(
            count=int(latencies.size),
            mean_ms=float(latencies.mean()),
            p50_ms=float(np.percentile(latencies, 50)),
            p98_ms=float(np.percentile(latencies, 98)),
            p99_ms=float(np.percentile(latencies, 99)),
            max_ms=float(latencies.max()),
            slo_violation_rate=float(np.mean(latencies > slo_ms)),
        )


class MetricsCollector:
    """Streaming per-request records plus step timelines.

    Latencies are appended to growing chunked buffers (amortised O(1),
    no per-request Python object retention) and exposed as one NumPy
    array at summary time.
    """

    _CHUNK = 65_536

    def __init__(self, slo_ms: float):
        if slo_ms <= 0:
            raise SimulationError("SLO must be positive")
        self.slo_ms = slo_ms
        self._chunks: list[np.ndarray] = []
        self._current = np.empty(self._CHUNK)
        self._runtime_chunks: list[np.ndarray] = []
        self._current_runtime = np.empty(self._CHUNK, dtype=np.int32)
        self._fill = 0
        #: (time, gpu_count) step samples for the Fig. 8 timeline.
        self.gpu_timeline: list[tuple[float, int]] = []
        #: (time, allocation) samples for the Fig. 12 timeline.
        self.allocation_timeline: list[tuple[float, np.ndarray]] = []
        self.deferred_requests = 0

    # -- per-request ------------------------------------------------------
    def record(self, latency_ms: float, runtime_index: int) -> None:
        if latency_ms < 0:
            raise SimulationError("negative latency recorded")
        if self._fill == self._CHUNK:
            self._chunks.append(self._current)
            self._runtime_chunks.append(self._current_runtime)
            self._current = np.empty(self._CHUNK)
            self._current_runtime = np.empty(self._CHUNK, dtype=np.int32)
            self._fill = 0
        self._current[self._fill] = latency_ms
        self._current_runtime[self._fill] = runtime_index
        self._fill += 1

    @property
    def completed(self) -> int:
        return len(self._chunks) * self._CHUNK + self._fill

    def latencies(self) -> np.ndarray:
        parts = self._chunks + [self._current[: self._fill]]
        return np.concatenate(parts) if parts else np.empty(0)

    def runtime_indexes(self) -> np.ndarray:
        parts = self._runtime_chunks + [self._current_runtime[: self._fill]]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int32)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_array(self.latencies(), self.slo_ms)

    def per_runtime_mean(self) -> dict[int, float]:
        """Mean latency by serving runtime (deep-dive reports)."""
        lat = self.latencies()
        idx = self.runtime_indexes()
        return {
            int(r): float(lat[idx == r].mean()) for r in np.unique(idx)
        }

    # -- timelines --------------------------------------------------------
    def sample_gpus(self, now_ms: float, count: int) -> None:
        self.gpu_timeline.append((now_ms, count))

    def sample_allocation(self, now_ms: float, allocation: np.ndarray) -> None:
        self.allocation_timeline.append((now_ms, allocation.copy()))

    def time_weighted_gpus(self, end_ms: float) -> float:
        """Integral of the GPU-count step function divided by the horizon."""
        if not self.gpu_timeline:
            raise SimulationError("no GPU samples collected")
        total = 0.0
        for (t0, n), (t1, _) in zip(self.gpu_timeline, self.gpu_timeline[1:]):
            total += n * (t1 - t0)
        last_t, last_n = self.gpu_timeline[-1]
        total += last_n * max(end_ms - last_t, 0.0)
        horizon = end_ms - self.gpu_timeline[0][0]
        if horizon <= 0:
            return float(last_n)
        return total / horizon
