"""The event queue: a deterministic time-ordered heap.

Internally the heap stores plain ``(time_ms, kind, seq, payload)``
tuples, not :class:`Event` objects: tuple comparison runs entirely in
C, and no object is allocated per push beyond the tuple itself.
:meth:`EventQueue.pop` materialises the :class:`Event` façade for
callers that want named fields; the simulator's hot loop uses
:meth:`pop_batch` instead, which drains a maximal run of
same-``(time, kind)`` events in one call and hands back only their
payloads.

Payloads are opaque to the queue: the pooled data plane schedules
completion *record objects*, while the columnar data plane
(``data_plane="columnar"``) schedules bare integer *slots* into a
:class:`~repro.sim.events.ColumnarCompletionStore` — same heap, same
ordering, different payload representation.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any

from repro.errors import SimulationError
from repro.sim.events import Event, EventKind


class EventQueue:
    """Min-heap of events with monotonic pop times.

    Determinism: ties on time break by :class:`EventKind` (completions
    before arrivals), then by insertion order. Pushing an event earlier
    than the last popped time is a logic error and raises.
    """

    __slots__ = ("_heap", "_seq", "_now", "_popped")

    def __init__(self) -> None:
        self._heap: list[tuple[float, EventKind, int, Any]] = []
        self._seq = 0
        self._now = 0.0
        self._popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def now_ms(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._popped

    def push(self, time_ms: float, kind: EventKind, payload: Any = None) -> None:
        time_ms = float(time_ms)
        if time_ms < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule {kind.name} at {time_ms} before the "
                f"current time {self._now}"
            )
        heappush(self._heap, (time_ms, kind, self._seq, payload))
        self._seq += 1

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time_ms, kind, seq, payload = heappop(self._heap)
        self._now = time_ms
        self._popped += 1
        return Event(time_ms, kind, seq, payload)

    def pop_batch(self, out: list) -> tuple[float, EventKind, int]:
        """Drain the maximal run of same-``(time, kind)`` head events.

        Clears ``out`` and appends the popped payloads in seq order;
        returns ``(time_ms, kind, count)``. Grouping by *(time, kind)*
        — not just time — keeps batch processing order-equivalent to
        one-by-one popping: a handler can only ever schedule same-time
        events of a *larger* kind (completions never spawn same-time
        completions; arrivals sort after everything), so no event that
        should interleave with the batch can be pushed while the batch
        is being processed.
        """
        heap = self._heap
        if not heap:
            raise SimulationError("pop from an empty event queue")
        out.clear()
        time_ms, kind, _seq, payload = heappop(heap)
        out.append(payload)
        n = 1
        while heap:
            head = heap[0]
            if head[0] != time_ms or head[1] is not kind:
                break
            out.append(heappop(heap)[3])
            n += 1
        self._now = time_ms
        self._popped += n
        return time_ms, kind, n

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None
