"""The event queue: a deterministic time-ordered heap."""

from __future__ import annotations

import heapq
from typing import Any

from repro.errors import SimulationError
from repro.sim.events import Event, EventKind


class EventQueue:
    """Min-heap of :class:`Event` with monotonic pop times.

    Determinism: ties on time break by :class:`EventKind` (completions
    before arrivals), then by insertion order. Pushing an event earlier
    than the last popped time is a logic error and raises.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def now_ms(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._popped

    def push(self, time_ms: float, kind: EventKind, payload: Any = None) -> Event:
        if time_ms < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule {kind.name} at {time_ms} before the "
                f"current time {self._now}"
            )
        event = Event(time_ms=float(time_ms), kind=kind, seq=self._seq,
                      payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time_ms
        self._popped += 1
        return event

    def peek_time(self) -> float | None:
        return self._heap[0].time_ms if self._heap else None
