"""Control plane: replacement execution and auto-scaling inside the sim.

The Runtime Scheduler only *plans*; this module executes plans against
the simulated cluster with the paper's timing model: donors drain
(finish outstanding work while accepting nothing new), then the swap
takes ~1 s, then the receiver runtime goes live on the same GPU.
Replacement batches start staggered so uninvolved instances never see
a capacity cliff. Auto-scaling follows §4: scale-out provisions a new
worker with the maximum-length runtime; scale-in drains and releases
the least busy instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.schemes import Scheme
from repro.cluster.autoscaler import ScaleAction, TargetTrackingAutoscaler
from repro.cluster.instance import RuntimeInstance
from repro.cluster.replacement import REPLACEMENT_DURATION_MS, ReplacementPlan
from repro.errors import SimulationError
from repro.obs.timeline import ControlTimeline
from repro.sim.engine import EventQueue
from repro.sim.events import EventKind

#: Time to provision a fresh GPU worker and load a runtime (scale-out).
PROVISION_DELAY_MS = 1_000.0


@dataclass(frozen=True)
class DrainTrigger:
    """Start draining an instance (staggered replacement batch)."""

    instance_id: int
    to_runtime: int | None  # None = scale-in: release the GPU afterwards


@dataclass(frozen=True)
class SwapReady:
    """A drained instance finished its ~1 s swap window."""

    instance_id: int
    to_runtime: int | None


@dataclass
class ControlPlane:
    """Executes replacement plans and scaling actions event-by-event."""

    scheme: Scheme
    queue: EventQueue
    autoscaler: TargetTrackingAutoscaler | None = None
    #: When set, every event payload this plane pushes is wrapped as
    #: ``(payload_tag, payload)`` — used by the multi-stream simulator
    #: to route shared-queue events back to the owning stream.
    payload_tag: int | None = None
    #: Observability sink: when set, replacement and autoscaler actions
    #: are recorded as control-plane timeline events.
    timeline: "ControlTimeline | None" = None
    #: instance_id -> target runtime (None = scale-in).
    _pending: dict[int, int | None] = field(default_factory=dict)
    #: Instances that crashed; their stale swap events are ignored.
    _failed: set[int] = field(default_factory=set)
    replacements_executed: int = 0
    scale_outs: int = 0
    scale_ins: int = 0

    def note_failure(self, instance_id: int) -> None:
        """Record a crash so stale control events for it are dropped."""
        self._failed.add(instance_id)
        self._pending.pop(instance_id, None)

    def _wrap(self, payload):
        return payload if self.payload_tag is None else (self.payload_tag,
                                                         payload)

    # -- replacement -----------------------------------------------------
    def start_plan(self, now_ms: float, plan: ReplacementPlan) -> None:
        """Begin draining plan donors, batch by batch."""
        if self.timeline is not None and not plan.is_empty:
            self.timeline.record(
                now_ms, "replacement", "plan",
                steps=len(plan), batch_size=plan.batch_size,
            )
        for batch_no, batch in enumerate(plan.batches()):
            start = now_ms + batch_no * REPLACEMENT_DURATION_MS
            for step in batch:
                if batch_no == 0:
                    self._try_begin_drain(now_ms, step.instance_id, step.to_runtime)
                else:
                    self.queue.push(
                        start,
                        EventKind.REPLACEMENT_READY,
                        self._wrap(
                            DrainTrigger(step.instance_id, step.to_runtime)
                        ),
                    )

    def _try_begin_drain(
        self, now_ms: float, instance_id: int, target: int | None
    ) -> None:
        instance = self.scheme.cluster.instances.get(instance_id)
        if instance is None or not instance.is_active:
            return  # raced with scaling or an earlier plan; skip
        instance.begin_drain()
        # A quarantined donor (breaker open) is active but already out
        # of the queue — removing it again would raise.
        if self.scheme.mlq.contains(instance):
            self.scheme.mlq.remove(instance)
        self._pending[instance.instance_id] = target
        if instance.outstanding == 0:
            self._schedule_swap(now_ms, instance)

    def _schedule_swap(self, now_ms: float, instance: RuntimeInstance) -> None:
        target = self._pending[instance.instance_id]
        self.queue.push(
            now_ms + REPLACEMENT_DURATION_MS,
            EventKind.REPLACEMENT_READY,
            self._wrap(SwapReady(instance.instance_id, target)),
        )

    def on_completion(self, now_ms: float, instance: RuntimeInstance) -> None:
        """Hook from the simulator: a draining donor may now be empty."""
        if instance.instance_id in self._pending and instance.drained():
            self._schedule_swap(now_ms, instance)

    def on_replacement_event(self, now_ms: float, payload) -> RuntimeInstance | None:
        """Handle REPLACEMENT_READY events; returns any new instance."""
        if isinstance(payload, DrainTrigger):
            self._try_begin_drain(now_ms, payload.instance_id, payload.to_runtime)
            return None
        if not isinstance(payload, SwapReady):
            raise SimulationError(f"unexpected replacement payload {payload!r}")
        instance = self.scheme.cluster.instances.get(payload.instance_id)
        if instance is None:
            if payload.instance_id in self._failed:
                return None  # the donor crashed mid-swap; plan abandoned
            raise SimulationError(
                f"swap fired for unknown instance {payload.instance_id}"
            )
        self._pending.pop(payload.instance_id, None)
        gpu = self.scheme.cluster.retire_instance(instance)
        if payload.to_runtime is None:
            self.scheme.cluster.release_gpu(gpu.gpu_id, now_ms)
            self.scale_ins += 1
            if self.timeline is not None:
                self.timeline.record(
                    now_ms, "autoscaler", "scale_in",
                    instance=payload.instance_id,
                    gpus=self.scheme.cluster.num_gpus,
                )
            return None
        new_instance = self.scheme.cluster.deploy(payload.to_runtime, gpu)
        self.scheme.mlq.add(new_instance)
        self.replacements_executed += 1
        if self.timeline is not None:
            self.timeline.record(
                now_ms, "replacement", "swap",
                instance=payload.instance_id,
                new_instance=new_instance.instance_id,
                to_runtime=payload.to_runtime,
            )
        return new_instance

    # -- auto-scaling ------------------------------------------------------
    def _cluster_utilization(self) -> float:
        """Outstanding work over total within-SLO capacity (can exceed 1).

        O(1): reads the congestion tracker's maintained aggregates
        instead of scanning every instance on each autoscaler sample.
        """
        return self.scheme.cluster.congestion.utilization()

    def autoscale_check(self, now_ms: float) -> None:
        if self.autoscaler is None:
            return
        self.autoscaler.observe_utilization(self._cluster_utilization())
        action = self.autoscaler.decide(now_ms, self.scheme.cluster.num_gpus)
        if action is ScaleAction.OUT:
            if self.timeline is not None:
                self.timeline.record(
                    now_ms, "autoscaler", "scale_out_requested",
                    gpus=self.scheme.cluster.num_gpus,
                    **self.autoscaler.signal(),
                )
            self.queue.push(
                now_ms + PROVISION_DELAY_MS,
                EventKind.SCALE_OUT_READY,
                self._wrap(self.scheme.scale_out_runtime_index),
            )
        elif action is ScaleAction.IN:
            victim = self._scale_in_victim()
            if victim is not None:
                if self.timeline is not None:
                    self.timeline.record(
                        now_ms, "autoscaler", "scale_in_started",
                        instance=victim.instance_id,
                        gpus=self.scheme.cluster.num_gpus,
                        **self.autoscaler.signal(),
                    )
                self._try_begin_drain(now_ms, victim.instance_id, None)

    def on_scale_out_ready(self, now_ms: float, runtime_index: int) -> RuntimeInstance:
        gpu = self.scheme.cluster.add_gpu(now_ms)
        instance = self.scheme.cluster.deploy(runtime_index, gpu)
        self.scheme.mlq.add(instance)
        self.scale_outs += 1
        if self.timeline is not None:
            self.timeline.record(
                now_ms, "autoscaler", "scale_out",
                instance=instance.instance_id,
                runtime_index=runtime_index,
                gpus=self.scheme.cluster.num_gpus,
            )
        return instance

    def _scale_in_victim(self) -> RuntimeInstance | None:
        """Least busy active instance, preserving Eq. 7's top level."""
        top = len(self.scheme.registry) - 1
        active = self.scheme.cluster.active_instances()
        if len(active) <= 1:
            return None
        top_count = sum(1 for i in active if i.runtime_index == top)
        candidates = [
            i for i in active if i.runtime_index != top or top_count > 1
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda i: (i.outstanding, i.instance_id))

    @property
    def has_pending_work(self) -> bool:
        return bool(self._pending)
