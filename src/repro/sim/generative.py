"""Generative (prefill + decode) serving on the discrete-event core.

The discriminative simulator models a request as one indivisible
service interval. Generative LLM serving is different in kind: a
request *prefills* its prompt once, then emits tokens over many decode
*steps*, and instances run those steps as a batch whose membership can
change at every step boundary (continuous batching). This module adds
that data plane on top of the same pooled event queue, the same
length-aware Algorithm-1 placement, and the same control plane:

- **Placement** stays Arlo's Algorithm 1 over *prefill* length: the
  candidate walk (`ArloRequestScheduler._walk`) picks a staircase tier
  whose ``max_length`` fits the prompt, probing congestion
  ``P = outstanding / capacity``. ``outstanding`` counts a generative
  request from admission to its *final decode step*, so probes see
  decode occupancy, not just queued prefills; the congestion tracker
  additionally splits per-level occupancy into queued vs decoding
  (``CongestionTracker.decoding``).
- **Decode loop**: each instance owns a waiting queue and an active
  batch. Requests join at step boundaries only (while a step is in
  flight the batch is immutable). One ``DECODE_STEP`` event covers
  ``k`` steps (``chunk_steps`` slicing) of the whole batch; its
  duration is batch-size-dependent, derived from the runtime profile::

      step(k, b) = (pending_prefill + k * (overhead + per_seq * b))
                   * slow_factor

  where ``per_seq = service_table_ms[1] - overhead_ms`` (so a lone
  request's single step costs exactly ``service_table_ms[1]``) and
  ``pending_prefill`` is the summed prefill cost of members that
  joined since the last step. With ``continuous_batching=False`` the
  batch is gang-scheduled: new requests wait until the active batch
  fully drains.
- **Faults** reuse the discriminative taxonomy. A crash or blackout
  voids the instance's waiting queue and active batch; the in-flight
  step event is invalidated by bumping the per-instance ``token``
  (completions are computed at step-fire time and never scheduled
  ahead, so no attempt tokens or in-flight FIFOs are needed). Lost
  requests re-enter through the same retry policy/budget; a
  re-dispatched request restarts decoding from step zero.

Observability: sampled spans record ``admit``/``dispatch``/``defer``/
``retry`` as usual, plus a ``first_token`` event (TTFT and the batch
size that produced it) and ``decode_steps`` on ``complete``. The
Algorithm-1 probe narration is not emitted on this path — the walk is
shared with the fast dispatch and stays allocation-free.

Determinism: the loop is single-threaded over the same deterministic
event queue; two runs of the same (trace, scheme, config) are
bit-identical. The discriminative path is untouched — `run_simulation`
delegates here only when ``SimulationConfig.generative`` is set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop
from time import perf_counter

from repro.baselines.dispatchers import ArloDispatcher
from repro.baselines.schemes import Scheme
from repro.cluster.instance import InstanceStatus, RuntimeInstance
from repro.errors import (
    CapacityError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
)
from repro.obs.spans import RequestTracer
from repro.obs.timeline import ControlTimeline
from repro.resilience.retry import RetryBudget
from repro.sim.controller import ControlPlane
from repro.sim.engine import EventQueue
from repro.sim.events import (
    BlackoutEndPayload,
    EventKind,
    RecoveryPayload,
    RetryPayload,
    SlowdownEndPayload,
    acquire_decode_task,
    release_decode_task,
)
from repro.sim.faults import (
    BlackoutEvent,
    FailureEvent,
    SlowdownEvent,
    SolverFaultEvent,
)
from repro.sim.metrics import MetricsCollector, StreamingLatencySummary
from repro.workload.generative import GenerativeTrace


@dataclass(frozen=True)
class GenerativeConfig:
    """Decode-loop knobs, attached to ``SimulationConfig.generative``.

    ``max_batch`` caps an instance's active decode batch. ``chunk_steps``
    sets the step-slice granularity: one DECODE_STEP event advances the
    batch by up to ``chunk_steps`` token steps (clamped to the nearest
    member completion, so membership changes are never skipped over).
    ``continuous_batching=False`` gang-schedules instead: waiting
    requests join only when the active batch has fully drained.
    """

    max_batch: int = 8
    continuous_batching: bool = True
    chunk_steps: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.chunk_steps < 1:
            raise ConfigurationError("chunk_steps must be >= 1")


class _DecodeState:
    """Per-instance decode loop state.

    Invariant: while ``stepping`` is True the active batch is immutable
    — admissions land in ``waiting`` and join at the next step boundary
    (``_refill``). ``token`` invalidates the in-flight DECODE_STEP
    event on crash/blackout (the event's payload carries the token it
    was scheduled under).
    """

    __slots__ = ("instance", "waiting", "active", "token", "stepping",
                 "pending_prefill_ms", "step_k", "step_dur", "table",
                 "overhead_ms", "per_seq_ms")

    def __init__(self, instance: RuntimeInstance):
        self.instance = instance
        self.waiting: deque = deque()
        self.active: list = []
        self.token = 0
        self.stepping = False
        #: Prefill cost of members joined since the last step fired;
        #: folded into the next step's duration, then zeroed.
        self.pending_prefill_ms = 0.0
        self.step_k = 0
        self.step_dur = 0.0
        table = instance._service_table
        self.table = table
        overhead = instance.profile.overhead_ms
        self.overhead_ms = overhead
        # Per-token decode cost: calibrated so a batch of one advancing
        # one step costs exactly the profiled length-1 service time.
        self.per_seq_ms = table[1] - overhead


def run_generative_simulation(
    scheme: Scheme,
    trace: GenerativeTrace,
    config,
) -> "SimulationResult":
    """Serve a prefill+decode trace with continuous batching.

    ``config`` is a :class:`~repro.sim.simulation.SimulationConfig`
    whose ``generative`` field is set; `run_simulation` delegates here
    so callers never invoke this directly.
    """
    # Deferred import: simulation.py lazily imports this module, so a
    # top-level back-import would be circular.
    from repro.sim.simulation import SimulationResult

    wall_start = perf_counter()
    if not isinstance(trace, GenerativeTrace):
        raise ConfigurationError(
            "generative simulation needs a GenerativeTrace "
            "(attach decode lengths with attach_decode_lengths)"
        )
    if not len(trace):
        raise SimulationError("cannot simulate an empty trace")
    if not isinstance(scheme.dispatcher, ArloDispatcher):
        raise ConfigurationError(
            "the generative data plane requires Algorithm-1 placement "
            f"(Arlo-family scheme), got {scheme.name!r}"
        )
    if config.enable_autoscaler:
        raise ConfigurationError(
            "generative simulation does not support the autoscaler yet"
        )
    if config.resilience is not None:
        raise ConfigurationError(
            "generative simulation does not support the resilience "
            "manager yet (retry policy and fault plans are supported)"
        )
    gen: GenerativeConfig = config.generative
    max_batch = gen.max_batch
    continuous = gen.continuous_batching
    chunk_steps = gen.chunk_steps

    queue = EventQueue()
    metrics = MetricsCollector(slo_ms=scheme.slo_ms)
    obs = config.observability
    tracer: RequestTracer | None = None
    timeline: ControlTimeline | None = None
    if obs is not None:
        if obs.sample_rate > 0:
            tracer = RequestTracer(obs.sample_rate, obs.max_spans)
        if obs.timeline:
            timeline = ControlTimeline()
    control = ControlPlane(scheme=scheme, queue=queue, timeline=timeline)

    retry_policy = config.retry
    retry_rng = retry_policy.rng() if retry_policy is not None else None
    retry_budget = (
        RetryBudget(retry_policy.budget_for(len(trace)))
        if retry_policy is not None
        else None
    )

    arrivals_np = trace.arrival_ms
    prefill_np = trace.length
    arrivals_ms = arrivals_np.tolist()
    prefills = prefill_np.tolist()
    decode_lens = trace.decode_len.tolist()
    n_requests = len(trace)
    next_arrival = 0
    observed_upto = 0
    #: (request_id, retries already consumed) — prefill/decode lengths
    #: are recovered from the trace arrays by id.
    deferred: list[tuple[int, int]] = []
    outstanding = 0
    completed = 0
    last_gpu_count = scheme.cluster.num_gpus
    metrics.sample_gpus(0.0, last_gpu_count)
    failures_injected = 0
    requests_lost = 0
    slowdowns_injected = 0
    blackouts_injected = 0
    solver_faults_injected = 0
    timeouts = 0
    retries_scheduled = 0
    pending_retries = 0
    decode_steps_total = 0
    step_events = 0
    batch_joins = 0

    dispatcher = scheme.dispatcher
    scheduler = dispatcher.scheduler
    walk = scheduler._walk
    mlq = scheme.mlq
    estimator = scheme.demand_estimator
    runtime_scheduler = scheme.runtime_scheduler
    warmup_ms = config.warmup_ms
    max_events = config.max_events
    ttft = StreamingLatencySummary()

    #: instance_id -> _DecodeState; created on first placement, popped
    #: on crash/blackout (resumed instances get a fresh state).
    states: dict[int, _DecodeState] = {}

    DECODE_STEP = EventKind.DECODE_STEP

    def flush_observations() -> None:
        nonlocal observed_upto
        if estimator is not None and observed_upto < next_arrival:
            estimator.observe_batch(
                arrivals_np[observed_upto:next_arrival],
                prefill_np[observed_upto:next_arrival],
            )
            observed_upto = next_arrival

    def work_remaining() -> bool:
        return (
            next_arrival + 1 < n_requests
            or outstanding > 0
            or bool(deferred)
            or pending_retries > 0
            or control.has_pending_work
        )

    def schedule_step(state: _DecodeState, now_ms: float) -> None:
        """Launch the next batch step (active is non-empty)."""
        nonlocal step_events
        inst = state.instance
        active = state.active
        b = len(active)
        k = chunk_steps
        if k > 1:
            # Clamp to the nearest member completion so batch
            # membership can change at the boundary it occurs on.
            remaining = min(t.decode_len - t.steps_done for t in active)
            if remaining < k:
                k = remaining
        dur = (
            state.pending_prefill_ms
            + k * (state.overhead_ms + state.per_seq_ms * b)
        ) * inst.slow_factor
        state.pending_prefill_ms = 0.0
        state.step_k = k
        state.step_dur = dur
        state.stepping = True
        step_events += 1
        queue.push(now_ms + dur, DECODE_STEP, (state, state.token))

    def refill(state: _DecodeState) -> None:
        """Join waiting requests into the active batch (step boundary)."""
        nonlocal batch_joins
        waiting = state.waiting
        if not waiting:
            return
        active = state.active
        if active and not continuous:
            return  # gang scheduling: wait for the batch to drain
        running = bool(active)
        inst = state.instance
        tracker = inst.tracker
        table = state.table
        while waiting and len(active) < max_batch:
            task = waiting.popleft()
            active.append(task)
            state.pending_prefill_ms += table[task.prefill_len]
            if tracker is not None:
                tracker.on_decode_start(inst)
            if running:
                batch_joins += 1

    def admit(
        now_ms: float, request_id: int, attempt: int = 0
    ) -> bool:
        nonlocal outstanding
        prefill = prefills[request_id]
        arrival = arrivals_ms[request_id]
        span = (
            tracer.begin(now_ms, request_id, arrival, prefill, attempt)
            if tracer is not None
            else None
        )
        try:
            head, level, ideal, _peeked, fell_back = walk(prefill)
        except CapacityError:
            if span is not None:
                tracer.on_defer(span, now_ms)
            return False
        scheduler.dispatched += 1
        if level > ideal:
            scheduler.demotions += 1
        if fell_back:
            scheduler.fallbacks += 1
        # Manual enqueue: no busy_until_ms service interval — the decode
        # loop owns timing. `outstanding` still counts the request until
        # its final decode step so congestion probes see decode load.
        head.outstanding += 1
        head._epoch += 1
        tracker = head.tracker
        if tracker is not None:
            tracker.on_enqueue(head)
        mlq.refresh(head)
        if span is not None:
            tracer.on_dispatch(
                span, now_ms, level=level, ideal_level=ideal,
                instance=f"i{head.instance_id}", fallback=fell_back,
            )
        outstanding += 1
        state = states.get(head.instance_id)
        if state is None:
            state = states[head.instance_id] = _DecodeState(head)
        state.waiting.append(
            acquire_decode_task(
                request_id, arrival, prefill, decode_lens[request_id],
                attempt,
            )
        )
        if not state.stepping:
            refill(state)
            if state.active:
                schedule_step(state, now_ms)
        return True

    def reinject(now_ms: float, request_id: int, attempt: int) -> None:
        nonlocal retries_scheduled, pending_retries
        if (
            retry_policy is not None
            and attempt < retry_policy.max_attempts
            and retry_budget.try_consume()
        ):
            delay = retry_policy.delay_ms(attempt, retry_rng)
            queue.push(
                now_ms + delay,
                EventKind.INSTANCE_FAILURE,
                RetryPayload(request_id, arrivals_ms[request_id],
                             prefills[request_id], attempt + 1),
            )
            retries_scheduled += 1
            pending_retries += 1
            if tracer is not None:
                span = tracer.active.get(request_id)
                if span is not None:
                    tracer.on_retry(span, now_ms, attempt + 1, delay)
        elif not admit(now_ms, request_id, attempt):
            deferred.append((request_id, attempt))

    def flush_deferred(now_ms: float) -> None:
        if not deferred:
            return
        still: list[tuple[int, int]] = []
        for request_id, attempt in deferred:
            if not admit(now_ms, request_id, attempt):
                still.append((request_id, attempt))
        deferred[:] = still

    def sample_gpus(now_ms: float) -> None:
        nonlocal last_gpu_count
        count = scheme.cluster.num_gpus
        if count != last_gpu_count:
            metrics.sample_gpus(now_ms, count)
            last_gpu_count = count

    def pick_victim(rank: int) -> RuntimeInstance | None:
        active = scheme.cluster.active_instances()
        if not active:
            return None
        ordered = sorted(active, key=lambda i: (-i.outstanding,
                                                i.instance_id))
        return ordered[min(rank, len(ordered) - 1)]

    def void_instance(victim: RuntimeInstance) -> list:
        """Detach the victim's decode state; returns its live tasks.

        Must run *before* ``crash_instance``/``suspend`` so the decode
        occupancy counters are reconciled while the tracker still
        counts the instance.
        """
        state = states.pop(victim.instance_id, None)
        if state is None:
            return []
        if victim.tracker is not None and state.active:
            victim.tracker.on_decode_loss(victim, len(state.active))
        tasks = list(state.active)
        tasks.extend(state.waiting)
        state.token += 1  # voids the in-flight DECODE_STEP, if any
        state.active.clear()
        state.waiting.clear()
        state.stepping = False
        return tasks

    def reinject_tasks(now_ms: float, tasks: list) -> None:
        nonlocal outstanding
        outstanding -= len(tasks)
        for task in tasks:
            reinject(now_ms, task.request_id, task.attempt)
            release_decode_task(task)

    if runtime_scheduler is not None:
        queue.push(runtime_scheduler.config.period_ms, EventKind.RESCHEDULE)
    if config.failures is not None:
        for fault in config.failures.sorted_events():
            queue.push(fault.time_ms, EventKind.INSTANCE_FAILURE, fault)

    heap = queue._heap
    INF = float("inf")
    RESCHEDULE = EventKind.RESCHEDULE
    REPLACEMENT_READY = EventKind.REPLACEMENT_READY
    SCALE_OUT_READY = EventKind.SCALE_OUT_READY
    INSTANCE_FAILURE = EventKind.INSTANCE_FAILURE

    popped = queue._popped
    while True:
        if max_events and popped + next_arrival >= max_events:
            raise SimulationError(
                f"event cap {max_events} hit with work remaining"
            )
        heap_time = heap[0][0] if heap else INF

        if next_arrival < n_requests and arrivals_ms[next_arrival] < heap_time:
            now = arrivals_ms[next_arrival]
            request_id = next_arrival
            next_arrival = request_id + 1
            queue._now = now
            if not admit(now, request_id):
                deferred.append((request_id, 0))
                metrics.deferred_requests += 1
            continue
        if not heap:
            break

        entry = heappop(heap)
        now = entry[0]
        kind = entry[1]
        queue._now = now
        popped += 1

        if kind is DECODE_STEP:
            state, token = entry[3]
            if token != state.token:
                continue  # voided by a crash/blackout
            state.stepping = False
            inst = state.instance
            k = state.step_k
            dur = state.step_dur
            active = state.active
            decode_steps_total += k * len(active)
            batch_size = len(active)
            survivors: list = []
            for task in active:
                task.steps_done += k
                task.service_ms += dur
                if task.awaiting_first:
                    task.awaiting_first = False
                    first_ms = now - task.arrival_ms
                    if task.arrival_ms >= warmup_ms:
                        ttft.add(first_ms)
                    if tracer is not None:
                        span = tracer.active.get(task.request_id)
                        if span is not None:
                            tracer.on_first_token(span, now, first_ms,
                                                  batch_size)
                if task.steps_done < task.decode_len:
                    survivors.append(task)
                    continue
                # --- final decode step: the request completes ---
                out = inst.outstanding - 1
                if out < 0:
                    raise SchedulingError(
                        f"instance {inst.instance_id} completed with "
                        f"empty queue"
                    )
                inst.outstanding = out
                inst.served += 1
                inst._epoch += 1
                tracker = inst.tracker
                if tracker is not None:
                    tracker.on_complete(inst)
                    tracker.on_decode_end(inst)
                mlq.refresh(inst)
                outstanding -= 1
                completed += 1
                if task.arrival_ms >= warmup_ms:
                    metrics.record(now - task.arrival_ms,
                                   inst.runtime_index)
                if tracer is not None:
                    tracer.on_complete(task.request_id, now,
                                       task.service_ms,
                                       decode_steps=task.decode_len)
                if control._pending:
                    control.on_completion(now, inst)
                release_decode_task(task)
            state.active = survivors
            if deferred:
                flush_deferred(now)
            if inst.status is not InstanceStatus.RETIRED:
                refill(state)
                if state.active:
                    schedule_step(state, now)

        elif kind is RESCHEDULE:
            if runtime_scheduler is not None and work_remaining():
                flush_observations()
                _result, plan = runtime_scheduler.step(now, scheme.cluster)
                if timeline is not None:
                    timeline.record(
                        now, "allocation", "solve",
                        provenance=runtime_scheduler.provenance_of(_result),
                        solver=_result.solver,
                        objective=_result.objective,
                        solve_ms=_result.solve_time_s * 1000.0,
                        plan_steps=len(plan),
                    )
                control.start_plan(now, plan)
                metrics.sample_allocation(now, scheme.cluster.allocation())
                queue.push(
                    now + runtime_scheduler.config.period_ms,
                    EventKind.RESCHEDULE,
                )

        elif kind is REPLACEMENT_READY:
            control.on_replacement_event(now, entry[3])
            sample_gpus(now)
            flush_deferred(now)

        elif kind is SCALE_OUT_READY:
            control.on_scale_out_ready(now, entry[3])
            sample_gpus(now)
            flush_deferred(now)

        elif kind is INSTANCE_FAILURE:
            payload = entry[3]

            if isinstance(payload, RecoveryPayload):
                gpu = scheme.cluster.gpus[payload.gpu_id]
                recovered = scheme.cluster.deploy(payload.runtime_index, gpu)
                mlq.add(recovered)
                if timeline is not None:
                    timeline.record(
                        now, "fault", "recovery",
                        instance=recovered.instance_id,
                        runtime_index=payload.runtime_index,
                    )
                flush_deferred(now)

            elif isinstance(payload, RetryPayload):
                pending_retries -= 1
                if not admit(now, payload.request_id, payload.attempt):
                    deferred.append((payload.request_id, payload.attempt))

            elif isinstance(payload, SlowdownEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is not None:
                    victim.slow_factor = payload.factor
                    slowdowns_injected += 1
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "slowdown",
                            instance=victim.instance_id,
                            factor=payload.factor,
                        )
                    if payload.duration_ms is not None:
                        queue.push(
                            now + payload.duration_ms,
                            EventKind.INSTANCE_FAILURE,
                            SlowdownEndPayload(victim.instance_id),
                        )

            elif isinstance(payload, SlowdownEndPayload):
                inst = scheme.cluster.instances.get(payload.instance_id)
                if inst is not None:
                    inst.slow_factor = 1.0

            elif isinstance(payload, BlackoutEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is not None:
                    lost_tasks = void_instance(victim)
                    if mlq.contains(victim):
                        mlq.remove(victim)
                    victim.suspend()
                    blackouts_injected += 1
                    timeouts += len(lost_tasks)
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "blackout",
                            instance=victim.instance_id,
                            duration_ms=payload.duration_ms,
                            voided=len(lost_tasks),
                        )
                    reinject_tasks(now, lost_tasks)
                    queue.push(
                        now + payload.duration_ms,
                        EventKind.INSTANCE_FAILURE,
                        BlackoutEndPayload(victim.instance_id),
                    )

            elif isinstance(payload, BlackoutEndPayload):
                inst = scheme.cluster.instances.get(payload.instance_id)
                if inst is not None and inst.status is InstanceStatus.SUSPENDED:
                    inst.resume()
                    if not mlq.contains(inst):
                        mlq.add(inst)
                    flush_deferred(now)

            elif isinstance(payload, SolverFaultEvent):
                if runtime_scheduler is not None:
                    runtime_scheduler.inject_solver_failures(payload.count)
                    solver_faults_injected += payload.count
                    if timeline is not None:
                        timeline.record(
                            now, "fault", "solver_fault",
                            count=payload.count,
                        )

            elif isinstance(payload, FailureEvent):
                victim = pick_victim(payload.victim_rank)
                if victim is None:
                    continue
                lost_tasks = void_instance(victim)
                if mlq.contains(victim):
                    mlq.remove(victim)
                control.note_failure(victim.instance_id)
                gpu, lost = scheme.cluster.crash_instance(victim)
                failures_injected += 1
                requests_lost += lost
                if timeline is not None:
                    timeline.record(
                        now, "fault", "crash",
                        instance=victim.instance_id,
                        voided=len(lost_tasks),
                        recovery_ms=(
                            payload.recovery_ms
                            if payload.recovery_ms is not None
                            else -1.0
                        ),
                    )
                if payload.recovery_ms is not None:
                    queue.push(
                        now + payload.recovery_ms,
                        EventKind.INSTANCE_FAILURE,
                        RecoveryPayload(gpu_id=gpu.gpu_id,
                                        runtime_index=victim.runtime_index),
                    )
                else:
                    scheme.cluster.release_gpu(gpu.gpu_id, now)
                    sample_gpus(now)
                reinject_tasks(now, lost_tasks)

            else:
                raise SimulationError(
                    f"unhandled fault payload {payload!r}"
                )

        else:  # pragma: no cover - the enum is closed on this path
            raise SimulationError(f"unhandled event kind {kind}")

    queue._popped = popped
    flush_observations()
    if completed != n_requests:
        raise SimulationError(
            f"simulation ended with {n_requests - completed} unserved "
            f"requests"
        )

    end_ms = queue.now_ms
    control_stats = {
        "replacements": control.replacements_executed,
        "scale_outs": control.scale_outs,
        "scale_ins": control.scale_ins,
        "deferred": metrics.deferred_requests,
        "failures": failures_injected,
        "requests_lost": requests_lost,
        "slowdowns": slowdowns_injected,
        "blackouts": blackouts_injected,
        "timeouts": timeouts,
        "retries": retries_scheduled,
        "retry_budget_exhausted": (
            retry_budget.exhausted_events if retry_budget is not None else 0
        ),
        "quarantines": 0,
        "breaker_trips": 0,
        "breaker_recoveries": 0,
        "quarantine_violations": 0,
        "solver_faults_injected": solver_faults_injected,
        "solver_fallbacks": (
            runtime_scheduler.solver_fallbacks
            if runtime_scheduler is not None
            else 0
        ),
        # Generative counters: plain ints so shard merges stay a sum.
        "decode_steps": decode_steps_total,
        "step_events": step_events,
        "batch_joins": batch_joins,
    }
    dispatch_stats = scheduler.stats()
    if ttft.count:
        dispatch_stats["ttft_mean_ms"] = ttft.mean_ms
        dispatch_stats["ttft_p50_ms"] = ttft.quantile(0.50)
        dispatch_stats["ttft_p98_ms"] = ttft.quantile(0.98)
    return SimulationResult(
        scheme_name=scheme.name,
        stats=metrics.stats(),
        metrics=metrics,
        end_ms=end_ms,
        events_processed=queue.events_processed + next_arrival,
        time_weighted_gpus=metrics.time_weighted_gpus(end_ms),
        dispatch_stats=dispatch_stats,
        control_stats=control_stats,
        spans=tracer.finished if tracer is not None else [],
        timeline=timeline,
        wall_s=perf_counter() - wall_start,
    )
