"""Discrete-event cluster simulator (the paper's §4 simulator, ~2k LoC).

Models, "with great care" as the paper puts it: request arrival and
dispatch, per-instance FIFO execution at batch size 1, periodic
resource allocation with batched instance replacement (~1 s per swap),
target-tracking auto-scaling, and the fixed 0.8 ms per-request
overhead used for calibration (§5.2.1).

Entry point: :func:`repro.sim.simulation.run_simulation`.
"""

from repro.sim.engine import EventQueue
from repro.sim.events import EventKind
from repro.sim.faults import (
    BlackoutEvent,
    FailureEvent,
    FailurePlan,
    FaultPlan,
    SlowdownEvent,
    SolverFaultEvent,
)
from repro.sim.generative import GenerativeConfig, run_generative_simulation
from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.sim.replay import replay_trace
from repro.sim.simulation import SimulationConfig, SimulationResult, run_simulation

__all__ = [
    "BlackoutEvent",
    "EventKind",
    "EventQueue",
    "FailureEvent",
    "FailurePlan",
    "FaultPlan",
    "GenerativeConfig",
    "LatencyStats",
    "MetricsCollector",
    "SimulationConfig",
    "SimulationResult",
    "SlowdownEvent",
    "SolverFaultEvent",
    "replay_trace",
    "run_generative_simulation",
    "run_simulation",
]
