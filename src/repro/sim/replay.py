"""Independent brute-force replayer — the fidelity cross-check (§5.2.1).

The paper validates its simulator against the Triton testbed prototype
(4.3 % mean / 2.6 % p98 gap). Lacking a GPU testbed, we validate the
event-driven simulator against this *independent* implementation of the
same serving semantics: no event heap, no control plane — just arrivals
processed in order with per-instance FIFO completion queues drained
lazily. Any disagreement between the two code paths on a static-
allocation scheme is a bug in one of them; the test suite asserts they
agree to floating-point precision.

Only static schemes (no periodic reallocation, no auto-scaling) are
replayable — exactly the configurations used for calibration.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.schemes import Scheme
from repro.errors import SimulationError
from repro.workload.trace import Trace


def replay_trace(scheme: Scheme, trace: Trace) -> np.ndarray:
    """Latency of every request in trace order, computed heap-free."""
    if scheme.runtime_scheduler is not None:
        raise SimulationError(
            "replay only supports static schemes (no runtime scheduler)"
        )
    if not len(trace):
        raise SimulationError("cannot replay an empty trace")

    # Per-instance FIFO of outstanding completion times (sorted by
    # construction: batch-1 FIFO service).
    pending: dict[int, deque[float]] = {}
    latencies = np.empty(len(trace))

    def drain_until(now_ms: float) -> None:
        """Apply every completion at or before ``now_ms``.

        Completions across instances are applied in global time order so
        load-sensitive dispatchers observe the same intermediate states
        as the event-driven simulator.
        """
        while True:
            best_id, best_t = -1, np.inf
            for iid, q in pending.items():
                if q and q[0] < best_t:
                    best_id, best_t = iid, q[0]
            if best_id < 0 or best_t > now_ms:
                return
            pending[best_id].popleft()
            instance = scheme.cluster.instances[best_id]
            instance.complete()
            scheme.dispatcher.on_complete(instance)

    for i in range(len(trace)):
        now = float(trace.arrival_ms[i])
        length = int(trace.length[i])
        drain_until(now)
        scheme.observe_arrival(now, length)
        instance, _start, finish = scheme.dispatcher.dispatch(now, length)
        pending.setdefault(instance.instance_id, deque()).append(finish)
        latencies[i] = finish - now

    return latencies
