"""Per-instance health signals feeding the circuit breaker.

Two detectors, matching the two ways an instance degrades in practice:

- **Latency deviation** — an EWMA of the *service-time inflation
  ratio*: observed service time over the profiled nominal service time
  for the same request length. A healthy instance hovers around 1.0
  (profiling noise aside); a straggler running at a 2× latency
  multiplier converges to 2.0 within a few samples. The ratio is used
  instead of raw latency so queueing delay — which legitimately varies
  with load — never triggers the detector.
- **Consecutive timeouts** — requests that never came back (blackouts,
  hangs). A few in a row mark the instance unhealthy immediately; a
  single timeout amid successes does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HealthConfig:
    """Detector thresholds (defaults sized for the simulator's noise)."""

    #: EWMA smoothing for the inflation ratio (1.0 = last sample only).
    ewma_alpha: float = 0.3
    #: EWMA inflation ratio above which an instance is unhealthy.
    deviation_threshold: float = 1.5
    #: Samples required before the deviation detector may fire
    #: (profiling noise makes single-sample verdicts unreliable).
    min_samples: int = 5
    #: Consecutive timeouts that mark an instance unhealthy.
    timeout_threshold: int = 3

    def __post_init__(self) -> None:
        if not 0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.deviation_threshold <= 1.0:
            raise ConfigurationError("deviation threshold must exceed 1.0")
        if self.min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")
        if self.timeout_threshold < 1:
            raise ConfigurationError("timeout_threshold must be >= 1")


@dataclass
class InstanceHealth:
    """Rolling health state of one runtime instance."""

    ewma_ratio: float = 1.0
    samples: int = 0
    consecutive_timeouts: int = 0

    def observe(self, ratio: float, alpha: float) -> None:
        self.ewma_ratio += alpha * (ratio - self.ewma_ratio)
        self.samples += 1
        self.consecutive_timeouts = 0

    def timeout(self) -> None:
        self.consecutive_timeouts += 1


@dataclass
class HealthMonitor:
    """EWMA latency-deviation / consecutive-timeout detector."""

    config: HealthConfig = field(default_factory=HealthConfig)
    _instances: dict[int, InstanceHealth] = field(default_factory=dict)

    def health(self, instance_id: int) -> InstanceHealth:
        state = self._instances.get(instance_id)
        if state is None:
            state = self._instances[instance_id] = InstanceHealth()
        return state

    def observe(self, instance_id: int, ratio: float) -> bool:
        """Record one completed request's inflation ratio.

        Returns True when the instance is now considered unhealthy.
        """
        if ratio < 0:
            raise ConfigurationError("inflation ratio cannot be negative")
        state = self.health(instance_id)
        state.observe(ratio, self.config.ewma_alpha)
        return self.is_unhealthy(instance_id)

    def record_timeout(self, instance_id: int) -> bool:
        """Record one timed-out request; returns the unhealthy verdict."""
        self.health(instance_id).timeout()
        return self.is_unhealthy(instance_id)

    def is_unhealthy(self, instance_id: int) -> bool:
        state = self._instances.get(instance_id)
        if state is None:
            return False
        if state.consecutive_timeouts >= self.config.timeout_threshold:
            return True
        return (
            state.samples >= self.config.min_samples
            and state.ewma_ratio > self.config.deviation_threshold
        )

    def is_sample_healthy(self, ratio: float) -> bool:
        """Single-sample verdict used for half-open probe results."""
        return ratio <= self.config.deviation_threshold

    def reset(self, instance_id: int) -> None:
        """Forget an instance's history (breaker closed, or it is gone)."""
        self._instances.pop(instance_id, None)
