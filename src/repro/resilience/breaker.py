"""Per-instance circuit breaker: closed → open → half-open.

The breaker answers one question for the dispatch path: *may traffic
flow to this instance right now?* State machine:

- **CLOSED** — healthy; traffic flows. A trip (from the health
  monitor) opens the breaker.
- **OPEN** — quarantined; the instance is removed from the multi-level
  queue and receives no dispatches. After ``open_ms`` (doubling on
  every consecutive trip, capped at ``max_open_ms``) the breaker moves
  to half-open.
- **HALF_OPEN** — probing; the instance rejoins the queue but the
  dispatch gate admits at most ``half_open_max_inflight`` concurrent
  requests. ``close_after`` consecutive healthy completions close the
  breaker; a single unhealthy one re-opens it with a longer window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulingError
from repro.units import SECOND


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Quarantine and probe timing."""

    #: Base quarantine window after a trip.
    open_ms: float = 2 * SECOND
    #: Window multiplier per consecutive trip (exponential backoff).
    backoff_multiplier: float = 2.0
    #: Ceiling on the quarantine window.
    max_open_ms: float = 30 * SECOND
    #: Consecutive healthy probe completions required to close.
    close_after: int = 3
    #: Concurrent requests the dispatch gate admits while half-open.
    half_open_max_inflight: int = 1

    def __post_init__(self) -> None:
        if self.open_ms <= 0:
            raise ConfigurationError("open window must be positive")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if self.max_open_ms < self.open_ms:
            raise ConfigurationError("max_open_ms must be >= open_ms")
        if self.close_after < 1:
            raise ConfigurationError("close_after must be >= 1")
        if self.half_open_max_inflight < 1:
            raise ConfigurationError("half_open_max_inflight must be >= 1")


@dataclass
class CircuitBreaker:
    """Breaker state for one runtime instance."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    state: BreakerState = BreakerState.CLOSED
    open_until_ms: float = 0.0
    consecutive_trips: int = 0
    _probe_successes: int = 0
    #: Lifetime counters (exported into ``control_stats``).
    trips: int = 0
    recoveries: int = 0

    @property
    def is_open(self) -> bool:
        return self.state is BreakerState.OPEN

    @property
    def is_half_open(self) -> bool:
        return self.state is BreakerState.HALF_OPEN

    def trip(self, now_ms: float) -> float:
        """Open the breaker; returns the time the probe window starts."""
        window = min(
            self.config.open_ms
            * self.config.backoff_multiplier ** self.consecutive_trips,
            self.config.max_open_ms,
        )
        self.state = BreakerState.OPEN
        self.open_until_ms = now_ms + window
        self.consecutive_trips += 1
        self._probe_successes = 0
        self.trips += 1
        return self.open_until_ms

    def begin_probe(self) -> None:
        """OPEN → HALF_OPEN once the quarantine window elapsed."""
        if self.state is not BreakerState.OPEN:
            raise SchedulingError("only an open breaker can begin probing")
        self.state = BreakerState.HALF_OPEN
        self._probe_successes = 0

    def record_probe(self, healthy: bool) -> BreakerState:
        """Feed one half-open completion; returns the resulting state."""
        if self.state is not BreakerState.HALF_OPEN:
            raise SchedulingError("probe result outside half-open state")
        if not healthy:
            return self.state  # caller trips again with backoff
        self._probe_successes += 1
        if self._probe_successes >= self.config.close_after:
            self.state = BreakerState.CLOSED
            self.consecutive_trips = 0
            self.recoveries += 1
        return self.state
