"""Glue between health signals, circuit breakers and the MLQ.

The :class:`ResilienceManager` owns one :class:`CircuitBreaker` per
instance (created lazily on the first signal) and translates health
verdicts into queue membership: a tripped breaker removes the instance
from the :class:`~repro.core.mlq.MultiLevelQueue` (quarantine — the
dispatchers simply never see it), and the probe window re-adds it under
the half-open dispatch gate. The manager owns no clock and schedules
nothing: methods that start a quarantine return the time the probe
window opens, and the caller (the simulator, or a live control loop)
arranges to call :meth:`on_probe_window` then.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.instance import RuntimeInstance
from repro.core.mlq import MultiLevelQueue
from repro.obs.timeline import ControlTimeline
from repro.resilience.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.resilience.health import HealthConfig, HealthMonitor


@dataclass(frozen=True)
class ResilienceConfig:
    """Bundled detector + breaker knobs (one object to thread around)."""

    health: HealthConfig = field(default_factory=HealthConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)


@dataclass
class ResilienceManager:
    """Health-driven quarantine over a multi-level queue."""

    config: ResilienceConfig
    mlq: MultiLevelQueue
    #: Observability sink: breaker state transitions land here.
    timeline: ControlTimeline | None = None
    monitor: HealthMonitor = field(init=False)
    _breakers: dict[int, CircuitBreaker] = field(default_factory=dict)
    #: Counters surviving breaker garbage-collection (control_stats).
    quarantines: int = 0
    breaker_trips: int = 0
    breaker_recoveries: int = 0

    def __post_init__(self) -> None:
        self.monitor = HealthMonitor(config=self.config.health)

    # -- queries -----------------------------------------------------------
    def breaker_for(self, instance_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(instance_id)
        if breaker is None:
            breaker = CircuitBreaker(config=self.config.breaker)
            self._breakers[instance_id] = breaker
        return breaker

    def state_of(self, instance_id: int) -> BreakerState:
        breaker = self._breakers.get(instance_id)
        return breaker.state if breaker else BreakerState.CLOSED

    def is_quarantined(self, instance_id: int) -> bool:
        """True while the instance's breaker is OPEN (no traffic)."""
        breaker = self._breakers.get(instance_id)
        return breaker is not None and breaker.is_open

    def allow_dispatch(self, instance: RuntimeInstance) -> bool:
        """Dispatch gate consulted by the request scheduler."""
        breaker = self._breakers.get(instance.instance_id)
        if breaker is None or breaker.state is BreakerState.CLOSED:
            return True
        if breaker.is_open:
            return False
        return (
            instance.outstanding < self.config.breaker.half_open_max_inflight
        )

    # -- signals -----------------------------------------------------------
    def on_service_sample(
        self, now_ms: float, instance: RuntimeInstance, ratio: float
    ) -> float | None:
        """Feed one completion's service-inflation ratio.

        Returns the probe-window start time when this sample tripped
        (or re-tripped) the breaker, else None.
        """
        breaker = self._breakers.get(instance.instance_id)
        if breaker is not None and breaker.is_half_open:
            healthy = self.monitor.is_sample_healthy(ratio)
            state = breaker.record_probe(healthy)
            if not healthy:
                return self._quarantine(now_ms, instance)
            if state is BreakerState.CLOSED:
                self.breaker_recoveries += 1
                self.monitor.reset(instance.instance_id)
                if self.timeline is not None:
                    self.timeline.record(
                        now_ms, "breaker", "closed",
                        instance=instance.instance_id,
                    )
            return None
        unhealthy = self.monitor.observe(instance.instance_id, ratio)
        if unhealthy and (breaker is None or not breaker.is_open):
            return self._quarantine(now_ms, instance)
        return None

    def on_timeouts(
        self, now_ms: float, instance: RuntimeInstance, count: int = 1
    ) -> float | None:
        """Feed ``count`` timed-out requests for one instance."""
        breaker = self._breakers.get(instance.instance_id)
        if breaker is not None and breaker.is_half_open:
            breaker.record_probe(False)
            return self._quarantine(now_ms, instance)
        unhealthy = False
        for _ in range(max(count, 0)):
            unhealthy = self.monitor.record_timeout(instance.instance_id)
        if unhealthy and (breaker is None or not breaker.is_open):
            return self._quarantine(now_ms, instance)
        return None

    def on_probe_window(
        self, now_ms: float, instance: RuntimeInstance | None
    ) -> bool:
        """The quarantine window elapsed: move to half-open and rejoin.

        ``instance`` is None when it no longer exists (crashed or
        replaced while quarantined) — the breaker is simply dropped.
        Returns True when the instance rejoined the queue.
        """
        if instance is None:
            return False
        breaker = self._breakers.get(instance.instance_id)
        if breaker is None or not breaker.is_open:
            return False
        breaker.begin_probe()
        if self.timeline is not None:
            self.timeline.record(
                now_ms, "breaker", "half_open",
                instance=instance.instance_id,
            )
        if instance.is_active and not self.mlq.contains(instance):
            self.mlq.add(instance)
            return True
        return False

    def requeue(self, instance: RuntimeInstance) -> bool:
        """Re-admit a recovered instance unless its breaker holds it out.

        Used when an instance resumes from a transient blackout: if the
        breaker is OPEN the pending probe window will re-add it later;
        otherwise it rejoins immediately.
        """
        breaker = self._breakers.get(instance.instance_id)
        if breaker is not None and breaker.is_open:
            return False
        if instance.is_active and not self.mlq.contains(instance):
            self.mlq.add(instance)
            return True
        return False

    def on_instance_gone(self, instance_id: int) -> None:
        """Forget all state for a crashed/retired instance."""
        self._breakers.pop(instance_id, None)
        self.monitor.reset(instance_id)

    # -- internals ---------------------------------------------------------
    def _quarantine(self, now_ms: float, instance: RuntimeInstance) -> float:
        if self.mlq.contains(instance):
            self.mlq.remove(instance)
        self.quarantines += 1
        self.breaker_trips += 1
        probe_at = self.breaker_for(instance.instance_id).trip(now_ms)
        if self.timeline is not None:
            self.timeline.record(
                now_ms, "breaker", "open",
                instance=instance.instance_id, probe_at_ms=probe_at,
            )
        return probe_at
