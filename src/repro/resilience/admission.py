"""Deadline-aware admission control for the live serving surface.

:class:`ArloServer.submit` queues unboundedly by construction — every
instance is an infinite FIFO. Under sustained overload that turns into
latencies no caller will wait for. The admission controller sheds load
instead: before dispatch it estimates the best achievable completion
across the request's candidate levels (the head instance's backlog
plus the nominal service time) and rejects with a typed
:class:`Rejection` when even the best candidate would miss the
deadline. Unservable lengths — above the largest deployed runtime —
come back through the same typed surface instead of a raw
:class:`~repro.errors.CapacityError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.mlq import MultiLevelQueue
from repro.errors import ConfigurationError
from repro.runtimes.registry import RuntimeRegistry


class RejectionReason(enum.Enum):
    """Why a request was shed at admission."""

    #: The request exceeds the largest runtime's ``max_length``.
    UNSERVABLE_LENGTH = "unservable_length"
    #: No candidate level currently has an active instance.
    NO_ACTIVE_RUNTIME = "no_active_runtime"
    #: Every candidate level is saturated past the deadline.
    DEADLINE_UNMET = "deadline_unmet"


@dataclass(frozen=True)
class Rejection:
    """Typed shed record handed to the caller (one failure surface)."""

    reason: RejectionReason
    length: int
    deadline_ms: float | None = None
    #: Best achievable wait across candidates (DEADLINE_UNMET only).
    expected_wait_ms: float | None = None
    message: str = ""

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.message or self.reason.value


@dataclass(frozen=True)
class AdmissionConfig:
    """Deadline policy for :class:`AdmissionController`."""

    #: Default per-request deadline as a multiple of the model SLO.
    deadline_factor: float = 4.0
    #: Absolute default deadline; overrides ``deadline_factor``.
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_factor <= 0:
            raise ConfigurationError("deadline factor must be positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError("deadline must be positive")


@dataclass
class AdmissionController:
    """Shed-or-admit decision over the multi-level queue."""

    registry: RuntimeRegistry
    mlq: MultiLevelQueue
    slo_ms: float
    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Sheds by reason value (exported into server snapshots).
    shed_counts: dict[str, int] = field(default_factory=dict)

    def default_deadline_ms(self) -> float:
        if self.config.deadline_ms is not None:
            return self.config.deadline_ms
        return self.config.deadline_factor * self.slo_ms

    def check(
        self, now_ms: float, length: int, deadline_ms: float | None = None
    ) -> Rejection | None:
        """Return a :class:`Rejection` to shed, or None to admit."""
        deadline = deadline_ms if deadline_ms is not None else (
            self.default_deadline_ms()
        )
        if length <= 0 or length > self.registry.max_length:
            return self._shed(Rejection(
                reason=RejectionReason.UNSERVABLE_LENGTH,
                length=length,
                message=(
                    f"length {length} outside the servable range "
                    f"(1..{self.registry.max_length})"
                ),
            ))
        best_wait: float | None = None
        for level in self.registry.candidate_indexes(length):
            head = self.mlq.head(level)
            if head is None:
                continue
            profile = head.profile
            wait = (
                max(head.busy_until_ms - now_ms, 0.0)
                + profile.runtime.service_ms(length)
                + profile.overhead_ms
            )
            if best_wait is None or wait < best_wait:
                best_wait = wait
        if best_wait is None:
            return self._shed(Rejection(
                reason=RejectionReason.NO_ACTIVE_RUNTIME,
                length=length,
                deadline_ms=deadline,
                message=(
                    f"no active instance can serve length {length} right now"
                ),
            ))
        if best_wait > deadline:
            return self._shed(Rejection(
                reason=RejectionReason.DEADLINE_UNMET,
                length=length,
                deadline_ms=deadline,
                expected_wait_ms=best_wait,
                message=(
                    f"best expected completion {best_wait:.1f} ms misses the "
                    f"{deadline:.1f} ms deadline on every candidate level"
                ),
            ))
        return None

    def _shed(self, rejection: Rejection) -> Rejection:
        key = rejection.reason.value
        self.shed_counts[key] = self.shed_counts.get(key, 0) + 1
        return rejection

    @property
    def total_shed(self) -> int:
        return sum(self.shed_counts.values())
