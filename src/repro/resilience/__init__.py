"""Resilience subsystem: surviving the failures the paper only motivates.

The paper justifies the Request Scheduler with "idiosyncratic factors
such as failures and bugs [that] lead to imbalanced load even across
instances of the same runtime" (§1) but never models them. This package
supplies the machinery a production deployment needs on top of the two
schedulers:

- :mod:`repro.resilience.health` — per-instance health signals: an EWMA
  service-time-inflation detector plus a consecutive-timeout counter;
- :mod:`repro.resilience.breaker` — a per-instance circuit breaker
  (closed → open → half-open) that quarantines degraded instances out
  of the multi-level queue and probes them back in;
- :mod:`repro.resilience.retry` — exponential backoff with
  deterministic jitter and a bounded retry budget for lost or
  timed-out requests;
- :mod:`repro.resilience.admission` — deadline-aware admission control
  returning typed :class:`Rejection` objects instead of queueing
  unboundedly;
- :mod:`repro.resilience.manager` — the :class:`ResilienceManager`
  gluing health signals to breaker actions against a
  :class:`~repro.core.mlq.MultiLevelQueue`.

See ``docs/RESILIENCE.md`` for the fault taxonomy and the breaker
state machine.
"""

from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    Rejection,
    RejectionReason,
)
from repro.resilience.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.resilience.health import HealthConfig, HealthMonitor, InstanceHealth
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.resilience.retry import RetryBudget, RetryPolicy

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "HealthConfig",
    "HealthMonitor",
    "InstanceHealth",
    "Rejection",
    "RejectionReason",
    "ResilienceConfig",
    "ResilienceManager",
    "RetryBudget",
    "RetryPolicy",
]
