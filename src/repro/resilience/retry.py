"""Retry policy: exponential backoff with jitter, bounded by a budget.

Lost work (crashes, blackouts, timeouts) is re-dispatched through this
policy instead of being re-queued instantly: an immediate thundering
re-dispatch of a crashed instance's whole queue lands on the survivors
at the worst possible moment. Backoff spreads the retries out; jitter
de-correlates them; the budget bounds how much retry traffic a run may
generate before falling back to plain capacity-driven re-admission
(requests are never dropped — conservation is the simulator's hard
invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter parameters."""

    #: Delay before the first retry.
    base_delay_ms: float = 10.0
    #: Per-attempt multiplier.
    multiplier: float = 2.0
    #: Ceiling on any single delay.
    max_delay_ms: float = 2_000.0
    #: Backoff-delayed attempts per request; beyond this the request
    #: falls back to immediate capacity-driven re-admission.
    max_attempts: int = 4
    #: Fraction of the trace size allowed as backoff retries in one run
    #: (see :meth:`budget_for`); exhaustion also falls back.
    budget_fraction: float = 0.25
    #: Uniform jitter as a fraction of the computed delay.
    jitter: float = 0.2
    #: Seed for the deterministic jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay_ms <= 0:
            raise ConfigurationError("base delay must be positive")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_delay_ms < self.base_delay_ms:
            raise ConfigurationError("max delay must be >= base delay")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if not 0 <= self.budget_fraction <= 1.0:
            raise ConfigurationError("budget fraction must be in [0, 1]")
        if not 0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def delay_ms(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff delay for retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ConfigurationError("attempt cannot be negative")
        delay = min(self.base_delay_ms * self.multiplier**attempt,
                    self.max_delay_ms)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return float(delay)

    def budget_for(self, n_requests: int) -> int:
        """Total backoff retries allowed for a trace of ``n_requests``.

        ``budget_fraction == 0`` means retries are disabled and the
        budget is 0 — lost work falls straight back to immediate
        capacity-driven re-admission. For positive fractions the budget
        is floored at 32 so small traces still get a usable allowance.
        """
        if self.budget_fraction == 0.0:
            return 0
        return max(32, int(self.budget_fraction * n_requests))


@dataclass
class RetryBudget:
    """Run-wide cap on backoff retries."""

    limit: int
    used: int = 0
    exhausted_events: int = 0

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ConfigurationError("retry budget cannot be negative")

    @property
    def remaining(self) -> int:
        return max(self.limit - self.used, 0)

    def try_consume(self) -> bool:
        """Take one retry from the budget; False once exhausted."""
        if self.used >= self.limit:
            self.exhausted_events += 1
            return False
        self.used += 1
        return True
