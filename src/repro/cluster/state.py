"""Mutable cluster state: GPUs, deployed instances, allocation view.

The :class:`ClusterState` is the single source of truth shared by the
runtime scheduler (which changes allocations), the request scheduler
(which reads instance load), the autoscaler (which adds/removes GPUs)
and the simulator (which drives completions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.gpu import Gpu
from repro.cluster.instance import RuntimeInstance
from repro.errors import SchedulingError
from repro.perf.counters import CongestionTracker
from repro.runtimes.registry import RuntimeRegistry


@dataclass
class ClusterState:
    """All GPUs and runtime instances of one serving stream."""

    registry: RuntimeRegistry
    gpus: dict[int, Gpu] = field(default_factory=dict)
    instances: dict[int, RuntimeInstance] = field(default_factory=dict)
    #: Active instances per runtime index (the multi-level-queue levels).
    levels: list[list[RuntimeInstance]] = field(default_factory=list)
    #: O(1) outstanding/capacity/allocation aggregates, maintained by
    #: the instance lifecycle hooks (see repro.perf.counters).
    congestion: CongestionTracker = field(init=False, repr=False)
    _next_gpu_id: int = 0
    _next_instance_id: int = 0

    def __post_init__(self) -> None:
        if not self.levels:
            self.levels = [[] for _ in range(len(self.registry))]
        self.congestion = CongestionTracker(num_levels=len(self.registry))
        for instance in self.instances.values():
            instance.tracker = self.congestion
            if instance.is_active:
                self.congestion.activate(instance)
            self.congestion.all_outstanding += instance.outstanding

    # -- provisioning -------------------------------------------------------
    def add_gpu(self, now_ms: float = 0.0) -> Gpu:
        gpu = Gpu(gpu_id=self._next_gpu_id, provisioned_at_ms=now_ms)
        self._next_gpu_id += 1
        self.gpus[gpu.gpu_id] = gpu
        return gpu

    def release_gpu(self, gpu_id: int, now_ms: float) -> None:
        gpu = self.gpus[gpu_id]
        gpu.release(now_ms)

    def deploy(self, runtime_index: int, gpu: Gpu) -> RuntimeInstance:
        """Load runtime ``runtime_index`` onto a free GPU."""
        if not 0 <= runtime_index < len(self.registry):
            raise SchedulingError(f"no runtime with index {runtime_index}")
        instance = RuntimeInstance(
            instance_id=self._next_instance_id,
            gpu_id=gpu.gpu_id,
            runtime_index=runtime_index,
            profile=self.registry[runtime_index],
        )
        self._next_instance_id += 1
        gpu.attach(instance.instance_id)
        self.instances[instance.instance_id] = instance
        self.levels[runtime_index].append(instance)
        instance.tracker = self.congestion
        self.congestion.activate(instance)
        return instance

    def deploy_on_new_gpu(self, runtime_index: int, now_ms: float = 0.0) -> RuntimeInstance:
        return self.deploy(runtime_index, self.add_gpu(now_ms))

    def retire_instance(self, instance: RuntimeInstance) -> Gpu:
        """Remove a fully drained instance; returns its freed GPU."""
        if instance.instance_id not in self.instances:
            raise SchedulingError(f"unknown instance {instance.instance_id}")
        instance.retire()
        return self._unlink(instance)

    def crash_instance(self, instance: RuntimeInstance) -> tuple[Gpu, int]:
        """Abrupt failure: drop the instance and its outstanding work.

        Returns (freed GPU, number of requests lost).
        """
        if instance.instance_id not in self.instances:
            raise SchedulingError(f"unknown instance {instance.instance_id}")
        lost = instance.crash()
        return self._unlink(instance), lost

    def _unlink(self, instance: RuntimeInstance) -> Gpu:
        del self.instances[instance.instance_id]
        self.levels[instance.runtime_index].remove(instance)
        gpu = self.gpus[instance.gpu_id]
        gpu.detach()
        return gpu

    # -- views ---------------------------------------------------------------
    def active_instances(self, runtime_index: int | None = None) -> list[RuntimeInstance]:
        if runtime_index is None:
            pools = self.levels
        else:
            pools = [self.levels[runtime_index]]
        return [i for pool in pools for i in pool if i.is_active]

    def allocation(self) -> np.ndarray:
        """Active instance count per runtime (the ILP's ``N`` vector).

        O(1): read from the congestion tracker's maintained aggregate.
        """
        return self.congestion.allocation()

    @property
    def num_gpus(self) -> int:
        """Provisioned, unreleased GPU workers."""
        return sum(1 for g in self.gpus.values() if not g.is_released)

    @property
    def num_active_instances(self) -> int:
        return sum(self.congestion.active)

    def free_gpus(self) -> list[Gpu]:
        return [g for g in self.gpus.values() if g.is_free and not g.is_released]

    def total_outstanding(self) -> int:
        """Outstanding over all live instances (active + draining) — O(1)."""
        return self.congestion.all_outstanding

    def gpu_time_ms(self, now_ms: float) -> float:
        """Σ provisioned lifetime over all GPUs (the Fig. 8 integral)."""
        return sum(g.lifetime_ms(now_ms) for g in self.gpus.values())

    def time_weighted_gpus(self, now_ms: float) -> float:
        """Time-weighted GPU count (paper reports e.g. 5.49 for Arlo)."""
        if now_ms <= 0:
            return float(self.num_gpus)
        return self.gpu_time_ms(now_ms) / now_ms

    # -- bootstrap -------------------------------------------------------------
    @classmethod
    def bootstrap(
        cls,
        registry: RuntimeRegistry,
        allocation: np.ndarray | list[int],
        now_ms: float = 0.0,
    ) -> "ClusterState":
        """Build a cluster already deployed with a given allocation."""
        allocation = np.asarray(allocation, dtype=np.int64)
        if allocation.shape != (len(registry),):
            raise SchedulingError(
                f"allocation has {allocation.shape} entries, registry has "
                f"{len(registry)} runtimes"
            )
        if np.any(allocation < 0) or allocation.sum() == 0:
            raise SchedulingError("allocation must be non-negative and non-empty")
        state = cls(registry=registry)
        for idx, count in enumerate(allocation):
            for _ in range(int(count)):
                state.deploy_on_new_gpu(idx, now_ms)
        return state
