"""GPU device model.

A GPU is a slot that hosts at most one runtime instance at a time.
The model is intentionally thin — compute behaviour lives in the
runtime latency models, and Arlo never co-locates instances — but it
keeps the bookkeeping (which device is free, cumulative busy time for
utilisation reports) in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError


@dataclass
class Gpu:
    """One GPU worker in the cluster."""

    gpu_id: int
    instance_id: int | None = None
    #: Total GPU-milliseconds spent executing requests (utilisation metric).
    busy_ms: float = 0.0
    #: When this worker was provisioned (for GPU-time accounting).
    provisioned_at_ms: float = 0.0
    released_at_ms: float | None = field(default=None)

    @property
    def is_free(self) -> bool:
        return self.instance_id is None

    @property
    def is_released(self) -> bool:
        return self.released_at_ms is not None

    def attach(self, instance_id: int) -> None:
        if self.is_released:
            raise SchedulingError(f"GPU {self.gpu_id} has been released")
        if not self.is_free:
            raise SchedulingError(
                f"GPU {self.gpu_id} already hosts instance {self.instance_id}"
            )
        self.instance_id = instance_id

    def detach(self) -> None:
        if self.is_free:
            raise SchedulingError(f"GPU {self.gpu_id} hosts no instance")
        self.instance_id = None

    def release(self, now_ms: float) -> None:
        """Return the worker to the provider (auto-scale-in)."""
        if not self.is_free:
            raise SchedulingError(
                f"cannot release GPU {self.gpu_id} while it hosts an instance"
            )
        if self.is_released:
            raise SchedulingError(f"GPU {self.gpu_id} already released")
        self.released_at_ms = now_ms

    def lifetime_ms(self, now_ms: float) -> float:
        """Wall-clock this worker has been provisioned so far."""
        end = self.released_at_ms if self.is_released else now_ms
        return max(0.0, end - self.provisioned_at_ms)
