"""Runtime instances: single-slot FIFO servers with batch size 1.

An instance executes one request at a time (the paper fixes batch size
to 1 for latency-sensitive serving); queued requests wait in FIFO
order. The instance tracks ``outstanding`` (queued + in service) and
``busy_until_ms`` so the simulator can schedule completions without
materialising the queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CapacityError, SchedulingError
from repro.runtimes.profiler import RuntimeProfile


class InstanceStatus(enum.Enum):
    """Lifecycle of a runtime instance."""

    ACTIVE = "active"
    #: Finishing outstanding work; accepts no new requests (replacement).
    DRAINING = "draining"
    #: Temporarily unresponsive (transient blackout); rejoins later.
    SUSPENDED = "suspended"
    #: Gone — kept only so stale references fail loudly.
    RETIRED = "retired"


#: Module-level alias: `enqueue` checks the status once per dispatched
#: request, and the class-attribute chase costs more than the check.
_ACTIVE = InstanceStatus.ACTIVE


@dataclass
class RuntimeInstance:
    """One runtime deployed on one GPU."""

    instance_id: int
    gpu_id: int
    runtime_index: int
    profile: RuntimeProfile
    status: InstanceStatus = InstanceStatus.ACTIVE
    outstanding: int = 0
    busy_until_ms: float = 0.0
    #: Cumulative requests served (report metric).
    served: int = 0
    #: Service-time multiplier while degraded (straggler fault); 1.0 =
    #: healthy. Scheduling still uses the profiled nominal time — only
    #: the health monitor can tell a slowed instance apart.
    slow_factor: float = 1.0
    #: Optional :class:`repro.perf.counters.CongestionTracker` kept
    #: up to date through every lifecycle transition (set by
    #: ``ClusterState.deploy``; standalone instances leave it None).
    tracker: "object | None" = field(default=None, repr=False, compare=False)
    #: The MLQ level heap currently holding this instance (set by
    #: ``MultiLevelQueue.add``/``remove``). Lets the simulator's
    #: completion path re-key the heap without a level lookup; a stale
    #: reference is harmless because ``InstanceHeap.refresh`` no-ops on
    #: non-members.
    _level_heap: "object | None" = field(default=None, repr=False, compare=False)
    _epoch: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        # Hot-path caches: enqueue runs once per dispatched request, so
        # the per-length service time and the acceptance bound must not
        # re-walk the latency model. All three are immutable per profile.
        self._service_table = self.profile.service_table_ms
        self._max_length = self.profile.max_length
        self._capacity = self.profile.capacity

    @property
    def max_length(self) -> int:
        return self._max_length

    @property
    def capacity(self) -> int:
        """``M_i`` of the hosted runtime."""
        return self._capacity

    @property
    def is_active(self) -> bool:
        return self.status is InstanceStatus.ACTIVE

    def congestion(self) -> float:
        """Algorithm 1's ``P = outstanding / max_capacity``."""
        return self.outstanding / self.capacity

    def accepts(self, length: int) -> bool:
        return self.is_active and self.profile.runtime.spec.accepts(length)

    def enqueue(self, now_ms: float, length: int) -> tuple[float, float]:
        """Admit a request; returns (service start, completion time).

        Service time is the runtime's padded execution time plus the
        fixed per-request overhead from §5.2.1.
        """
        if self.status is not _ACTIVE:
            raise SchedulingError(
                f"instance {self.instance_id} is {self.status.value}"
            )
        if not 0 < length <= self._max_length:
            raise CapacityError(
                f"length {length} > max_length {self._max_length} "
                f"on instance {self.instance_id}"
            )
        service = self._service_table[length] * self.slow_factor
        busy = self.busy_until_ms
        start = now_ms if now_ms > busy else busy
        finish = start + service
        self.busy_until_ms = finish
        self.outstanding += 1
        self._epoch += 1
        if self.tracker is not None:
            self.tracker.on_enqueue(self)
        return start, finish

    def complete(self) -> None:
        """Mark one request finished (called by the completion event)."""
        if self.outstanding <= 0:
            raise SchedulingError(
                f"instance {self.instance_id} completed with empty queue"
            )
        self.outstanding -= 1
        self.served += 1
        self._epoch += 1
        if self.tracker is not None:
            self.tracker.on_complete(self)

    def begin_drain(self) -> None:
        if self.status is InstanceStatus.RETIRED:
            raise SchedulingError("cannot drain a retired instance")
        self.status = InstanceStatus.DRAINING
        self._epoch += 1
        if self.tracker is not None:
            self.tracker.deactivate(self)

    def retire(self) -> None:
        if self.outstanding:
            raise SchedulingError(
                f"instance {self.instance_id} retired with work outstanding"
            )
        self.status = InstanceStatus.RETIRED
        self._epoch += 1
        if self.tracker is not None:
            self.tracker.deactivate(self)

    def crash(self) -> int:
        """Abrupt failure: drop all outstanding work and retire.

        Returns the number of requests lost (the caller re-dispatches
        them). Unlike :meth:`retire`, crashing is legal at any time.
        """
        if self.status is InstanceStatus.RETIRED:
            raise SchedulingError(
                f"instance {self.instance_id} already retired"
            )
        lost = self.outstanding
        if self.tracker is not None:
            # Deactivate while `outstanding` still reflects the counted
            # amount, then void the lost work from the all-status total.
            self.tracker.deactivate(self)
            self.tracker.on_loss(lost)
        self.outstanding = 0
        self.busy_until_ms = 0.0
        self.status = InstanceStatus.RETIRED
        self._epoch += 1
        return lost

    def suspend(self) -> int:
        """Transient blackout: stop serving, time out outstanding work.

        Returns the number of requests timed out (the caller retries
        them elsewhere). Unlike :meth:`crash`, the instance keeps its
        GPU and identity and rejoins via :meth:`resume`.
        """
        if self.status is not InstanceStatus.ACTIVE:
            raise SchedulingError(
                f"cannot suspend instance {self.instance_id} "
                f"({self.status.value})"
            )
        lost = self.outstanding
        if self.tracker is not None:
            self.tracker.deactivate(self)
            self.tracker.on_loss(lost)
        self.outstanding = 0
        self.busy_until_ms = 0.0
        self.status = InstanceStatus.SUSPENDED
        self._epoch += 1
        return lost

    def resume(self) -> None:
        """End a blackout: the instance may serve again."""
        if self.status is not InstanceStatus.SUSPENDED:
            raise SchedulingError(
                f"cannot resume instance {self.instance_id} "
                f"({self.status.value})"
            )
        self.status = InstanceStatus.ACTIVE
        self._epoch += 1
        if self.tracker is not None:
            self.tracker.activate(self)

    def drained(self) -> bool:
        """True once a draining instance has finished all its work."""
        return self.status is InstanceStatus.DRAINING and self.outstanding == 0

    def idle_at(self, now_ms: float) -> bool:
        return self.outstanding == 0 and self.busy_until_ms <= now_ms
