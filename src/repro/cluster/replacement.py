"""Instance replacement planning (paper §4, "Instance replacement").

Each time the Runtime Scheduler resolves a new allocation, Arlo builds
a plan that swaps the *minimum* number of instances: runtimes whose
count shrinks donate instances (least-busy first), runtimes whose count
grows receive them. Replacements are executed in small batches so that
uninvolved instances never see a traffic spike, and each swap costs
about one second of unavailability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.instance import RuntimeInstance
from repro.cluster.state import ClusterState
from repro.errors import SchedulingError
from repro.units import SECOND

#: §4: "a replacement is low-overhead and usually lasts approximately 1 second".
REPLACEMENT_DURATION_MS = 1 * SECOND
#: Default number of simultaneous swaps per batch.
DEFAULT_BATCH_SIZE = 2


@dataclass(frozen=True)
class ReplacementStep:
    """Swap one instance to a new runtime."""

    instance_id: int
    from_runtime: int
    to_runtime: int


@dataclass
class ReplacementPlan:
    """Ordered, batched list of instance swaps."""

    steps: list[ReplacementStep] = field(default_factory=list)
    batch_size: int = DEFAULT_BATCH_SIZE

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def is_empty(self) -> bool:
        return not self.steps

    def batches(self) -> list[list[ReplacementStep]]:
        """Steps grouped into execution batches."""
        return [
            self.steps[i : i + self.batch_size]
            for i in range(0, len(self.steps), self.batch_size)
        ]

    @property
    def duration_ms(self) -> float:
        """Serialised execution time of the whole plan."""
        return len(self.batches()) * REPLACEMENT_DURATION_MS


def plan_replacement(
    state: ClusterState,
    target: np.ndarray,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ReplacementPlan:
    """Minimal-change plan from the current allocation to ``target``.

    Donors are chosen least-busy first so draining finishes quickly.
    The plan touches exactly ``Σ max(current - target, 0)`` instances —
    no plan can be smaller while reaching the target allocation.
    """
    target = np.asarray(target, dtype=np.int64)
    current = state.allocation()
    if target.shape != current.shape:
        raise SchedulingError(
            f"target has {target.shape} runtimes, cluster has {current.shape}"
        )
    if np.any(target < 0):
        raise SchedulingError("target allocation cannot be negative")
    if target.sum() != current.sum():
        raise SchedulingError(
            f"target uses {target.sum()} GPUs, cluster has {current.sum()} "
            "active instances — scale first, then re-allocate"
        )
    if batch_size < 1:
        raise SchedulingError("batch_size must be >= 1")

    surplus = current - target
    donors: list[RuntimeInstance] = []
    for idx in np.flatnonzero(surplus > 0):
        pool = sorted(
            state.active_instances(int(idx)), key=lambda i: i.outstanding
        )
        donors.extend(pool[: int(surplus[idx])])
    receivers: list[int] = []
    for idx in np.flatnonzero(surplus < 0):
        receivers.extend([int(idx)] * int(-surplus[idx]))

    if len(donors) != len(receivers):  # pragma: no cover - guarded by sum check
        raise SchedulingError("internal: donor/receiver mismatch")

    steps = [
        ReplacementStep(
            instance_id=d.instance_id,
            from_runtime=d.runtime_index,
            to_runtime=r,
        )
        for d, r in zip(donors, receivers)
    ]
    return ReplacementPlan(steps=steps, batch_size=batch_size)
