"""Target-tracking auto-scaling (paper §4).

The policy, verbatim from the implementation section:

- **Scale out** when the p98 latency of recently executed requests
  reaches 95 % of the SLO; the new worker loads a runtime instance
  compiled for the maximum sequence length (so it can absorb anything).
- **Scale in** when the p98 of recently completed requests stays below
  50 % of the SLO over a full decision period (60 s): release the least
  busy instance.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECOND


class ScaleAction(enum.Enum):
    """What the autoscaler wants done right now."""

    NONE = "none"
    OUT = "out"
    IN = "in"


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the target-tracking policy."""

    slo_ms: float
    scale_out_fraction: float = 0.95
    scale_in_fraction: float = 0.50
    #: Sliding window of recent request latencies examined.
    window_size: int = 512
    #: Scale-in requires the condition to hold for this long (§4: 60 s).
    scale_in_period_ms: float = 60 * SECOND
    #: Minimum gap between consecutive scale-out actions.
    scale_out_cooldown_ms: float = 5 * SECOND
    min_gpus: int = 1
    max_gpus: int = 10_000
    percentile: float = 98.0

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ConfigurationError("SLO must be positive")
        if not 0 < self.scale_in_fraction < self.scale_out_fraction <= 1.0:
            raise ConfigurationError(
                "need 0 < scale_in_fraction < scale_out_fraction <= 1"
            )
        if self.window_size < 8:
            raise ConfigurationError("window too small to estimate a p98")
        if self.min_gpus < 1 or self.max_gpus < self.min_gpus:
            raise ConfigurationError("need 1 <= min_gpus <= max_gpus")
        if not 50 <= self.percentile <= 100:
            raise ConfigurationError("percentile must be in [50, 100]")


@dataclass
class TargetTrackingAutoscaler:
    """Streaming implementation fed one completed request at a time."""

    config: AutoscalerConfig
    _latencies: deque = field(init=False)
    _below_since_ms: float | None = field(default=None, init=False)
    _last_scale_out_ms: float = field(default=float("-inf"), init=False)
    _last_scale_in_ms: float = field(default=float("-inf"), init=False)

    def __post_init__(self) -> None:
        self._latencies = deque(maxlen=self.config.window_size)

    def observe(self, latency_ms: float) -> None:
        """Record one completed request's end-to-end latency."""
        if latency_ms < 0:
            raise ConfigurationError("latency cannot be negative")
        self._latencies.append(latency_ms)

    def observe_utilization(self, utilization: float) -> None:
        """Ignored — this policy tracks latency, not load headroom."""

    def tail_latency(self) -> float | None:
        """Current windowed p98, or None before enough data arrived."""
        if len(self._latencies) < max(8, self.config.window_size // 8):
            return None
        return float(
            np.percentile(np.asarray(self._latencies), self.config.percentile)
        )

    def decide(self, now_ms: float, current_gpus: int) -> ScaleAction:
        """Evaluate the policy; call at completion times or periodically."""
        cfg = self.config
        tail = self.tail_latency()
        if tail is None:
            return ScaleAction.NONE

        if tail >= cfg.scale_out_fraction * cfg.slo_ms:
            self._below_since_ms = None
            if current_gpus >= cfg.max_gpus:
                return ScaleAction.NONE
            if now_ms - self._last_scale_out_ms < cfg.scale_out_cooldown_ms:
                return ScaleAction.NONE
            self._last_scale_out_ms = now_ms
            return ScaleAction.OUT

        if tail < cfg.scale_in_fraction * cfg.slo_ms:
            if self._below_since_ms is None:
                self._below_since_ms = now_ms
            sustained = now_ms - self._below_since_ms >= cfg.scale_in_period_ms
            recent_in = now_ms - self._last_scale_in_ms < cfg.scale_in_period_ms
            if sustained and not recent_in and current_gpus > cfg.min_gpus:
                self._last_scale_in_ms = now_ms
                self._below_since_ms = now_ms
                return ScaleAction.IN
            return ScaleAction.NONE

        # In the comfortable band: reset the scale-in timer.
        self._below_since_ms = None
        return ScaleAction.NONE

    def signal(self) -> dict[str, float]:
        """The decision signal, for the control-plane timeline."""
        tail = self.tail_latency()
        return {
            "signal_p98_ms": tail if tail is not None else -1.0,
            "slo_ms": self.config.slo_ms,
        }


@dataclass(frozen=True)
class HeadroomConfig:
    """Knobs of the INFaaS-style load-headroom policy.

    The paper's baselines (§5 "Compared schemes") scale on *load
    headroom* rather than latency: add a worker when cluster
    utilisation exceeds ``scale_out_utilization``, remove one when it
    stays below ``scale_in_utilization`` for a full decision period.
    """

    scale_out_utilization: float = 0.8
    scale_in_utilization: float = 0.3
    window_size: int = 64
    scale_in_period_ms: float = 60 * SECOND
    scale_out_cooldown_ms: float = 5 * SECOND
    min_gpus: int = 1
    max_gpus: int = 10_000

    def __post_init__(self) -> None:
        if not 0 < self.scale_in_utilization < self.scale_out_utilization <= 1:
            raise ConfigurationError(
                "need 0 < scale_in_utilization < scale_out_utilization <= 1"
            )
        if self.window_size < 4:
            raise ConfigurationError("window too small")
        if self.min_gpus < 1 or self.max_gpus < self.min_gpus:
            raise ConfigurationError("need 1 <= min_gpus <= max_gpus")


@dataclass
class HeadroomAutoscaler:
    """Utilisation-threshold scaling (the INFaaS-style baseline policy).

    Shares the :class:`TargetTrackingAutoscaler` interface so the
    simulator's control plane can host either: ``observe`` (latency)
    is accepted and ignored; ``observe_utilization`` feeds the policy.
    """

    config: HeadroomConfig
    _utilizations: deque = field(init=False)
    _below_since_ms: float | None = field(default=None, init=False)
    _last_scale_out_ms: float = field(default=float("-inf"), init=False)
    _last_scale_in_ms: float = field(default=float("-inf"), init=False)

    def __post_init__(self) -> None:
        self._utilizations = deque(maxlen=self.config.window_size)

    def observe(self, latency_ms: float) -> None:
        """Ignored — this policy tracks headroom, not latency."""

    def observe_utilization(self, utilization: float) -> None:
        if utilization < 0:
            raise ConfigurationError("utilization cannot be negative")
        self._utilizations.append(utilization)

    def current_utilization(self) -> float | None:
        if len(self._utilizations) < max(4, self.config.window_size // 8):
            return None
        return float(np.mean(self._utilizations))

    def decide(self, now_ms: float, current_gpus: int) -> ScaleAction:
        cfg = self.config
        util = self.current_utilization()
        if util is None:
            return ScaleAction.NONE
        if util >= cfg.scale_out_utilization:
            self._below_since_ms = None
            if current_gpus >= cfg.max_gpus:
                return ScaleAction.NONE
            if now_ms - self._last_scale_out_ms < cfg.scale_out_cooldown_ms:
                return ScaleAction.NONE
            self._last_scale_out_ms = now_ms
            return ScaleAction.OUT
        if util < cfg.scale_in_utilization:
            if self._below_since_ms is None:
                self._below_since_ms = now_ms
            sustained = now_ms - self._below_since_ms >= cfg.scale_in_period_ms
            recent_in = now_ms - self._last_scale_in_ms < cfg.scale_in_period_ms
            if sustained and not recent_in and current_gpus > cfg.min_gpus:
                self._last_scale_in_ms = now_ms
                self._below_since_ms = now_ms
                return ScaleAction.IN
            return ScaleAction.NONE
        self._below_since_ms = None
        return ScaleAction.NONE

    def signal(self) -> dict[str, float]:
        """The decision signal, for the control-plane timeline."""
        util = self.current_utilization()
        return {
            "signal_utilization": util if util is not None else -1.0,
            "scale_out_utilization": self.config.scale_out_utilization,
        }
