"""GPU cluster substrate: devices, runtime instances, scaling, replacement.

The paper's testbed is ten RTX 3090s behind Triton; here a cluster is a
set of simulated GPU workers, each hosting exactly one runtime instance
(Arlo deliberately avoids co-locating instances of the same stream on
one GPU, §3.3). Instances are single-slot FIFO servers (batch size 1).
"""

from repro.cluster.autoscaler import (
    AutoscalerConfig,
    HeadroomAutoscaler,
    HeadroomConfig,
    ScaleAction,
    TargetTrackingAutoscaler,
)
from repro.cluster.gpu import Gpu
from repro.cluster.instance import InstanceStatus, RuntimeInstance
from repro.cluster.replacement import ReplacementPlan, ReplacementStep, plan_replacement
from repro.cluster.state import ClusterState

__all__ = [
    "AutoscalerConfig",
    "ClusterState",
    "Gpu",
    "HeadroomAutoscaler",
    "HeadroomConfig",
    "InstanceStatus",
    "ReplacementPlan",
    "ReplacementStep",
    "RuntimeInstance",
    "ScaleAction",
    "TargetTrackingAutoscaler",
    "plan_replacement",
]
