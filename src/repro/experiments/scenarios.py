"""Canonical scenario definitions for every evaluation table/figure.

GPU counts are the paper's. Trace durations are shortened (the paper
uses many-minute traces; a pure-Python simulator serves ~10k events/s)
and the Runtime Scheduler period shrinks proportionally, preserving
the periods-per-trace ratio. Two request rates deviate from the paper
and are documented in EXPERIMENTS.md: our BERT-Large latency anchor is
back-solved from the ratio 5.25 (the paper never states the absolute
value), so the equivalent-pressure rate for the BERT-Large stream is
700 req/s rather than 1.5k (Fig. 6b) and 12k rather than 25k
(Fig. 10b) — per-GPU utilisation, which is what shapes the results,
matches the paper's regime.

``scale`` shrinks GPUs and rate together (constant per-GPU load) so CI
runs finish quickly; ``scale=1.0`` reproduces the full setup.
"""

from __future__ import annotations

from repro.cluster.autoscaler import AutoscalerConfig
from repro.experiments.runner import ExperimentSpec
from repro.runtimes.models import get_model

FULL_SCHEMES = ("st", "dt", "infaas", "arlo")


def fig6_scenarios(scale: float = 1.0, duration_s: float = 60.0) -> list[ExperimentSpec]:
    """Fig. 6: testbed latency CDFs, Twitter-Stable, 10 GPUs.

    (a) BERT-Base at the paper's 1k req/s; (b) BERT-Large at 700 req/s
    (equivalent-pressure substitution for the paper's 1.5k — see module
    docstring and EXPERIMENTS.md).
    """
    return [
        ExperimentSpec(
            name="fig6a", model="bert-base", num_gpus=10, rate_per_s=1_000,
            duration_s=duration_s, pattern="stable", schemes=FULL_SCHEMES,
            seed=61, warmup_s=2.0,
        ).scaled(scale),
        ExperimentSpec(
            name="fig6b", model="bert-large", num_gpus=10, rate_per_s=700,
            duration_s=duration_s, pattern="stable", schemes=FULL_SCHEMES,
            seed=62, warmup_s=2.0,
        ).scaled(scale),
    ]


def fig7_scenario(
    rate_per_s: float, scale: float = 1.0, duration_s: float = 20.0
) -> ExperimentSpec:
    """Fig. 7: mean latency vs request load, BERT-Base, 10 GPUs.

    The paper sweeps the arrival rate under Twitter-Stable; callers
    sweep ``rate_per_s`` (paper range roughly 0.5k–2k req/s).
    """
    return ExperimentSpec(
        name=f"fig7@{rate_per_s:g}", model="bert-base", num_gpus=10,
        rate_per_s=rate_per_s, duration_s=duration_s, pattern="stable",
        schemes=FULL_SCHEMES, seed=70, warmup_s=2.0,
    ).scaled(scale)


def fig8_scenario(scale: float = 1.0, duration_s: float = 180.0) -> ExperimentSpec:
    """Fig. 8: auto-scaling under a highly varying Twitter-Bursty load,
    BERT-Large, initially 5 GPUs.

    The autoscaler may not shrink below the initial provision (the
    paper's time-weighted GPU counts all exceed 5), and may grow to 3×.
    """
    model = get_model("bert-large")
    num_gpus = max(2, int(round(5 * scale)))
    return ExperimentSpec(
        name="fig8", model="bert-large", num_gpus=num_gpus,
        rate_per_s=450 * scale,
        duration_s=duration_s, pattern="bursty", schemes=FULL_SCHEMES,
        seed=80, warmup_s=0.0, trace_drift_scale=0.12,
        autoscaler=AutoscalerConfig(
            slo_ms=model.slo_ms,
            min_gpus=num_gpus,
            max_gpus=3 * num_gpus,
            window_size=256,
            scale_in_period_ms=30_000.0,
        ),
    )


def fig10_scenarios(scale: float = 0.1, duration_s: float = 30.0) -> list[ExperimentSpec]:
    """Fig. 10: large-scale simulation CDFs, Twitter-Bursty.

    (a) BERT-Base on 90 GPUs at the paper's 8k req/s; (b) BERT-Large on
    300 GPUs at 17k req/s (equivalent pressure for the paper's 25k) —
    picked so full-padding ST saturates during bursts while DT and
    INFaaS are stressed-but-stable, the regime the paper's reductions
    describe. Default ``scale=0.1`` keeps per-GPU load identical at a
    tractable size; pass ``scale=1.0`` for the full-size clusters.
    """
    return [
        ExperimentSpec(
            name="fig10a", model="bert-base", num_gpus=90, rate_per_s=8_000,
            duration_s=duration_s, pattern="bursty", schemes=FULL_SCHEMES,
            seed=101, warmup_s=2.0,
        ).scaled(scale),
        ExperimentSpec(
            name="fig10b", model="bert-large", num_gpus=300, rate_per_s=17_000,
            duration_s=duration_s, pattern="bursty", schemes=FULL_SCHEMES,
            seed=102, warmup_s=2.0,
        ).scaled(scale),
    ]


def fig11_scenario(
    num_runtimes: int, scale: float = 0.25, duration_s: float = 30.0
) -> ExperimentSpec:
    """Fig. 11: Arlo with N ∈ {2, 4, 8, 16} runtimes, 40 GPUs,
    BERT-Large stream; each runtime's max_length has a step of 512/N."""
    return ExperimentSpec(
        name=f"fig11@N{num_runtimes}", model="bert-large", num_gpus=40,
        rate_per_s=2_800, duration_s=duration_s, pattern="bursty",
        schemes=("arlo",), seed=110, warmup_s=2.0,
        num_runtimes=num_runtimes,
    ).scaled(scale)


def table3_scenario(scale: float = 1.0, duration_s: float = 90.0) -> ExperimentSpec:
    """Table 3: periodic vs even vs global-offline allocation.

    Longer trace with stronger distribution drift so the periodic
    scheduler has something to chase.
    """
    return ExperimentSpec(
        name="table3", model="bert-large", num_gpus=10, rate_per_s=1_400,
        duration_s=duration_s, pattern="bursty",
        schemes=("arlo", "arlo-even", "arlo-global"), seed=30,
        warmup_s=2.0, trace_drift_scale=0.20, scheduler_period_s=12.0,
        trace_drift_window_s=12.0,
    ).scaled(scale)


def table4_scenarios(scale: float = 1.0, duration_s: float = 45.0) -> list[ExperimentSpec]:
    """Table 4: RS vs ILB vs IG on three Twitter-Bursty BERT-Large
    traces at different scales; the third trace has deliberately weak
    short-term length fluctuation (paper §5.2.3)."""
    base = dict(
        model="bert-large", duration_s=duration_s, pattern="bursty",
        schemes=("arlo", "arlo-ilb", "arlo-ig"), warmup_s=2.0,
        scheduler_period_s=15.0, trace_drift_window_s=10.0,
    )
    return [
        ExperimentSpec(name="table4-trace1", num_gpus=10, rate_per_s=1_500,
                       seed=41, trace_drift_scale=0.25, **base).scaled(scale),
        ExperimentSpec(name="table4-trace2", num_gpus=20, rate_per_s=3_600,
                       seed=42, trace_drift_scale=0.20, **base).scaled(scale),
        ExperimentSpec(name="table4-trace3", num_gpus=15, rate_per_s=2_500,
                       seed=43, trace_drift_scale=0.01, **base).scaled(scale),
    ]
