"""Experiment harness: canonical scenarios for every paper table/figure.

- :mod:`repro.experiments.runner` — run (scheme × trace × cluster) and
  collect :class:`repro.sim.simulation.SimulationResult` per scheme.
- :mod:`repro.experiments.scenarios` — the paper's parameterisations
  (GPU counts, rates, traces), with a ``scale`` knob that shrinks rate
  and GPUs proportionally so benchmark runs stay fast while preserving
  per-GPU load.
- :mod:`repro.experiments.report` — row/series formatting that mirrors
  what the paper prints (means, p98s, reductions, CDF grids).
- :mod:`repro.experiments.figures` — one entry point per table/figure.
"""

from repro.experiments.report import (
    cdf_series,
    format_table,
    reduction_percent,
)
from repro.experiments.runner import (
    ExperimentSpec,
    run_experiment,
    run_experiments,
)
from repro.experiments.sweep import expand_grid, run_sweep
from repro.experiments.scenarios import (
    fig6_scenarios,
    fig7_scenario,
    fig8_scenario,
    fig10_scenarios,
    fig11_scenario,
    table3_scenario,
    table4_scenarios,
)

__all__ = [
    "ExperimentSpec",
    "cdf_series",
    "expand_grid",
    "fig6_scenarios",
    "fig7_scenario",
    "fig8_scenario",
    "fig10_scenarios",
    "fig11_scenario",
    "format_table",
    "reduction_percent",
    "run_experiment",
    "run_experiments",
    "run_sweep",
    "table3_scenario",
    "table4_scenarios",
]
