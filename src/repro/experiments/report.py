"""Formatting helpers producing the paper's rows and series."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.simulation import SimulationResult


def reduction_percent(baseline: float, value: float) -> float:
    """Paper-style "X% mean latency reduction" of ``value`` vs baseline."""
    if baseline <= 0:
        raise ConfigurationError("baseline must be positive")
    return 100.0 * (1.0 - value / baseline)


def cdf_series(
    latencies: np.ndarray, points: int = 200
) -> tuple[np.ndarray, np.ndarray]:
    """Down-sampled latency CDF for plotting/printing (Fig. 6/10/11)."""
    if latencies.size == 0:
        raise ConfigurationError("empty latency population")
    qs = np.linspace(0.0, 1.0, points)
    return np.quantile(latencies, qs), qs


def summary_row(result: SimulationResult) -> dict[str, float]:
    """One scheme's headline numbers."""
    return {
        "scheme": result.scheme_name,
        "mean_ms": result.mean_ms,
        "p98_ms": result.p98_ms,
        "p50_ms": result.stats.p50_ms,
        "slo_violation_%": 100.0 * result.stats.slo_violation_rate,
        "requests": result.stats.count,
    }


def comparison_table(
    results: dict[str, SimulationResult], reference: str = "arlo"
) -> list[dict[str, float]]:
    """Rows for every scheme with reductions relative to ``reference``."""
    if reference not in results:
        raise ConfigurationError(f"reference scheme {reference!r} missing")
    ref = results[reference]
    rows = []
    for name, res in results.items():
        row = summary_row(res)
        if name != reference:
            row["arlo_mean_reduction_%"] = reduction_percent(
                res.mean_ms, ref.mean_ms
            )
            row["arlo_p98_reduction_%"] = reduction_percent(
                res.p98_ms, ref.p98_ms
            )
        rows.append(row)
    return rows


def format_table(rows: list[dict], title: str = "") -> str:
    """Plain-text table, aligned, one row per scheme/configuration."""
    if not rows:
        raise ConfigurationError("no rows to format")
    columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [
        [
            f"{row.get(c, ''):.2f}" if isinstance(row.get(c), float) else str(row.get(c, ""))
            for c in columns
        ]
        for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
