"""One entry point per paper table/figure, returning printable data.

These functions compute the *data behind* each figure; the benchmark
files under ``benchmarks/`` time them and print the series, and
EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.allocation import AllocationProblem, solve_allocation
from repro.experiments.report import comparison_table, reduction_percent
from repro.experiments.runner import run_experiment, run_single
from repro.experiments.scenarios import (
    fig6_scenarios,
    fig7_scenario,
    fig8_scenario,
    fig10_scenarios,
    fig11_scenario,
    table3_scenario,
    table4_scenarios,
)
from repro.runtimes.compiler import SimulatedCompiler
from repro.runtimes.models import bert_base, bert_large, dolly, get_model
from repro.runtimes.profiler import OfflineProfiler
from repro.runtimes.registry import build_polymorph_set
from repro.runtimes.staircase import polymorph_lengths_for_count
from repro.units import MINUTE, SECOND, seconds
from repro.workload.stats import lengths_in_windows, summarize_lengths
from repro.workload.twitter import TwitterTraceConfig, generate_twitter_trace


# --------------------------------------------------------------------------
# Fig. 1 — sequence length distributions at two time scales
# --------------------------------------------------------------------------

def fig1_length_distributions(rate_per_s: float = 500.0, seed: int = 1):
    """Per-minute and per-second length quantiles of a Twitter-like trace."""
    trace = generate_twitter_trace(
        TwitterTraceConfig(
            rate_per_s=rate_per_s,
            duration_ms=10 * MINUTE,
            recalibrate_to_512=False,
            seed=seed,
        )
    )
    minute_windows = lengths_in_windows(trace, MINUTE)
    second_windows = lengths_in_windows(trace.slice_time(0, seconds(10)), SECOND)
    def q(windows):
        return [
            {
                "median": float(np.median(w)),
                "p98": float(np.quantile(w, 0.98)),
            }
            for w in windows if w.size
        ]
    return {
        "overall": summarize_lengths(trace),
        "per_minute": q(minute_windows),
        "per_second": q(second_windows),
    }


# --------------------------------------------------------------------------
# Fig. 2 — static vs dynamic compile latency staircases
# --------------------------------------------------------------------------

def fig2_latency_curves(model_name: str = "bert-base"):
    """Measured latency vs length for static and dynamic runtimes."""
    model = {"bert-base": bert_base, "bert-large": bert_large,
             "dolly": dolly}[model_name]()
    compiler = SimulatedCompiler()
    profiler = OfflineProfiler(noise=0.005, seed=2)
    lengths = list(range(16, model.max_length + 1, 16))
    # The paper's static line measures an engine statically compiled at
    # each probed length — so does ours.
    per_length_static = {
        ln: compiler.compile_static(model, ln) for ln in lengths
    }
    full_static = compiler.compile_static(model, model.max_length)
    dynamic = compiler.compile_dynamic(model)
    return {
        "lengths": lengths,
        "static_ms": [
            profiler.measure_ms(per_length_static[ln], ln) for ln in lengths
        ],
        "dynamic_ms": profiler.latency_curve(dynamic, lengths),
        "padded_512_ms": [
            profiler.measure_ms(full_static, ln) for ln in lengths
        ],
    }


# --------------------------------------------------------------------------
# Fig. 4 — motivating dispatch scenario
# --------------------------------------------------------------------------

def fig4_motivating_scenario(slo_ms: float = 40.0):
    """SLO violations of ideal / greedy / RS dispatch on the paper's
    short-burst-then-long-burst scenario (2×128 + 1×256 + 1×512 GPUs)."""
    from repro.baselines.dispatchers import (
        ArloDispatcher,
        InterGroupGreedy,
        IntraGroupLoadBalance,
    )
    from repro.cluster.state import ClusterState
    from repro.core.mlq import MultiLevelQueue
    from repro.core.request_scheduler import (
        ArloRequestScheduler,
        RequestSchedulerConfig,
    )
    from repro.runtimes.compiler import SimulatedCompiler
    from repro.runtimes.profiler import OfflineProfiler
    from repro.runtimes.registry import RuntimeRegistry

    model = bert_large()
    times = np.concatenate([np.arange(30) * 0.5, 20.0 + np.arange(9) * 0.5])
    lengths = np.concatenate([
        np.full(30, 100), np.linspace(257, 512, 9).astype(int)
    ])
    out = {}
    for kind in ("ideal (ILB)", "greedy (IG)", "request scheduler"):
        compiler, profiler = SimulatedCompiler(), OfflineProfiler(noise=0.0)
        runtimes = compiler.compile_polymorph_set(model, [128, 256, 512])
        registry = RuntimeRegistry(
            profiles=profiler.profile_set(runtimes, slo_ms)
        )
        state = ClusterState.bootstrap(registry, [2, 1, 1])
        mlq = MultiLevelQueue.from_cluster(state)
        if kind == "request scheduler":
            dispatcher = ArloDispatcher(scheduler=ArloRequestScheduler(
                registry=registry, mlq=mlq,
                config=RequestSchedulerConfig(max_peek_levels=3),
            ))
        else:
            cls = IntraGroupLoadBalance if "ILB" in kind else InterGroupGreedy
            dispatcher = cls(registry=registry, mlq=mlq)
        violations = 0
        for t, ln in zip(times, lengths):
            _, _, finish = dispatcher.dispatch(float(t), int(ln))
            violations += finish - t > slo_ms
        out[kind] = {"slo_violations": int(violations),
                     "requests": int(times.size)}
    return out


# --------------------------------------------------------------------------
# Fig. 5 / Algorithm 1 — the worked dispatch example
# --------------------------------------------------------------------------

def fig5_worked_example():
    """The paper's multi-level-queue walk for a length-200 request
    (λ=0.85, α=0.9, L=3): skip Q2 at 54/60, dispatch to Q3 at 28/48."""
    from repro.cluster.state import ClusterState
    from repro.core.mlq import MultiLevelQueue
    from repro.core.request_scheduler import (
        ArloRequestScheduler,
        RequestSchedulerConfig,
    )
    from repro.runtimes.compiler import SimulatedCompiler
    from repro.runtimes.profiler import OfflineProfiler, RuntimeProfile
    from repro.runtimes.registry import RuntimeRegistry
    from repro.units import PER_REQUEST_OVERHEAD_MS

    slo = 450.0
    compiler = SimulatedCompiler()
    model = bert_base()
    profiles = []
    for ml, cap in zip((128, 256, 384, 512), (80, 60, 48, 40)):
        runtime = compiler.compile_static(model, ml)
        service = slo / cap - PER_REQUEST_OVERHEAD_MS - 1e-6
        profiles.append(RuntimeProfile(runtime=runtime, slo_ms=slo,
                                       service_ms=service))
    registry = RuntimeRegistry(profiles=profiles)
    state = ClusterState.bootstrap(registry, [1, 1, 1, 1])
    mlq = MultiLevelQueue.from_cluster(state)
    for level, load in ((1, 54), (2, 28), (3, 10)):
        inst = state.active_instances(level)[0]
        for _ in range(load):
            inst.enqueue(0.0, 1)
        mlq.refresh(inst)
    scheduler = ArloRequestScheduler(
        registry=registry, mlq=mlq,
        config=RequestSchedulerConfig(lam=0.85, alpha=0.9,
                                      max_peek_levels=3),
    )
    decision = scheduler.select(200)
    return {
        "request_length": 200,
        "chosen_max_length": decision.instance.max_length,
        "ideal_level": decision.ideal_level,
        "chosen_level": decision.level,
        "levels_peeked": decision.levels_peeked,
        "demoted": decision.demoted,
    }


# --------------------------------------------------------------------------
# Figs. 6, 7, 10 — serving comparisons
# --------------------------------------------------------------------------

def fig6(scale: float = 1.0, duration_s: float = 60.0):
    return {
        spec.name: comparison_table(run_experiment(spec))
        for spec in fig6_scenarios(scale=scale, duration_s=duration_s)
    }


def fig7(rates=(600, 1_000, 1_400, 1_800), scale: float = 1.0,
         duration_s: float = 20.0):
    """Mean latency per scheme at each arrival rate."""
    series: dict[str, list[float]] = {}
    for rate in rates:
        results = run_experiment(fig7_scenario(rate, scale=scale,
                                               duration_s=duration_s))
        for name, res in results.items():
            series.setdefault(name, []).append(res.mean_ms)
    return {"rates": list(rates), "mean_ms": series}


def autoscaling_row(res) -> dict:
    """One scheme's Fig. 8 row.

    Control-plane counters are read with ``.get(..., 0)``: results from
    paths that never ran an autoscaler (baseline schemes, merged shard
    summaries, replayed result dicts) simply report zero scaling
    actions instead of crashing the whole figure.
    """
    control = res.control_stats
    return {
        "time_weighted_gpus": res.time_weighted_gpus,
        "p98_ms": res.p98_ms,
        "mean_ms": res.mean_ms,
        "scale_outs": control.get("scale_outs", 0),
        "scale_ins": control.get("scale_ins", 0),
        "gpu_timeline": getattr(res.metrics, "gpu_timeline", []),
    }


def fig8(scale: float = 1.0, duration_s: float = 180.0):
    """Time-weighted GPU usage and tail latency under auto-scaling."""
    spec = fig8_scenario(scale=scale, duration_s=duration_s)
    results = run_experiment(spec)
    return {name: autoscaling_row(res) for name, res in results.items()}


def fig10(scale: float = 0.1, duration_s: float = 30.0):
    return {
        spec.name: comparison_table(run_experiment(spec))
        for spec in fig10_scenarios(scale=scale, duration_s=duration_s)
    }


# --------------------------------------------------------------------------
# Fig. 11 — number of runtimes ablation
# --------------------------------------------------------------------------

def fig11(counts=(2, 4, 8, 16), scale: float = 0.25, duration_s: float = 30.0):
    out = {}
    for n in counts:
        spec = fig11_scenario(n, scale=scale, duration_s=duration_s)
        res = run_experiment(spec)["arlo"]
        out[n] = {
            "mean_ms": res.mean_ms,
            "p98_ms": res.p98_ms,
            "slo_violation_%": 100.0 * res.stats.slo_violation_rate,
        }
    return out


# --------------------------------------------------------------------------
# Fig. 12 — allocation over time
# --------------------------------------------------------------------------

def fig12(scale: float = 1.0, duration_s: float = 120.0):
    """GPU count per runtime at each Runtime Scheduler decision."""
    spec = table3_scenario(scale=scale, duration_s=duration_s)
    scheme, _result = run_single(spec, "arlo")
    times, allocs = scheme.runtime_scheduler.allocation_timeline()
    return {
        "times_s": (times / SECOND).tolist(),
        "allocations": allocs.tolist(),
        "max_lengths": [p.max_length for p in scheme.registry],
    }


# --------------------------------------------------------------------------
# Tables 2, 3, 4
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    num_gpus: int
    num_runtimes: int
    solver: str
    solve_time_s: float


def table2_problem(num_gpus: int, num_runtimes: int,
                   seed: int = 5) -> AllocationProblem:
    """A Table-2-sized allocation instance with realistic profiles."""
    model = get_model("bert-large")
    registry = build_polymorph_set(
        model,
        max_lengths=polymorph_lengths_for_count(model.max_length, num_runtimes),
    )
    rng = np.random.default_rng(seed)
    # Demand scaled to ~60 % cluster utilisation, log-normally spread.
    caps = np.array([p.capacity for p in registry], dtype=float)
    weights = rng.lognormal(0.0, 0.8, size=num_runtimes)
    weights /= weights.sum()
    demand = weights * 0.6 * num_gpus * caps.mean()
    return AllocationProblem.from_profiles(num_gpus, demand, list(registry))


def table2(configs=((50, 8), (200, 12), (1000, 16)), repeats: int = 5):
    """ILP solve times across cluster scales (paper: 0.156/0.623/2.612 s
    with GUROBI; we report our solvers on the same problem sizes)."""
    rows: list[Table2Row] = []
    for gpus, runtimes in configs:
        problem = table2_problem(gpus, runtimes)
        method = "dp" if gpus <= 120 else "local"
        elapsed = []
        for _ in range(repeats):
            start = time.perf_counter()
            solve_allocation(problem, method=method, relax=True)
            elapsed.append(time.perf_counter() - start)
        rows.append(Table2Row(gpus, runtimes, method, float(np.mean(elapsed))))
    return rows


def table3(scale: float = 1.0, duration_s: float = 90.0):
    spec = table3_scenario(scale=scale, duration_s=duration_s)
    results = run_experiment(spec)
    return comparison_table(results, reference="arlo")


def table4(scale: float = 1.0, duration_s: float = 45.0):
    out = {}
    for spec in table4_scenarios(scale=scale, duration_s=duration_s):
        results = run_experiment(spec)
        rs = results["arlo"]
        out[spec.name] = {
            name: {
                "mean_ms": res.mean_ms,
                "p98_ms": res.p98_ms,
                "rs_mean_reduction_%": reduction_percent(res.mean_ms, rs.mean_ms),
                "rs_p98_reduction_%": reduction_percent(res.p98_ms, rs.p98_ms),
            }
            for name, res in results.items()
        }
    return out
