"""Terminal (ASCII) rendering of the paper's figures.

The benchmark environment has no plotting stack, so figures render as
monospace text: latency CDFs (Figs. 6/10/11), line series (Fig. 7),
stacked allocation timelines (Fig. 12) and step timelines (Fig. 8).
Every renderer takes plain arrays and returns a string — no I/O — so
they are unit-testable and compose with any pager or log file.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """One-line magnitude sketch of a series."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ConfigurationError("nothing to sparkline")
    if values.size > width:
        # Down-sample by block means.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([
            values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a
        ])
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo
    if span <= 0:
        return _BARS[4] * values.size
    idx = ((values - lo) / span * (len(_BARS) - 1)).round().astype(int)
    return "".join(_BARS[i] for i in idx)


def line_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Multi-series scatter/line plot on a character grid.

    ``series`` maps a label to (x, y) arrays; each series is drawn with
    its label's first letter.
    """
    if not series:
        raise ConfigurationError("no series to plot")
    xs = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs.size == 0:
        raise ConfigurationError("empty series")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, (x, y) in series.items():
        mark = label[0].upper()
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        cols = ((x - x_lo) / x_span * (width - 1)).round().astype(int)
        rows = ((y - y_lo) / y_span * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = mark
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi - i * y_span / (height - 1)
        lines.append(f"{y_val:10.2f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11s} {x_lo:<10.2f}{xlabel:^{max(width - 20, 0)}}{x_hi:>10.2f}")
    legend = "   ".join(f"{label[0].upper()}={label}" for label in series)
    lines.append(f"{'':11s} {legend}")
    if ylabel:
        lines.insert(1 if title else 0, f"[{ylabel}]")
    return "\n".join(lines)


def cdf_plot(
    populations: dict[str, np.ndarray],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_max: float | None = None,
) -> str:
    """Latency CDFs of several schemes on one grid (Fig. 6/10 style)."""
    if not populations:
        raise ConfigurationError("no populations to plot")
    series = {}
    for label, values in populations.items():
        values = np.sort(np.asarray(values, dtype=float))
        if values.size == 0:
            raise ConfigurationError(f"population {label!r} is empty")
        probs = np.arange(1, values.size + 1) / values.size
        if x_max is not None:
            keep = values <= x_max
            # Keep at least two points so the series stays drawable.
            if keep.sum() >= 2:
                values, probs = values[keep], probs[keep]
        series[label] = (values, probs)
    return line_plot(series, width=width, height=height, title=title,
                     xlabel="latency (ms)", ylabel="CDF")


def allocation_timeline(
    times_s: np.ndarray,
    allocations: np.ndarray,
    max_lengths: list[int],
    width: int = 64,
) -> str:
    """Fig. 12: per-runtime GPU counts over time as sparkline rows."""
    allocations = np.asarray(allocations)
    if allocations.ndim != 2 or allocations.shape[1] != len(max_lengths):
        raise ConfigurationError("allocations must be (T, runtimes)")
    if allocations.shape[0] == 0:
        raise ConfigurationError("no decisions to draw")
    lines = [
        f"allocation over {len(times_s)} scheduler decisions "
        f"({times_s[0]:.0f}s..{times_s[-1]:.0f}s)"
    ]
    for j, ml in enumerate(max_lengths):
        counts = allocations[:, j]
        lines.append(
            f"  max_len {ml:4d}: {sparkline(counts, width)}  "
            f"(min {counts.min()}, max {counts.max()})"
        )
    return "\n".join(lines)


def step_timeline(
    timeline: list[tuple[float, int]],
    horizon_ms: float,
    width: int = 64,
    label: str = "GPUs",
) -> str:
    """Fig. 8: a step function (e.g. GPU count) sampled onto a line."""
    if not timeline:
        raise ConfigurationError("empty timeline")
    times = np.array([t for t, _ in timeline])
    counts = np.array([c for _, c in timeline])
    grid_t = np.linspace(times[0], max(horizon_ms, times[-1]), width)
    idx = np.searchsorted(times, grid_t, side="right") - 1
    series = counts[np.clip(idx, 0, counts.size - 1)]
    return (
        f"{label}: {sparkline(series, width)} "
        f"(start {counts[0]}, peak {counts.max()}, end {counts[-1]})"
    )
