"""Run experiments: schemes over traces, inline or across processes."""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.baselines.schemes import Scheme, build_scheme
from repro.cluster.autoscaler import AutoscalerConfig
from repro.core.request_scheduler import RequestSchedulerConfig
from repro.core.runtime_scheduler import RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.resilience.retry import RetryPolicy
from repro.runtimes.models import get_model
from repro.runtimes.registry import RuntimeRegistry, build_polymorph_set
from repro.runtimes.staircase import polymorph_lengths_for_count
from repro.sim.faults import FaultPlan
from repro.sim.simulation import SimulationConfig, SimulationResult, run_simulation
from repro.units import seconds
from repro.workload.trace import Trace
from repro.workload.twitter import TwitterTraceConfig, generate_twitter_trace


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete experiment definition (one paper sub-figure)."""

    name: str
    model: str
    num_gpus: int
    rate_per_s: float
    duration_s: float
    pattern: str = "stable"
    schemes: tuple[str, ...] = ("st", "dt", "infaas", "arlo")
    seed: int = 0
    #: Leading slice used to warm-start length-aware allocations.
    hint_s: float = 5.0
    #: Requests arriving before this are excluded from the statistics.
    warmup_s: float = 0.0
    #: Runtime Scheduler period; the paper's 120 s assumes ≥10-minute
    #: traces, so scaled-down runs shrink it proportionally.
    scheduler_period_s: float = 20.0
    #: Number of polymorph runtimes (None = the model's staircase count).
    num_runtimes: int | None = None
    #: Auto-scaling (Fig. 8): None disables it.
    autoscaler: AutoscalerConfig | None = None
    trace_drift_scale: float = 0.08
    #: Drift window of the length distribution; scaled-down experiments
    #: compress the paper's one-minute drift together with everything
    #: else (trace duration, scheduler period) so the Runtime Scheduler
    #: has several distribution shifts to chase.
    trace_drift_window_s: float = 15.0
    #: Fault schedule injected into the run (None = fault-free).
    failures: FaultPlan | None = None
    #: Retry policy for lost work: the string sentinel keeps the
    #: simulator's default backoff, None disables retries (instant
    #: re-dispatch), or pass an explicit :class:`RetryPolicy`.
    retry: "RetryPolicy | None | str" = "default"
    #: Replay an explicit trace instead of generating a Twitter-like
    #: one (real count series, hand-built equivalence fixtures...).
    #: ``duration_s`` must still cover the trace's span.
    trace_override: Trace | None = field(default=None, compare=False)
    #: ``(index, count)`` — run only time-window ``index`` of ``count``
    #: equal windows of the trace, in shard-local time. Set by the
    #: sharded driver (:mod:`repro.sim.sharded`); the scheme is still
    #: built from the *full* trace's hint slice so every shard deploys
    #: the same initial allocation as the serial run.
    shard: tuple[int, int] | None = None
    #: ``(index, count)`` — run only *space* shard ``index`` of
    #: ``count``: the cluster (not the clock) is partitioned, every
    #: shard replays its own slice of the arrival stream on unshifted
    #: timestamps. Set by :func:`repro.sim.sharded.run_spatial`;
    #: mutually exclusive with ``shard``.
    space_shard: tuple[int, int] | None = None
    #: How space shards partition work. ``"request"``: shard ``k``
    #: keeps requests with ``id % count == k`` and a proportional GPU
    #: slice — a scaled replica preserving per-GPU load (approximate
    #: equivalence). ``"level"``: shard ``k`` owns the MLQ levels with
    #: ``level % count == k``, keeps exactly their requests, and
    #: retires every foreign-level instance — *exact* (bin-exact
    #: sketch) for static multi-level schemes while the serial run has
    #: zero demotions/fallbacks/deferrals (see docs/PERFORMANCE.md).
    space_partition: str = "request"
    #: Completion payload representation for the simulator
    #: (``SimulationConfig.data_plane``): ``"pooled"`` or
    #: ``"columnar"``.
    data_plane: str = "pooled"
    #: Solve allocations through the deadline-bounded anytime ladder
    #: (:mod:`repro.perf.anytime`) instead of a single solver.
    solver_ladder: bool = False
    #: Wall-clock budget per ladder solve, milliseconds.
    solve_deadline_ms: float = 50.0
    #: Forecast next-period demand and pre-solve it into the allocation
    #: cache (requires ``solver_ladder``).
    forecast: bool = False
    #: Generative (prefill + decode) workload: sample per-request decode
    #: lengths and serve through the decode event loop with continuous
    #: batching (Arlo-family schemes only).
    generative: bool = False
    #: Decode batch cap per instance (``generative`` only).
    max_batch: int = 8
    #: False = gang-scheduled batches (``generative`` only).
    continuous_batching: bool = True
    #: Decode steps advanced per DECODE_STEP event (``generative`` only).
    chunk_steps: int = 1
    #: Sampled decode-length quantiles (``generative`` only).
    decode_median: int = 64
    decode_p98: int = 256
    #: Disaggregated prefill/decode pools (``generative`` only): run
    #: the two-pool loop with KV handoff and adaptive rebalancing.
    disagg: bool = False
    #: KV-cache transfer cost per prompt token (``disagg`` only).
    transfer_ms_per_token: float = 0.02
    #: Initial share of instances assigned to the prefill pool
    #: (``disagg`` only); the rebalancer adjusts from there.
    prefill_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_gpus < 1 or self.rate_per_s <= 0 or self.duration_s <= 0:
            raise ConfigurationError("invalid experiment dimensions")
        if self.hint_s >= self.duration_s:
            raise ConfigurationError("hint slice must be shorter than the trace")
        if self.shard is not None:
            index, count = self.shard
            if count < 1 or not 0 <= index < count:
                raise ConfigurationError(
                    "shard must be (index, count) with 0 <= index < count"
                )
        if self.space_partition not in ("request", "level"):
            raise ConfigurationError(
                f"unknown space partition {self.space_partition!r} "
                "(expected 'request' or 'level')"
            )
        if self.space_shard is not None:
            if self.shard is not None:
                raise ConfigurationError(
                    "time and space shards cannot be combined"
                )
            index, count = self.space_shard
            if count < 1 or not 0 <= index < count:
                raise ConfigurationError(
                    "space_shard must be (index, count) with "
                    "0 <= index < count"
                )
            if self.failures is not None:
                raise ConfigurationError(
                    "faults do not partition spatially (victim ranking "
                    "is global) — use time shards for fault plans"
                )
            if self.space_partition == "request" and count > self.num_gpus:
                raise ConfigurationError(
                    "request-partitioned space shards need at least one "
                    "GPU each"
                )
            if self.space_partition == "level" and self.autoscaler is not None:
                raise ConfigurationError(
                    "level-partitioned space shards require a static "
                    "cluster (no autoscaler)"
                )
        if self.generative:
            if self.shard is not None or self.space_shard is not None:
                raise ConfigurationError(
                    "generative runs do not shard: decode batches span "
                    "shard boundaries"
                )
            if self.autoscaler is not None:
                raise ConfigurationError(
                    "generative runs do not support the autoscaler yet"
                )
            # Validate the decode knobs at spec construction so a bad
            # sweep fails before any trace is generated — the same
            # checks GenerativeConfig repeats at simulation time.
            if self.max_batch < 1:
                raise ConfigurationError("max_batch must be >= 1")
            if self.chunk_steps < 1:
                raise ConfigurationError("chunk_steps must be >= 1")
            if self.decode_median < 1:
                raise ConfigurationError("decode_median must be >= 1")
            if self.decode_p98 < self.decode_median:
                raise ConfigurationError(
                    "decode_p98 must be >= decode_median (quantiles "
                    "cannot invert)"
                )
        if self.disagg:
            if not self.generative:
                raise ConfigurationError(
                    "disagg requires generative=True (the pools serve "
                    "a prefill+decode workload)"
                )
            if self.transfer_ms_per_token < 0:
                raise ConfigurationError(
                    "transfer_ms_per_token cannot be negative"
                )
            if not 0.0 < self.prefill_fraction < 1.0:
                raise ConfigurationError(
                    "prefill_fraction must be strictly between 0 and 1"
                )

    def scaled(self, factor: float) -> "ExperimentSpec":
        """Proportionally shrink rate and GPUs (constant per-GPU load)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            num_gpus=max(2, int(round(self.num_gpus * factor))),
            rate_per_s=self.rate_per_s * factor,
        )

    def make_full_trace(self) -> Trace:
        """The whole trace, ignoring any shard window."""
        if self.trace_override is not None:
            if self.generative:
                from repro.workload.generative import (
                    GenerativeTrace,
                    attach_decode_lengths,
                )

                if isinstance(self.trace_override, GenerativeTrace):
                    return self.trace_override
                return attach_decode_lengths(
                    self.trace_override,
                    self._decode_lengths(),
                    seed=self.seed,
                )
            return self.trace_override
        if self.generative:
            from repro.workload.generative import (
                GenerativeTraceConfig,
                generate_generative_trace,
            )

            return generate_generative_trace(
                GenerativeTraceConfig(
                    rate_per_s=self.rate_per_s,
                    duration_ms=seconds(self.duration_s),
                    pattern=self.pattern,
                    seed=self.seed,
                    drift_scale=self.trace_drift_scale,
                    drift_window_ms=seconds(self.trace_drift_window_s),
                    decode_lengths=self._decode_lengths(),
                )
            )
        return generate_twitter_trace(
            TwitterTraceConfig(
                rate_per_s=self.rate_per_s,
                duration_ms=seconds(self.duration_s),
                pattern=self.pattern,
                seed=self.seed,
                drift_scale=self.trace_drift_scale,
                drift_window_ms=seconds(self.trace_drift_window_s),
            )
        )

    def _decode_lengths(self):
        from repro.workload.lengths import LogNormalLengths

        return LogNormalLengths.from_quantiles(
            median=self.decode_median,
            p98=self.decode_p98,
            max_length=max(2 * self.decode_p98, self.decode_p98 + 1),
        )

    def shard_window_ms(self) -> tuple[float, float]:
        """Absolute ``[start, end)`` of this spec's shard window."""
        duration_ms = seconds(self.duration_s)
        if self.shard is None:
            return 0.0, duration_ms
        index, count = self.shard
        window = duration_ms / count
        start = index * window
        end = duration_ms if index == count - 1 else start + window
        return start, end

    def make_trace(self) -> Trace:
        trace = self.make_full_trace()
        if self.space_shard is not None:
            index, count = self.space_shard
            mask = space_partition_owners(self, trace, count) == index
            return Trace(trace.arrival_ms[mask], trace.length[mask])
        if self.shard is None:
            return trace
        start, end = self.shard_window_ms()
        return trace.slice_time(start, end)

    def make_registry(self) -> RuntimeRegistry | None:
        if self.num_runtimes is None:
            return None
        model = get_model(self.model)
        return build_polymorph_set(
            model,
            max_lengths=polymorph_lengths_for_count(
                model.max_length, self.num_runtimes
            ),
        )

    def make_scheme(self, scheme_name: str, trace: Trace) -> Scheme:
        # Table 3's "global" baseline is an oracle over the *entire*
        # trace distribution; everything else warms up on a short slice.
        # A shard spec hints on the *full* trace's slice regardless of
        # its window so every shard builds the serial run's allocation.
        if self.shard is not None or self.space_shard is not None:
            trace = self.make_full_trace()
        if scheme_name == "arlo-global":
            hint = trace
        else:
            hint = trace.slice_time(0, seconds(self.hint_s))
        num_gpus = self.num_gpus
        if self.space_shard is not None and self.space_partition == "request":
            # Scaled replica: an even GPU slice (remainder spread over
            # the first shards) under 1/count of the arrivals keeps
            # per-GPU load — and therefore congestion behaviour —
            # aligned with the serial run.
            index, count = self.space_shard
            num_gpus = num_gpus // count + (1 if index < num_gpus % count else 0)
        scheme = build_scheme(
            scheme_name,
            self.model,
            num_gpus,
            trace_hint=hint if len(hint) else None,
            registry=self.make_registry(),
            request_scheduler_config=RequestSchedulerConfig(),
            runtime_scheduler_config=RuntimeSchedulerConfig(
                period_ms=seconds(self.scheduler_period_s),
                solver_ladder=self.solver_ladder,
                solve_deadline_ms=self.solve_deadline_ms,
                forecast=self.forecast,
            ),
        )
        if self.space_shard is not None and self.space_partition == "level":
            self._mask_foreign_levels(scheme)
        return scheme

    def _mask_foreign_levels(self, scheme: Scheme) -> None:
        """Reduce a full scheme to this shard's owned MLQ levels.

        The scheme is built exactly as the serial run would (same
        allocation, same instances), then every instance of a foreign
        level is retired and its GPU released at t=0 — so the shard's
        owned levels are *identical* to the serial run's, and its GPU
        integral only counts owned hardware.
        """
        index, count = self.space_shard
        if len(scheme.mlq) < 2:
            raise ConfigurationError(
                "level partition needs a multi-level scheme "
                "(st/dt have a single level)"
            )
        if scheme.runtime_scheduler is not None:
            raise ConfigurationError(
                "level partition requires a static scheme — a periodic "
                "Runtime Scheduler would redeploy the foreign levels "
                "(use e.g. 'arlo-even' or 'arlo-global')"
            )
        for inst in list(scheme.cluster.instances.values()):
            if inst.runtime_index % count != index:
                if scheme.mlq.contains(inst):
                    scheme.mlq.remove(inst)
                gpu = scheme.cluster.retire_instance(inst)
                scheme.cluster.release_gpu(gpu.gpu_id, 0.0)

    def sim_config(self) -> SimulationConfig:
        warmup_ms = seconds(self.warmup_s)
        failures = self.failures
        if self.shard is not None:
            start, end = self.shard_window_ms()
            # Shard-local warm-up: the serial run's warm-up window maps
            # onto whichever shard(s) it overlaps.
            warmup_ms = min(max(warmup_ms - start, 0.0), end - start)
            if failures is not None:
                failures = failures.window(start, end)
                if not len(failures):
                    failures = None
        kwargs = {}
        if self.retry != "default":
            kwargs["retry"] = self.retry
        if self.generative:
            from repro.sim.generative import GenerativeConfig

            disagg_cfg = None
            if self.disagg:
                from repro.sim.disagg import DisaggConfig

                disagg_cfg = DisaggConfig(
                    transfer_ms_per_token=self.transfer_ms_per_token,
                    prefill_fraction=self.prefill_fraction,
                )
            kwargs["generative"] = GenerativeConfig(
                max_batch=self.max_batch,
                continuous_batching=self.continuous_batching,
                chunk_steps=self.chunk_steps,
                disagg=disagg_cfg,
            )
        return SimulationConfig(
            enable_autoscaler=self.autoscaler is not None,
            autoscaler=self.autoscaler,
            warmup_ms=warmup_ms,
            failures=failures,
            data_plane=self.data_plane,
            **kwargs,
        )


def space_partition_owners(
    spec: ExperimentSpec, trace: Trace, num_shards: int
) -> np.ndarray:
    """Space-shard owner of every request in ``trace``.

    ``"request"`` partition: round-robin by request index (every shard
    sees the full length distribution at ``1/num_shards`` of the
    rate). ``"level"`` partition: owner is the request's ideal MLQ
    level modulo ``num_shards``, computed against the same polymorph
    registry the multi-level schemes deploy. Shared by
    :meth:`ExperimentSpec.make_trace` (inside each worker) and the
    spatial driver's empty-shard detection (in the parent), so both
    sides agree on the split by construction.
    """
    if spec.space_partition == "request":
        return np.arange(len(trace)) % num_shards
    registry = spec.make_registry()
    if registry is None:
        registry = build_polymorph_set(get_model(spec.model))
    levels = np.searchsorted(
        registry.bin_edges(), trace.length, side="left"
    )
    return levels % num_shards


def run_experiment(
    spec: ExperimentSpec, schemes: tuple[str, ...] | None = None
) -> dict[str, SimulationResult]:
    """Run every scheme of ``spec`` on one shared trace."""
    trace = spec.make_trace()
    results: dict[str, SimulationResult] = {}
    for name in schemes or spec.schemes:
        scheme = spec.make_scheme(name, trace)
        results[name] = run_simulation(scheme, trace, spec.sim_config())
    return results


def run_single(
    spec: ExperimentSpec, scheme_name: str
) -> tuple[Scheme, SimulationResult]:
    """Run one scheme, returning the scheme for post-hoc inspection."""
    trace = spec.make_trace()
    scheme = spec.make_scheme(scheme_name, trace)
    return scheme, run_simulation(scheme, trace, spec.sim_config())


def _run_job(args) -> tuple[str, str, object]:
    """One (spec, scheme) unit of work — module-level so it pickles."""
    spec, scheme_name, summarize = args
    results = run_experiment(spec, schemes=(scheme_name,))
    payload = results[scheme_name]
    if summarize is not None:
        payload = summarize(payload)
    return spec.name, scheme_name, payload


def run_experiments(
    specs: list[ExperimentSpec],
    schemes: tuple[str, ...] | None = None,
    workers: int = 1,
    summarize: Callable[[SimulationResult], object] | None = None,
) -> dict[str, dict[str, object]]:
    """Run every (spec × scheme) scenario, optionally in parallel.

    Simulations are single-threaded and independent, so scenario fleets
    parallelise perfectly across processes: each worker rebuilds its
    trace and scheme locally from the picklable spec, and only the
    (optionally ``summarize``-reduced) results cross process
    boundaries. Returns ``{spec.name: {scheme: payload}}``.

    ``workers=1`` runs everything inline (no fork) — use that under
    pytest or anywhere process pools are awkward. With ``workers > 1``
    prefer a module-level ``summarize`` (e.g.
    :func:`repro.io.results.result_to_dict`): it then runs inside the
    workers so payloads stay small. Lambdas and closures don't pickle,
    so they are applied in the parent instead — correct, but the full
    ``SimulationResult`` crosses the process boundary first.
    """
    if not specs:
        raise ConfigurationError("no experiments to run")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ConfigurationError("spec names must be unique within a batch")
    shipped = summarize
    late_summarize = None
    if workers > 1 and summarize is not None:
        try:
            pickle.dumps(summarize)
        except Exception:
            shipped, late_summarize = None, summarize
    jobs = [
        (spec, scheme, shipped)
        for spec in specs
        for scheme in (schemes or spec.schemes)
    ]
    out: dict[str, dict[str, object]] = {s.name: {} for s in specs}
    if workers == 1:
        completed = map(_run_job, jobs)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            completed = list(pool.map(_run_job, jobs))
    for spec_name, scheme_name, payload in completed:
        if late_summarize is not None:
            payload = late_summarize(payload)
        out[spec_name][scheme_name] = payload
    return out
