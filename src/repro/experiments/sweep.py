"""Parallel experiment sweeps.

Simulations are single-threaded and independent, so sweeps (Fig. 7's
load axis, Fig. 11's runtime counts, seed replications) parallelise
perfectly across processes. Specs are plain picklable dataclasses;
each worker rebuilds its scheme and trace locally, so nothing heavy
crosses process boundaries except the result summaries.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_experiments
from repro.io.results import result_to_dict


def expand_grid(base: ExperimentSpec, **axes: Iterable) -> list[ExperimentSpec]:
    """Cartesian product of field overrides, one spec per combination.

    ``expand_grid(spec, rate_per_s=[600, 1200], seed=[1, 2])`` yields
    four specs named ``{base.name}[rate_per_s=600,seed=1]`` etc.
    """
    if not axes:
        return [base]
    for field_name in axes:
        if not hasattr(base, field_name):
            raise ConfigurationError(
                f"ExperimentSpec has no field {field_name!r}"
            )
    specs = [base]
    for field_name, values in axes.items():
        values = list(values)
        if not values:
            raise ConfigurationError(f"axis {field_name!r} is empty")
        specs = [
            replace(s, name=f"{s.name}[{field_name}={v!r}]"
                    if len(values) > 1 else s.name,
                    **{field_name: v})
            for s in specs
            for v in values
        ]
    return specs


def run_sweep(
    specs: list[ExperimentSpec],
    schemes: tuple[str, ...] | None = None,
    workers: int = 1,
) -> dict[str, dict[str, dict]]:
    """Run every (spec × scheme) combination, optionally in parallel.

    Returns ``{spec.name: {scheme: summary_dict}}`` where the summaries
    are :func:`repro.io.results.result_to_dict` payloads (picklable,
    JSON-ready). ``workers=1`` runs inline — use that under pytest or
    anywhere fork semantics are awkward. Delegates to the generic
    :func:`repro.experiments.runner.run_experiments` scenario runner.
    """
    return run_experiments(
        specs, schemes=schemes, workers=workers, summarize=result_to_dict
    )
