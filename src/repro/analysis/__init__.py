"""Analytical queueing models for capacity planning and validation.

Each runtime instance is a batch-1 FIFO server with (near-)
deterministic service time, so a runtime level with ``N`` instances
under Poisson arrivals behaves like ``N`` parallel M/D/1 queues. This
subpackage provides closed-form predictions used three ways:

1. **capacity planning** — what arrival rate saturates ST / DT / a
   polymorph allocation (used to choose the experiment operating
   points documented in EXPERIMENTS.md);
2. **simulator validation** — tests compare M/D/1 predictions against
   the discrete-event simulator at moderate utilisation;
3. **what-if analysis** — downstream users can size clusters without
   running the simulator.
"""

from repro.analysis.batching import (
    BatchLatencyModel,
    BatchOperatingPoint,
    best_batch_size,
    sweep_batch_sizes,
)
from repro.analysis.padding import (
    PaddingReport,
    dynamic_padding_report,
    polymorph_padding_report,
    uniform_padding_report,
)
from repro.analysis.queueing import (
    MD1Prediction,
    erlang_c,
    md1_mean_latency_ms,
    md1_mean_wait_ms,
    mgc_mean_wait_ms,
    predict_allocation,
    predict_uniform_scheme,
    saturation_rate_per_s,
)

__all__ = [
    "BatchLatencyModel",
    "BatchOperatingPoint",
    "MD1Prediction",
    "PaddingReport",
    "best_batch_size",
    "dynamic_padding_report",
    "erlang_c",
    "md1_mean_latency_ms",
    "md1_mean_wait_ms",
    "mgc_mean_wait_ms",
    "polymorph_padding_report",
    "predict_allocation",
    "predict_uniform_scheme",
    "saturation_rate_per_s",
    "sweep_batch_sizes",
    "uniform_padding_report",
]
