"""Zero-padding waste accounting (paper §2.2).

The paper motivates polymorphing with a FLOPs argument: serving one
Twitter trace clip with a single ``max_length=125`` runtime wastes
80.6 % of the computation on padding. This module reproduces that
accounting for any trace and serving configuration.

Transformer FLOPs are modelled per padded sequence as
``a·L + b·L²`` tokens-work (linear projections/FFN scale with L,
attention with L²); the quadratic share at BERT scale is small but
included for fidelity. "Waste" is the fraction of executed FLOPs that
a zero-padding-free execution of the same requests would not need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.runtimes.registry import RuntimeRegistry
from repro.workload.trace import Trace

#: BERT-class per-layer cost model: linear term ≈ 12·h² per token and
#: attention term ≈ 2·h per token-pair give b/a ≈ 1/(6·h). With h=768
#: the quadratic share is tiny at L ≤ 512, exactly as on real hardware.
_DEFAULT_QUADRATIC_RATIO = 1.0 / (6.0 * 768.0)


def _flops_units(lengths: np.ndarray, quadratic_ratio: float) -> np.ndarray:
    """Relative FLOPs of sequences of the given (padded) lengths."""
    lengths = np.asarray(lengths, dtype=float)
    return lengths + quadratic_ratio * lengths**2


@dataclass(frozen=True)
class PaddingReport:
    """Padding accounting of one trace under one serving discipline."""

    requests: int
    total_tokens: int
    padded_tokens: int
    useful_flops: float
    executed_flops: float

    @property
    def padded_token_fraction(self) -> float:
        total = self.total_tokens + self.padded_tokens
        return self.padded_tokens / total if total else 0.0

    @property
    def wasted_flops_fraction(self) -> float:
        """The §2.2 headline number."""
        if self.executed_flops <= 0:
            return 0.0
        return 1.0 - self.useful_flops / self.executed_flops


def _report(
    lengths: np.ndarray,
    served_lengths: np.ndarray,
    quadratic_ratio: float,
) -> PaddingReport:
    useful = float(_flops_units(lengths, quadratic_ratio).sum())
    executed = float(_flops_units(served_lengths, quadratic_ratio).sum())
    return PaddingReport(
        requests=int(lengths.size),
        total_tokens=int(lengths.sum()),
        padded_tokens=int((served_lengths - lengths).sum()),
        useful_flops=useful,
        executed_flops=executed,
    )


def uniform_padding_report(
    trace: Trace,
    max_length: int,
    quadratic_ratio: float = _DEFAULT_QUADRATIC_RATIO,
) -> PaddingReport:
    """Waste when every request is padded to one ``max_length`` (ST)."""
    if not len(trace):
        raise ConfigurationError("empty trace")
    if max_length < int(trace.length.max()):
        raise ConfigurationError(
            f"max_length {max_length} cannot serve the trace's longest "
            f"request ({int(trace.length.max())})"
        )
    served = np.full(len(trace), max_length, dtype=np.int64)
    return _report(trace.length, served, quadratic_ratio)


def polymorph_padding_report(
    trace: Trace,
    registry: RuntimeRegistry,
    quadratic_ratio: float = _DEFAULT_QUADRATIC_RATIO,
) -> PaddingReport:
    """Waste under ideal polymorph dispatch (least-padding runtime)."""
    if not len(trace):
        raise ConfigurationError("empty trace")
    edges = registry.bin_edges()
    idx = np.searchsorted(edges, trace.length, side="left")
    if idx.max() >= len(edges):
        raise ConfigurationError("trace exceeds the polymorph set's range")
    served = edges[idx]
    return _report(trace.length, served, quadratic_ratio)


def dynamic_padding_report(
    trace: Trace, quadratic_ratio: float = _DEFAULT_QUADRATIC_RATIO
) -> PaddingReport:
    """No padding at all (DT): the zero-waste reference."""
    if not len(trace):
        raise ConfigurationError("empty trace")
    return _report(trace.length, trace.length.astype(np.int64),
                   quadratic_ratio)
