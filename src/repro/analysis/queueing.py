"""M/D/c queueing predictions for polymorph serving.

A runtime level holding ``N`` instances behind least-loaded dispatch
behaves like an ``M/D/c`` system (join-shortest-queue is close to a
central queue). We use the classic approximations:

- ``M/M/c`` waiting time via the Erlang-C formula;
- ``M/D/c ≈ ½ · M/M/c`` (deterministic service halves the wait);
- ``M/G/c ≈ (1 + CV²)/2 · M/M/c`` for variable service (DT).

For ``c = 1`` these reduce to the exact Pollaczek–Khinchine results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bins import LengthBins
from repro.errors import ConfigurationError
from repro.runtimes.models import ModelProfile
from repro.runtimes.registry import RuntimeRegistry
from repro.units import PER_REQUEST_OVERHEAD_MS, SECOND
from repro.workload.lengths import LengthDistribution


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability of waiting in an M/M/c queue.

    ``offered_load`` is ``a = λ·s`` in Erlangs; requires ``a < c``.
    Computed with the numerically stable iterative form.
    """
    if servers < 1:
        raise ConfigurationError("need at least one server")
    if offered_load < 0:
        raise ConfigurationError("offered load cannot be negative")
    if offered_load >= servers:
        return 1.0
    # Iterate the Erlang-B recursion, then convert to Erlang C.
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def mgc_mean_wait_ms(
    rate_per_s: float,
    service_ms: float,
    servers: int = 1,
    service_cv2: float = 0.0,
) -> float:
    """Mean wait of an M/G/c queue (Erlang-C with the Allen–Cunneen
    variability correction); ``service_cv2`` is the squared coefficient
    of variation of the service time (0 = deterministic).
    """
    if rate_per_s < 0 or service_ms <= 0:
        raise ConfigurationError("need rate ≥ 0 and positive service time")
    if service_cv2 < 0:
        raise ConfigurationError("CV² cannot be negative")
    offered = rate_per_s * service_ms / SECOND
    if offered >= servers:
        return float("inf")
    c_wait = erlang_c(servers, offered)
    mmc_wait = c_wait * service_ms / (servers - offered)
    return mmc_wait * (1.0 + service_cv2) / 2.0


def md1_mean_wait_ms(rate_per_s: float, service_ms: float,
                     servers: int = 1) -> float:
    """Mean queueing delay of an M/D/c level; inf at/over saturation."""
    return mgc_mean_wait_ms(rate_per_s, service_ms, servers, service_cv2=0.0)


def md1_mean_latency_ms(rate_per_s: float, service_ms: float,
                        servers: int = 1) -> float:
    """Mean sojourn time (wait + service) of an M/D/c level."""
    return service_ms + md1_mean_wait_ms(rate_per_s, service_ms, servers)


@dataclass(frozen=True)
class MD1Prediction:
    """Predicted steady-state behaviour of one serving configuration."""

    mean_latency_ms: float
    mean_wait_ms: float
    utilization: float
    per_runtime_latency_ms: tuple[float, ...]
    per_runtime_utilization: tuple[float, ...]

    @property
    def is_stable(self) -> bool:
        return self.utilization < 1.0 and np.isfinite(self.mean_latency_ms)


def _expected_rates_per_bin(
    lengths: LengthDistribution,
    bins: LengthBins,
    rate_per_s: float,
    samples: int = 200_000,
    seed: int = 0,
) -> np.ndarray:
    """Split a total arrival rate across length bins by Monte Carlo."""
    rng = np.random.default_rng(seed)
    sample = lengths.sample(rng, samples)
    sample = np.clip(sample, 1, bins.max_length)
    hist = bins.histogram(sample)
    return rate_per_s * hist / hist.sum()


def predict_allocation(
    registry: RuntimeRegistry,
    allocation: np.ndarray,
    lengths: LengthDistribution,
    rate_per_s: float,
    overhead_ms: float = PER_REQUEST_OVERHEAD_MS,
) -> MD1Prediction:
    """Predict mean latency of a polymorph allocation under ideal
    (least-padding) dispatch with intra-level balance.

    Bins with zero instances contribute their traffic to the next
    populated longer runtime — the static analogue of demotion.
    """
    allocation = np.asarray(allocation, dtype=np.int64)
    if allocation.shape != (len(registry),):
        raise ConfigurationError("allocation arity mismatch")
    if np.any(allocation < 0) or allocation[-1] < 1:
        raise ConfigurationError("allocation must be ≥ 0 with Eq. 7 held")
    bins = LengthBins.from_registry(registry)
    bin_rates = _expected_rates_per_bin(lengths, bins, rate_per_s)
    # Cascade traffic from empty levels up to the next populated one.
    served_rates = np.zeros(len(registry))
    carry = 0.0
    for i in range(len(registry)):
        total = bin_rates[i] + carry
        if allocation[i] > 0:
            served_rates[i] = total
            carry = 0.0
        else:
            carry = total
    if carry > 0:  # pragma: no cover - Eq. 7 guarantees a last level
        served_rates[-1] += carry

    per_latency, per_util = [], []
    weighted = 0.0
    for i, profile in enumerate(registry):
        if allocation[i] == 0 or served_rates[i] == 0:
            per_latency.append(0.0)
            per_util.append(0.0)
            continue
        service = profile.service_ms + overhead_ms
        servers = int(allocation[i])
        per_util.append(served_rates[i] * service / SECOND / servers)
        latency = md1_mean_latency_ms(served_rates[i], service, servers)
        per_latency.append(latency)
        weighted += latency * served_rates[i]
    total_rate = served_rates.sum()
    mean = weighted / total_rate if total_rate > 0 else 0.0
    util = float(
        sum(r * (registry[i].service_ms + overhead_ms)
            for i, r in enumerate(served_rates)) / SECOND
        / max(int(allocation.sum()), 1)
    )
    mean_service = float(
        sum(served_rates[i] * (registry[i].service_ms + overhead_ms)
            for i in range(len(registry))) / max(total_rate, 1e-12)
    )
    return MD1Prediction(
        mean_latency_ms=mean,
        mean_wait_ms=mean - mean_service,
        utilization=util,
        per_runtime_latency_ms=tuple(per_latency),
        per_runtime_utilization=tuple(per_util),
    )


def predict_uniform_scheme(
    model: ModelProfile,
    num_gpus: int,
    lengths: LengthDistribution,
    rate_per_s: float,
    dynamic: bool = False,
    overhead_ms: float = PER_REQUEST_OVERHEAD_MS,
    samples: int = 200_000,
    seed: int = 0,
) -> MD1Prediction:
    """Predict ST (padded) or DT (dynamic) with load balancing.

    The uniform fleet behaves as one M/G/c pool under least-loaded
    dispatch; DT's service-time variability enters through its squared
    coefficient of variation.
    """
    if num_gpus < 1:
        raise ConfigurationError("need at least one GPU")
    rng = np.random.default_rng(seed)
    sample = np.clip(lengths.sample(rng, samples), 1, model.max_length)
    if dynamic:
        unique, counts = np.unique(sample, return_counts=True)
        services = np.array(
            [model.dynamic_latency.compute_ms(int(u)) for u in unique]
        ) + overhead_ms
        weights = counts / counts.sum()
        s1 = float((services * weights).sum())
        s2 = float((services**2 * weights).sum())
        cv2 = max(s2 / (s1 * s1) - 1.0, 0.0)
    else:
        s1 = model.static_latency.compute_ms(model.max_length) + overhead_ms
        cv2 = 0.0
    rho = rate_per_s * s1 / SECOND / num_gpus
    wait = mgc_mean_wait_ms(rate_per_s, s1, num_gpus, service_cv2=cv2)
    latency = s1 + wait
    return MD1Prediction(
        mean_latency_ms=latency,
        mean_wait_ms=wait,
        utilization=float(rho),
        per_runtime_latency_ms=(latency,),
        per_runtime_utilization=(float(rho),),
    )


def saturation_rate_per_s(service_ms: float, num_instances: int) -> float:
    """Max sustainable arrival rate for ``num_instances`` FIFO servers."""
    if service_ms <= 0 or num_instances < 1:
        raise ConfigurationError("invalid saturation query")
    return num_instances * SECOND / service_ms
