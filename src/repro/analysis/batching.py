"""Dynamic batch execution analysis — the paper's §6 future work.

The paper fixes batch size to 1 ("conservative and reasonable in
latency-sensitive scenarios") and leaves joint (batch, length)
scheduling as future work, noting that "ideally, batch size should be
dynamic in response to traffic load". This module provides the
quantitative side of that discussion:

- a batched extension of the staircase latency model (GPU batching is
  sub-linear: doubling the batch costs less than double the time);
- per-runtime throughput/latency trade-off curves;
- :func:`best_batch_size` — the largest batch that still meets an SLO
  under a given load, the decision rule a batching-aware Arlo would
  add to its Runtime Scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.queueing import mgc_mean_wait_ms
from repro.errors import ConfigurationError
from repro.runtimes.latency import StaircaseLatencyModel
from repro.units import PER_REQUEST_OVERHEAD_MS, SECOND


@dataclass(frozen=True)
class BatchLatencyModel:
    """Batched execution time on top of a single-request staircase.

    ``batch_ms(b, len) = single(len) · (overlap + (1 − overlap) · b)``:
    with ``overlap = 1`` batching is free (perfect parallelism), with
    ``overlap = 0`` it is pure serialisation. Real accelerators sit in
    between; 0.45 reflects the ~1.8× cost of batch 2 the paper's
    latency-sensitive setting worries about.
    """

    single: StaircaseLatencyModel
    overlap: float = 0.45
    max_batch: int = 32

    def __post_init__(self) -> None:
        if not 0.0 <= self.overlap < 1.0:
            raise ConfigurationError("overlap must be in [0, 1)")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be ≥ 1")

    def batch_ms(self, batch: int, length: int) -> float:
        """Execution time of one batch of ``batch`` same-shape requests."""
        if not 1 <= batch <= self.max_batch:
            raise ConfigurationError(
                f"batch {batch} outside [1, {self.max_batch}]"
            )
        single = self.single.compute_ms(length)
        return single * (self.overlap + (1.0 - self.overlap) * batch)

    def per_request_ms(self, batch: int, length: int) -> float:
        """Amortised GPU time per request inside a batch."""
        return self.batch_ms(batch, length) / batch

    def throughput_per_s(self, batch: int, length: int) -> float:
        """Steady-state requests/s of one instance running this batch."""
        return batch * SECOND / self.batch_ms(batch, length)


@dataclass(frozen=True)
class BatchOperatingPoint:
    """One (batch size) candidate's predicted behaviour under load."""

    batch: int
    batch_ms: float
    throughput_per_s: float
    mean_latency_ms: float
    meets_slo: bool


def sweep_batch_sizes(
    model: BatchLatencyModel,
    length: int,
    rate_per_s: float,
    slo_ms: float,
    overhead_ms: float = PER_REQUEST_OVERHEAD_MS,
) -> list[BatchOperatingPoint]:
    """Predict latency at every batch size for one instance under load.

    A batch-``b`` server is approximated as an M/G/1 queue whose
    "customers" are batches: arrival rate ``λ/b``, service
    ``batch_ms(b)``; a request additionally waits on average half a
    batch-accumulation period ``(b−1)/(2λ)`` for its batch to fill.
    """
    if rate_per_s <= 0 or slo_ms <= 0:
        raise ConfigurationError("rate and SLO must be positive")
    points = []
    for b in range(1, model.max_batch + 1):
        service = model.batch_ms(b, length) + overhead_ms
        batch_rate = rate_per_s / b
        wait = mgc_mean_wait_ms(batch_rate, service, servers=1)
        accumulation = (b - 1) / (2.0 * rate_per_s) * SECOND
        latency = accumulation + wait + service
        points.append(
            BatchOperatingPoint(
                batch=b,
                batch_ms=service,
                throughput_per_s=model.throughput_per_s(b, length),
                mean_latency_ms=latency,
                meets_slo=bool(np.isfinite(latency) and latency <= slo_ms),
            )
        )
    return points


def best_batch_size(
    model: BatchLatencyModel,
    length: int,
    rate_per_s: float,
    slo_ms: float,
    headroom: float = 1.2,
) -> BatchOperatingPoint:
    """The batch size a load-adaptive batcher would run.

    Chooses the *smallest* SLO-feasible batch whose throughput covers
    the offered rate with ``headroom`` — batching only as much as the
    load demands, which keeps latency minimal at a trickle and grows
    the batch under pressure. Falls back to the largest-throughput
    feasible point when nothing sustains the rate, and to the lowest-
    latency point when nothing meets the SLO at all (overload — the
    autoscaler's job, not the batcher's).
    """
    points = sweep_batch_sizes(model, length, rate_per_s, slo_ms)
    feasible = [p for p in points if p.meets_slo]
    sustaining = [
        p for p in feasible if p.throughput_per_s >= rate_per_s * headroom
    ]
    if sustaining:
        return min(sustaining, key=lambda p: p.batch)
    if feasible:
        return max(feasible, key=lambda p: (p.throughput_per_s, -p.batch))
    return min(points, key=lambda p: p.mean_latency_ms)
