"""Embedding Arlo in a live serving loop.

The paper positions Arlo as a scheduler that "works with existing
serving systems" (§1) — its prototype sits on top of Triton. This
module is the corresponding integration surface for this library: an
:class:`ArloServer` accepts requests one at a time, dispatches them
through the Request Scheduler, tracks completions against a pluggable
clock, and runs Runtime Scheduler periods on schedule.

Two clocks are provided:

- :class:`VirtualClock` — time advances only when told to; used by
  tests and by anyone embedding the server in their own event loop;
- :class:`WallClock` — ``time.monotonic``-backed for soak-style demos
  (completions are applied lazily on the next API call, so no threads
  are involved).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

from repro.core.arlo import ArloSystem
from repro.errors import AdmissionError, CapacityError, ConfigurationError
from repro.obs.exporters import prometheus_snapshot
from repro.obs.spans import ObservabilityConfig
from repro.obs.timeline import ControlTimeline
from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    Rejection,
    RejectionReason,
)
from repro.units import SECOND


class VirtualClock:
    """Manually advanced clock (deterministic tests, external loops)."""

    def __init__(self, start_ms: float = 0.0):
        self._now = float(start_ms)

    def now_ms(self) -> float:
        return self._now

    def advance(self, delta_ms: float) -> float:
        if delta_ms < 0:
            raise ConfigurationError("cannot advance time backwards")
        self._now += delta_ms
        return self._now


class WallClock:
    """Real time, in milliseconds since construction."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    def now_ms(self) -> float:
        return (time.monotonic() - self._t0) * 1_000.0


@dataclass(frozen=True)
class Ticket:
    """Receipt for one submitted request."""

    request_id: int
    length: int
    submitted_ms: float
    expected_finish_ms: float
    instance_id: int
    runtime_max_length: int
    demoted: bool

    @property
    def expected_latency_ms(self) -> float:
        return self.expected_finish_ms - self.submitted_ms


@dataclass
class ServerStats:
    submitted: int = 0
    completed: int = 0
    reschedules: int = 0
    #: Requests rejected at admission (every :class:`AdmissionError`).
    shed: int = 0
    latency_sum_ms: float = 0.0
    latency_max_ms: float = 0.0

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.completed if self.completed else 0.0


class ArloServer:
    """Synchronous serving facade over an :class:`ArloSystem`.

    Completions are applied lazily: every public call first settles all
    work whose (simulated) finish time has passed. This makes the class
    trivially embeddable — the host system owns the loop and the
    threads; Arlo owns the scheduling.
    """

    def __init__(
        self,
        arlo: ArloSystem,
        clock=None,
        admission: AdmissionConfig | None = None,
        observability: ObservabilityConfig | None = None,
    ):
        self.arlo = arlo
        self.clock = clock or VirtualClock()
        self.stats = ServerStats()
        #: Control timeline + latency sketch, opt-in via an
        #: :class:`ObservabilityConfig` (both None when disabled — the
        #: serving hot path pays one ``is not None`` test).
        self.timeline: ControlTimeline | None = None
        self._sketch = None
        if observability is not None:
            if observability.timeline:
                self.timeline = ControlTimeline()
            from repro.sim.metrics import StreamingLatencySummary

            self._sketch = StreamingLatencySummary(slo_ms=arlo.slo_ms)
        #: Sheds by :class:`RejectionReason` value, across both the
        #: deadline controller and the unservable-length mapping.
        self.shed_counts: dict[str, int] = {}
        #: Deadline-aware load shedding — opt in with an
        #: :class:`AdmissionConfig`; unservable lengths are always
        #: rejected through the typed path regardless.
        self.admission: AdmissionController | None = None
        if admission is not None:
            self.admission = AdmissionController(
                registry=arlo.registry,
                mlq=arlo.mlq,
                slo_ms=arlo.slo_ms,
                config=admission,
                shed_counts=self.shed_counts,
            )
        self._pending: list[tuple[float, int, Ticket]] = []  # (finish, seq, t)
        self._seq = itertools.count()
        self._next_reschedule_ms = (
            arlo.runtime_scheduler.config.period_ms
        )
        self._completed_log: list[Ticket] = []

    # -- internal ----------------------------------------------------------
    def _settle(self) -> None:
        now = self.clock.now_ms()
        while self._pending and self._pending[0][0] <= now:
            finish, _, ticket = heapq.heappop(self._pending)
            self.arlo.complete(ticket.instance_id)
            latency = finish - ticket.submitted_ms
            self.stats.completed += 1
            self.stats.latency_sum_ms += latency
            self.stats.latency_max_ms = max(self.stats.latency_max_ms,
                                            latency)
            if self._sketch is not None:
                self._sketch.add(latency)
            self._completed_log.append(ticket)
        if now >= self._next_reschedule_ms:
            self.arlo.reschedule(now)
            self.stats.reschedules += 1
            if self.timeline is not None:
                self.timeline.record(
                    now, "server", "reschedule",
                    in_flight=self.stats.in_flight,
                )
            period = self.arlo.runtime_scheduler.config.period_ms
            while self._next_reschedule_ms <= now:
                self._next_reschedule_ms += period

    def _reject(self, rejection: Rejection) -> None:
        """Count a shed and surface it as a typed error."""
        self.stats.shed += 1
        if self.timeline is not None:
            self.timeline.record(
                self.clock.now_ms(), "server", "shed",
                reason=rejection.reason.value, length=rejection.length,
            )
        raise AdmissionError(rejection)

    # -- API -----------------------------------------------------------------
    def submit(self, length: int, deadline_ms: float | None = None) -> Ticket:
        """Dispatch one request; returns its expected completion.

        ``deadline_ms`` (relative to now) tightens or relaxes the
        admission deadline for this request; it only matters when the
        server was built with an :class:`AdmissionConfig`. Requests the
        cluster cannot or should not serve raise :class:`AdmissionError`
        carrying a typed :class:`Rejection` — never a raw
        :class:`CapacityError`.
        """
        self._settle()
        now = self.clock.now_ms()
        if self.admission is not None:
            rejection = self.admission.check(now, length, deadline_ms)
            if rejection is not None:
                self._reject(rejection)
        try:
            decision, _start, finish = self.arlo.handle(now, length)
        except CapacityError as exc:
            if length <= 0 or length > self.arlo.registry.max_length:
                reason = RejectionReason.UNSERVABLE_LENGTH
            else:
                reason = RejectionReason.NO_ACTIVE_RUNTIME
            key = reason.value
            self.shed_counts[key] = self.shed_counts.get(key, 0) + 1
            self._reject(Rejection(
                reason=reason, length=length, message=str(exc),
            ))
        ticket = Ticket(
            request_id=self.stats.submitted,
            length=length,
            submitted_ms=now,
            expected_finish_ms=finish,
            instance_id=decision.instance.instance_id,
            runtime_max_length=decision.instance.max_length,
            demoted=decision.demoted,
        )
        self.stats.submitted += 1
        heapq.heappush(self._pending, (finish, next(self._seq), ticket))
        return ticket

    def poll(self) -> list[Ticket]:
        """Settle due work; returns tickets completed since last poll."""
        before = len(self._completed_log)
        self._settle()
        return self._completed_log[before:]

    def drain(self, max_wait_ms: float = 60 * SECOND) -> int:
        """Advance/wait until all in-flight work completes.

        With a :class:`VirtualClock` the clock jumps straight to each
        pending finish time; with a wall clock this sleeps in short
        increments up to ``max_wait_ms``.
        """
        deadline_waited = 0.0
        while self._pending:
            finish = self._pending[0][0]
            if isinstance(self.clock, VirtualClock):
                if finish > self.clock.now_ms():
                    self.clock.advance(finish - self.clock.now_ms())
            else:
                wait = max((finish - self.clock.now_ms()) / 1_000.0, 0.001)
                if deadline_waited + wait * 1_000.0 > max_wait_ms:
                    break
                time.sleep(wait)
                deadline_waited += wait * 1_000.0
            self._settle()
        return self.stats.in_flight

    def prometheus(self) -> str:
        """Point-in-time Prometheus text snapshot of the server.

        Counters (submitted/completed/shed/reschedules), gauges
        (in-flight, queue state), and — when the server was built with
        an :class:`ObservabilityConfig` — the latency sketch as a
        ``summary`` metric.
        """
        self._settle()
        counters = {
            "submitted": float(self.stats.submitted),
            "completed": float(self.stats.completed),
            "shed": float(self.stats.shed),
            "reschedules": float(self.stats.reschedules),
        }
        gauges = {
            "in_flight": float(self.stats.in_flight),
            "queue_outstanding": float(self.arlo.mlq.total_outstanding()),
            "queue_instances": float(self.arlo.mlq.total_instances()),
        }
        return prometheus_snapshot(
            counters=counters,
            gauges=gauges,
            sketch=self._sketch,
            prefix="repro_server",
        )

    def snapshot(self) -> dict[str, object]:
        self._settle()
        return {
            **self.arlo.snapshot(),
            "in_flight": self.stats.in_flight,
            "completed": self.stats.completed,
            "mean_latency_ms": self.stats.mean_latency_ms,
            "reschedules": self.stats.reschedules,
            "shed": self.stats.shed,
            "shed_by_reason": dict(self.shed_counts),
        }
