"""A small algebraic modeling layer over the LP/MILP solvers.

Lets problem encodings read like the paper's math::

    m = Model()
    n = [m.add_var(lb=low[i], ub=G, integer=True, name=f"N_{i}") for i in ...]
    m.add_constr(LinExpr.sum(n) == G)
    m.minimize(cost_expr)
    sol = m.solve()

Expressions are linear only; attempting to multiply two variables raises
immediately rather than silently mis-modeling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError
from repro.solver.branch_bound import MilpResult, solve_milp
from repro.solver.simplex import LinearProgram, LpResult, solve_lp


@dataclass(frozen=True)
class Var:
    """A decision variable; use it in arithmetic to build :class:`LinExpr`."""

    index: int
    name: str

    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1.0 * self._expr()) + other

    def __mul__(self, other):
        return self._expr() * other

    __rmul__ = __mul__

    def __neg__(self):
        return -1.0 * self._expr()

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Var):
            return self._expr() == other._expr()
        return self._expr() == other

    def __hash__(self) -> int:
        return hash((self.index, self.name))


class LinExpr:
    """An affine expression ``sum(coeff_j * x_j) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value._expr()
        if isinstance(value, (int, float, np.integer, np.floating)):
            return LinExpr({}, float(value))
        raise SolverError(f"cannot use {type(value).__name__} in a linear expression")

    @staticmethod
    def sum(terms) -> "LinExpr":
        """Sum an iterable of vars/expressions/numbers."""
        total = LinExpr()
        for t in terms:
            total = total + t
        return total

    def copy(self) -> "LinExpr":
        return LinExpr(self.coeffs, self.constant)

    def __add__(self, other) -> "LinExpr":
        other = self._coerce(other)
        out = self.copy()
        for j, c in other.coeffs.items():
            out.coeffs[j] = out.coeffs.get(j, 0.0) + c
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (LinExpr._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr._coerce(other) + (self * -1.0)

    def __mul__(self, other) -> "LinExpr":
        if isinstance(other, (Var, LinExpr)):
            raise SolverError("nonlinear product of variables is not supported")
        scale = float(other)
        return LinExpr({j: c * scale for j, c in self.coeffs.items()},
                       self.constant * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, ">=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, "==")

    def __hash__(self) -> int:  # expressions are mutable; identity hash
        return id(self)

    def value(self, x: np.ndarray) -> float:
        """Evaluate the expression at a solution vector."""
        return self.constant + sum(c * x[j] for j, c in self.coeffs.items())


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` — produced by comparison operators."""

    expr: LinExpr
    sense: str
    name: str = ""


@dataclass
class Solution:
    """Solved model: variable values accessible through ``sol[var]``."""

    status: str
    objective: float
    x: np.ndarray | None
    nodes_explored: int = 0
    extra: dict = field(default_factory=dict)

    def __getitem__(self, var: Var) -> float:
        if self.x is None:
            raise SolverError("no solution available")
        return float(self.x[var.index])

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


class Model:
    """Container for variables, constraints and a linear objective."""

    def __init__(self, name: str = "model"):
        self.name = name
        self._lb: list[float] = []
        self._ub: list[float] = []
        self._integer: list[bool] = []
        self._names: list[str] = []
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()

    @property
    def num_vars(self) -> int:
        return len(self._lb)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def add_var(
        self,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
        name: str | None = None,
    ) -> Var:
        """Create a decision variable with the given bounds."""
        if not np.isfinite(lb):
            raise SolverError("variables need a finite lower bound")
        if ub < lb:
            raise SolverError(f"ub {ub} < lb {lb} for variable {name!r}")
        index = self.num_vars
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._integer.append(bool(integer))
        self._names.append(name or f"x{index}")
        return Var(index, self._names[-1])

    def add_vars(self, count: int, **kwargs) -> list[Var]:
        """Create ``count`` variables sharing bounds/integrality."""
        prefix = kwargs.pop("name", "x")
        return [self.add_var(name=f"{prefix}[{i}]", **kwargs) for i in range(count)]

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constr expects a comparison of linear expressions; "
                "got a plain bool — use LinExpr/Var comparisons"
            )
        constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def minimize(self, expr) -> None:
        self._objective = LinExpr._coerce(expr)

    def maximize(self, expr) -> None:
        self._objective = LinExpr._coerce(expr) * -1.0

    def _build(self) -> tuple[LinearProgram, np.ndarray, float]:
        n = self.num_vars
        c = np.zeros(n)
        for j, coeff in self._objective.coeffs.items():
            c[j] = coeff
        a_ub_rows, b_ub, a_eq_rows, b_eq = [], [], [], []
        for con in self._constraints:
            row = np.zeros(n)
            for j, coeff in con.expr.coeffs.items():
                row[j] = coeff
            rhs = -con.expr.constant
            if con.sense == "<=":
                a_ub_rows.append(row)
                b_ub.append(rhs)
            elif con.sense == ">=":
                a_ub_rows.append(-row)
                b_ub.append(-rhs)
            else:
                a_eq_rows.append(row)
                b_eq.append(rhs)
        lp = LinearProgram(
            c=c,
            a_ub=np.vstack(a_ub_rows) if a_ub_rows else None,
            b_ub=np.asarray(b_ub) if b_ub else None,
            a_eq=np.vstack(a_eq_rows) if a_eq_rows else None,
            b_eq=np.asarray(b_eq) if b_eq else None,
            lb=np.asarray(self._lb),
            ub=np.asarray(self._ub),
        )
        return lp, np.asarray(self._integer, dtype=bool), self._objective.constant

    def solve(
        self,
        max_nodes: int = 50_000,
        warm_values: dict[Var, float] | None = None,
        deadline_s: float | None = None,
    ) -> Solution:
        """Solve; dispatches to pure LP when no integer variables exist.

        ``warm_values`` maps variables to a candidate solution (missing
        variables default to their lower bound); if the point is
        feasible it seeds the branch & bound incumbent. ``deadline_s``
        bounds the branch & bound wall clock; on expiry the best
        incumbent is returned with ``extra["interrupted"] = True``.
        """
        lp, int_mask, const = self._build()
        if not int_mask.any():
            res: LpResult = solve_lp(lp)
            return Solution(
                status=res.status.value,
                objective=res.objective + const if res.is_optimal else float("nan"),
                x=res.x,
                extra={"lp_iterations": res.iterations},
            )
        warm_x = None
        if warm_values is not None:
            warm_x = np.asarray(self._lb, dtype=float).copy()
            for var, value in warm_values.items():
                warm_x[var.index] = float(value)
        mres: MilpResult = solve_milp(
            lp, int_mask, max_nodes=max_nodes, warm_x=warm_x, deadline_s=deadline_s
        )
        return Solution(
            status=mres.status.value,
            objective=mres.objective + const if mres.x is not None else float("nan"),
            x=mres.x,
            nodes_explored=mres.nodes_explored,
            extra={
                "lp_iterations": mres.lp_iterations,
                "warm_started": mres.warm_started,
                "interrupted": mres.interrupted,
            },
        )
