"""Dense two-phase primal simplex LP solver.

Solves::

    min  c @ x
    s.t. a_ub @ x <= b_ub
         a_eq @ x == b_eq
         lb <= x <= ub

with finite lower bounds (default 0) and optional finite upper bounds.
Lower bounds are handled by shifting, upper bounds by explicit rows.

The implementation is a classic dense tableau with Bland's anti-cycling
rule engaged after a degeneracy streak. It is meant for the small and
medium problems produced by :mod:`repro.core.allocation` (tens to a few
hundred variables), not as a general-purpose LP package; correctness is
cross-checked against ``scipy.optimize.linprog`` in the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError

_EPS = 1e-9
#: Consecutive degenerate pivots tolerated before switching to Bland's rule.
_DEGENERATE_STREAK = 12


class LpStatus(enum.Enum):
    """Terminal status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass(frozen=True)
class LinearProgram:
    """A linear program in the canonical form documented in the module."""

    c: np.ndarray
    a_ub: np.ndarray | None = None
    b_ub: np.ndarray | None = None
    a_eq: np.ndarray | None = None
    b_eq: np.ndarray | None = None
    lb: np.ndarray | None = None
    ub: np.ndarray | None = None

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=float)
        object.__setattr__(self, "c", c)
        n = c.shape[0]
        for name in ("a_ub", "a_eq"):
            mat = getattr(self, name)
            if mat is not None:
                mat = np.atleast_2d(np.asarray(mat, dtype=float))
                if mat.shape[1] != n:
                    raise SolverError(
                        f"{name} has {mat.shape[1]} columns, expected {n}"
                    )
                object.__setattr__(self, name, mat)
        for mat_name, vec_name in (("a_ub", "b_ub"), ("a_eq", "b_eq")):
            mat, vec = getattr(self, mat_name), getattr(self, vec_name)
            if (mat is None) != (vec is None):
                raise SolverError(f"{mat_name} and {vec_name} must come together")
            if vec is not None:
                vec = np.atleast_1d(np.asarray(vec, dtype=float))
                if vec.shape[0] != mat.shape[0]:
                    raise SolverError(f"{vec_name} length mismatch")
                object.__setattr__(self, vec_name, vec)
        lb = np.zeros(n) if self.lb is None else np.asarray(self.lb, dtype=float)
        ub = np.full(n, np.inf) if self.ub is None else np.asarray(self.ub, dtype=float)
        if lb.shape != (n,) or ub.shape != (n,):
            raise SolverError("bound vectors must match the number of variables")
        if not np.all(np.isfinite(lb)):
            raise SolverError("lower bounds must be finite (shift your variables)")
        if np.any(ub < lb - _EPS):
            raise SolverError("upper bound below lower bound")
        object.__setattr__(self, "lb", lb)
        object.__setattr__(self, "ub", ub)

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]


@dataclass
class LpResult:
    """Outcome of :func:`solve_lp`."""

    status: LpStatus
    x: np.ndarray | None = None
    objective: float = float("nan")
    iterations: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status is LpStatus.OPTIMAL


def _pivot(
    tableau: np.ndarray,
    row: int,
    col: int,
    work: "_PivotWork | None" = None,
) -> None:
    """Gaussian pivot of the dense tableau on (row, col), in place.

    ``work`` supplies preallocated buffers so the inner simplex loop
    performs zero heap allocations per pivot; callers pivoting once
    (phase-1 basis cleanup) may omit it.
    """
    tableau[row] /= tableau[row, col]
    if work is None:
        work = _PivotWork(tableau.shape)
    factors, outer = work.factors, work.outer
    np.copyto(factors, tableau[:, col])
    factors[row] = 0.0
    np.multiply(factors[:, None], tableau[row][None, :], out=outer)
    np.subtract(tableau, outer, out=tableau)


class _PivotWork:
    """Reusable per-solve work arrays for the pivot and ratio tests."""

    __slots__ = ("factors", "outer", "ratios")

    def __init__(self, shape: tuple[int, int]):
        rows, cols = shape
        self.factors = np.empty(rows)
        self.outer = np.empty((rows, cols))
        self.ratios = np.empty(rows - 1)


def _run_simplex(
    tableau: np.ndarray,
    basis: np.ndarray,
    num_structural: int,
    max_iter: int,
    force_bland: bool = False,
) -> tuple[LpStatus, int]:
    """Iterate the tableau to optimality.

    The tableau layout is ``[A | b]`` with the objective (reduced-cost)
    row last. Returns the terminal status and iteration count.
    ``force_bland`` engages Bland's rule from the first iteration — the
    slow-but-stable path used to re-verify marginal phase-1 verdicts.
    """
    m = tableau.shape[0] - 1
    degenerate_streak = 0
    work = _PivotWork(tableau.shape)
    ratios = work.ratios
    for iteration in range(max_iter):
        cost_row = tableau[-1, :-1]
        use_bland = force_bland or degenerate_streak >= _DEGENERATE_STREAK
        if use_bland:
            candidates = np.flatnonzero(cost_row < -_EPS)
            if candidates.size == 0:
                return LpStatus.OPTIMAL, iteration
            col = int(candidates[0])
        else:
            col = int(np.argmin(cost_row))
            if cost_row[col] >= -_EPS:
                return LpStatus.OPTIMAL, iteration
        column = tableau[:m, col]
        positive = column > _EPS
        if not np.any(positive):
            return LpStatus.UNBOUNDED, iteration
        ratios.fill(np.inf)
        np.divide(tableau[:m, -1], column, out=ratios, where=positive)
        min_ratio = ratios.min()
        if use_bland:
            # Among minimum-ratio rows, leave the smallest basis index.
            tied = np.flatnonzero(ratios <= min_ratio + _EPS)
            row = int(tied[np.argmin(basis[tied])])
        else:
            row = int(np.argmin(ratios))
        degenerate_streak = degenerate_streak + 1 if min_ratio < _EPS else 0
        _pivot(tableau, row, col, work)
        basis[row] = col
    return LpStatus.ITERATION_LIMIT, max_iter


def solve_lp(lp: LinearProgram, max_iter: int = 20_000) -> LpResult:
    """Solve a :class:`LinearProgram` with two-phase primal simplex.

    The fast Dantzig-rule path can accumulate pivot roundoff on badly
    scaled problems (big-M rows) and end phase 1 at a spurious nonzero
    artificial residual — a false "infeasible". The residual is not
    always roundoff-sized: on degenerate big-M bases the corrupted
    pivot path can stall far from zero. Every infeasible verdict from
    the fast path is therefore re-verified with a full solve under
    Bland's rule, whose pivot path is stable; the retry's verdict is
    final. A genuinely infeasible program pays one extra phase-1 solve
    — cheap on this package's problem sizes, and far cheaper than a
    wrong verdict (branch & bound would prune a feasible subtree).
    """
    result = _solve_lp_once(lp, max_iter, force_bland=False)
    if result.status is LpStatus.INFEASIBLE:
        retry = _solve_lp_once(lp, max_iter, force_bland=True)
        retry.iterations += result.iterations
        return retry
    return result


def _solve_lp_once(
    lp: LinearProgram, max_iter: int, force_bland: bool
) -> LpResult:
    n = lp.num_vars
    # Shift x = y + lb so y >= 0.
    shift = lp.lb
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[int] = []  # -1: <=, 0: ==
    if lp.a_ub is not None:
        for coeffs, b in zip(lp.a_ub, lp.b_ub):
            rows.append(coeffs)
            rhs.append(float(b - coeffs @ shift))
            senses.append(-1)
    if lp.a_eq is not None:
        for coeffs, b in zip(lp.a_eq, lp.b_eq):
            rows.append(coeffs)
            rhs.append(float(b - coeffs @ shift))
            senses.append(0)
    finite_ub = np.flatnonzero(np.isfinite(lp.ub))
    for j in finite_ub:
        row = np.zeros(n)
        row[j] = 1.0
        rows.append(row)
        rhs.append(float(lp.ub[j] - shift[j]))
        senses.append(-1)

    m = len(rows)
    if m == 0:
        # Unconstrained over y >= 0: optimum at 0 unless some cost negative.
        if np.any(lp.c < -_EPS):
            return LpResult(LpStatus.UNBOUNDED)
        x = shift.copy()
        return LpResult(LpStatus.OPTIMAL, x=x, objective=float(lp.c @ x))

    a = np.vstack(rows)
    b = np.asarray(rhs, dtype=float)
    sense = np.asarray(senses)
    # Row equilibration: big-M rows (coefficients orders of magnitude
    # above the rest) make the pivot arithmetic ill-conditioned — the
    # source of spurious phase-1 residuals and pivot stalls. Scaling
    # each row to unit max-coefficient changes neither the feasible
    # region nor the objective, only the conditioning.
    row_scale = np.abs(a).max(axis=1)
    np.maximum(row_scale, 1.0, out=row_scale)
    a /= row_scale[:, None]
    b /= row_scale
    # Normalise to b >= 0.
    flip = b < 0
    a[flip] *= -1.0
    b[flip] *= -1.0
    # <= rows that were flipped become >= rows (need surplus + artificial).
    geq = flip & (sense == -1)
    leq = (~flip) & (sense == -1)
    eq = sense == 0

    num_slack = int(leq.sum()) + int(geq.sum())
    slack_of_row = np.full(m, -1)
    col = n
    slack_sign = np.zeros(m)
    for i in range(m):
        if leq[i]:
            slack_of_row[i] = col
            slack_sign[i] = 1.0
            col += 1
        elif geq[i]:
            slack_of_row[i] = col
            slack_sign[i] = -1.0
            col += 1
    # Artificial variables for >= and == rows, and for <= rows whose
    # slack cannot start basic (none here: slack of a <= row is basic).
    needs_artificial = geq | eq
    num_art = int(needs_artificial.sum())
    total = n + num_slack + num_art

    tableau = np.zeros((m + 1, total + 1))
    tableau[:m, :n] = a
    tableau[:m, -1] = b
    basis = np.empty(m, dtype=int)
    art_col = n + num_slack
    for i in range(m):
        if slack_of_row[i] >= 0:
            tableau[i, slack_of_row[i]] = slack_sign[i]
        if needs_artificial[i]:
            tableau[i, art_col] = 1.0
            basis[i] = art_col
            art_col += 1
        else:
            basis[i] = slack_of_row[i]

    iterations = 0
    if num_art:
        # Phase 1: minimise the sum of artificials.
        tableau[-1, :] = 0.0
        tableau[-1, n + num_slack : n + num_slack + num_art] = 1.0
        for i in range(m):
            if basis[i] >= n + num_slack:
                tableau[-1] -= tableau[i]
        status, it1 = _run_simplex(tableau, basis, n, max_iter, force_bland)
        iterations += it1
        if status is LpStatus.ITERATION_LIMIT:
            return LpResult(status, iterations=iterations)
        if tableau[-1, -1] < -1e-7:
            return LpResult(
                LpStatus.INFEASIBLE,
                iterations=iterations,
                extra={"phase1_residual": float(-tableau[-1, -1])},
            )
        # Drive any artificial still in the basis out (degenerate rows).
        for i in range(m):
            if basis[i] >= n + num_slack:
                row = tableau[i, : n + num_slack]
                pivot_candidates = np.flatnonzero(np.abs(row) > _EPS)
                if pivot_candidates.size:
                    _pivot(tableau, i, int(pivot_candidates[0]))
                    basis[i] = int(pivot_candidates[0])
        # Excise artificial columns.
        keep = np.r_[np.arange(n + num_slack), [total]]
        tableau = tableau[:, keep]

    # Phase 2 objective row.
    tableau[-1, :] = 0.0
    tableau[-1, :n] = lp.c
    for i in range(m):
        if basis[i] < n + num_slack and abs(tableau[-1, basis[i]]) > _EPS:
            tableau[-1] -= tableau[-1, basis[i]] * tableau[i]
    status, it2 = _run_simplex(tableau, basis, n, max_iter, force_bland)
    iterations += it2
    if status is not LpStatus.OPTIMAL:
        return LpResult(status, iterations=iterations)

    y = np.zeros(n + num_slack)
    for i in range(m):
        if basis[i] < n + num_slack:
            y[basis[i]] = tableau[i, -1]
    x = y[:n] + shift
    return LpResult(
        LpStatus.OPTIMAL,
        x=x,
        objective=float(lp.c @ x),
        iterations=iterations,
    )
