"""Piecewise-linear helpers for linearising convex cost terms.

The allocation objective (paper Eq. 1) contains terms ``L_i(B_i)·C_i``
that are convex quadratics in the served request count. To validate the
exact dynamic program against an independent MILP encoding, we
under-approximate each convex term by the maximum of tangent lines
(an epigraph formulation), which is exact in the limit of many tangents
and a valid lower bound otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import SolverError


@dataclass(frozen=True)
class Tangent:
    """A supporting line ``y = slope * x + intercept`` of a convex function."""

    slope: float
    intercept: float

    def __call__(self, x: float) -> float:
        return self.slope * x + self.intercept


def tangent_lines(
    fn: Callable[[float], float],
    lo: float,
    hi: float,
    count: int,
    derivative: Callable[[float], float] | None = None,
) -> list[Tangent]:
    """Supporting tangents of convex ``fn`` at ``count`` points in [lo, hi].

    When ``derivative`` is omitted it is estimated by central differences,
    which is adequate for the smooth quadratics used here.
    """
    if count < 1:
        raise SolverError("need at least one tangent")
    if hi < lo:
        raise SolverError("empty tangent interval")
    xs = np.linspace(lo, hi, count)
    h = max((hi - lo) * 1e-6, 1e-9)
    tangents = []
    for x in xs:
        if derivative is not None:
            slope = derivative(float(x))
        else:
            slope = (fn(float(x) + h) - fn(max(lo, float(x) - h))) / (
                float(x) + h - max(lo, float(x) - h)
            )
        tangents.append(Tangent(slope=float(slope),
                                intercept=float(fn(float(x)) - slope * x)))
    return tangents


def lower_envelope_value(tangents: Sequence[Tangent], x: float) -> float:
    """Evaluate ``max_k tangent_k(x)`` — the epigraph lower bound."""
    if not tangents:
        raise SolverError("no tangents supplied")
    return max(t(x) for t in tangents)


def chord_segments(
    fn: Callable[[float], float], lo: float, hi: float, count: int
) -> list[tuple[float, float]]:
    """Breakpoint list ``[(x, fn(x)), ...]`` for chord (upper) approximations.

    For a convex function the chords over-approximate; combined with
    tangent under-approximation this brackets the true optimum, which the
    test suite uses to bound the DP-vs-MILP comparison error.
    """
    if count < 2:
        raise SolverError("need at least two breakpoints")
    xs = np.linspace(lo, hi, count)
    return [(float(x), float(fn(float(x)))) for x in xs]


def interpolate_chords(points: Sequence[tuple[float, float]], x: float) -> float:
    """Evaluate the piecewise-linear chord interpolation at ``x``."""
    xs = np.asarray([p[0] for p in points])
    ys = np.asarray([p[1] for p in points])
    if x < xs[0] - 1e-9 or x > xs[-1] + 1e-9:
        raise SolverError(f"x={x} outside chord domain [{xs[0]}, {xs[-1]}]")
    return float(np.interp(x, xs, ys))
