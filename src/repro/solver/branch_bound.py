"""Best-first branch & bound MILP solver on top of the simplex.

Solves mixed-integer linear programs by relaxing integrality, solving
the relaxation with :func:`repro.solver.simplex.solve_lp`, and branching
on the most fractional integer variable. Nodes are explored best-bound
first so the incumbent gap shrinks monotonically and pruning is
effective on the small allocation-validation problems this package
feeds it.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError, UnboundedError
from repro.solver.simplex import LinearProgram, LpStatus, solve_lp

_INT_TOL = 1e-6


@dataclass
class MilpResult:
    """Outcome of :func:`solve_milp`."""

    status: LpStatus
    x: np.ndarray | None = None
    objective: float = float("nan")
    nodes_explored: int = 0
    best_bound: float = float("-inf")
    #: Total simplex iterations across the root and all node LPs.
    lp_iterations: int = 0
    #: True when a caller-supplied warm start seeded the incumbent.
    warm_started: bool = False
    #: True when the search stopped early (node cap or deadline) while
    #: still holding unexplored subtrees; ``x`` is the best incumbent.
    interrupted: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status is LpStatus.OPTIMAL

    @property
    def gap(self) -> float:
        """Relative optimality gap of the returned incumbent."""
        if self.x is None or not math.isfinite(self.best_bound):
            return float("inf")
        denom = max(1.0, abs(self.objective))
        return abs(self.objective - self.best_bound) / denom


def _is_integral(values: np.ndarray, mask: np.ndarray) -> bool:
    frac = np.abs(values[mask] - np.round(values[mask]))
    return bool(np.all(frac <= _INT_TOL))


_FEAS_TOL = 1e-6


def _admissible_warm_start(
    lp: LinearProgram, integer_mask: np.ndarray, warm_x: np.ndarray
) -> np.ndarray | None:
    """Validate a caller-supplied incumbent candidate.

    Returns the candidate with its integer entries rounded when it is
    feasible (bounds, rows, integrality — all within tolerance), else
    None. Feasibility is *verified*, never assumed: an inadmissible
    warm start must degrade to a cold solve, not an invalid incumbent
    (a bogus upper bound would prune the true optimum).
    """
    warm_x = np.asarray(warm_x, dtype=float)
    if warm_x.shape != (lp.num_vars,):
        return None
    if not _is_integral(warm_x, integer_mask):
        return None
    x = np.where(integer_mask, np.round(warm_x), warm_x)
    if np.any(x < lp.lb - _FEAS_TOL) or np.any(x > lp.ub + _FEAS_TOL):
        return None
    if lp.a_ub is not None and np.any(lp.a_ub @ x > lp.b_ub + _FEAS_TOL):
        return None
    if lp.a_eq is not None and np.any(np.abs(lp.a_eq @ x - lp.b_eq) > _FEAS_TOL):
        return None
    return x


def solve_milp(
    lp: LinearProgram,
    integer_mask: np.ndarray,
    max_nodes: int = 50_000,
    gap_tol: float = 1e-6,
    warm_x: np.ndarray | None = None,
    deadline_s: float | None = None,
) -> MilpResult:
    """Solve ``lp`` with integrality imposed where ``integer_mask`` is True.

    Parameters
    ----------
    lp:
        The LP relaxation data (bounds included).
    integer_mask:
        Boolean array over variables; True entries must be integral.
    max_nodes:
        Hard cap on explored branch & bound nodes.
    gap_tol:
        Terminate once the incumbent is within this relative gap of the
        global lower bound.
    warm_x:
        Optional warm-start point (e.g. the previous period's solution).
        When feasible it seeds the incumbent, so pruning is tight from
        the first node; when infeasible it is silently ignored. The
        returned objective is identical to a cold solve's — a seeded
        incumbent is only ever *replaced* by strictly better solutions.
    deadline_s:
        Optional wall-clock budget in seconds, measured from entry.
        When it expires the search stops and the best incumbent so far
        is returned with ``interrupted=True`` (status ITERATION_LIMIT),
        exactly like hitting ``max_nodes``.
    """
    integer_mask = np.asarray(integer_mask, dtype=bool)
    if integer_mask.shape != (lp.num_vars,):
        raise SolverError("integer_mask must have one entry per variable")
    expires_at = None if deadline_s is None else time.perf_counter() + deadline_s

    root = solve_lp(lp)
    lp_iterations = root.iterations
    if root.status is LpStatus.UNBOUNDED:
        raise UnboundedError("MILP relaxation is unbounded")
    if root.status is not LpStatus.OPTIMAL:
        return MilpResult(root.status, lp_iterations=lp_iterations)

    incumbent_x: np.ndarray | None = None
    incumbent_obj = float("inf")
    warm_started = False
    if warm_x is not None:
        admitted = _admissible_warm_start(lp, integer_mask, warm_x)
        if admitted is not None:
            incumbent_x = admitted
            incumbent_obj = float(lp.c @ admitted)
            warm_started = True
    counter = itertools.count()
    # Heap entries: (bound, tiebreak, lb, ub) — branch state is carried
    # as modified bound vectors, the cheapest representation for dense LPs.
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (root.objective, next(counter), lp.lb.copy(), lp.ub.copy()))
    nodes = 0
    best_bound = root.objective

    timed_out = False
    while heap and nodes < max_nodes:
        if expires_at is not None and time.perf_counter() >= expires_at:
            timed_out = True
            break
        bound, _, lb, ub = heapq.heappop(heap)
        best_bound = bound
        if incumbent_x is not None and (
            incumbent_obj - bound <= gap_tol * max(1.0, abs(incumbent_obj))
        ):
            break
        nodes += 1
        node_lp = LinearProgram(
            c=lp.c, a_ub=lp.a_ub, b_ub=lp.b_ub, a_eq=lp.a_eq, b_eq=lp.b_eq,
            lb=lb, ub=ub,
        )
        res = solve_lp(node_lp)
        lp_iterations += res.iterations
        if res.status is not LpStatus.OPTIMAL:
            continue  # infeasible subtree (or numerical trouble): prune
        if res.objective >= incumbent_obj - gap_tol:
            continue
        x = res.x
        if _is_integral(x, integer_mask):
            incumbent_x = np.where(integer_mask, np.round(x), x)
            incumbent_obj = float(lp.c @ incumbent_x)
            continue
        # Branch on the most fractional integer variable.
        frac = np.where(integer_mask, np.abs(x - np.round(x)), 0.0)
        j = int(np.argmax(frac))
        floor_val = math.floor(x[j] + _INT_TOL)
        lb_hi = lb.copy()
        lb_hi[j] = floor_val + 1
        ub_lo = ub.copy()
        ub_lo[j] = floor_val
        if ub_lo[j] >= lb[j] - _INT_TOL:
            heapq.heappush(heap, (res.objective, next(counter), lb.copy(), ub_lo))
        if lb_hi[j] <= ub[j] + _INT_TOL:
            heapq.heappush(heap, (res.objective, next(counter), lb_hi, ub.copy()))

    if incumbent_x is None:
        status = LpStatus.ITERATION_LIMIT if heap else LpStatus.INFEASIBLE
        return MilpResult(status, nodes_explored=nodes, best_bound=best_bound,
                          lp_iterations=lp_iterations,
                          interrupted=status is LpStatus.ITERATION_LIMIT)
    if heap and (nodes >= max_nodes or timed_out):
        status = LpStatus.ITERATION_LIMIT
        interrupted = True
    else:
        status = LpStatus.OPTIMAL
        interrupted = False
        best_bound = min(best_bound, incumbent_obj)
    return MilpResult(
        status,
        x=incumbent_x,
        objective=incumbent_obj,
        nodes_explored=nodes,
        best_bound=best_bound,
        lp_iterations=lp_iterations,
        warm_started=warm_started,
        interrupted=interrupted,
    )
