"""Optimisation substrate: a self-contained LP/MILP solver.

The paper solves its runtime-allocation integer program with GUROBI.
This subpackage provides the open substitute used by the reproduction:

- :mod:`repro.solver.simplex` — dense two-phase primal simplex for LPs.
- :mod:`repro.solver.branch_bound` — best-first branch & bound MILP
  solver layered on the simplex.
- :mod:`repro.solver.model` — a small modeling layer (variables, linear
  expressions, constraints) so problem encodings read like algebra.
- :mod:`repro.solver.piecewise` — piecewise-linear under-approximation
  helpers used to linearise convex objective terms.

The Arlo-specific exact dynamic program for Eqs. 1-7 lives in
:mod:`repro.core.allocation`; it uses this subpackage only for the MILP
cross-validation path.
"""

from repro.solver.branch_bound import MilpResult, solve_milp
from repro.solver.model import LinExpr, Model, Var
from repro.solver.simplex import LinearProgram, LpResult, LpStatus, solve_lp

__all__ = [
    "LinExpr",
    "LinearProgram",
    "LpResult",
    "LpStatus",
    "MilpResult",
    "Model",
    "Var",
    "solve_lp",
    "solve_milp",
]
