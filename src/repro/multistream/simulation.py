"""Co-simulation of several request streams sharing one GPU pool (§6).

Each stream is a full Arlo (or baseline) deployment with its own
polymorph set, Request Scheduler and periodic Runtime Scheduler. On
top, a :class:`StreamPoolCoordinator` runs every coordinator period:
it reads each stream's demand estimate, re-partitions the pool, and
executes GPU *transfers* — the donor stream drains its least busy
instance, the freed worker moves to the receiver stream and comes up
with the receiver's maximum-length runtime (the §4 scale-out rule);
the receiver's next scheduling period folds it into its allocation.

All streams share one deterministic event queue, so cross-stream
interactions (a transfer landing mid-burst, one stream's drain delaying
another's relief) play out exactly once, in order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.schemes import Scheme
from repro.cluster.instance import RuntimeInstance
from repro.cluster.replacement import REPLACEMENT_DURATION_MS
from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.multistream.coordinator import (
    StreamDemand,
    StreamPoolCoordinator,
    StreamSpec,
)
from repro.sim.controller import ControlPlane
from repro.sim.engine import EventQueue
from repro.sim.events import ArrivalPayload, CompletionPayload, EventKind
from repro.sim.metrics import LatencyStats, MetricsCollector
from repro.units import SECOND
from repro.workload.trace import Trace


@dataclass(frozen=True)
class StreamInput:
    """One stream to co-simulate."""

    name: str
    scheme: Scheme
    trace: Trace
    weight: float = 1.0
    min_gpus: int = 1

    def __post_init__(self) -> None:
        if not len(self.trace):
            raise ConfigurationError(f"stream {self.name!r} has an empty trace")
        if self.scheme.demand_estimator is None:
            raise ConfigurationError(
                f"stream {self.name!r} needs a demand estimator "
                "(use an arlo-family scheme)"
            )


@dataclass(frozen=True)
class MultiStreamConfig:
    coordinator_period_ms: float = 30 * SECOND
    headroom: float = 1.25
    warmup_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.coordinator_period_ms <= 0:
            raise ConfigurationError("coordinator period must be positive")
        if self.warmup_ms < 0:
            raise ConfigurationError("warmup cannot be negative")


@dataclass(frozen=True)
class _TransferDrain:
    """Coordinator-initiated drain of a donor instance."""

    donor: int  # stream index
    receiver: int
    instance_id: int


@dataclass
class StreamResult:
    """Per-stream outcome of a co-simulation."""

    name: str
    stats: LatencyStats
    metrics: MetricsCollector
    gpus_final: int
    transfers_out: int
    transfers_in: int


@dataclass
class MultiStreamResult:
    streams: dict[str, StreamResult]
    partition_timeline: list[tuple[float, dict[str, int]]]
    events_processed: int
    end_ms: float


@dataclass
class _StreamState:
    """Mutable per-stream bookkeeping inside the loop."""

    inp: StreamInput
    metrics: MetricsCollector
    control: ControlPlane
    next_arrival: int = 0
    outstanding: int = 0
    completed: int = 0
    deferred: list[tuple[int, float, int]] = field(default_factory=list)
    inflight: dict[int, deque] = field(default_factory=dict)
    transfers_out: int = 0
    transfers_in: int = 0
    #: instance_id -> receiver stream index, for coordinator drains.
    pending_transfers: dict[int, int] = field(default_factory=dict)

    @property
    def scheme(self) -> Scheme:
        return self.inp.scheme

    @property
    def n_requests(self) -> int:
        return len(self.inp.trace)


def run_multistream(
    streams: list[StreamInput],
    config: MultiStreamConfig | None = None,
) -> MultiStreamResult:
    """Serve every stream's trace concurrently over the shared pool."""
    if not streams:
        raise ConfigurationError("need at least one stream")
    names = [s.name for s in streams]
    if len(set(names)) != len(names):
        raise ConfigurationError("stream names must be unique")
    config = config or MultiStreamConfig()

    queue = EventQueue()
    states: list[_StreamState] = []
    for inp in streams:
        states.append(
            _StreamState(
                inp=inp,
                metrics=MetricsCollector(slo_ms=inp.scheme.slo_ms),
                control=ControlPlane(scheme=inp.scheme, queue=queue,
                                     payload_tag=len(states)),
            )
        )
    total_gpus = sum(st.scheme.cluster.num_gpus for st in states)
    coordinator = StreamPoolCoordinator(
        total_gpus=total_gpus, headroom=config.headroom
    )
    partition_timeline: list[tuple[float, dict[str, int]]] = []

    # -- helpers ----------------------------------------------------------
    def push_arrival(s: int) -> None:
        st = states[s]
        if st.next_arrival < st.n_requests:
            trace = st.inp.trace
            queue.push(
                float(trace.arrival_ms[st.next_arrival]),
                EventKind.ARRIVAL,
                (s, ArrivalPayload(st.next_arrival,
                                   int(trace.length[st.next_arrival]))),
            )
            st.next_arrival += 1

    def admit(s: int, now: float, request_id: int, arrival: float,
              length: int) -> bool:
        st = states[s]
        try:
            instance, _start, finish = st.scheme.dispatcher.dispatch(
                now, length
            )
        except CapacityError:
            return False
        st.outstanding += 1
        st.inflight.setdefault(instance.instance_id, deque()).append(
            (request_id, arrival, length)
        )
        queue.push(
            finish,
            EventKind.COMPLETION,
            (s, CompletionPayload(
                request_id=request_id,
                instance_id=instance.instance_id,
                arrival_ms=arrival,
                length=length,
                runtime_index=instance.runtime_index,
            )),
        )
        return True

    def flush_deferred(s: int, now: float) -> None:
        st = states[s]
        if not st.deferred:
            return
        still = [
            item for item in st.deferred if not admit(s, now, *item)
        ]
        st.deferred[:] = still

    def work_remaining() -> bool:
        return any(
            st.next_arrival < st.n_requests
            or st.outstanding
            or st.deferred
            or st.control.has_pending_work
            or st.pending_transfers
            for st in states
        )

    # -- coordinator ---------------------------------------------------------
    def least_busy_transferable(st: _StreamState) -> RuntimeInstance | None:
        active = st.scheme.cluster.active_instances()
        top = len(st.scheme.registry) - 1
        top_count = sum(1 for i in active if i.runtime_index == top)
        candidates = [
            i for i in active
            if (i.runtime_index != top or top_count > 1)
            and i.instance_id not in st.pending_transfers
        ]
        if len(active) <= 1 or not candidates:
            return None
        return min(candidates, key=lambda i: (i.outstanding, i.instance_id))

    def begin_transfer(now: float, donor: int, receiver: int) -> None:
        st = states[donor]
        victim = least_busy_transferable(st)
        if victim is None:
            return
        victim.begin_drain()
        st.scheme.mlq.remove(victim)
        st.pending_transfers[victim.instance_id] = receiver
        if victim.outstanding == 0:
            schedule_transfer_ready(now, donor, victim.instance_id)

    def schedule_transfer_ready(now: float, donor: int,
                                instance_id: int) -> None:
        receiver = states[donor].pending_transfers[instance_id]
        queue.push(
            now + REPLACEMENT_DURATION_MS,
            EventKind.REPLACEMENT_READY,
            _TransferDrain(donor=donor, receiver=receiver,
                           instance_id=instance_id),
        )

    def complete_transfer(now: float, td: _TransferDrain) -> None:
        donor_st = states[td.donor]
        receiver_st = states[td.receiver]
        instance = donor_st.scheme.cluster.instances.get(td.instance_id)
        if instance is None:  # pragma: no cover - transfers are not raced
            raise SimulationError("transfer fired for unknown instance")
        donor_st.pending_transfers.pop(td.instance_id, None)
        gpu = donor_st.scheme.cluster.retire_instance(instance)
        donor_st.scheme.cluster.release_gpu(gpu.gpu_id, now)
        new_instance = receiver_st.scheme.cluster.deploy_on_new_gpu(
            receiver_st.scheme.scale_out_runtime_index, now
        )
        receiver_st.scheme.mlq.add(new_instance)
        donor_st.transfers_out += 1
        receiver_st.transfers_in += 1
        flush_deferred(td.receiver, now)

    def coordinate(now: float) -> None:
        demands = []
        for st in states:
            estimator = st.scheme.demand_estimator
            demands.append(
                StreamDemand(
                    spec=StreamSpec(
                        name=st.inp.name,
                        min_gpus=st.inp.min_gpus,
                        weight=st.inp.weight,
                    ),
                    demand=estimator.demand(now),
                    capacity=np.array(
                        [p.capacity for p in st.scheme.registry]
                    ),
                )
            )
        target = coordinator.partition(demands)
        # Account for in-flight transfers: a draining donor still holds
        # its GPU, but that GPU is already promised — without this
        # adjustment a slow drain makes the next period re-issue the
        # same move and overshoot the target.
        current = {
            st.inp.name: st.scheme.cluster.num_gpus
            - len(st.pending_transfers)
            for st in states
        }
        for st in states:
            for receiver_idx in st.pending_transfers.values():
                current[states[receiver_idx].inp.name] += 1
        partition_timeline.append((now, dict(current)))
        index_of = {st.inp.name: i for i, st in enumerate(states)}
        for donor_name, receiver_name in coordinator.rebalance_moves(
            current, target
        ):
            begin_transfer(now, index_of[donor_name], index_of[receiver_name])

    # -- main loop -----------------------------------------------------------
    for s in range(len(states)):
        push_arrival(s)
        scheduler = states[s].scheme.runtime_scheduler
        if scheduler is not None:
            queue.push(scheduler.config.period_ms, EventKind.RESCHEDULE, s)
    queue.push(config.coordinator_period_ms, EventKind.COORDINATE)

    while queue:
        event = queue.pop()
        now = event.time_ms

        if event.kind is EventKind.ARRIVAL:
            s, ap = event.payload
            st = states[s]
            st.scheme.observe_arrival(now, ap.length)
            if not admit(s, now, ap.request_id, now, ap.length):
                st.deferred.append((ap.request_id, now, ap.length))
                st.metrics.deferred_requests += 1
            push_arrival(s)

        elif event.kind is EventKind.COMPLETION:
            s, cp = event.payload
            st = states[s]
            instance = st.scheme.cluster.instances.get(cp.instance_id)
            if instance is None:
                raise SimulationError(
                    f"completion for retired instance {cp.instance_id}"
                )
            st.inflight[cp.instance_id].popleft()
            instance.complete()
            st.scheme.dispatcher.on_complete(instance)
            st.outstanding -= 1
            st.completed += 1
            if cp.arrival_ms >= config.warmup_ms:
                st.metrics.record(now - cp.arrival_ms, cp.runtime_index)
            st.control.on_completion(now, instance)
            if (
                cp.instance_id in st.pending_transfers
                and instance.drained()
            ):
                schedule_transfer_ready(now, s, cp.instance_id)
            flush_deferred(s, now)

        elif event.kind is EventKind.RESCHEDULE:
            s = event.payload
            st = states[s]
            scheduler = st.scheme.runtime_scheduler
            if scheduler is not None and work_remaining():
                _result, plan = scheduler.step(now, st.scheme.cluster)
                st.control.start_plan(now, plan)
                queue.push(now + scheduler.config.period_ms,
                           EventKind.RESCHEDULE, s)

        elif event.kind is EventKind.REPLACEMENT_READY:
            if isinstance(event.payload, _TransferDrain):
                complete_transfer(now, event.payload)
            else:
                s, inner = event.payload
                states[s].control.on_replacement_event(now, inner)
                flush_deferred(s, now)

        elif event.kind is EventKind.COORDINATE:
            if work_remaining():
                coordinate(now)
                queue.push(now + config.coordinator_period_ms,
                           EventKind.COORDINATE)

        else:  # pragma: no cover - closed enum in this loop
            raise SimulationError(f"unhandled event kind {event.kind}")

    for st in states:
        if st.completed != st.n_requests:
            raise SimulationError(
                f"stream {st.inp.name!r} left "
                f"{st.n_requests - st.completed} requests unserved"
            )

    return MultiStreamResult(
        streams={
            st.inp.name: StreamResult(
                name=st.inp.name,
                stats=st.metrics.stats(),
                metrics=st.metrics,
                gpus_final=st.scheme.cluster.num_gpus,
                transfers_out=st.transfers_out,
                transfers_in=st.transfers_in,
            )
            for st in states
        },
        partition_timeline=partition_timeline,
        events_processed=queue.events_processed,
        end_ms=queue.now_ms,
    )
