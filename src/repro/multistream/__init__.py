"""Multi-stream serving — the paper's §6 extension.

The paper sketches how Arlo extends beyond a single request stream:
"deploying a dedicated Arlo for each stream and employing resource
sharing among them". This subpackage implements the practical variant:
a :class:`StreamPoolCoordinator` that periodically re-partitions a
shared GPU pool across streams in proportion to each stream's measured
GPU demand (its Eq. 3 lower bounds plus queueing headroom), with per-
stream minimum guarantees so Eq. 7 always holds inside every stream.

True time-multiplexed co-location of different models on one GPU is
explicitly future work in the paper; partitioning keeps Arlo's
no-co-location invariant (§3.3) while still letting idle capacity flow
between streams at the coordinator period.
"""

from repro.multistream.coordinator import (
    StreamDemand,
    StreamPoolCoordinator,
    StreamSpec,
)
from repro.multistream.simulation import (
    MultiStreamConfig,
    MultiStreamResult,
    StreamInput,
    StreamResult,
    run_multistream,
)

__all__ = [
    "MultiStreamConfig",
    "MultiStreamResult",
    "StreamDemand",
    "StreamInput",
    "StreamPoolCoordinator",
    "StreamResult",
    "StreamSpec",
    "run_multistream",
]
