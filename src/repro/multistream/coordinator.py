"""Demand-proportional GPU partitioning across request streams (§6).

Each stream reports its demand vector ``Q`` (arrivals per SLO window
per bin) and its runtimes' capacities ``M``. The coordinator computes
the stream's *GPU requirement*::

    need_s = Σ_i Q_i / M_i          (utilisation in instances)

and splits the pool so every stream gets its minimum guarantee (enough
for Eq. 7 plus its Eq. 3 lower bounds where possible) and the surplus
is divided proportionally to unmet need — a max-min-fair style share
that flows idle capacity towards loaded streams at every coordinator
period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, InfeasibleError


@dataclass(frozen=True)
class StreamSpec:
    """Static description of one request stream."""

    name: str
    #: Minimum GPUs this stream must always hold (≥ 1 for Eq. 7).
    min_gpus: int = 1
    #: Relative priority weight for surplus distribution.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.min_gpus < 1:
            raise ConfigurationError("every stream needs at least one GPU")
        if self.weight <= 0:
            raise ConfigurationError("weights must be positive")


@dataclass(frozen=True)
class StreamDemand:
    """One stream's measured demand at a coordinator period."""

    spec: StreamSpec
    demand: np.ndarray  # Q_i per bin
    capacity: np.ndarray  # M_i per runtime

    def __post_init__(self) -> None:
        demand = np.asarray(self.demand, dtype=float)
        capacity = np.asarray(self.capacity, dtype=np.int64)
        if demand.shape != capacity.shape or demand.ndim != 1:
            raise ConfigurationError("demand and capacity must align")
        if np.any(demand < 0) or np.any(capacity < 1):
            raise ConfigurationError("demand ≥ 0 and capacity ≥ 1 required")
        object.__setattr__(self, "demand", demand)
        object.__setattr__(self, "capacity", capacity)

    @property
    def gpu_need(self) -> float:
        """Instances of work per SLO window — fractional GPU demand."""
        return float((self.demand / self.capacity).sum())

    @property
    def hard_minimum(self) -> int:
        """Eq. 3 lower bounds + Eq. 7 — GPUs below which SLOs break."""
        lb = np.floor(self.demand / self.capacity).astype(np.int64)
        lb[-1] = max(lb[-1], 1)
        return int(lb.sum())


@dataclass
class StreamPoolCoordinator:
    """Splits a GPU pool across streams once per coordinator period."""

    total_gpus: int
    #: Headroom multiplier on fractional need before surplus division.
    headroom: float = 1.25
    history: list[dict[str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_gpus < 1:
            raise ConfigurationError("pool needs at least one GPU")
        if self.headroom < 1.0:
            raise ConfigurationError("headroom must be >= 1")

    def partition(self, demands: list[StreamDemand]) -> dict[str, int]:
        """GPUs per stream; deterministic, sums to ``total_gpus``.

        Guarantees: every stream gets ``max(spec.min_gpus, 1)``; if the
        pool can cover every stream's hard minimum it does; remaining
        GPUs go to streams with unmet (headroom-inflated) need,
        proportionally to ``weight × unmet``; any final surplus is
        spread round-robin by weight.
        """
        if not demands:
            raise ConfigurationError("no streams to partition between")
        names = [d.spec.name for d in demands]
        if len(set(names)) != len(names):
            raise ConfigurationError("stream names must be unique")
        floors = np.array(
            [max(d.spec.min_gpus, 1) for d in demands], dtype=np.int64
        )
        if floors.sum() > self.total_gpus:
            raise InfeasibleError(
                f"pool of {self.total_gpus} cannot give {len(demands)} "
                f"streams their minimum guarantees ({floors.sum()})"
            )
        # Raise floors towards hard minimums while the pool allows.
        wanted = np.array([d.hard_minimum for d in demands], dtype=np.int64)
        alloc = floors.copy()
        spare = self.total_gpus - int(alloc.sum())
        deficit = np.maximum(wanted - alloc, 0)
        while spare > 0 and deficit.sum() > 0:
            i = int(np.argmax(deficit))
            alloc[i] += 1
            deficit[i] -= 1
            spare -= 1
        # Distribute the surplus by weighted unmet fractional need.
        targets = np.array(
            [d.gpu_need * self.headroom for d in demands]
        )
        weights = np.array([d.spec.weight for d in demands])
        for _ in range(spare):
            unmet = np.maximum(targets - alloc, 0.0) * weights
            if unmet.sum() <= 0:
                # Everyone satisfied: spread remaining by weight, least
                # loaded (relative to weight) first.
                i = int(np.argmin(alloc / weights))
            else:
                i = int(np.argmax(unmet))
            alloc[i] += 1
        result = {name: int(n) for name, n in zip(names, alloc)}
        self.history.append(result)
        return result

    def rebalance_moves(
        self, current: dict[str, int], target: dict[str, int]
    ) -> list[tuple[str, str]]:
        """(donor, receiver) GPU moves turning ``current`` into ``target``."""
        if set(current) != set(target):
            raise ConfigurationError("stream sets differ")
        if sum(current.values()) != sum(target.values()):
            raise ConfigurationError("partitions use different pool sizes")
        donors: list[str] = []
        receivers: list[str] = []
        for name in sorted(current):
            delta = current[name] - target[name]
            if delta > 0:
                donors.extend([name] * delta)
            elif delta < 0:
                receivers.extend([name] * (-delta))
        return list(zip(donors, receivers))
