"""Trace persistence as compressed ``.npz`` archives."""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import TraceError
from repro.workload.generative import GenerativeTrace
from repro.workload.trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace to ``path`` (``.npz`` appended if missing).

    Generative traces add a ``decode_len`` column; the archive stays a
    valid v1 trace (extra keys are optional), so discriminative readers
    of older snapshots are unaffected.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": np.int64(_FORMAT_VERSION),
        "arrival_ms": trace.arrival_ms,
        "length": trace.length,
    }
    if isinstance(trace, GenerativeTrace):
        payload["decode_len"] = trace.decode_len
    np.savez_compressed(path, **payload)
    return path


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Archives carrying a ``decode_len`` column come back as
    :class:`~repro.workload.generative.GenerativeTrace`.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path) as data:
        missing = {"version", "arrival_ms", "length"} - set(data.files)
        if missing:
            raise TraceError(f"{path} is not a trace archive (missing {missing})")
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise TraceError(
                f"trace format v{version} unsupported (expected "
                f"v{_FORMAT_VERSION})"
            )
        if "decode_len" in data.files:
            return GenerativeTrace(
                data["arrival_ms"].copy(),
                data["length"].copy(),
                data["decode_len"].copy(),
            )
        return Trace(data["arrival_ms"].copy(), data["length"].copy())
