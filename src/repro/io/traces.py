"""Trace persistence as compressed ``.npz`` archives."""

from __future__ import annotations

import pathlib

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        arrival_ms=trace.arrival_ms,
        length=trace.length,
    )
    return path


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    with np.load(path) as data:
        missing = {"version", "arrival_ms", "length"} - set(data.files)
        if missing:
            raise TraceError(f"{path} is not a trace archive (missing {missing})")
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise TraceError(
                f"trace format v{version} unsupported (expected "
                f"v{_FORMAT_VERSION})"
            )
        return Trace(data["arrival_ms"].copy(), data["length"].copy())
