"""Persistence: traces, profiles and experiment results on disk.

Real deployments re-use traces and offline profiles across runs; this
subpackage gives them stable on-disk formats:

- traces — NumPy ``.npz`` (compact, mmap-able);
- runtime profiles / polymorph sets — JSON (human-auditable, the file
  a profiler job would publish);
- experiment results — JSON rows identical to what the benchmark
  harness prints.
"""

from repro.io.profiles import (
    load_registry,
    registry_to_dict,
    save_registry,
)
from repro.io.results import load_result_summary, save_result_summary
from repro.io.traces import load_trace, save_trace

__all__ = [
    "load_registry",
    "load_result_summary",
    "load_trace",
    "registry_to_dict",
    "save_registry",
    "save_result_summary",
    "save_trace",
]
