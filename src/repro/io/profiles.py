"""Polymorph-set persistence: the offline profiler's published artifact.

The offline stage (compile → profile) is expensive in the real world
(TensorRT engine builds, measurement campaigns); its output is a small
JSON document that the serving stage loads. This module defines that
document: one entry per runtime with its spec, measured service time
and the SLO it was profiled under.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ProfileError
from repro.runtimes.compiler import CompiledRuntime
from repro.runtimes.models import get_model
from repro.runtimes.profiler import RuntimeProfile
from repro.runtimes.registry import RuntimeRegistry
from repro.runtimes.spec import CompilerKind, RuntimeSpec

_FORMAT_VERSION = 1


def registry_to_dict(registry: RuntimeRegistry) -> dict:
    """JSON-ready representation of a profiled polymorph set."""
    return {
        "version": _FORMAT_VERSION,
        "runtimes": [
            {
                "model": p.runtime.spec.model_name,
                "compiler": p.runtime.spec.compiler.value,
                "max_length": p.runtime.spec.max_length,
                "dynamic_shape": p.runtime.spec.dynamic_shape,
                "service_ms": p.service_ms,
                "overhead_ms": p.overhead_ms,
                "slo_ms": p.slo_ms,
                "build_cost_s": p.runtime.build_cost_s,
            }
            for p in registry
        ],
    }


def _profile_from_dict(entry: dict) -> RuntimeProfile:
    try:
        model = get_model(entry["model"])
        spec = RuntimeSpec(
            max_length=int(entry["max_length"]),
            model_name=entry["model"],
            compiler=CompilerKind(entry["compiler"]),
            dynamic_shape=bool(entry["dynamic_shape"]),
        )
    except (KeyError, ValueError) as exc:
        raise ProfileError(f"malformed profile entry: {exc}") from exc
    latency_model = (
        model.dynamic_latency if spec.dynamic_shape else model.static_latency
    )
    runtime = CompiledRuntime(
        spec=spec,
        latency_model=latency_model,
        build_cost_s=float(entry.get("build_cost_s", 0.0)),
    )
    return RuntimeProfile(
        runtime=runtime,
        slo_ms=float(entry["slo_ms"]),
        service_ms=float(entry["service_ms"]),
        overhead_ms=float(entry.get("overhead_ms", 0.8)),
    )


def registry_from_dict(payload: dict) -> RuntimeRegistry:
    """Rebuild a registry from :func:`registry_to_dict` output."""
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ProfileError(f"profile format v{version} unsupported")
    entries = payload.get("runtimes", [])
    if not entries:
        raise ProfileError("profile document lists no runtimes")
    return RuntimeRegistry(
        profiles=[_profile_from_dict(e) for e in entries]
    )


def save_registry(
    registry: RuntimeRegistry, path: str | pathlib.Path
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(registry_to_dict(registry), indent=2))
    return path


def load_registry(path: str | pathlib.Path) -> RuntimeRegistry:
    path = pathlib.Path(path)
    if not path.exists():
        raise ProfileError(f"no profile document at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path} is not valid JSON: {exc}") from exc
    return registry_from_dict(payload)
