"""Experiment result persistence: the harness's printable rows as JSON."""

from __future__ import annotations

import json
import pathlib

from repro.errors import SimulationError
from repro.sim.simulation import SimulationResult

_FORMAT_VERSION = 1


def result_to_dict(result: SimulationResult) -> dict:
    """Summary (not the raw latency population) of one simulation."""
    stats = result.stats
    return {
        "version": _FORMAT_VERSION,
        "scheme": result.scheme_name,
        "requests": stats.count,
        "mean_ms": stats.mean_ms,
        "p50_ms": stats.p50_ms,
        "p98_ms": stats.p98_ms,
        "p99_ms": stats.p99_ms,
        "max_ms": stats.max_ms,
        "slo_violation_rate": stats.slo_violation_rate,
        "end_ms": result.end_ms,
        "events_processed": result.events_processed,
        "time_weighted_gpus": result.time_weighted_gpus,
        "dispatch_stats": result.dispatch_stats,
        "control_stats": result.control_stats,
    }


def save_result_summary(
    result: SimulationResult, path: str | pathlib.Path
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result_summary(path: str | pathlib.Path) -> dict:
    path = pathlib.Path(path)
    if not path.exists():
        raise SimulationError(f"no result summary at {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SimulationError(f"{path} is not valid JSON: {exc}") from exc
    if payload.get("version") != _FORMAT_VERSION:
        raise SimulationError(
            f"result format v{payload.get('version')} unsupported"
        )
    return payload
