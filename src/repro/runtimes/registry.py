"""Runtime registry: the polymorph set and its lookup structure.

The registry owns the sorted list of compiled runtimes for one model
and answers the query every scheduler needs: *which runtimes can accept
a request of this length?* (all runtimes with ``max_length ≥ len``,
in ascending ``max_length`` order — the candidate list of Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.compiler import CompiledRuntime, SimulatedCompiler
from repro.runtimes.models import ModelProfile
from repro.runtimes.profiler import OfflineProfiler, RuntimeProfile
from repro.runtimes.staircase import detect_step_size, polymorph_lengths


@dataclass
class RuntimeRegistry:
    """Sorted polymorph set with O(log I) candidate lookup."""

    profiles: list[RuntimeProfile]
    _max_lengths: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ConfigurationError("registry needs at least one runtime")
        lengths = [p.max_length for p in self.profiles]
        if lengths != sorted(lengths) or len(set(lengths)) != len(lengths):
            raise ConfigurationError(
                "profiles must be sorted by strictly increasing max_length"
            )
        self._max_lengths = np.asarray(lengths)
        # length -> ideal runtime index, precomputed so the per-request
        # dispatch walk costs one list index instead of a bisect.
        self._ideal_lookup: list[int] = np.searchsorted(
            self._max_lengths, np.arange(lengths[-1] + 1), side="left"
        ).tolist()
        self._num_profiles = len(self.profiles)

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    def __getitem__(self, index: int) -> RuntimeProfile:
        return self.profiles[index]

    @property
    def max_length(self) -> int:
        """The largest servable request length."""
        return int(self._max_lengths[-1])

    def ideal_index(self, length: int) -> int:
        """Index of the *ideal* runtime: smallest ``max_length ≥ length``."""
        if length <= 0:
            raise CapacityError(f"invalid request length {length}")
        try:
            return self._ideal_lookup[length]
        except IndexError:
            raise CapacityError(
                f"request length {length} exceeds largest runtime "
                f"({self.max_length})"
            ) from None

    def ideal_index_batch(self, lengths) -> np.ndarray | None:
        """Vectorised :meth:`ideal_index` over a batch of lengths.

        Returns the per-request ideal runtime indexes, or ``None`` when
        any length is unservable — batch callers fall back to the
        scalar path, which raises the precise :class:`CapacityError`
        per request.
        """
        arr = np.asarray(lengths)
        if arr.size == 0:
            return None
        if int(arr.min()) <= 0 or int(arr.max()) > self.max_length:
            return None
        return np.searchsorted(self._max_lengths, arr, side="left")

    def candidate_indexes(self, length: int) -> range:
        """All candidate runtime indexes for a request, ascending
        ``max_length`` (Algorithm 1 line 2)."""
        return range(self.ideal_index(length), len(self.profiles))

    def bin_index(self, length: int) -> int:
        """Length-bin of a request == index of its ideal runtime (§3.1 ①)."""
        return self.ideal_index(length)

    def bin_edges(self) -> np.ndarray:
        """Upper edge of each length bin (the runtimes' max_lengths)."""
        return self._max_lengths.copy()

    def histogram(self, lengths: np.ndarray) -> np.ndarray:
        """Count requests per length bin (vectorised over a trace slice)."""
        lengths = np.asarray(lengths)
        if lengths.size and (lengths.min() <= 0 or lengths.max() > self.max_length):
            raise CapacityError("trace contains unservable lengths")
        return np.bincount(
            np.searchsorted(self._max_lengths, lengths, side="left"),
            minlength=len(self.profiles),
        ).astype(np.int64)


def build_polymorph_set(
    model: ModelProfile,
    *,
    compiler: SimulatedCompiler | None = None,
    profiler: OfflineProfiler | None = None,
    max_lengths: list[int] | None = None,
    detect_step: bool = False,
) -> RuntimeRegistry:
    """End-to-end offline stage: fragment → compile → profile (Fig. 3 ①–③).

    By default the ladder is every multiple of the model's staircase step
    up to its maximum length (8 runtimes for BERT at step 64). Passing
    ``detect_step=True`` instead *measures* the step from a profiled
    latency curve, exercising the §3.3 detection path. ``max_lengths``
    overrides the ladder entirely (used by the Fig. 11 runtime-count
    ablation).
    """
    compiler = compiler or SimulatedCompiler()
    profiler = profiler or OfflineProfiler()
    if max_lengths is None:
        step = model.step
        if detect_step:
            probe = compiler.compile_dynamic(model)
            lengths = np.arange(8, model.max_length + 1, 8)
            curve = np.asarray(
                [model.static_latency.compute_ms(int(ln)) for ln in lengths]
            )
            step = detect_step_size(lengths, curve)
            del probe  # the dynamic probe runtime is not part of the set
        max_lengths = polymorph_lengths(model.max_length, step)
    runtimes: list[CompiledRuntime] = compiler.compile_polymorph_set(
        model, max_lengths
    )
    profiles = profiler.profile_set(runtimes, model.slo_ms)
    return RuntimeRegistry(profiles=profiles)
