"""Polymorphing substrate: model latency profiles, compilation, profiling.

The paper compiles BERT-Base/Large with TensorRT (and Dolly with TVM
Unity) into *static-shape* runtimes at several ``max_length`` values,
plus *dynamic-shape* runtimes for the DT baseline. This subpackage
reproduces that world analytically:

- :mod:`repro.runtimes.latency` — staircase static-shape latency models
  and inflated dynamic-shape models (Fig. 2 calibration).
- :mod:`repro.runtimes.models` — the calibrated model zoo.
- :mod:`repro.runtimes.compiler` — a simulated compiler producing
  :class:`CompiledRuntime` objects.
- :mod:`repro.runtimes.profiler` — the offline profiler measuring each
  runtime's service time and within-SLO capacity ``M_i``.
- :mod:`repro.runtimes.staircase` — step-size detection (§3.3).
- :mod:`repro.runtimes.registry` — polymorph-set construction.
"""

from repro.runtimes.compiler import CompiledRuntime, SimulatedCompiler
from repro.runtimes.hardware import (
    HARDWARE_ZOO,
    HardwareProfile,
    retarget_model,
)
from repro.runtimes.latency import (
    DynamicShapeLatencyModel,
    LatencyModel,
    StaircaseLatencyModel,
    TunedDynamicLatencyModel,
)
from repro.runtimes.models import MODEL_ZOO, ModelProfile, bert_base, bert_large, dolly
from repro.runtimes.profiler import OfflineProfiler, RuntimeProfile
from repro.runtimes.registry import RuntimeRegistry, build_polymorph_set
from repro.runtimes.spec import CompilerKind, RuntimeSpec
from repro.runtimes.staircase import detect_step_size

__all__ = [
    "HARDWARE_ZOO",
    "MODEL_ZOO",
    "CompiledRuntime",
    "CompilerKind",
    "HardwareProfile",
    "retarget_model",
    "DynamicShapeLatencyModel",
    "LatencyModel",
    "ModelProfile",
    "OfflineProfiler",
    "RuntimeProfile",
    "RuntimeRegistry",
    "RuntimeSpec",
    "SimulatedCompiler",
    "StaircaseLatencyModel",
    "TunedDynamicLatencyModel",
    "bert_base",
    "bert_large",
    "build_polymorph_set",
    "detect_step_size",
    "dolly",
]
