"""Staircase step-size detection (paper §3.3).

Arlo picks its runtime ``max_length`` values from the *staircase
pattern* in static-compile latency: latency jumps at multiples of the
GPU tile size (64 for TensorRT/BERT) and is nearly flat in between.
Rather than hard-coding 64, this module recovers the step from profiled
(length, latency) measurements, as the paper notes the step "may vary
and not necessarily [be] uniform" for other models/compilers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfileError

#: Relative latency change below which two adjacent lengths are "flat".
_FLAT_THRESHOLD = 0.05


def detect_step_size(
    lengths: np.ndarray, latencies: np.ndarray, candidates: tuple[int, ...] = (8, 16, 32, 64, 128)
) -> int:
    """Infer the staircase step from a measured latency curve.

    For each candidate step ``s`` we score how well jumps align with
    multiples of ``s``: the latency increase crossing a multiple of
    ``s`` should be large, the increase elsewhere small. The candidate
    maximising (cross-boundary jump) − (in-step jump) wins.

    Parameters
    ----------
    lengths:
        Strictly increasing sequence lengths at which latency was
        measured (need ≥ 3 points spanning at least two steps).
    latencies:
        Measured latency at each length, same shape.
    """
    lengths = np.asarray(lengths, dtype=int)
    latencies = np.asarray(latencies, dtype=float)
    if lengths.shape != latencies.shape or lengths.size < 3:
        raise ProfileError("need ≥3 aligned (length, latency) measurements")
    if np.any(np.diff(lengths) <= 0):
        raise ProfileError("lengths must be strictly increasing")
    if np.any(latencies <= 0):
        raise ProfileError("latencies must be positive")

    rel_jump = np.diff(latencies) / latencies[:-1]
    best_step, best_score = 0, -np.inf
    for step in candidates:
        if lengths[-1] < 2 * step:
            continue  # cannot observe even one boundary crossing
        # Does the interval (lengths[i], lengths[i+1]] cross a multiple of step?
        crosses = (lengths[1:] - 1) // step != (lengths[:-1] - 1) // step
        if not crosses.any() or crosses.all():
            continue
        score = float(rel_jump[crosses].mean() - rel_jump[~crosses].mean())
        if score > best_score:
            best_step, best_score = step, score
    if best_step == 0:
        raise ProfileError(
            "no candidate step size is observable in the measured range"
        )
    return best_step


def is_staircase(
    lengths: np.ndarray, latencies: np.ndarray, step: int
) -> bool:
    """Check the <5 % in-step flatness property for a claimed step."""
    lengths = np.asarray(lengths, dtype=int)
    latencies = np.asarray(latencies, dtype=float)
    rel_jump = np.diff(latencies) / latencies[:-1]
    crosses = (lengths[1:] - 1) // step != (lengths[:-1] - 1) // step
    in_step = rel_jump[~crosses]
    return bool(in_step.size == 0 or np.all(np.abs(in_step) < _FLAT_THRESHOLD))


def polymorph_lengths(max_length: int, step: int) -> list[int]:
    """The ``max_length`` ladder Arlo compiles: step, 2·step, …, max.

    ``max_length`` need not be a multiple of ``step``; the final rung is
    always ``max_length`` itself so every request remains servable.
    """
    if max_length <= 0 or step <= 0:
        raise ProfileError("max_length and step must be positive")
    if step > max_length:
        return [max_length]
    rungs = list(range(step, max_length + 1, step))
    if rungs[-1] != max_length:
        rungs.append(max_length)
    return rungs


def polymorph_lengths_for_count(max_length: int, count: int) -> list[int]:
    """Evenly spaced ladder with exactly ``count`` rungs (Fig. 11 sweeps).

    Used by the runtime-count ablation where the paper gives each of the
    ``N`` runtimes a span of ``512/N``.
    """
    if count <= 0:
        raise ProfileError("count must be positive")
    if count > max_length:
        raise ProfileError("cannot have more runtimes than token lengths")
    span = max_length / count
    rungs = sorted({int(round(span * (i + 1))) for i in range(count)})
    rungs[-1] = max_length
    return rungs
