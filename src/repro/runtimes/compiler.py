"""Simulated DL compiler producing executable runtime objects.

Compilation here is instantaneous but records the *simulated* cost a
real compiler would incur (TensorRT engine builds take minutes; TVM
dynamic-shape tuning takes hours), so experiments can account for the
offline budget the paper discusses in §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, ConfigurationError
from repro.runtimes.latency import (
    DynamicShapeLatencyModel,
    LatencyModel,
    StaircaseLatencyModel,
    TunedDynamicLatencyModel,
)
from repro.runtimes.models import ModelProfile
from repro.runtimes.spec import RuntimeSpec

#: Simulated offline build cost per static engine (seconds).
STATIC_BUILD_COST_S = 90.0
#: Simulated cost of a dynamic-shape build (profile ranges, more tactics).
DYNAMIC_BUILD_COST_S = 420.0
#: Simulated kernel-tuning cost for TVM dynamic shape (paper: "time-intensive").
TVM_TUNING_COST_S = 3_600.0 * 4


@dataclass(frozen=True)
class CompiledRuntime:
    """An executable runtime: spec + the latency law it obeys.

    Static-shape runtimes *pad*: every request executes at the runtime's
    compiled ``max_length``, regardless of its true length. Dynamic
    runtimes execute at the request's own length but pay the
    dynamic-shape inflation.
    """

    spec: RuntimeSpec
    latency_model: LatencyModel
    build_cost_s: float = 0.0

    def service_ms(self, length: int) -> float:
        """GPU time to serve one request of ``length`` tokens."""
        if not self.spec.accepts(length):
            raise CapacityError(
                f"length {length} exceeds {self.spec.key} (max "
                f"{self.spec.max_length})"
            )
        if self.spec.dynamic_shape:
            return self.latency_model.compute_ms(length)
        # Static shape: the kernel always runs at the compiled length.
        return self.latency_model.compute_ms(self.spec.max_length)

    def padded_tokens(self, length: int) -> int:
        """Zero-padding this runtime adds to a request (0 when dynamic)."""
        if not self.spec.accepts(length):
            raise CapacityError(f"length {length} exceeds {self.spec.key}")
        return 0 if self.spec.dynamic_shape else self.spec.max_length - length

    @property
    def max_length(self) -> int:
        return self.spec.max_length


@dataclass
class SimulatedCompiler:
    """Builds :class:`CompiledRuntime` objects from a model profile."""

    total_build_cost_s: float = field(default=0.0, init=False)

    def compile_static(self, model: ModelProfile, max_length: int) -> CompiledRuntime:
        """Statically compile ``model`` for a fixed ``max_length``."""
        if max_length <= 0 or max_length > model.max_length:
            raise ConfigurationError(
                f"max_length {max_length} outside (0, {model.max_length}] "
                f"for {model.name}"
            )
        spec = RuntimeSpec(
            max_length=max_length,
            model_name=model.name,
            compiler=model.compiler,
            dynamic_shape=False,
        )
        self.total_build_cost_s += STATIC_BUILD_COST_S
        return CompiledRuntime(
            spec=spec,
            latency_model=model.static_latency,
            build_cost_s=STATIC_BUILD_COST_S,
        )

    def compile_dynamic(self, model: ModelProfile) -> CompiledRuntime:
        """Compile ``model`` with dynamic-shape support (the DT baseline)."""
        spec = RuntimeSpec(
            max_length=model.max_length,
            model_name=model.name,
            compiler=model.compiler,
            dynamic_shape=True,
        )
        if isinstance(model.dynamic_latency, TunedDynamicLatencyModel):
            cost = TVM_TUNING_COST_S
        elif isinstance(model.dynamic_latency, DynamicShapeLatencyModel):
            cost = DYNAMIC_BUILD_COST_S
        else:  # pragma: no cover - zoo only contains the two kinds
            cost = DYNAMIC_BUILD_COST_S
        self.total_build_cost_s += cost
        return CompiledRuntime(
            spec=spec, latency_model=model.dynamic_latency, build_cost_s=cost
        )

    def compile_polymorph_set(
        self, model: ModelProfile, max_lengths: list[int]
    ) -> list[CompiledRuntime]:
        """Compile one static runtime per requested ``max_length``.

        Lengths are validated, deduplicated and returned sorted ascending
        — the order every scheduler component expects.
        """
        if not max_lengths:
            raise ConfigurationError("polymorph set needs at least one max_length")
        unique = sorted(set(max_lengths))
        return [self.compile_static(model, ml) for ml in unique]


def staircase_of(runtime: CompiledRuntime) -> StaircaseLatencyModel:
    """The underlying staircase model of a static runtime (for analysis)."""
    model = runtime.latency_model
    if isinstance(model, StaircaseLatencyModel):
        return model
    if isinstance(model, (DynamicShapeLatencyModel, TunedDynamicLatencyModel)):
        return model.static
    raise ConfigurationError(f"no staircase behind {type(model).__name__}")
