"""Calibrated model zoo: BERT-Base, BERT-Large and Dolly.

Calibration targets, all taken verbatim from the paper:

========================  =======================================
BERT-Base (TRT, FP32)     lat(512) = 4.86 ms; lat(512)/lat(64) = 4.22;
                          SLO 150 ms; staircase step 64.
BERT-Large (TRT, FP32)    lat(512)/lat(64) = 5.25; SLO 450 ms.
Dolly (TVM Unity, FP16)   tuned dynamic averages 2.86× the untuned
                          static runtime.
Dynamic TRT               1.22×–3.56× inflation over static.
========================  =======================================

Solving ``base + 8·per_step = 4.86`` and ``(base + 8·p)/(base + p) =
4.22`` gives BERT-Base ``base = 0.624, per_step = 0.530``. For
BERT-Large the paper gives only the 5.25 ratio; the lat(64) = 2.0 ms
anchor is back-solved from the serving operating points (see
:func:`bert_large`), giving ``base = 0.786, per_step = 1.214``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtimes.latency import (
    DynamicShapeLatencyModel,
    StaircaseLatencyModel,
    TunedDynamicLatencyModel,
)
from repro.runtimes.spec import CompilerKind


@dataclass(frozen=True)
class ModelProfile:
    """A servable model: its latency behaviour and serving SLO."""

    name: str
    max_length: int
    step: int
    static_latency: StaircaseLatencyModel
    dynamic_latency: DynamicShapeLatencyModel | TunedDynamicLatencyModel
    slo_ms: float
    compiler: CompilerKind = CompilerKind.TENSORRT

    def __post_init__(self) -> None:
        if self.max_length % self.step != 0:
            raise ConfigurationError(
                f"max_length {self.max_length} must be a multiple of step {self.step}"
            )
        if self.slo_ms <= 0:
            raise ConfigurationError("SLO must be positive")

    @property
    def num_buckets(self) -> int:
        """Number of staircase buckets, e.g. 512/64 = 8."""
        return self.max_length // self.step


def bert_base() -> ModelProfile:
    """BERT-Base compiled with TensorRT FP32 (Fig. 2a)."""
    static = StaircaseLatencyModel(step=64, base_ms=0.624, per_step_ms=0.530)
    return ModelProfile(
        name="bert-base",
        max_length=512,
        step=64,
        static_latency=static,
        dynamic_latency=DynamicShapeLatencyModel(static=static),
        slo_ms=150.0,
        compiler=CompilerKind.TENSORRT,
    )


def bert_large() -> ModelProfile:
    """BERT-Large compiled with TensorRT FP32 (Fig. 2b).

    The paper gives the 5.25× lat(512)/lat(64) ratio but no absolute
    number; the lat(64)=2.0 ms anchor is back-solved from the serving
    experiments' operating points (Fig. 6b/10b: 1.5k req/s on 10 GPUs
    must be within Arlo's capacity at batch size 1 while exceeding
    full-padding ST's ~88 req/s/GPU).
    """
    static = StaircaseLatencyModel(step=64, base_ms=0.786, per_step_ms=1.214)
    return ModelProfile(
        name="bert-large",
        max_length=512,
        step=64,
        static_latency=static,
        dynamic_latency=DynamicShapeLatencyModel(static=static),
        slo_ms=450.0,
        compiler=CompilerKind.TENSORRT,
    )


def dolly() -> ModelProfile:
    """Dolly compiled with TVM Unity FP16 (Fig. 2c).

    Used only in the motivation experiment — Dolly is generative, so the
    serving evaluation sticks to the BERT models like the paper does.
    """
    static = StaircaseLatencyModel(step=64, base_ms=8.0, per_step_ms=6.0)
    return ModelProfile(
        name="dolly",
        max_length=512,
        step=64,
        static_latency=static,
        dynamic_latency=TunedDynamicLatencyModel(static=static),
        slo_ms=2_000.0,
        compiler=CompilerKind.TVM_UNITY,
    )


MODEL_ZOO: dict[str, ModelProfile] = {
    m.name: m for m in (bert_base(), bert_large(), dolly())
}


def get_model(name: str) -> ModelProfile:
    """Look up a model profile by name, with a helpful error."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None
