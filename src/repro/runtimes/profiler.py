"""Offline profiler (paper Fig. 3, step ③).

Before serving, Arlo measures each compiled runtime to obtain:

- ``service_ms`` — the mean per-request execution time (for a static
  runtime this is the time at its compiled ``max_length``);
- ``capacity`` (``M_i``) — the maximum number of requests one instance
  can complete within an SLO window, ``floor(SLO / service)``;
- ``latency_for_batch`` (``L_i``) — the mapping from per-instance
  workload ``B`` (requests handed to an instance within one SLO window,
  batch size 1) to the mean latency those requests experience. Under
  FIFO with work arriving at the window start, request ``k`` waits
  ``(k-1)·service``; the mean over ``B`` requests is
  ``overhead + service·(B+1)/2``.

Measurements are taken with multiplicative noise so downstream code is
exercised against realistic, non-exact profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ProfileError
from repro.runtimes.compiler import CompiledRuntime
from repro.units import PER_REQUEST_OVERHEAD_MS


@dataclass(frozen=True)
class RuntimeProfile:
    """Profiled performance of one runtime under a given SLO."""

    runtime: CompiledRuntime
    slo_ms: float
    service_ms: float
    overhead_ms: float = PER_REQUEST_OVERHEAD_MS

    def __post_init__(self) -> None:
        if self.service_ms <= 0:
            raise ProfileError("profiled service time must be positive")
        if self.slo_ms <= self.service_ms:
            raise ProfileError(
                f"SLO {self.slo_ms} ms cannot even fit one request "
                f"({self.service_ms} ms) on {self.runtime.spec.key}"
            )

    @cached_property
    def capacity(self) -> int:
        """``M_i``: requests one instance completes within one SLO window."""
        return max(1, math.floor(self.slo_ms / (self.service_ms + self.overhead_ms)))

    @property
    def max_length(self) -> int:
        return self.runtime.max_length

    @cached_property
    def service_table_ms(self) -> list[float]:
        """Per-length total service time: ``runtime.service_ms(L) +
        overhead_ms`` for every servable L, indexed by length (index 0
        is a NaN sentinel). Instances read this on every enqueue instead
        of re-walking the latency model per request."""
        svc = self.runtime.service_ms
        overhead = self.overhead_ms
        return [math.nan] + [svc(ln) + overhead
                             for ln in range(1, self.max_length + 1)]

    @cached_property
    def service_table_np(self) -> np.ndarray:
        """:attr:`service_table_ms` as a float64 array, for the batch
        dispatcher's fancy-indexed lookup (``table[lengths]``). Values
        are bit-identical to the list — both are materialised from the
        same floats."""
        return np.asarray(self.service_table_ms, dtype=np.float64)

    def latency_for_batch(self, batch: float) -> float:
        """``L_i(B)``: mean latency when an instance serves ``B`` requests
        within one SLO window (batch size 1, FIFO)."""
        if batch < 0:
            raise ProfileError("workload cannot be negative")
        effective = max(batch, 1.0)
        return self.overhead_ms + (self.service_ms) * (effective + 1.0) / 2.0

    def total_cost(self, batch: float, count: float) -> float:
        """Objective contribution ``L_i(B)·C`` of ``count`` requests."""
        return self.latency_for_batch(batch) * count


class OfflineProfiler:
    """Measures runtimes by sampling their latency model with noise."""

    def __init__(self, repeats: int = 32, noise: float = 0.01, seed: int = 7):
        if repeats < 1:
            raise ProfileError("need at least one measurement repeat")
        if not 0 <= noise < 0.2:
            raise ProfileError("noise fraction out of the sane range [0, 0.2)")
        self.repeats = repeats
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def measure_ms(self, runtime: CompiledRuntime, length: int) -> float:
        """One mean measurement of ``runtime`` at ``length`` tokens."""
        true_ms = runtime.service_ms(length)
        if self.noise == 0:
            return true_ms
        samples = true_ms * self._rng.normal(1.0, self.noise, size=self.repeats)
        return float(np.mean(np.maximum(samples, 1e-6)))

    def latency_curve(
        self, runtime: CompiledRuntime, lengths: list[int]
    ) -> list[float]:
        """Measured latency at each requested length (Fig. 2 series)."""
        return [self.measure_ms(runtime, ln) for ln in lengths]

    def profile(self, runtime: CompiledRuntime, slo_ms: float) -> RuntimeProfile:
        """Produce the :class:`RuntimeProfile` the schedulers consume."""
        service = self.measure_ms(runtime, runtime.max_length)
        return RuntimeProfile(runtime=runtime, slo_ms=slo_ms, service_ms=service)

    def profile_set(
        self, runtimes: list[CompiledRuntime], slo_ms: float
    ) -> list[RuntimeProfile]:
        """Profile a polymorph set; preserves the ascending-length order."""
        if not runtimes:
            raise ProfileError("nothing to profile")
        lengths = [r.max_length for r in runtimes]
        if lengths != sorted(lengths):
            raise ProfileError("polymorph set must be sorted by max_length")
        return [self.profile(r, slo_ms) for r in runtimes]
