"""Latency models for static- and dynamic-shape compiled runtimes.

These analytic models stand in for the paper's RTX 3090 measurements
(Fig. 2). They are calibrated in :mod:`repro.runtimes.models` to hit the
numbers the paper reports:

- static-shape latency follows a *staircase* in the sequence length with
  a step of 64 tokens (GPU tile size) and <5 % slope inside a step;
- dynamic-shape TensorRT runtimes are 1.22×–3.56× slower than the static
  runtime at the same (unpadded) length, worst at short lengths where
  kernel-dispatch overhead dominates;
- TVM Unity dynamic compilation averages 2.86× over untuned static.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError

#: Distinct (model, length) pairs memoized across the latency models.
#: Requests repeat lengths heavily (token buckets, trace replay), and
#: the models are frozen/hashable, so per-call recomputation of the
#: staircase + inflation arithmetic on the dispatch hot path is waste.
_LATENCY_CACHE_SIZE = 1 << 16


class LatencyModel(ABC):
    """Maps an (unpadded) sequence length to GPU compute time in ms."""

    @abstractmethod
    def compute_ms(self, length: int) -> float:
        """Compute time for a single request of ``length`` tokens."""

    def __call__(self, length: int) -> float:
        return self.compute_ms(length)


def _check_length(length: int) -> None:
    if length <= 0:
        raise ConfigurationError(f"sequence length must be positive, got {length}")


@dataclass(frozen=True)
class StaircaseLatencyModel(LatencyModel):
    """Static-shape compile latency: ``base + per_step * ceil(len/step)``.

    ``in_step_slope`` adds the paper's "<5 %" in-bucket growth: latency
    rises linearly inside a step by at most that fraction of the step's
    latency, so ``compute_ms`` is monotone in length while preserving
    the dominant staircase shape.
    """

    step: int = 64
    base_ms: float = 0.624
    per_step_ms: float = 0.530
    in_step_slope: float = 0.04

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ConfigurationError("step must be positive")
        if self.per_step_ms <= 0:
            raise ConfigurationError("per_step_ms must be positive")
        if not 0 <= self.in_step_slope < 0.05:
            raise ConfigurationError("in_step_slope must be in [0, 0.05)")

    def bucket(self, length: int) -> int:
        """1-based staircase bucket index of a length."""
        _check_length(length)
        return math.ceil(length / self.step)

    def step_latency_ms(self, bucket: int) -> float:
        """Latency at the *start* of a staircase bucket."""
        if bucket <= 0:
            raise ConfigurationError("bucket index is 1-based")
        return self.base_ms + self.per_step_ms * bucket

    @lru_cache(maxsize=_LATENCY_CACHE_SIZE)
    def compute_ms(self, length: int) -> float:
        b = self.bucket(length)
        at_step = self.step_latency_ms(b)
        # Position inside the bucket, in [0, 1): (length-1) mod step.
        frac = ((length - 1) % self.step) / self.step
        return at_step * (1.0 + self.in_step_slope * frac)


@dataclass(frozen=True)
class DynamicShapeLatencyModel(LatencyModel):
    """Dynamic-shape TensorRT: static latency times a length-dependent
    inflation factor.

    The inflation decays exponentially from ``inflation_short`` at the
    first bucket towards ``inflation_long`` at long lengths, matching the
    paper's observed 3.56× (short) to 1.22× (long) range: dispatching
    overhead is amortised away as the kernel gets bigger. The decay rate
    is calibrated so the serving-experiment ordering of the paper holds
    (DT lands between full-padding ST and Arlo at the Twitter workload's
    median length).
    """

    static: StaircaseLatencyModel
    inflation_short: float = 3.56
    inflation_long: float = 1.22
    decay_buckets: float = 0.55

    def __post_init__(self) -> None:
        if self.inflation_long < 1.0:
            raise ConfigurationError("dynamic shape cannot beat static compile")
        if self.inflation_short < self.inflation_long:
            raise ConfigurationError("inflation must be worst at short lengths")
        if self.decay_buckets <= 0:
            raise ConfigurationError("decay_buckets must be positive")

    @lru_cache(maxsize=_LATENCY_CACHE_SIZE)
    def inflation(self, length: int) -> float:
        """Inflation factor vs the static runtime at the same length."""
        b = self.static.bucket(length)
        spread = self.inflation_short - self.inflation_long
        return self.inflation_long + spread * math.exp(-(b - 1) / self.decay_buckets)

    def compute_ms(self, length: int) -> float:
        return self.static.compute_ms(length) * self.inflation(length)


@dataclass(frozen=True)
class TunedDynamicLatencyModel(LatencyModel):
    """Kernel-tuned dynamic compilation (TVM Unity / Dolly in Fig. 2c).

    Even after tuning, the paper measures an average 2.86× gap to the
    untuned static runtime; we model a constant factor with a mild
    short-length penalty.
    """

    static: StaircaseLatencyModel
    average_inflation: float = 2.86
    short_penalty: float = 0.4
    decay_buckets: float = 3.0

    def __post_init__(self) -> None:
        if self.average_inflation < 1.0:
            raise ConfigurationError("tuned dynamic cannot beat static compile")

    @lru_cache(maxsize=_LATENCY_CACHE_SIZE)
    def inflation(self, length: int) -> float:
        b = self.static.bucket(length)
        return self.average_inflation * (
            1.0 + self.short_penalty * math.exp(-(b - 1) / self.decay_buckets)
        ) / (1.0 + self.short_penalty / 2.0)

    def compute_ms(self, length: int) -> float:
        return self.static.compute_ms(length) * self.inflation(length)
