"""Runtime specifications: what a compiled runtime *is*.

A runtime is a (model, compiler, shape policy) triple. Static-shape
runtimes carry the ``max_length`` they were compiled for; dynamic-shape
runtimes accept any length up to the model's maximum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class CompilerKind(enum.Enum):
    """The DL compiler a runtime was produced with."""

    TENSORRT = "tensorrt"
    TVM_UNITY = "tvm_unity"
    XLA = "xla"


@dataclass(frozen=True, order=True)
class RuntimeSpec:
    """Identity of one compiled runtime.

    Ordering sorts by ``max_length`` first (the order the multi-level
    queue and the ILP iterate runtimes in), which is why ``max_length``
    is the first field.
    """

    max_length: int
    model_name: str
    compiler: CompilerKind = CompilerKind.TENSORRT
    dynamic_shape: bool = False
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.max_length <= 0:
            raise ConfigurationError("max_length must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")

    def accepts(self, length: int) -> bool:
        """Whether a request of ``length`` tokens fits this runtime."""
        return 0 < length <= self.max_length

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``bert-base/trt/static-128``."""
        shape = "dyn" if self.dynamic_shape else f"static-{self.max_length}"
        return f"{self.model_name}/{self.compiler.value}/{shape}"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.key
