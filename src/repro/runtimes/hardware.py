"""Hardware what-if profiles.

The paper measures on RTX 3090s and notes (§3.3) that the staircase
step "may vary and [is] not necessarily uniform" across hardware and
compilers. This module re-targets a calibrated :class:`ModelProfile`
to a different accelerator: compute scales by a speed factor, and the
staircase step follows the device's matmul tile efficiency — coarser
steps mean fewer distinct runtimes for Arlo to exploit, which is
exactly the trade-off worth studying before porting.

Factors are rough public-benchmark ratios for BERT-class FP32/FP16
inference; they parameterise studies, they are not measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtimes.latency import (
    DynamicShapeLatencyModel,
    StaircaseLatencyModel,
    TunedDynamicLatencyModel,
)
from repro.runtimes.models import ModelProfile


@dataclass(frozen=True)
class HardwareProfile:
    """One accelerator target."""

    name: str
    #: Throughput relative to the calibration device (RTX 3090 = 1.0).
    speed_factor: float
    #: Sequence-length staircase step on this device/compiler.
    step: int = 64

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ConfigurationError("speed factor must be positive")
        if self.step <= 0:
            raise ConfigurationError("step must be positive")


RTX_3090 = HardwareProfile(name="rtx-3090", speed_factor=1.0, step=64)
V100 = HardwareProfile(name="v100", speed_factor=0.8, step=64)
A100 = HardwareProfile(name="a100", speed_factor=2.2, step=64)
#: A hypothetical device whose tiles flatten latency over 128 tokens —
#: halves the useful polymorph count for a 512-token model.
COARSE_TILE = HardwareProfile(name="coarse-tile", speed_factor=1.5, step=128)

HARDWARE_ZOO: dict[str, HardwareProfile] = {
    hw.name: hw for hw in (RTX_3090, V100, A100, COARSE_TILE)
}


def retarget_model(model: ModelProfile, hardware: HardwareProfile) -> ModelProfile:
    """``model`` as it would behave on ``hardware``.

    The device keeps the model's underlying per-token cost curve
    (``base + per_step_per_token · L``) but *samples* it at its own
    tile boundary — coarser tiles mean every request executes at the
    next multiple of a larger step, so short requests genuinely pay
    more. Everything then divides by the speed factor. Latency at the
    model's maximum length is preserved up to speed, so SLO arithmetic
    stays comparable.
    """
    if model.max_length % hardware.step != 0:
        raise ConfigurationError(
            f"max_length {model.max_length} is not a multiple of "
            f"{hardware.name}'s step {hardware.step}"
        )
    old = model.static_latency
    speed = hardware.speed_factor
    # Same cost-per-token line, coarser sampling: per_step scales with
    # the tile size ratio, base is a fixed kernel overhead.
    step_ratio = hardware.step / old.step
    static = StaircaseLatencyModel(
        step=hardware.step,
        base_ms=old.base_ms / speed,
        per_step_ms=old.per_step_ms * step_ratio / speed,
        in_step_slope=old.in_step_slope,
    )
    dynamic = model.dynamic_latency
    if isinstance(dynamic, TunedDynamicLatencyModel):
        new_dynamic = dataclasses.replace(dynamic, static=static)
    elif isinstance(dynamic, DynamicShapeLatencyModel):
        new_dynamic = dataclasses.replace(dynamic, static=static)
    else:  # pragma: no cover - zoo has only the two kinds
        raise ConfigurationError("unknown dynamic latency model")
    return ModelProfile(
        name=f"{model.name}@{hardware.name}",
        max_length=model.max_length,
        step=hardware.step,
        static_latency=static,
        dynamic_latency=new_dynamic,
        slo_ms=model.slo_ms,
        compiler=model.compiler,
    )
