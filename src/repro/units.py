"""Time and size units used throughout the reproduction.

All simulation timestamps and durations are expressed in **milliseconds**
as ``float``. Request lengths are expressed in **tokens** as ``int``.
These helpers exist so that call sites can say what they mean
(``seconds(120)``) instead of sprinkling ``120_000.0`` literals.
"""

from __future__ import annotations

MS: float = 1.0
SECOND: float = 1_000.0
MINUTE: float = 60_000.0


def seconds(value: float) -> float:
    """Convert seconds to simulation milliseconds."""
    return float(value) * SECOND


def minutes(value: float) -> float:
    """Convert minutes to simulation milliseconds."""
    return float(value) * MINUTE


def to_seconds(value_ms: float) -> float:
    """Convert simulation milliseconds back to seconds."""
    return float(value_ms) / SECOND


#: Fixed per-request overhead (network + host-to-device copy) added by the
#: simulator, from paper §5.2.1.
PER_REQUEST_OVERHEAD_MS: float = 0.8
