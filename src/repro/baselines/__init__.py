"""Comparison schemes and ablations from the paper's evaluation.

- :mod:`repro.baselines.dispatchers` — request dispatch strategies:
  uniform load balance (ST/DT), Intra-group Load Balance and
  Inter-groups Greedy (Table 4 ablations), INFaaS-style bin-packing.
- :mod:`repro.baselines.allocators` — offline GPU allocators: even
  split and global-trace-distribution (Table 3 ablations).
- :mod:`repro.baselines.schemes` — fully wired serving schemes (ST, DT,
  INFaaS, Arlo and its ablated variants) consumed by the simulator.
"""

from repro.baselines.allocators import (
    even_allocation,
    global_distribution_allocation,
)
from repro.baselines.dispatchers import (
    Dispatcher,
    INFaaSBinPacking,
    InterGroupGreedy,
    IntraGroupLoadBalance,
    UniformLoadBalance,
)
from repro.baselines.schemes import Scheme, build_scheme

__all__ = [
    "Dispatcher",
    "INFaaSBinPacking",
    "InterGroupGreedy",
    "IntraGroupLoadBalance",
    "Scheme",
    "UniformLoadBalance",
    "build_scheme",
    "even_allocation",
    "global_distribution_allocation",
]
