"""Fully wired serving schemes: Arlo, ST, DT, INFaaS and ablations.

A :class:`Scheme` is the unit the simulator executes: a cluster, a
dispatcher and (for Arlo) a periodic runtime scheduler. Builders:

==============  =============================================================
``arlo``        polymorph set + Algorithm 1 + periodic ILP allocation
``st``          one static runtime at the model's max length, load balance
``dt``          one dynamic-shape runtime, load balance
``infaas``      polymorph variants, even allocation, bin-packing dispatch
``arlo-ilb``    Arlo allocation + Intra-group Load Balance (Table 4)
``arlo-ig``     Arlo allocation + Inter-groups Greedy (Table 4)
``arlo-even``   Algorithm 1 + static even allocation (Table 3)
``arlo-global`` Algorithm 1 + static global-trace allocation (Table 3)
==============  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.allocators import even_allocation, global_distribution_allocation
from repro.baselines.dispatchers import (
    ArloDispatcher,
    Dispatcher,
    INFaaSBinPacking,
    InterGroupGreedy,
    IntraGroupLoadBalance,
    UniformLoadBalance,
)
from repro.cluster.state import ClusterState
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler, RequestSchedulerConfig
from repro.core.runtime_scheduler import RuntimeScheduler, RuntimeSchedulerConfig
from repro.errors import ConfigurationError
from repro.runtimes.compiler import SimulatedCompiler
from repro.runtimes.models import ModelProfile, get_model
from repro.runtimes.profiler import OfflineProfiler
from repro.runtimes.registry import RuntimeRegistry, build_polymorph_set
from repro.workload.trace import Trace

SCHEME_NAMES = (
    "arlo",
    "st",
    "dt",
    "infaas",
    "arlo-ilb",
    "arlo-ig",
    "arlo-even",
    "arlo-global",
)


@dataclass
class Scheme:
    """One serving scheme, ready for the simulator."""

    name: str
    model: ModelProfile
    registry: RuntimeRegistry
    cluster: ClusterState
    mlq: MultiLevelQueue
    dispatcher: Dispatcher
    #: Periodic allocation; None for static-allocation schemes.
    runtime_scheduler: RuntimeScheduler | None = None
    #: Demand feed, kept even for static schemes (reports use it).
    demand_estimator: DemandEstimator | None = None

    @property
    def slo_ms(self) -> float:
        return self.model.slo_ms

    @property
    def scale_out_runtime_index(self) -> int:
        """§4: new workers load the maximum-length runtime."""
        return len(self.registry) - 1

    def observe_arrival(self, now_ms: float, length: int) -> None:
        if self.demand_estimator is not None:
            self.demand_estimator.observe(now_ms, length)

    def snapshot(self) -> dict[str, object]:
        return {
            "name": self.name,
            "allocation": self.cluster.allocation().tolist(),
            "gpus": self.cluster.num_gpus,
            "outstanding": self.cluster.total_outstanding(),
        }


def _single_runtime_registry(model: ModelProfile, dynamic: bool) -> RuntimeRegistry:
    compiler = SimulatedCompiler()
    profiler = OfflineProfiler()
    runtime = (
        compiler.compile_dynamic(model)
        if dynamic
        else compiler.compile_static(model, model.max_length)
    )
    return RuntimeRegistry(profiles=profiler.profile_set([runtime], model.slo_ms))


def _mlq_scheme(
    name: str,
    model: ModelProfile,
    registry: RuntimeRegistry,
    allocation: np.ndarray,
    dispatcher_cls,
    runtime_scheduler: RuntimeScheduler | None = None,
    estimator: DemandEstimator | None = None,
) -> Scheme:
    cluster = ClusterState.bootstrap(registry, allocation)
    mlq = MultiLevelQueue.from_cluster(cluster)
    dispatcher = dispatcher_cls(registry=registry, mlq=mlq)
    return Scheme(
        name=name,
        model=model,
        registry=registry,
        cluster=cluster,
        mlq=mlq,
        dispatcher=dispatcher,
        runtime_scheduler=runtime_scheduler,
        demand_estimator=estimator,
    )


def build_scheme(
    name: str,
    model: str | ModelProfile,
    num_gpus: int,
    *,
    trace_hint: Trace | None = None,
    registry: RuntimeRegistry | None = None,
    request_scheduler_config: RequestSchedulerConfig | None = None,
    runtime_scheduler_config: RuntimeSchedulerConfig | None = None,
) -> Scheme:
    """Construct any of the paper's serving schemes by name.

    ``trace_hint`` (typically a short warm-up slice, *not* the
    evaluation trace) seeds initial allocations for the length-aware
    schemes and is mandatory for ``arlo-global``.
    """
    if isinstance(model, str):
        model = get_model(model)
    if num_gpus < 1:
        raise ConfigurationError("need at least one GPU")
    rs_cfg = request_scheduler_config or RequestSchedulerConfig()
    rt_cfg = runtime_scheduler_config or RuntimeSchedulerConfig()

    if name == "st":
        reg = registry or _single_runtime_registry(model, dynamic=False)
        return _mlq_scheme(name, model, reg, np.array([num_gpus]),
                           UniformLoadBalance)
    if name == "dt":
        reg = registry or _single_runtime_registry(model, dynamic=True)
        return _mlq_scheme(name, model, reg, np.array([num_gpus]),
                           UniformLoadBalance)

    reg = registry or build_polymorph_set(model)
    bins = LengthBins.from_registry(reg)

    def initial_allocation() -> np.ndarray:
        if trace_hint is not None and len(trace_hint):
            return global_distribution_allocation(
                reg, trace_hint, num_gpus, model.slo_ms
            )
        return even_allocation(len(reg), num_gpus)

    if name == "infaas":
        return _mlq_scheme(name, model, reg,
                           even_allocation(len(reg), num_gpus), INFaaSBinPacking)

    if name in ("arlo-ilb", "arlo-ig"):
        estimator = DemandEstimator(
            bins=bins, slo_ms=model.slo_ms, window_ms=rt_cfg.period_ms
        )
        scheduler = RuntimeScheduler(registry=reg, estimator=estimator,
                                     config=rt_cfg)
        cls = IntraGroupLoadBalance if name == "arlo-ilb" else InterGroupGreedy
        return _mlq_scheme(name, model, reg, initial_allocation(), cls,
                           runtime_scheduler=scheduler, estimator=estimator)

    if name in ("arlo", "arlo-even", "arlo-global"):
        if name == "arlo-global" and trace_hint is None:
            raise ConfigurationError("arlo-global needs a trace_hint")
        if name == "arlo-even":
            allocation = even_allocation(len(reg), num_gpus)
        else:
            allocation = initial_allocation()
        cluster = ClusterState.bootstrap(reg, allocation)
        mlq = MultiLevelQueue.from_cluster(cluster)
        request_scheduler = ArloRequestScheduler(
            registry=reg, mlq=mlq, config=rs_cfg
        )
        estimator = DemandEstimator(
            bins=bins, slo_ms=model.slo_ms, window_ms=rt_cfg.period_ms
        )
        scheduler = None
        if name == "arlo":
            scheduler = RuntimeScheduler(registry=reg, estimator=estimator,
                                         config=rt_cfg)
        return Scheme(
            name=name,
            model=model,
            registry=reg,
            cluster=cluster,
            mlq=mlq,
            dispatcher=ArloDispatcher(scheduler=request_scheduler),
            runtime_scheduler=scheduler,
            demand_estimator=estimator,
        )

    raise ConfigurationError(
        f"unknown scheme {name!r}; options: {', '.join(SCHEME_NAMES)}"
    )
