"""Offline GPU allocators — the Table 3 ablation baselines.

The paper compares the Runtime Scheduler's *periodic* allocation
against two offline schemes:

- **even** — the same number of GPUs per runtime, remainder to the
  longest runtimes (so Eq. 7 always holds);
- **global** — solve Eqs. 1–7 once using the length distribution of
  the *entire* trace, then never update.

Both are static for the whole run; only Arlo re-solves per period.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import AllocationProblem, solve_allocation
from repro.core.bins import LengthBins
from repro.core.demand import DemandEstimator
from repro.errors import ConfigurationError
from repro.runtimes.registry import RuntimeRegistry
from repro.workload.trace import Trace


def even_allocation(num_runtimes: int, num_gpus: int) -> np.ndarray:
    """Spread GPUs evenly; leftovers go to the longest runtimes."""
    if num_runtimes < 1 or num_gpus < 1:
        raise ConfigurationError("need positive runtime and GPU counts")
    if num_gpus < num_runtimes:
        # Too few GPUs to cover every runtime: fill from the longest
        # down so every request length stays servable (Eq. 7 first).
        alloc = np.zeros(num_runtimes, dtype=np.int64)
        alloc[-num_gpus:] = 1
        return alloc
    base, extra = divmod(num_gpus, num_runtimes)
    alloc = np.full(num_runtimes, base, dtype=np.int64)
    if extra:
        alloc[-extra:] += 1
    return alloc


def global_distribution_allocation(
    registry: RuntimeRegistry,
    trace: Trace,
    num_gpus: int,
    slo_ms: float,
    method: str = "auto",
) -> np.ndarray:
    """One-shot Eqs. 1–7 solve on the whole trace's length histogram."""
    if not len(trace):
        raise ConfigurationError("cannot allocate for an empty trace")
    bins = LengthBins.from_registry(registry)
    demand = DemandEstimator.from_trace_slice(
        bins, trace.length, span_ms=max(trace.duration_ms, slo_ms), slo_ms=slo_ms
    )
    problem = AllocationProblem.from_profiles(
        num_gpus=num_gpus, demand=demand, profiles=list(registry)
    )
    return solve_allocation(problem, method=method, relax=True).allocation
