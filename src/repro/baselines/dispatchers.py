"""Request dispatch strategies compared against Algorithm 1.

All dispatchers share one interface: ``dispatch(now_ms, length)``
returns ``(instance, service_start_ms, completion_ms)`` after enqueuing
the request. The simulator is policy-agnostic; it only ever sees this
interface.

Strategies (paper §5):

- :class:`UniformLoadBalance` — ST and DT use load balancing "due to
  their uniform runtimes": least-loaded instance anywhere.
- :class:`IntraGroupLoadBalance` (ILB) — dispatch to the runtime
  requiring the least padding, balancing load among its instances.
- :class:`InterGroupGreedy` (IG) — least busy instance among all
  candidate runtime queues.
- :class:`INFaaSBinPacking` — INFaaS "allocat[es] requests among
  instances that satisfy the specified input length requirements" with
  a bin-packing heuristic: pack onto the most-loaded instance that
  still has SLO headroom, spilling to the least-loaded otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cluster.instance import RuntimeInstance
from repro.core.mlq import MultiLevelQueue
from repro.core.request_scheduler import ArloRequestScheduler
from repro.errors import CapacityError
from repro.runtimes.registry import RuntimeRegistry


class Dispatcher(ABC):
    """Common dispatch interface used by the simulator."""

    @abstractmethod
    def select(self, length: int) -> RuntimeInstance:
        """Choose an instance for a request (no side effects)."""

    def dispatch(
        self, now_ms: float, length: int
    ) -> tuple[RuntimeInstance, float, float]:
        """Select, enqueue, and refresh queue keys."""
        instance = self.select(length)
        start, finish = instance.enqueue(now_ms, length)
        self._after_enqueue(instance)
        return instance, start, finish

    def _after_enqueue(self, instance: RuntimeInstance) -> None:
        """Hook for refreshing priority structures."""

    def dispatch_fast(
        self, now_ms: float, length: int
    ) -> tuple[RuntimeInstance, float, float]:
        """Hot-path dispatch; identical decisions to :meth:`dispatch`.

        Policies with a cheaper allocation-free path override this; the
        default simply delegates.
        """
        return self.dispatch(now_ms, length)

    def on_complete(self, instance: RuntimeInstance) -> None:
        """Hook invoked by the simulator after ``instance.complete()``."""


@dataclass
class _MlqDispatcher(Dispatcher):
    """Shared plumbing for dispatchers driven by a multi-level queue."""

    registry: RuntimeRegistry
    mlq: MultiLevelQueue

    def _after_enqueue(self, instance: RuntimeInstance) -> None:
        self.mlq.refresh(instance)

    def on_complete(self, instance: RuntimeInstance) -> None:
        self.mlq.refresh(instance)

    def _first_populated(self, levels) -> tuple[int, RuntimeInstance]:
        for lv in levels:
            head = self.mlq.head(lv)
            if head is not None:
                return lv, head
        raise CapacityError("no deployed runtime can serve this request")


@dataclass
class UniformLoadBalance(_MlqDispatcher):
    """Least-loaded instance across every level accepting the request."""

    def select(self, length: int) -> RuntimeInstance:
        candidates = self.registry.candidate_indexes(length)
        best = self.mlq.least_loaded(candidates)
        if best is None:
            raise CapacityError("no deployed runtime can serve this request")
        return best


@dataclass
class IntraGroupLoadBalance(_MlqDispatcher):
    """ILB: ideal (least-padding) runtime, least-loaded instance within.

    When the ideal runtime currently has no instances the request falls
    through to the next populated candidate level — the closest
    deployable runtime, still with intra-level load balance.
    """

    def select(self, length: int) -> RuntimeInstance:
        candidates = self.registry.candidate_indexes(length)
        _, head = self._first_populated(candidates)
        return head


@dataclass
class InterGroupGreedy(_MlqDispatcher):
    """IG: globally least busy instance among all candidate levels."""

    def select(self, length: int) -> RuntimeInstance:
        candidates = self.registry.candidate_indexes(length)
        best = self.mlq.least_loaded(candidates)
        if best is None:
            raise CapacityError("no deployed runtime can serve this request")
        return best


@dataclass
class INFaaSBinPacking(_MlqDispatcher):
    """INFaaS-style packing among length-compatible instances.

    INFaaS routes each request to the cheapest variant that satisfies
    its requirements, consolidating load onto already-busy instances to
    minimise the number of instances in use. We model that as: walk the
    candidate levels cheapest (least padding) first; within a level,
    pack onto the *most* loaded instance that still has QPS headroom.
    INFaaS reasons in request-rate headroom (util below ~85 %), which
    at batch size 1 corresponds to an M/D/1 occupancy of ≈4 requests —
    hence the ``pack_depth`` bound on outstanding work rather than a
    fraction of the SLO capacity. Spill to the globally least-loaded
    candidate when every instance is at depth — INFaaS's
    vertical-scaling signal, which under a fixed GPU budget degenerates
    to load balancing.

    What it deliberately lacks (per the paper's §2.3 comparison): no
    length-distribution-aware allocation and no queueing-vs-padding
    trade-off in dispatch.
    """

    pack_depth: int = 4

    def select(self, length: int) -> RuntimeInstance:
        candidates = self.registry.candidate_indexes(length)
        seen_any = False
        # Tier 1: pack within QPS headroom, cheapest variant first.
        for lv in candidates:
            best: RuntimeInstance | None = None
            for instance in self.mlq.levels[lv].instances():
                if not instance.is_active:
                    continue
                seen_any = True
                if instance.outstanding >= min(self.pack_depth,
                                               instance.capacity):
                    continue
                if best is None or instance.outstanding > best.outstanding:
                    best = instance
            if best is not None:
                return best
        if not seen_any:
            raise CapacityError("no deployed runtime can serve this request")
        # Tier 2: INFaaS's rate metrics are stale under a burst — it keeps
        # packing the cheapest satisfying variant up to its SLO capacity
        # rather than spreading by instantaneous queue depth.
        for lv in candidates:
            best = None
            for instance in self.mlq.levels[lv].instances():
                if not instance.is_active:
                    continue
                if instance.outstanding >= instance.capacity:
                    continue
                if best is None or instance.outstanding > best.outstanding:
                    best = instance
            if best is not None:
                return best
        # Tier 3: everything at SLO capacity — spill to the least loaded.
        spill = self.mlq.least_loaded(candidates)
        if spill is None:  # pragma: no cover - seen_any guarantees a head
            raise CapacityError("no deployed runtime can serve this request")
        return spill


@dataclass
class ArloDispatcher(Dispatcher):
    """Adapter exposing Algorithm 1 through the common interface."""

    scheduler: ArloRequestScheduler
    last_decision: object = field(default=None, init=False)

    def select(self, length: int) -> RuntimeInstance:
        decision = self.scheduler.select(length)
        self.last_decision = decision
        return decision.instance

    def dispatch_fast(
        self, now_ms: float, length: int
    ) -> tuple[RuntimeInstance, float, float]:
        # Same Algorithm-1 walk and counters, minus the DispatchDecision
        # record (`last_decision` stays untouched — tracing callers use
        # `dispatch`).
        return self.scheduler.dispatch_fast(now_ms, length)

    def _after_enqueue(self, instance: RuntimeInstance) -> None:
        self.scheduler.mlq.refresh(instance)

    def on_complete(self, instance: RuntimeInstance) -> None:
        self.scheduler.mlq.refresh(instance)
