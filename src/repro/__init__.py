"""repro — a reproduction of *Arlo: Serving Transformer-based Language
Models with Dynamic Input Lengths* (ICPP 2024).

Arlo handles variable-length inference requests by *polymorphing*:
compiling one model into several static-shape runtimes at staircase
length boundaries, allocating GPUs across them with an integer program
driven by the observed length distribution (Runtime Scheduler, §3.3),
and dispatching each request through a multi-level queue with decaying
congestion thresholds (Request Scheduler, Algorithm 1, §3.4).

Quickstart::

    from repro import ArloSystem
    arlo = ArloSystem.build("bert-base", num_gpus=10)
    decision, start_ms, finish_ms = arlo.handle(now_ms=0.0, length=37)

Trace-driven evaluation::

    from repro import build_scheme, generate_twitter_trace, run_simulation
    trace = generate_twitter_trace(rate_per_s=1000, duration_ms=60_000)
    result = run_simulation(build_scheme("arlo", "bert-base", 10), trace)
    print(result.stats)
"""

from repro.baselines import Scheme, build_scheme
from repro.core import (
    AllocationProblem,
    ArloConfig,
    ArloRequestScheduler,
    ArloSystem,
    RequestSchedulerConfig,
    RuntimeScheduler,
    RuntimeSchedulerConfig,
    solve_allocation,
)
from repro.runtimes import (
    MODEL_ZOO,
    ModelProfile,
    OfflineProfiler,
    RuntimeRegistry,
    bert_base,
    bert_large,
    build_polymorph_set,
)
from repro.multistream import (
    MultiStreamConfig,
    StreamInput,
    run_multistream,
)
from repro.errors import AdmissionError
from repro.resilience import (
    AdmissionConfig,
    BreakerConfig,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
    Rejection,
    RejectionReason,
    ResilienceConfig,
    ResilienceManager,
    RetryPolicy,
)
from repro.serve import ArloServer, VirtualClock, WallClock
from repro.sim import (
    SimulationConfig,
    SimulationResult,
    run_simulation,
)
from repro.workload import (
    Trace,
    TwitterTraceConfig,
    generate_twitter_trace,
)

__version__ = "1.0.0"

__all__ = [
    "MODEL_ZOO",
    "AdmissionConfig",
    "AdmissionError",
    "AllocationProblem",
    "ArloConfig",
    "ArloRequestScheduler",
    "ArloServer",
    "ArloSystem",
    "BreakerConfig",
    "CircuitBreaker",
    "HealthConfig",
    "HealthMonitor",
    "MultiStreamConfig",
    "StreamInput",
    "VirtualClock",
    "WallClock",
    "ModelProfile",
    "OfflineProfiler",
    "Rejection",
    "RejectionReason",
    "RequestSchedulerConfig",
    "ResilienceConfig",
    "ResilienceManager",
    "RetryPolicy",
    "RuntimeRegistry",
    "RuntimeScheduler",
    "RuntimeSchedulerConfig",
    "Scheme",
    "SimulationConfig",
    "SimulationResult",
    "Trace",
    "TwitterTraceConfig",
    "bert_base",
    "bert_large",
    "build_polymorph_set",
    "build_scheme",
    "generate_twitter_trace",
    "run_multistream",
    "run_simulation",
    "solve_allocation",
    "__version__",
]
